"""Workload programs: correctness oracles and structure."""

import numpy as np
import pytest

from repro.lang import compile_source
from repro.preprocess import preprocess_program
from repro.vm import Machine
from repro.workloads import (WORKLOADS, baseline_run, clock_units, compiled,
                             expected_result, instr_seconds_for, programs)


def test_fib_value():
    assert expected_result("Fib") == 10946  # fib(21)


def test_nqueens_value():
    assert expected_result("NQ") == 40  # 7-queens solutions


def test_tsp_is_a_valid_tour_cost():
    best = expected_result("TSP")
    assert 0 < best < 999_999_999
    # Brute-force check at a tiny size using the same guest code paths.
    classes = compiled("TSP", "original")
    m = Machine(classes)
    small = m.call("TSP", "main", [5])
    assert 0 < small < 999_999_999


def test_fft_against_numpy():
    classes = compiled("FFT", "original")
    m = Machine(classes)
    m.call("FFT", "init", [16, 8])
    m.call("FFT", "compute", [])
    re = np.array(m.loader.load("FFT").statics["re"].data).reshape(16, 16)
    im = np.array(m.loader.load("FFT").statics["im"].data).reshape(16, 16)
    m2 = Machine(compiled("FFT", "original"))
    m2.call("FFT", "init", [16, 8])
    inp = (np.array(m2.loader.load("FFT").statics["re"].data)
           + 1j * np.array(m2.loader.load("FFT").statics["im"].data)
           ).reshape(16, 16)
    assert np.abs((re + 1j * im) - np.fft.fft2(inp)).max() < 1e-9


def test_fft_nominal_array_size():
    classes = compiled("FFT", "faulting")
    m = Machine(classes)
    m.call("FFT", "init", list(WORKLOADS["FFT"].sim_args))
    re = m.loader.load("FFT").statics["re"]
    im = m.loader.load("FFT").statics["im"]
    total = re.nominal_bytes() + im.nominal_bytes()
    assert total > 64 * 1024 * 1024  # the paper's F > 64M


def test_all_builds_agree_per_workload():
    for name, w in WORKLOADS.items():
        oracle = expected_result(name)
        for build in ("faulting", "checking"):
            m = Machine(compiled(name, build))
            got = m.call(w.main[0], w.main[1], list(w.sim_args))
            if isinstance(oracle, float):
                assert got == pytest.approx(oracle), (name, build)
            else:
                assert got == oracle, (name, build)


def test_triggers_fire_for_every_workload():
    for name, w in WORKLOADS.items():
        m = Machine(compiled(name, "faulting"))
        t = m.spawn(w.main[0], w.main[1], list(w.sim_args))
        status = m.run(t, stop=w.trigger())
        assert status == "stopped", name
        assert t.frames[-1].code.name == w.trigger_method[1], name


def test_clock_units_positive_and_build_dependent():
    orig = clock_units("Fib", "original")
    flat = clock_units("Fib", "faulting")
    assert flat > orig > 0


def test_instr_seconds_maps_to_target():
    isec = instr_seconds_for("Fib", "original", 12.10)
    assert isec * clock_units("Fib", "original") == pytest.approx(12.10)


def test_textsearch_counts_hits():
    from repro.cluster import gige_cluster
    from repro.units import mb
    classes = preprocess_program(compile_source(programs.TEXTSEARCH),
                                 "original")
    cluster = gige_cluster(1)
    cluster.fs.host_file(cluster.node("node0"), "/t/a", mb(9),
                         plant=[(mb(8), "zebra")])
    cluster.fs.host_file(cluster.node("node0"), "/t/b", mb(9))
    m = Machine(classes, node=cluster.node("node0"), fs=cluster.fs)
    assert m.call("Search", "runMany", ["/t/", "zebra"]) == 1


def test_photoshare_lists_matching_photos():
    from repro.cluster import phone_setup
    from repro.units import kb
    classes = preprocess_program(compile_source(programs.PHOTOSHARE),
                                 "original")
    cluster = phone_setup()
    phone = cluster.node("iphone")
    cluster.fs.host_file(phone, "/pics/IMG_1_beach.jpg", kb(100))
    cluster.fs.host_file(phone, "/pics/IMG_2_home.jpg", kb(100))
    m = Machine(classes, node=phone, fs=cluster.fs)
    listing = m.call("PhotoServer", "serve", ["/pics/", "beach"])
    assert "beach" in listing and "home" not in listing


def test_microbench_methods_return_sane_values():
    classes = preprocess_program(compile_source(programs.MICROBENCH),
                                 "original")
    m = Machine(classes)
    assert m.call("Micro", "fieldRead", [10]) == 30
    assert m.call("Micro", "fieldWrite", [10]) == 9
    assert m.call("Micro", "staticRead", [10]) == 50
    assert m.call("Micro", "staticWrite", [10]) == 9
    assert m.call("Micro", "baseline", [10]) == 10


def test_geometry_displaces_deterministically():
    classes = preprocess_program(compile_source(programs.GEOMETRY),
                                 "original")
    a = Machine(classes).call("GeoMain", "main", [3])
    b = Machine(classes).call("GeoMain", "main", [3])
    assert a == b != 0
