"""Preprocessor tests: flatten/MSPs, handlers, status checks, sizes."""

import pytest

from repro.bytecode import opcodes as op
from repro.bytecode import verify_class
from repro.bytecode.verifier import stack_depths, verify
from repro.errors import VerifyError
from repro.lang import compile_source
from repro.preprocess import (OBJECT_FAULT_CLASS, RESTORE_EXCEPTION,
                              class_size, flatten,
                              inject_object_fault_handlers,
                              inject_restoration_handler,
                              inject_status_checks, method_size,
                              preprocess_class, preprocess_program)
from repro.vm import Machine
from repro.workloads import programs

SRC = """
class Point { int x; int y; int getX() { return x; } }
class G {
  static int total;
  static int combine(Point p, int k) {
    int r = G.twice(k) + p.getX();
    G.total = G.total + r;
    return r;
  }
  static int twice(int k) { return k * 2; }
}
"""


def compiled():
    return compile_source(SRC)


# -- flatten ----------------------------------------------------------------

def test_flatten_empties_stack_at_line_starts():
    code = compiled()["G"].methods["combine"]
    info = flatten(code)
    verify(info.code)
    depths = stack_depths(info.code)
    for bci, _line in info.code.line_table:
        assert depths.get(bci, 0) == 0


def test_flatten_creates_msps():
    info = flatten(compiled()["G"].methods["combine"])
    assert info.code.msps
    assert all(b in dict(info.code.line_table) or True for b in info.code.msps)


def test_flatten_gives_each_call_its_own_region():
    info = flatten(compiled()["G"].methods["combine"])
    call_bcis = [b for b, ins in enumerate(info.code.instrs)
                 if op.is_call(ins.op)]
    starts = {b for b, _ in info.code.line_table}
    for b in call_bcis:
        assert info.group_start[b] in starts


def test_flatten_preserves_semantics():
    classes = compiled()
    ref = Machine(classes).call("G", "combine",
                                [None, 5]) if False else None
    # run with a real Point
    m = Machine(classes)
    p = m.heap.new_instance(m.loader.load("Point"))
    p.fields["x"] = 3
    ref = m.call("G", "combine", [p, 5])

    flat = {name: cf.copy() for name, cf in classes.items()}
    for cf in flat.values():
        cf.methods = {n: flatten(c).code for n, c in cf.methods.items()}
    m2 = Machine(flat)
    p2 = m2.heap.new_instance(m2.loader.load("Point"))
    p2.fields["x"] = 3
    assert m2.call("G", "combine", [p2, 5]) == ref == 13


def test_flatten_grows_locals_with_temps():
    code = compiled()["G"].methods["combine"]
    info = flatten(code)
    assert info.code.max_locals > code.max_locals
    assert info.base == code.max_locals
    assert any(n.startswith("$t") for n in info.code.local_names)


def test_flatten_remaps_exception_table():
    src = """class T { static int f() {
      try { int x = 1 / 0; return x; } catch (ArithmeticException e) { return 9; }
    } }"""
    code = compile_source(src)["T"].methods["f"]
    info = flatten(code)
    verify(info.code)
    assert Machine({"T": _wrap("T", info.code)}).call("T", "f") == 9


def _wrap(name, code):
    from repro.bytecode import ClassFile
    return ClassFile(name, methods={code.name: code})


# -- object fault handlers -----------------------------------------------------

def test_fault_handlers_cover_each_deref_site():
    info = flatten(compiled()["G"].methods["combine"])
    out = inject_object_fault_handlers(info)
    fault_rows = [e for e in out.exc_table
                  if e.exc_class == OBJECT_FAULT_CLASS]
    deref_ops = [i for i in info.code.instrs
                 if i.op in (op.GETF, op.PUTF, op.INVOKEVIRT, op.ALOAD,
                             op.ASTORE, op.LEN)]
    assert len(fault_rows) == len(deref_ops) >= 1
    for e in fault_rows:
        assert e.end == e.start + 1  # covers exactly the deref site


def test_fault_rows_come_before_app_rows():
    src = """class T { static int f(T o) {
      try { return o.g(); } catch (NullPointerException e) { return -1; }
    } int g() { return 1; } }"""
    cf = preprocess_class(compile_source(src)["T"], "faulting")
    table = cf.methods["f"].exc_table
    fault_idx = [i for i, e in enumerate(table)
                 if e.exc_class == OBJECT_FAULT_CLASS]
    app_idx = [i for i, e in enumerate(table)
               if e.exc_class == "NullPointerException"]
    assert max(fault_idx) < min(app_idx)


def test_fault_handler_hardcodes_receiver_slot():
    info = flatten(compiled()["G"].methods["combine"])
    out = inject_object_fault_handlers(info)
    rows = [e for e in out.exc_table if e.exc_class == OBJECT_FAULT_CLASS]
    h = rows[0].handler
    assert out.instrs[h].op == op.CONST
    assert isinstance(out.instrs[h].a, int)
    assert out.instrs[h + 1].op == op.NATIVE
    assert out.instrs[h + 1].a == "ObjMan.resolve"


def test_plain_null_still_reaches_app_handler():
    src = """
    class Box { int v; }
    class T { static int f() {
      Box b = null;
      try { return b.v; } catch (NullPointerException e) { return 42; }
    } }"""
    classes = preprocess_program(compile_source(src), "faulting")
    assert Machine(classes).call("T", "f") == 42


# -- restoration handlers ---------------------------------------------------------

def test_restoration_handler_shape():
    info = flatten(compiled()["G"].methods["twice"])
    out = inject_restoration_handler(info.code)
    rows = [e for e in out.exc_table if e.exc_class == RESTORE_EXCEPTION]
    assert len(rows) == 1
    handler = rows[0].handler
    assert out.instrs[handler].op == op.POP
    assert out.instrs[-1].op == op.LSWITCH
    # lookupswitch keys are exactly the MSPs
    assert set(out.instrs[-1].a) == out.msps


def test_restoration_requires_flatten_first():
    code = compiled()["G"].methods["twice"]
    with pytest.raises(VerifyError):
        inject_restoration_handler(code)


# -- status checks -------------------------------------------------------------------

def test_status_checks_add_isremote_tests():
    info = flatten(compiled()["G"].methods["combine"])
    out = inject_status_checks(info)
    verify(out)
    assert any(i.op == op.ISREMOTE for i in out.instrs)


def test_status_checks_preserve_semantics():
    classes = preprocess_program(compile_source(SRC), "checking")
    m = Machine(classes)
    p = m.heap.new_instance(m.loader.load("Point"))
    p.fields["x"] = 3
    assert m.call("G", "combine", [p, 5]) == 13


def test_checking_build_executes_more_instructions():
    src = """class Holder { int v; }
    class T { static int f(int n) {
      Holder h = new Holder();
      int acc = 0;
      for (int i = 0; i < n; i = i + 1) { h.v = i; acc = acc + h.v; }
      return acc;
    } }"""
    counts = {}
    for build in ("flattened", "faulting", "checking"):
        classes = preprocess_program(compile_source(src), build)
        m = Machine(classes)
        m.call("T", "f", [50])
        counts[build] = m.instr_count
    assert counts["faulting"] == counts["flattened"]  # zero normal-path cost
    assert counts["checking"] > counts["flattened"]


# -- pipeline / sizes ----------------------------------------------------------------

def test_preprocess_program_verifies_and_tags_versions():
    for build in ("original", "faulting", "checking", "flattened"):
        classes = preprocess_program(compile_source(SRC), build)
        for name, cf in classes.items():
            verify_class(cf)
        assert classes["G"].version == build


def test_unknown_build_rejected():
    with pytest.raises(VerifyError):
        preprocess_class(compile_source(SRC)["G"], "bogus")


def test_builtin_exceptions_pass_through():
    classes = preprocess_program(compile_source(SRC), "faulting")
    assert "NullPointerException" in classes
    assert not classes["NullPointerException"].methods


def test_fig5_size_ordering():
    classes = compile_source(programs.GEOMETRY)
    sizes = {b: class_size(preprocess_program(classes, b)["Geometry"])
             for b in ("original", "checking", "faulting")}
    assert sizes["original"] < sizes["checking"] < sizes["faulting"]


def test_method_size_monotone_in_instrs():
    code = compiled()["G"].methods["twice"]
    bigger = flatten(code).code
    assert method_size(bigger) > method_size(code)
