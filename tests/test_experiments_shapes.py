"""Experiment shape assertions — the reproduction's headline claims.

These tests run the real harnesses (cached across tests) and assert the
*qualitative* findings of the paper, not absolute numbers:

Table III: SODEE's migration overhead is the lowest for Fib/NQ/FFT, and
TSP is the exception where eager copy wins; Xen is far above everyone.

Table IV: SOD latency is independent of heap size; G-JavaMPI's scales
with it; JESSICA2's FFT restore is allocation-dominated.

Table V: object faulting adds ~nothing to the normal path; status
checking is tens-to-hundreds of percent, worst on static accesses.

Fig. 5: original < checking < faulting class sizes.

Table VI: SODEE converts most of the locality gain; JESSICA2 nearly
none.  Roaming: speedup > 3.  Table VII: capture/restore flat across
bandwidths, transfers inverse in bandwidth.
"""

import pytest

from repro.experiments import table1, table3, table4, table5, table6, table7
from repro.experiments import figure1, figure5, roaming
from repro.experiments.common import outcome

pytestmark = pytest.mark.slow


# -- Tables II/III ------------------------------------------------------------

def test_results_correct_for_every_system_and_workload():
    # outcome() itself asserts the oracle; touching all cells here makes
    # the correctness sweep explicit.
    for system in ("JDK", "SODEE", "G-JavaMPI", "JESSICA2", "Xen"):
        for wl in ("Fib", "NQ", "FFT", "TSP"):
            outcome(system, wl, False)
            if system != "JDK":
                outcome(system, wl, True)


def test_table3_sodee_lowest_except_tsp():
    for wl in ("Fib", "NQ", "FFT"):
        sod = table3.overhead("SODEE", wl)[0]
        for other in ("G-JavaMPI", "JESSICA2", "Xen"):
            assert sod < table3.overhead(other, wl)[0], (wl, other)
    # TSP: the paper's exception — eager copy beats on-demand faulting.
    assert table3.overhead("G-JavaMPI", "TSP")[0] < \
        table3.overhead("SODEE", "TSP")[0]


def test_table3_xen_is_heaviest():
    for wl in ("Fib", "NQ", "FFT", "TSP"):
        xen = table3.overhead("Xen", wl)[0]
        for other in ("SODEE", "G-JavaMPI", "JESSICA2"):
            assert xen > table3.overhead(other, wl)[0]


def test_table3_overheads_positive():
    for wl in ("Fib", "NQ", "FFT", "TSP"):
        for system in ("SODEE", "G-JavaMPI", "JESSICA2", "Xen"):
            ms, pct = table3.overhead(system, wl)
            assert ms > 0 and pct > 0


# -- Table IV ---------------------------------------------------------------------

def test_table4_sod_latency_heap_independent():
    totals = [table4.breakdown("SOD", wl)[0]
              for wl in ("Fib", "NQ", "FFT", "TSP")]
    # FFT's 64 MB static array must not show up: all within ~2x.
    assert max(totals) < 2 * min(totals)


def test_table4_gjavampi_scales_with_heap():
    fft = table4.breakdown("G-JavaMPI", "FFT")[0]
    fib = table4.breakdown("G-JavaMPI", "Fib")[0]
    assert fft > 10 * fib


def test_table4_jessica2_fft_restore_dominated_by_alloc():
    total, _cap, _xfer, rest = table4.breakdown("JESSICA2", "FFT")
    assert rest / total > 0.8
    assert rest > 50  # ~64 MB x alloc cost, in ms


def test_table4_sod_capture_below_a_millisecond():
    for wl in ("Fib", "NQ", "FFT", "TSP"):
        assert table4.breakdown("SOD", wl)[1] < 1.5


# -- Table V / Fig. 5 -----------------------------------------------------------------

@pytest.fixture(scope="module")
def table5_measured():
    return table5.measure()


def test_table5_faulting_adds_nothing(table5_measured):
    for label, row in table5_measured.items():
        assert row[3] == pytest.approx(0.0, abs=0.5), label


def test_table5_checking_is_expensive(table5_measured):
    for label, row in table5_measured.items():
        assert row[4] > 20.0, label


def test_table5_static_accesses_hit_hardest(table5_measured):
    worst_two = sorted(table5_measured,
                       key=lambda k: table5_measured[k][4])[-2:]
    assert set(worst_two) == {"Static Read", "Static Write"}


def test_figure5_size_ordering():
    sizes = figure5.sizes()
    assert sizes["original"] < sizes["checking"] < sizes["faulting"]
    # Faulting trades more space (paper: ~35% more than checking).
    assert sizes["faulting"] / sizes["checking"] > 1.05


# -- Table VI / roaming / Table VII -------------------------------------------------------

@pytest.fixture(scope="module")
def table6_rows():
    return {
        "SODEE": table6.run_sodee(),
        "JESSICA2": table6.run_jessica2(),
        "Xen": table6.run_xen(),
    }


def _gain(row):
    no_mig, mig, _local = row
    return (no_mig - mig) / mig * 100.0


def test_table6_sodee_gets_most_of_the_gain(table6_rows):
    g = _gain(table6_rows["SODEE"])
    assert g > 15
    assert g > _gain(table6_rows["Xen"]) > _gain(table6_rows["JESSICA2"])


def test_table6_jessica2_gain_negligible(table6_rows):
    assert abs(_gain(table6_rows["JESSICA2"])) < 2.0


def test_table6_mig_between_nomig_and_local(table6_rows):
    for system, (no_mig, mig, local) in table6_rows.items():
        assert local <= mig <= no_mig * 1.05, system


def test_roaming_speedup_over_three():
    r = roaming.measure()
    assert r.speedup > 3.0
    assert r.roaming_seconds < r.no_mig_seconds


@pytest.fixture(scope="module")
def table7_records():
    return {bw: table7.migrate_once(bw)[0] for bw in table7.BANDWIDTHS}


def test_table7_capture_restore_bandwidth_independent(table7_records):
    captures = [r.capture_time for r in table7_records.values()]
    restores = [r.restore_time for r in table7_records.values()]
    assert max(captures) < 1.2 * min(captures)
    assert max(restores) < 1.2 * min(restores)


def test_table7_transfers_scale_inverse_with_bandwidth(table7_records):
    s50 = table7_records[50]
    s764 = table7_records[764]
    assert s50.state_transfer_time > 5 * s764.state_transfer_time
    assert s50.class_transfer_time > 5 * s764.class_transfer_time
    assert s50.latency > 2 * s764.latency


def test_table7_portable_capture_penalty(table7_records):
    # Capture to a VMTI-less target pays the Java-serialization step:
    # an order of magnitude above cluster-to-cluster capture.
    assert min(r.capture_time for r in table7_records.values()) > 0.010


# -- Table I / Fig. 1 ------------------------------------------------------------------------

def test_table1_structure():
    for name in ("Fib", "NQ", "FFT", "TSP"):
        h, f = table1.measure(name)
        assert h >= 2
        assert f > 0
    h_fft, f_fft = table1.measure("FFT")
    assert f_fft > 64 * 1024 * 1024
    assert h_fft == 4


def test_figure1_all_flows_correct():
    t = figure1.run()
    assert all(row[2] for row in t.rows)  # 'ok' column
    hidden_b = t.rows[1][4]
    hidden_c = t.rows[2][4]
    assert hidden_b > 0 and hidden_c > 0  # freeze-time hiding observed
