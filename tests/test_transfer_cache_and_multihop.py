"""The migration fast path: delta captures, per-(home, worker) transfer
caches, object revalidation, and multi-hop re-offload chains.

The load-bearing test is the delta-capture property test: across
randomized mutation/offload schedules, a cache-enabled engine must
leave every worker and home in exactly the state a from-scratch
full-capture engine produces (the oracle pattern of
``tests/test_load_index.py``), while moving strictly fewer bytes.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import gige_cluster
from repro.errors import MigrationError
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.capture import capture_segment, run_to_msp
from repro.migration.sodee import CLASS_TOKEN_BYTES
from repro.migration.state import is_cached_marker
from repro.preprocess import preprocess_program
from repro.vm.machine import Machine
from repro.vm.values import RemoteRef

#: statics-bearing guest program whose segment mutates part of the
#: static state each run (s1 always, s2 only for odd n) and reads a
#: home object — every cache layer gets exercised
SRC = """
class D { int v; }
class P {
  static int s0;
  static int s1;
  static int s2;
  static str tag;
  static int work(D d, int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      acc = (acc + P.s0 + d.v + i) % 100003;
    }
    P.s1 = P.s1 + n;
    if (n % 2 == 1) { P.s2 = P.s2 + 1; }
    d.v = d.v + 1;
    return acc;
  }
  static int main(int n) { return 0; }
}
"""


def _classes():
    return preprocess_program(compile_source(SRC), "faulting")


def _spawn_at_msp(eng, home, d, n):
    t = eng.spawn(home, "P", "work", [d, n])
    run_to_msp(home.machine, t)
    return t


def _home_statics(host):
    cls = host.machine.loader.load("P")
    return {f: cls.statics[f] for f in ("s0", "s1", "s2", "tag")}


# -- the property test: delta ≡ from-scratch full capture ----------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_delta_capture_equals_full_capture_over_random_schedule(seed):
    """Drive two engines — transfer cache on vs. off — through an
    identical randomized schedule of home-side static/object mutations
    and offloads to varying workers.  After every completed segment:

    * both homes hold identical static and object state;
    * both segments returned identical results;
    * the cache-enabled worker's *linked* statics equal its home's
      (the delta markers elided only truly-unchanged values);
    * and a from-scratch full capture taken at the same freeze point
      decodes to exactly the primitive statics the delta-restored
      worker ended up with.
    """
    rng = random.Random(f"deltacap:{seed}")
    engines = [SODEngine(gige_cluster(3), _classes(), transfer_cache=on)
               for on in (True, False)]
    homes = [eng.host("node0") for eng in engines]
    dees = []
    for home in homes:
        d = home.machine.heap.new_instance(home.machine.loader.load("D"))
        d.fields["v"] = 5
        dees.append(d)

    for step in range(12):
        op = rng.random()
        if op < 0.35:
            # home-side mutation between offloads (the "dirty" source)
            field = rng.choice(("s0", "s1", "s2"))
            delta = rng.randint(1, 9)
            for home in homes:
                cls = home.machine.loader.load("P")
                cls.statics[field] = cls.statics[field] + delta
            if rng.random() < 0.3:
                tag = f"t{step}"
                for home in homes:
                    home.machine.loader.load("P").statics["tag"] = tag
            if rng.random() < 0.4:
                for d in dees:
                    d.fields["v"] = d.fields["v"] + 1
            continue
        n = rng.randint(1, 6)
        dst = rng.choice(("node1", "node2"))
        results = []
        for eng, home, d in zip(engines, homes, dees):
            t = _spawn_at_msp(eng, home, d, n)
            # oracle: the from-scratch full capture at this freeze point
            full = capture_segment(home.vmti, t, 1,
                                   home_node=home.node_name)
            worker, wt, rec = eng.migrate(home, t, dst, 1)
            # delta-applied worker statics == full-capture decode
            wcls = worker.machine.loader.load("P")
            from repro.migration.state import decode_value
            for (cname, fname), enc in full.statics.items():
                want = decode_value(enc)
                got = wcls.statics[fname]
                if isinstance(want, RemoteRef):
                    assert isinstance(got, RemoteRef)
                    assert (got.home_oid, got.home_node) == \
                        (want.home_oid, want.home_node)
                else:
                    assert got == want, (
                        f"seed={seed} step={step} {fname}: "
                        f"delta-applied={got!r} full={want!r}")
            eng.run(worker, wt)
            eng.complete_segment(worker, wt, home, t, 1)
            results.append(t.result)
        assert results[0] == results[1]
        assert _home_statics(homes[0]) == _home_statics(homes[1])
        assert dees[0].fields["v"] == dees[1].fields["v"]

    # the cached engine moved strictly fewer bytes for the same work
    cached_bytes = engines[0].cluster.network.total_bytes()
    full_bytes = engines[1].cluster.network.total_bytes()
    assert cached_bytes < full_bytes
    assert engines[0].cluster.network.total_saved() > 0
    # and at least one re-offload actually elided statics
    assert any(r.cached_statics > 0 for r in engines[0].migrations)


def test_unchanged_statics_are_not_restamped():
    """Epoch observability: a re-offload that ships a static fresh
    re-stamps it; one that elides it leaves the stamp alone."""
    eng = SODEngine(gige_cluster(2), _classes())
    home = eng.host("node0")
    d = home.machine.heap.new_instance(home.machine.loader.load("D"))

    t = _spawn_at_msp(eng, home, d, 2)
    worker, wt, _ = eng.migrate(home, t, "node1", 1)
    eng.run(worker, wt)
    eng.complete_segment(worker, wt, home, t, 1)
    led = eng.ledger("node0", "node1")
    stamp_s0 = led.stamp[("P", "s0")]
    stamp_s1 = led.stamp[("P", "s1")]

    # s0 untouched; s1 was mutated by the segment (write-back restamped
    # it at completion, and the next capture matches it -> elided too)
    t = _spawn_at_msp(eng, home, d, 4)  # n=4: s2 untouched as well
    worker, wt, rec = eng.migrate(home, t, "node1", 1)
    assert rec.cached_statics >= 3  # s0, s1, s2 all elided
    assert led.stamp[("P", "s0")] == stamp_s0
    assert led.stamp[("P", "s1")] == stamp_s1
    eng.run(worker, wt)
    eng.complete_segment(worker, wt, home, t, 1)

    # home-side mutation forces a fresh ship (and a fresh stamp)
    home.machine.loader.load("P").statics["s0"] = 999
    t = _spawn_at_msp(eng, home, d, 2)
    worker, wt, rec2 = eng.migrate(home, t, "node1", 1)
    assert led.stamp[("P", "s0")] > stamp_s0
    assert worker.machine.loader.load("P").statics["s0"] == 999
    eng.run(worker, wt)
    eng.complete_segment(worker, wt, home, t, 1)


def test_abandoned_segment_invalidates_its_static_ledger_entries():
    """A segment that dies after writing statics never ships them home:
    the worker's cells have forked, so the ledger entries must go —
    otherwise the next delta capture would elide a value the worker no
    longer holds."""
    eng = SODEngine(gige_cluster(2), _classes())
    home = eng.host("node0")
    d = home.machine.heap.new_instance(home.machine.loader.load("D"))

    t = _spawn_at_msp(eng, home, d, 3)
    worker, wt, _ = eng.migrate(home, t, "node1", 1)
    eng.run(worker, wt, max_instrs=60)  # partway: s1 already written?
    # force the dirty-static situation deterministically
    worker.machine.loader.load("P").statics["s1"] = 12345
    worker.objman._on_write(worker.machine.loader.load("P"))
    eng.abandon_segment(worker, wt)
    led = eng.ledger("node0", "node1")
    assert ("P", "s1") not in led.statics

    # the next offload ships s1 in full and the worker converges again
    t2 = _spawn_at_msp(eng, home, d, 2)
    worker, wt2, _rec = eng.migrate(home, t2, "node1", 1)
    assert worker.machine.loader.load("P").statics["s1"] \
        == home.machine.loader.load("P").statics["s1"]
    eng.run(worker, wt2)
    eng.complete_segment(worker, wt2, home, t2, 1)


def test_forked_worker_cell_heals_on_delta_restore():
    """A marker is a *claim* the worker still holds the ledgered value;
    restore verifies it.  If something forked the cell behind the
    ledger's back (e.g. a local guest thread wrote a static between
    segment episodes, barrier disarmed), the fallback fetches the true
    value from the home instead of trusting the marker."""
    eng = SODEngine(gige_cluster(2), _classes())
    home = eng.host("node0")
    d = home.machine.heap.new_instance(home.machine.loader.load("D"))

    t = _spawn_at_msp(eng, home, d, 2)
    worker, wt, _ = eng.migrate(home, t, "node1", 1)
    eng.run(worker, wt)
    eng.complete_segment(worker, wt, home, t, 1)

    # fork the worker's cell without any tracked write (ledger unaware)
    worker.machine.loader.load("P").statics["s0"] = -777
    assert home.machine.loader.load("P").statics["s0"] != -777

    t2 = _spawn_at_msp(eng, home, d, 4)
    worker, wt2, rec = eng.migrate(home, t2, "node1", 1)
    assert rec.cached_statics > 0  # the capture still elided s0...
    # ...but the restore detected the fork and healed from the home
    assert worker.machine.loader.load("P").statics["s0"] \
        == home.machine.loader.load("P").statics["s0"]
    eng.run(worker, wt2)
    eng.complete_segment(worker, wt2, home, t2, 1)
    assert worker.machine.loader.load("P").statics["s0"] != -777


# -- class tokens --------------------------------------------------------------


def test_repeat_offload_ships_class_token_not_class():
    eng = SODEngine(gige_cluster(2), _classes())
    home = eng.host("node0")
    d = home.machine.heap.new_instance(home.machine.loader.load("D"))

    t = _spawn_at_msp(eng, home, d, 3)
    worker, wt, rec1 = eng.migrate(home, t, "node1", 1)
    eng.run(worker, wt)
    eng.complete_segment(worker, wt, home, t, 1)
    assert not rec1.cached_class
    assert rec1.class_bytes > CLASS_TOKEN_BYTES

    t = _spawn_at_msp(eng, home, d, 3)
    worker, wt, rec2 = eng.migrate(home, t, "node1", 1)
    assert rec2.cached_class
    assert rec2.class_bytes == CLASS_TOKEN_BYTES
    assert rec2.saved_bytes >= rec1.class_bytes - CLASS_TOKEN_BYTES
    assert rec2.transfer_time < rec1.transfer_time
    eng.run(worker, wt)
    eng.complete_segment(worker, wt, home, t, 1)


def test_transfer_cache_off_reships_everything():
    eng = SODEngine(gige_cluster(2), _classes(), transfer_cache=False)
    home = eng.host("node0")
    d = home.machine.heap.new_instance(home.machine.loader.load("D"))
    for _ in range(2):
        t = _spawn_at_msp(eng, home, d, 3)
        worker, wt, rec = eng.migrate(home, t, "node1", 1)
        assert not rec.cached_class and rec.cached_statics == 0
        eng.run(worker, wt)
        eng.complete_segment(worker, wt, home, t, 1)
    assert eng.cluster.network.total_saved() == 0


# -- object revalidation -------------------------------------------------------

#: the segment reads a chunky home array but never writes it
READER_SRC = """
class P {
  static int read(int[] xs, int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      acc = (acc + xs[i % 64]) % 100003;
    }
    return acc;
  }
  static int main(int n) { return 0; }
}
"""


def _reader_engine():
    classes = preprocess_program(compile_source(READER_SRC), "faulting")
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    xs = home.machine.heap.new_array("int", 64, 8)
    for i in range(64):
        xs.data[i] = i * 3 + 1
    return eng, home, xs


def _offload_read(eng, home, xs, n=70):
    t = eng.spawn(home, "P", "read", [xs, n])
    run_to_msp(home.machine, t)
    worker, wt, rec = eng.migrate(home, t, "node1", 1)
    eng.run(worker, wt)
    eng.complete_segment(worker, wt, home, t, 1)
    return worker, t.result


def test_unchanged_object_revalidates_instead_of_reshipping():
    eng, home, xs = _reader_engine()
    worker, r1 = _offload_read(eng, home, xs)
    stats = worker.objman.stats
    assert stats.faults == 1 and stats.revalidations == 0
    bytes_after_first = eng.cluster.network.total_bytes()

    worker, r2 = _offload_read(eng, home, xs)
    assert r2 == r1
    assert stats.revalidations == 1 and stats.reval_hits == 1
    assert stats.faults == 1  # no payload re-shipped
    assert eng.cluster.network.total_saved() > 0
    second_bytes = eng.cluster.network.total_bytes() - bytes_after_first
    assert second_bytes < bytes_after_first / 2


def test_changed_object_fails_revalidation_and_reships():
    eng, home, xs = _reader_engine()
    worker, r1 = _offload_read(eng, home, xs)
    xs.data[10] = 999_999  # home mutates between offloads
    worker, r2 = _offload_read(eng, home, xs)
    stats = worker.objman.stats
    assert stats.revalidations == 1 and stats.reval_hits == 0
    assert stats.faults == 2  # fresh payload rode the reply
    assert r2 != r1  # and the worker really saw the new contents


def test_abandoned_dirty_copy_is_never_retained():
    """A copy whose writes were never shipped home must not survive
    into the retained cache: home still has the old value, so a
    revalidation would wrongly bless the forked copy."""
    eng, home, xs = _reader_engine()
    t = eng.spawn(home, "P", "read", [xs, 70])
    run_to_msp(home.machine, t)
    worker, wt, _rec = eng.migrate(home, t, "node1", 1)
    eng.run(worker, wt)  # faults the array in (clean)
    # dirty the fetched copy without any write-back, then abandon
    copy = worker.objman.cache[(xs.oid, "node0")]
    copy.data[0] = -1
    worker.objman._on_write(copy)
    eng.abandon_segment(worker, wt)
    assert (xs.oid, "node0") not in worker.objman.retained

    worker2, r = _offload_read(eng, home, xs)
    assert worker2.objman.stats.reval_hits == 0  # full re-fetch happened
    assert xs.data[0] != -1  # the forked write never leaked home


# -- multi-hop chains (engine level) -------------------------------------------

CHAIN_SRC = """
class D { int v; }
class P {
  static int s0;
  static int outer(D d, int n) { return P.inner(d, n) + P.s0; }
  static int inner(D d, int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      acc = (acc + d.v + i) % 100003;
      P.s0 = P.s0 + 1;
    }
    d.v = d.v + n;
    return acc;
  }
  static int main(int n) { return 0; }
}
"""


def _chain_classes():
    return preprocess_program(compile_source(CHAIN_SRC), "faulting")


def _chain_oracle(n, v0, s0):
    m = Machine(_chain_classes(), dispatch="legacy")
    cls = m.loader.load("P")
    cls.statics["s0"] = s0
    d = m.heap.new_instance(m.loader.load("D"))
    d.fields["v"] = v0
    t = m.spawn("P", "outer", [d, n])
    m.run(t)
    return t.result, cls.statics["s0"], d.fields["v"]


def test_rehop_segment_completes_directly_home():
    """home -> node1 -> node2: the chain's last hop completes straight
    to the home (value delivered, statics and object effects applied),
    and the intermediate hop is left clean (epoch released, write
    barrier disarmed)."""
    want, want_s0, want_v = _chain_oracle(6, 10, 3)

    eng = SODEngine(gige_cluster(3), _chain_classes())
    home = eng.host("node0")
    home.machine.loader.load("P").statics["s0"] = 3
    d = home.machine.heap.new_instance(home.machine.loader.load("D"))
    d.fields["v"] = 10
    t = eng.spawn(home, "P", "outer", [d, 6])
    # freeze inside inner(), two frames migratable above main-entry
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "inner"
            and th.frames[-1].pc in th.frames[-1].code.msps)

    worker1, wt, _ = eng.migrate(home, t, "node1", 2)
    eng.run(worker1, wt, max_instrs=25)  # partial progress on hop 1
    assert not wt.finished
    worker2, wt2, rec = eng.rehop_segment(worker1, wt, "node2", home)
    assert rec.src == "node1" and rec.dst == "node2"
    # hop 1 is clean: no epochs, no dirt, fast dispatch restored
    assert not worker1.objman.thread_home
    assert worker1.machine.on_write is None
    eng.run(worker2, wt2)
    eng.complete_segment(worker2, wt2, home, t, 2)
    eng.run(home, t)

    assert t.result == want
    assert home.machine.loader.load("P").statics["s0"] == want_s0
    assert d.fields["v"] == want_v


def test_rehop_forwards_fetched_copies_to_true_home():
    """After a chain hop, the next hop's faults go to the object's real
    home, not to the intermediate hop (no proxy chains)."""
    eng = SODEngine(gige_cluster(3), _chain_classes())
    home = eng.host("node0")
    d = home.machine.heap.new_instance(home.machine.loader.load("D"))
    d.fields["v"] = 4
    t = eng.spawn(home, "P", "outer", [d, 5])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "inner"
            and th.frames[-1].pc in th.frames[-1].code.msps)
    worker1, wt, _ = eng.migrate(home, t, "node1", 2)
    eng.run(worker1, wt, max_instrs=40)  # faults d in on node1
    if wt.finished:  # pragma: no cover - schedule drift guard
        pytest.skip("segment finished before the hop")
    home_served_before = home.server.requests
    worker2, wt2, _ = eng.rehop_segment(worker1, wt, "node2", home)
    eng.run(worker2, wt2)
    # node2's faults for d went to node0 (the home), not node1
    assert home.server.requests > home_served_before
    assert all(node == "node0"
               for (_oid, node) in worker2.objman.home_identity.values())
    eng.complete_segment(worker2, wt2, home, t, 2)
    eng.run(home, t)
    assert t.uncaught is None


# -- multi-hop chains (scheduler level) ----------------------------------------


def test_scheduler_multihop_chains_serve_correctly():
    """An offload-heavy front-door run with chains enabled: chains
    actually fire, every request is served and correct, and the load
    index drains back to zero (a chain hop leaks no phantom load)."""
    from repro.cluster import serve_cluster
    from repro.serve import (ClusterScheduler, FrontDoorPlacement,
                             LoadGenerator, QueueDepthPolicy)
    from repro.workloads.mixes import MIXES, serve_classpath

    mix = MIXES["offload"]
    sched = ClusterScheduler(
        serve_cluster(6), serve_classpath(mix.programs()),
        placement=FrontDoorPlacement(),
        offload=QueueDepthPolicy(max_seg_hops=2))
    rep = sched.serve(LoadGenerator(mix, 18, seed=7))
    assert rep.served == rep.correct == 18
    assert rep.failed == 0 and rep.unserved == 0
    assert rep.stats["seg_rehops"] > 0
    assert rep.stats["bytes_saved"] > 0
    assert all(c == 0 for c in sched.load_index.count.values())
    assert all(p == 0 for p in sched.pending.values())


def test_scheduler_single_hop_default_never_rehops():
    from repro.serve import QueueDepthPolicy, serve_mix

    rep = serve_mix("offload", n_nodes=6, n_requests=12, seed=7,
                    placement="front-door", offload=QueueDepthPolicy())
    assert rep.served == rep.correct == 12
    assert rep.stats["seg_rehops"] == 0


# -- preemption coverage -------------------------------------------------------


LEAF_LOOP_SRC = """
class G {
  static int main(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      acc = (acc + i * 7 + 3) % 100003;
    }
    return acc;
  }
}
"""


def test_max_quantum_overshoot_is_recorded():
    """A call-free loop polls only at back-edges: the overshoot is the
    loop body's tail, bounded and recorded."""
    classes = preprocess_program(compile_source(LEAF_LOOP_SRC), "original")
    m = Machine(classes)
    t = m.spawn("G", "main", [400])
    assert m.max_quantum_overshoot == 0
    while m.run(t, quantum=50) == "preempted":
        pass
    assert t.finished
    assert m.max_quantum_overshoot > 0
    assert m.max_quantum_overshoot < 64  # a handful of fused groups

    rep_overshoot = None
    from repro.serve import serve_mix
    rep = serve_mix("parallel", n_nodes=2, n_requests=6, seed=3)
    rep_overshoot = rep.stats["max_quantum_overshoot"]
    assert rep_overshoot is not None and rep_overshoot >= 0


# -- transfer-cache fuzz: randomized abandon/re-offload/rehop interleavings ----
#
# The PR 4 property test drives *sequential* schedules (one segment in
# flight at a time).  This fuzz layer interleaves several live segments
# per home — offloads to varying workers, mid-run slices, chain rehops,
# abandons, home-side mutations between episodes — and requires the
# cache-enabled engine to stay bit-identical to the cache-off oracle on
# every completed result and on the final home state, while moving no
# more bytes.  The op stream is seeded, so CI replays exact schedules.

import os

FUZZ_CACHE_SEEDS = [int(s) for s in os.environ.get(
    "REPRO_CACHE_FUZZ_SEEDS", "0,1,2,3").split(",")]


def _fuzz_spawn(eng, home, d, n):
    """A fresh outer(d, n) thread, run to the first MSP."""
    t = eng.spawn(home, "P", "outer", [d, n])
    run_to_msp(home.machine, t)
    return t


@pytest.mark.parametrize("seed", FUZZ_CACHE_SEEDS)
def test_transfer_cache_fuzz_interleaved_schedules(seed):
    from repro.migration.segments import max_migratable

    rng = random.Random(f"cachefuzz:{seed}")
    engines = [SODEngine(gige_cluster(4), _chain_classes(),
                         transfer_cache=on) for on in (True, False)]
    homes = [eng.host("node0") for eng in engines]
    dees = []
    for home in homes:
        d = home.machine.heap.new_instance(home.machine.loader.load("D"))
        d.fields["v"] = 7
        dees.append(d)
    workers = ("node1", "node2", "node3")
    # live[i] is the per-engine list of in-flight segments:
    # (home_thread, seg_thread, worker_host, nframes)
    live = [[], []]
    results = [[], []]

    def complete(idx):
        """Finish and complete live segment ``idx`` on both engines."""
        for k, eng in enumerate(engines):
            t, wt, worker, nframes = live[k].pop(idx)
            eng.run(worker, wt)
            eng.complete_segment(worker, wt, homes[k], t, nframes)
            eng.run(homes[k], t)
            results[k].append(t.result)

    for step in range(16):
        op = rng.random()
        if op < 0.18:
            # home-side mutation between segment episodes
            delta = rng.randint(1, 9)
            for home, d in zip(homes, dees):
                cls = home.machine.loader.load("P")
                cls.statics["s0"] = cls.statics["s0"] + delta
                if step % 2:
                    d.fields["v"] = d.fields["v"] + 1
        elif op < 0.50 or not live[0]:
            # spawn + offload a fresh segment to a random worker
            n = rng.randint(2, 6)
            dst = rng.choice(workers)
            run = rng.randint(0, 60)
            for k, eng in enumerate(engines):
                t = _fuzz_spawn(eng, homes[k], dees[k], n)
                eng.run(homes[k], t, max_instrs=run)
                if t.finished:
                    results[k].append(t.result)
                    continue
                run_to_msp(homes[k].machine, t)
                nmax = min(max_migratable(t), t.depth() - 1)
                if nmax < 1:
                    eng.run(homes[k], t)
                    results[k].append(t.result)
                    continue
                nframes = rng.randint(1, nmax)
                worker, wt, _rec = eng.migrate(homes[k], t, dst, nframes)
                live[k].append((t, wt, worker, nframes))
            assert len(live[0]) == len(live[1])
        elif op < 0.62:
            # run a slice of one live segment on its current hop
            idx = rng.randrange(len(live[0]))
            slice_instrs = rng.randint(1, 80)
            for k, eng in enumerate(engines):
                _t, wt, worker, _n = live[k][idx]
                eng.run(worker, wt, max_instrs=slice_instrs)
        elif op < 0.76:
            # chain rehop: push one live segment a hop onward
            idx = rng.randrange(len(live[0]))
            cur = live[0][idx][2].node_name
            choices = [w for w in workers if w != cur]
            dst = rng.choice(choices)
            outcomes = []
            for k, eng in enumerate(engines):
                t, wt, worker, nframes = live[k][idx]
                if wt.finished:
                    outcomes.append("finished")
                    continue
                try:
                    w2, wt2, _ = eng.rehop_segment(worker, wt, dst,
                                                   homes[k])
                except MigrationError:
                    outcomes.append("refused")
                    continue
                outcomes.append("hopped")
                live[k][idx] = (t, wt2, w2, nframes)
            # both engines must take the same path (identical guest
            # schedules -> identical capturability)
            assert len(set(outcomes)) == 1, outcomes
            if outcomes[0] == "finished":
                complete(idx)
        elif op < 0.86:
            # abandon: the segment dies, effects dropped on both sides;
            # ledger entries for its dirty statics must be invalidated
            # (a later delta capture re-ships them in full)
            idx = rng.randrange(len(live[0]))
            for k, eng in enumerate(engines):
                t, wt, worker, _n = live[k].pop(idx)
                eng.abandon_segment(worker, wt)
        else:
            complete(rng.randrange(len(live[0])))

    while live[0]:
        complete(0)

    assert results[0] == results[1]
    final = [dict(h.machine.loader.load("P").statics) for h in homes]
    assert final[0] == final[1]
    assert dees[0].fields["v"] == dees[1].fields["v"]
    cached_bytes = engines[0].cluster.network.total_bytes()
    full_bytes = engines[1].cluster.network.total_bytes()
    assert cached_bytes <= full_bytes
