"""Tier-2 specializing JIT: compile, OSR, deopt, and namespace hygiene.

The broad semantic net is the tier2-vs-legacy differential fuzzer
(``minilang_fuzz.py``); these tests pin the tier-up *mechanics*: when
compilation fires, that OSR catches single-activation loops, that
guard bails and deopts are counted and harmless, that compiled maps
are per-namespace and reclaimed with the namespace, and that a full
serving run leaves no decoded/compiled cache growth behind.
"""

from __future__ import annotations

import math

import repro.serve.scheduler as scheduler_mod
import repro.vm.jit as jit_mod
from repro.lang import compile_source
from repro.preprocess import preprocess_program
from repro.serve import serve_mix
from repro.vm.machine import Machine
from repro.workloads.mixes import MIXES

LOOP_SRC = """
class P {
  static int s;
  static int work(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      acc = (acc + i * 3 + P.s) % 100003;
      P.s = P.s + 1;
    }
    return acc;
  }
  static int caller(int n) {
    int t = 0;
    for (int i = 0; i < n; i = i + 1) {
      t = (t + P.work(4)) % 100003;
    }
    return t;
  }
}
"""

VIRT_SRC = """
class V { int tag; int f(int a) { return a + this.tag; } }
class VA extends V { int f(int a) { return a * 2 + this.tag; } }
class VB extends VA { int f(int a) { return a - this.tag; } }
class P {
  static int call(V r, int a) { return r.f(a); }
  static int mega(int n) {
    V x = new V();
    V y = new VA();
    V z = new VB();
    x.tag = 1; y.tag = 2; z.tag = 3;
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      acc = acc + P.call(x, i) + P.call(y, i) + P.call(z, i);
    }
    return acc;
  }
}
"""


def _classes(src=LOOP_SRC, build="original"):
    return preprocess_program(compile_source(src), build)


def _pair(src, cls, meth, args, build="original"):
    """(tier-1 result machine, tier-2 result machine) for one call."""
    classes = _classes(src, build)
    m1 = Machine(classes, jit=False)
    r1 = m1.call(cls, meth, list(args))
    m2 = Machine(classes, jit=True)
    r2 = m2.call(cls, meth, list(args))
    return (m1, r1), (m2, r2)


def test_hot_method_tiers_up_and_matches_tier1():
    """Repeated activations cross JIT_THRESHOLD, the method compiles,
    and result / instr_count / clock agree with tier-1 exactly."""
    (m1, r1), (m2, r2) = _pair(LOOP_SRC, "P", "caller", [64])
    assert r2 == r1
    assert m2.instr_count == m1.instr_count
    assert math.isclose(m2.clock, m1.clock, rel_tol=1e-9, abs_tol=1e-12)
    assert m2.jit_compiles > 0 and m2._compiled
    assert m1.jit_compiles == 0 and not m1._compiled


def test_osr_compiles_single_activation_loop():
    """One activation, many back-edges: the loop tiers up at the
    backward jump (on-stack replacement), not only at frame entry."""
    classes = _classes()
    m = Machine(classes, jit=True)
    r = m.call("P", "work", [2000])
    assert m.jit_compiles > 0
    ref = Machine(classes, jit=False).call("P", "work", [2000])
    assert r == ref


def test_megamorphic_call_site_counts_guard_bails():
    """Three receiver classes rotating through one virtual call site:
    the compiled inline-cache guard misses, the bail is counted, and
    the rebind path still computes the tier-1 result."""
    (m1, r1), (m2, r2) = _pair(VIRT_SRC, "P", "mega", [200])
    assert r2 == r1 and m2.instr_count == m1.instr_count
    assert m2.jit_guard_bails > 0


def test_quantum_preemption_inside_compiled_code():
    """A compiled loop still honors the scheduler quantum: the run
    preempts at safepoints with bounded overshoot, resumes from the
    materialized frame, and total accounting matches a solo run."""
    classes = _classes()
    ref_m = Machine(classes, jit=False)
    ref = ref_m.call("P", "work", [3000])
    m = Machine(classes, jit=True)
    t = m.spawn("P", "work", [3000])
    preemptions = 0
    while not t.finished:
        if m.run(t, quantum=500) == "preempted":
            preemptions += 1
    assert t.result == ref
    assert preemptions >= 5  # the quantum actually bit mid-loop
    assert m.jit_compiles > 0
    assert m.max_quantum_overshoot < 2000
    assert m.instr_count == ref_m.instr_count
    assert math.isclose(m.clock, ref_m.clock, rel_tol=1e-9, abs_tol=1e-12)


def test_repro_jit_env_toggle(monkeypatch):
    classes = _classes()
    monkeypatch.setenv("REPRO_JIT", "0")
    assert Machine(classes).jit is False
    monkeypatch.setenv("REPRO_JIT", "1")
    assert Machine(classes).jit is True
    # explicit argument beats the environment
    assert Machine(classes, jit=False).jit is False
    # the JIT rides the fast dispatcher only
    assert Machine(classes, dispatch="legacy", jit=True).jit is False


def test_precompile_skips_the_warmup():
    """`precompile` makes the closure available before any activation,
    and the first run already executes tier-2 (no further compiles)."""
    classes = _classes()
    m = Machine(classes, jit=True)
    assert m.precompile("P", "work") is True
    compiles = m.jit_compiles
    ref = Machine(classes, jit=False).call("P", "work", [500])
    assert m.call("P", "work", [500]) == ref
    assert m.jit_compiles == compiles  # ran the precompiled closure
    assert m.precompile("P", "nosuch") is False
    assert Machine(classes, jit=False).precompile("P", "work") is False


def test_refused_code_is_not_retried(monkeypatch):
    """A method the compiler refuses is marked once and interpreted
    forever after — the tier-up driver must not re-attempt it on every
    activation."""
    classes = _classes()
    m = Machine(classes, jit=True)
    calls = []
    orig = jit_mod.compile_code

    def counting(machine, code):
        calls.append(code.qualname)
        return None  # refuse everything

    monkeypatch.setattr(jit_mod, "compile_code", counting)
    ref = Machine(classes, jit=False).call("P", "caller", [64])
    assert m.call("P", "caller", [64]) == ref
    assert m.jit_compiles == 0
    for code, entry in m._compiled.items():
        assert entry is False
    assert len(calls) == len(set(calls))  # one attempt per code object
    monkeypatch.setattr(jit_mod, "compile_code", orig)


# -- namespaces ----------------------------------------------------------------


def test_namespaced_threads_compile_into_their_own_map(monkeypatch):
    monkeypatch.setattr(jit_mod, "JIT_THRESHOLD", 1)
    classes = _classes()
    m = Machine(classes, jit=True)
    ta = m.spawn("P", "work", [50], namespace="a")
    m.run(ta)
    troot = m.spawn("P", "work", [50])
    m.run(troot)
    assert ta.result == troot.result
    # the namespace compiled against its own static cells, the root
    # against the root's: separate closures in separate maps
    assert m._compiled_ns["a"] and m._compiled
    ns_codes = set(m._compiled_ns["a"])
    root_codes = set(m._compiled)
    assert ns_codes and root_codes
    for code in ns_codes & root_codes:
        a, b = m._compiled_ns["a"][code], m._compiled[code]
        if a and b:
            assert a[0] is not b[0]


def test_drop_namespace_reclaims_compiled_map(monkeypatch):
    monkeypatch.setattr(jit_mod, "JIT_THRESHOLD", 1)
    m = Machine(_classes(), jit=True)
    t = m.spawn("P", "work", [50], namespace="gone")
    m.run(t)
    assert m._compiled_ns["gone"]
    m.drop_namespace("gone")
    assert "gone" not in m._compiled_ns
    assert "gone" not in m._decoded_ns
    assert not m.has_namespace("gone")


def test_invalidate_caches_drops_compiled_closures():
    m = Machine(_classes(), jit=True)
    m.precompile("P", "work")
    assert m._compiled
    m.invalidate_caches()
    assert not m._compiled


def test_serve_run_namespace_and_cache_maps_return_to_baseline():
    """The reclamation regression test: after a completed serving run
    of an isolation-heavy mix with the JIT on, every host's namespace
    count and per-namespace decoded/compiled cache maps are back to
    baseline (empty) — long serving runs must not pin dead req{rid}
    state."""
    from repro.cluster import serve_cluster
    from repro.serve import ClusterScheduler, LoadGenerator
    from repro.workloads.mixes import serve_classpath

    mix = MIXES["paper"]
    n = 12
    sched = ClusterScheduler(serve_cluster(3),
                             serve_classpath(mix.programs()))
    rep = sched.serve(LoadGenerator(mix, n, seed=11))
    assert rep.served == rep.correct == n
    assert rep.stats["isolated"] > 0
    assert rep.stats["tier2_compiles"] > 0  # the JIT actually ran
    for h in sched.engine.hosts.values():
        mach = h.machine
        assert not mach._namespaces
        assert not mach._decoded_ns
        assert not mach._compiled_ns
    # root-namespace caches may legitimately hold shared-program state;
    # engine-level per-request bookkeeping must be gone
    assert not sched.engine._ns_home and not sched.engine._ns_sites


def test_work_profile_drives_precompilation(monkeypatch):
    """Once the profile knows a program is heavy, later requests of it
    tier up at spawn (tier2_precompiles > 0 in the report stats)."""
    monkeypatch.setattr(scheduler_mod, "PRECOMPILE_INSTRS", 1_000)
    # spaced arrivals: early requests complete (seeding the profile)
    # before later ones spawn — back-to-back arrivals all spawn first
    rep = serve_mix("parallel", n_nodes=2, n_requests=10, seed=3,
                    interarrival=0.05)
    assert rep.served == rep.correct == 10
    assert rep.stats["tier2_precompiles"] > 0
