"""Tracer and CLI tests."""

import pytest

from repro.cluster import gige_cluster
from repro.migration import SODEngine
from repro.migration.tracing import Tracer, format_timeline
from repro.__main__ import main as cli_main


@pytest.fixture()
def traced(app_classes_faulting):
    eng = SODEngine(gige_cluster(2), app_classes_faulting)
    tracer = Tracer().attach(eng)
    home = eng.host("node0")
    t = eng.spawn(home, "App", "work", [8])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "step")
    eng.run_segment_remote(home, t, "node1", 1)
    return eng, tracer


def test_tracer_records_all_phases(traced):
    eng, tracer = traced
    counts = tracer.counts()
    assert counts["migrate"] == 1
    assert counts["fault"] >= 1
    assert counts["writeback"] == 1


def test_tracer_event_details(traced):
    eng, tracer = traced
    mig = tracer.of_kind("migrate")[0]
    assert mig.src == "node0" and mig.dst == "node1"
    assert mig.detail["frames"] == 1
    assert mig.detail["state_bytes"] > 0
    fault = tracer.of_kind("fault")[0]
    assert fault.detail["bytes"] > 0


def test_tracer_timestamps_monotone(traced):
    eng, tracer = traced
    times = [e.at for e in tracer.events]
    assert times == sorted(times)


def test_format_timeline_readable(traced):
    eng, tracer = traced
    text = format_timeline(tracer)
    assert "migrate" in text and "fault" in text and "writeback" in text
    assert "node0 -> node1" in text


def test_tracer_double_attach_rejected(traced):
    eng, tracer = traced
    with pytest.raises(ValueError):
        tracer.attach(eng)


def test_tracer_detach_restores(app_classes_faulting):
    eng = SODEngine(gige_cluster(2), app_classes_faulting)
    tracer = Tracer().attach(eng)
    orig_count = len(tracer.events)
    tracer.detach()
    home = eng.host("node0")
    t = eng.spawn(home, "App", "work", [5])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "step")
    eng.run_segment_remote(home, t, "node1", 1)
    assert len(tracer.events) == orig_count  # nothing new recorded
    tracer.detach()  # idempotent


# -- CLI --------------------------------------------------------------------

def test_cli_workloads(capsys):
    assert cli_main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "Fib" in out and "TSP" in out


def test_cli_run_workload(capsys):
    assert cli_main(["run", "NQ"]) == 0
    out = capsys.readouterr().out
    assert "NQ(7,) = 40" in out


def test_cli_run_unknown_workload(capsys):
    assert cli_main(["run", "Ghost"]) == 2


def test_cli_migrate(capsys):
    assert cli_main(["migrate", "NQ"]) == 0
    out = capsys.readouterr().out
    assert "correct=True" in out and "migrate" in out


def test_cli_report_subset(capsys):
    assert cli_main(["report", "figure5"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out


def test_cli_report_unknown(capsys):
    assert cli_main(["report", "table99"]) == 2


def test_cli_disasm(tmp_path, capsys):
    src = tmp_path / "prog.mj"
    src.write_text(
        "class D { static int f(int n) { return n * 2; } }")
    assert cli_main(["disasm", str(src), "D.f"]) == 0
    out = capsys.readouterr().out
    assert "method D.f" in out and "MUL" in out
