"""SODEngine integration tests: migration, faulting, write-back."""

import pytest

from repro.cluster import gige_cluster
from repro.errors import MigrationError
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.preprocess import preprocess_program
from repro.vm import Machine

from tests.conftest import APP_SOURCE


@pytest.fixture()
def setup(app_classes_faulting):
    eng = SODEngine(gige_cluster(3), app_classes_faulting)
    home = eng.host("node0")
    t = eng.spawn(home, "App", "work", [10])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "step")
    return eng, home, t


def reference(app_classes_faulting, n=10):
    return Machine(app_classes_faulting).call("App", "work", [n])


def test_run_segment_remote_matches_local(setup, app_classes_faulting):
    eng, home, t = setup
    result, rec = eng.run_segment_remote(home, t, "node1", 1)
    assert result == reference(app_classes_faulting)
    assert rec.latency > 0
    assert rec.capture_time > 0 and rec.restore_time > 0


def test_migration_record_components(setup):
    eng, home, t = setup
    _result, rec = eng.run_segment_remote(home, t, "node1", 1)
    assert rec.transfer_time == pytest.approx(
        rec.state_transfer_time + rec.class_transfer_time)
    assert rec.latency == pytest.approx(
        rec.capture_time + rec.transfer_time + rec.restore_time
        + rec.worker_spawn_time)
    assert rec.state_bytes > 0 and rec.class_bytes > 0


def test_worker_classes_fetched_on_demand(setup):
    eng, home, t = setup
    eng.run_segment_remote(home, t, "node1", 1)
    worker = eng.hosts["node1"]
    # The worker learned App (shipped) and Counter (fetched on demand
    # when the fault brought a Counter object in).
    assert worker.machine.loader.is_loaded("App")
    assert worker.machine.loader.is_loaded("Counter")


def test_object_faults_counted_and_writeback_applied(setup,
                                                     app_classes_faulting):
    eng, home, t = setup
    result, _rec = eng.run_segment_remote(home, t, "node1", 1)
    worker = eng.hosts["node1"]
    assert worker.objman.stats.faults >= 1
    # The worker mutated App.c.hits; write-back must have updated home.
    counter = home.machine.loader.load("App").statics["c"]
    assert counter.fields["hits"] == 10
    assert result == reference(app_classes_faulting)


def test_dirty_cleared_after_writeback(setup):
    eng, home, t = setup
    eng.run_segment_remote(home, t, "node1", 1)
    worker = eng.hosts["node1"]
    assert not worker.objman.dirty
    assert not worker.objman.dirty_statics


def test_timeline_accumulates_phases(setup):
    eng, home, t = setup
    t0 = eng.timeline
    eng.run_segment_remote(home, t, "node1", 1)
    assert eng.timeline > t0
    assert eng.migrations and eng.migrations[-1].dst == "node1"


def test_worker_spawn_cost_when_not_prestarted(app_classes_faulting):
    eng = SODEngine(gige_cluster(2), app_classes_faulting,
                    prestart_workers=False)
    home = eng.host("node0")
    t = eng.spawn(home, "App", "work", [5])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "step")
    _result, rec = eng.run_segment_remote(home, t, "node1", 1)
    assert rec.worker_spawn_time >= eng.sys.worker_spawn


def test_migrate_from_vmti_less_source_rejected(app_classes_faulting):
    from repro.cluster import phone_setup
    eng = SODEngine(phone_setup(), app_classes_faulting)
    phone = eng.host("iphone")
    t = eng.spawn(phone, "App", "work", [5])
    eng.run(phone, t, stop=lambda th: th.frames[-1].code.name == "step")
    with pytest.raises(MigrationError):
        eng.migrate(phone, t, "server", 1)


def test_migrate_to_vmti_less_target_uses_java_restore(app_classes_faulting):
    from repro.cluster import phone_setup
    eng = SODEngine(phone_setup(764), app_classes_faulting)
    server = eng.host("server")
    t = eng.spawn(server, "App", "work", [5])
    eng.run(server, t, stop=lambda th: th.frames[-1].code.name == "step")
    result, rec = eng.run_segment_remote(server, t, "iphone", 1)
    assert result == Machine(
        dict(server.machine.loader._classpath)).call("App", "work", [5])
    phone_host = eng.hosts["iphone"]
    assert phone_host.vmti is None


def test_complete_before_finish_rejected(setup):
    eng, home, t = setup
    worker, worker_thread, _rec = eng.migrate(home, t, "node1", 1)
    with pytest.raises(MigrationError):
        eng.complete_segment(worker, worker_thread, home, t, 1)


def test_multi_frame_segment_roundtrip(app_classes_faulting):
    eng = SODEngine(gige_cluster(2), app_classes_faulting)
    home = eng.host("node0")
    t = eng.spawn(home, "App", "work", [7])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "step")
    # migrate both frames (work + step): nothing left at home but the
    # completion still returns the value to the empty residual.
    result, _rec = eng.run_segment_remote(home, t, "node1", 2)
    assert result == Machine(app_classes_faulting).call("App", "work", [7])


def test_fault_cache_preserves_identity(app_classes_faulting):
    src = """
    class Box { int v; }
    class Pair { Box a; Box b; }
    class T {
      static Pair p;
      static int setup() {
        T.p = new Pair();
        Box shared = new Box();
        shared.v = 4;
        T.p.a = shared;
        T.p.b = shared;
        return T.go();
      }
      static int go() {
        T.p.a.v = T.p.a.v + 1;
        return T.p.b.v;
      }
    }
    """
    classes = preprocess_program(compile_source(src), "faulting")
    ref = Machine(classes).call("T", "setup")
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    t = eng.spawn(home, "T", "setup")
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "go")
    result, _ = eng.run_segment_remote(home, t, "node1", 1)
    # Aliasing must survive migration: p.a and p.b are the same object,
    # so the increment through a is visible through b.
    assert result == ref == 5
