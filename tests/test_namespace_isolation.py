"""Per-request static isolation: class-loader namespaces.

The load-bearing test is the solo-vs-served differential: every
request served from the ``"paper"`` mix — FFT and TSP keep their
working state in mutable statics — must produce exactly the result a
solo run of the same program produces, including requests whose frames
migrate (and re-hop) mid-run.  Before namespaces, interleaving two FFT
requests on one machine corrupted both; these tests prove the
namespace machinery restores solo semantics at every layer: the VM,
the migration engine, the transfer ledger, and the cluster scheduler.
"""

from __future__ import annotations

import pytest

from repro.cluster import gige_cluster, serve_cluster
from repro.errors import MigrationError
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.capture import run_to_msp
from repro.preprocess import preprocess_program
from repro.serve import (ClusterScheduler, FrontDoorPlacement,
                         LoadGenerator, QueueDepthPolicy, serve_mix)
from repro.vm.machine import Machine
from repro.workloads.mixes import (MIXES, RequestMix, RequestSpec,
                                   expected_request_result, needs_isolation,
                                   serve_classpath)

STATIC_SRC = """
class P {
  static int s;
  static str tag;
  static int work(int n) {
    for (int i = 0; i < n; i = i + 1) {
      P.s = P.s + 1;
      P.tag = "n" + P.s;
    }
    return P.s;
  }
}
"""


def _classes(build="faulting"):
    return preprocess_program(compile_source(STATIC_SRC), build)


# -- VM level ------------------------------------------------------------------


def test_namespaces_isolate_static_cells_under_interleaving():
    """Two namespaced threads and a root thread time-slice on ONE
    machine; each sees only its own cells, exactly as three solo runs
    would."""
    m = Machine(_classes("original"))
    ta = m.spawn("P", "work", [5], namespace="a")
    tb = m.spawn("P", "work", [3], namespace="b")
    troot = m.spawn("P", "work", [7])
    threads = [ta, tb, troot]
    while any(not t.finished for t in threads):
        for t in threads:
            if not t.finished:
                m.run(t, quantum=3)
    assert (ta.result, tb.result, troot.result) == (5, 3, 7)
    assert m.loader.load("P").statics["s"] == 7
    assert m.namespace("a").load("P").statics["s"] == 5
    assert m.namespace("b").load("P").statics["tag"] == "n3"


def test_namespace_shares_classpath_but_not_linked_classes():
    m = Machine(_classes("original"))
    ns = m.namespace("x")
    assert ns._classpath is m.loader._classpath  # one classpath object
    cls = ns.load("P")
    assert cls.namespace == "x"
    assert m.loader.load("P") is not cls
    assert m.loader.load("P").namespace is None


def test_drop_namespace_reclaims_state():
    m = Machine(_classes("original"))
    t = m.spawn("P", "work", [2], namespace="gone")
    m.run(t)
    assert m.has_namespace("gone") and m._decoded_ns["gone"]
    m.drop_namespace("gone")
    assert not m.has_namespace("gone")
    assert "gone" not in m._decoded_ns
    # root state untouched
    assert m.loader.load("P").statics["s"] == 0


# -- engine level --------------------------------------------------------------


def _spawn_ns_at_msp(eng, home, n, ns):
    t = home.machine.spawn("P", "work", [n], namespace=ns)
    run_to_msp(home.machine, t)
    return t


def test_namespaced_migration_round_trips_into_home_namespace():
    """A namespaced segment migrates, runs remotely, and its static
    write-back lands in the *home's matching namespace* — root cells on
    both machines stay at defaults."""
    eng = SODEngine(gige_cluster(2), _classes())
    home = eng.host("node0")
    t = _spawn_ns_at_msp(eng, home, 4, "reqX")
    worker, wt, _rec = eng.migrate(home, t, "node1", 1)
    assert wt.namespace == "reqX"
    eng.run(worker, wt)
    eng.complete_segment(worker, wt, home, t, 1)
    assert t.result == 4
    assert home.machine.namespace("reqX").load("P").statics["s"] == 4
    assert home.machine.loader.load("P").statics["s"] == 0
    assert worker.machine.loader.load("P").statics["s"] == 0


def test_delta_markers_never_cross_namespaces():
    """Ledger views are per-namespace: after namespace A ships its
    statics to a worker, namespace B's first capture to the same worker
    must ship fresh values (a cross-namespace marker would restore A's
    cells into B)."""
    eng = SODEngine(gige_cluster(2), _classes())
    home = eng.host("node0")

    ta = _spawn_ns_at_msp(eng, home, 3, "A")
    worker, wta, rec_a = eng.migrate(home, ta, "node1", 1)
    eng.run(worker, wta)
    eng.complete_segment(worker, wta, home, ta, 1)

    tb = _spawn_ns_at_msp(eng, home, 5, "B")
    worker, wtb, rec_b = eng.migrate(home, tb, "node1", 1)
    assert rec_b.cached_statics == 0  # nothing elided across namespaces
    eng.run(worker, wtb)
    eng.complete_segment(worker, wtb, home, tb, 1)
    assert ta.result == 3 and tb.result == 5

    # ...but a *same-namespace* re-offload does elide (the cache still
    # works within one namespace).
    ta2 = _spawn_ns_at_msp(eng, home, 2, "A")
    worker, wta2, rec_a2 = eng.migrate(home, ta2, "node1", 1)
    assert rec_a2.cached_statics > 0
    eng.run(worker, wta2)
    eng.complete_segment(worker, wta2, home, ta2, 1)
    assert ta2.result == 3 + 2  # namespace A's cells carried over


def test_cross_home_colocation_allowed_in_distinct_namespaces():
    """The PR 2 whole-worker refusal is gone: segments of the same
    statics-bearing class from two different homes co-locate on one
    worker when each carries its own namespace — disjoint cells, no
    conflict, both homes get their own values back."""
    eng = SODEngine(gige_cluster(3), _classes())
    homes, threads = [], []
    for i, node in enumerate(("node0", "node1")):
        h = eng.host(node)
        t = h.machine.spawn("P", "work", [3 + i], namespace=f"req{i}")
        run_to_msp(h.machine, t)
        homes.append(h)
        threads.append(t)

    w0, wt0, _ = eng.migrate(homes[0], threads[0], "node2", 1)
    # co-location accepted (same class, different home, different ns)
    w1, wt1, _ = eng.migrate(homes[1], threads[1], "node2", 1)
    assert w0 is w1
    eng.run(w0, wt0)
    eng.run(w1, wt1)
    eng.complete_segment(w0, wt0, homes[0], threads[0], 1)
    eng.complete_segment(w1, wt1, homes[1], threads[1], 1)
    assert threads[0].result == 3 and threads[1].result == 4
    assert homes[0].machine.namespace("req0").load("P").statics["s"] == 3
    assert homes[1].machine.namespace("req1").load("P").statics["s"] == 4


def test_cross_home_colocation_still_refused_in_one_namespace():
    """Sanity: within a single namespace (here, root) the conflict is
    real and the engine still refuses it."""
    eng = SODEngine(gige_cluster(3), _classes())
    homes, threads = [], []
    for node in ("node0", "node1"):
        h = eng.host(node)
        t = h.machine.spawn("P", "work", [2])
        run_to_msp(h.machine, t)
        homes.append(h)
        threads.append(t)
    w, wt, _ = eng.migrate(homes[0], threads[0], "node2", 1)
    with pytest.raises(MigrationError, match="cross-home static"):
        eng.migrate(homes[1], threads[1], "node2", 1)
    eng.run(w, wt)
    eng.complete_segment(w, wt, homes[0], threads[0], 1)


def test_namespaced_rehop_chain_completes_home():
    """home -> node1 -> node2 chain entirely inside one namespace: the
    final write-back lands in the home's namespace and the chain nodes
    keep clean root cells."""
    eng = SODEngine(gige_cluster(3), _classes())
    home = eng.host("node0")
    t = _spawn_ns_at_msp(eng, home, 6, "chain")
    w1, wt, _ = eng.migrate(home, t, "node1", 1)
    eng.run(w1, wt, max_instrs=20)
    if wt.finished:  # pragma: no cover - schedule drift guard
        pytest.skip("segment finished before the hop")
    w2, wt2, _ = eng.rehop_segment(w1, wt, "node2", home)
    assert wt2.namespace == "chain"
    eng.run(w2, wt2)
    eng.complete_segment(w2, wt2, home, t, 1)
    assert t.result == 6
    assert home.machine.namespace("chain").load("P").statics["s"] == 6
    for h in (home, w1, w2):
        assert h.machine.loader.load("P").statics["s"] == 0


# -- the solo-vs-served differential -------------------------------------------


def test_paper_mix_serves_statics_heavy_programs_correctly():
    """The acceptance differential: every request served from the
    ``"paper"`` mix (FFT/TSP included, many in flight, offload enabled)
    returns byte-identical results to a solo run of the same program.
    The report's ``correct`` counter IS that comparison — each served
    result is checked against ``expected_request_result``, a standalone
    legacy-dispatch machine."""
    rep = serve_mix("paper", n_nodes=4, n_requests=20, seed=5)
    assert rep.served == rep.correct == 20
    assert rep.failed == 0 and rep.unserved == 0
    assert rep.stats["isolated"] > 0
    mix = MIXES["paper"]
    assert any(needs_isolation(p) for p in mix.programs())


def test_paper_mix_differential_with_migration_and_rehops():
    """Front-door serving of an FFT/TSP-only stream with chains
    enabled: every offload and every chain hop moves an *isolated*
    request's frames, and every result still matches its solo run —
    the namespace travels with the segment."""
    mix = RequestMix("paper-iso", (
        (RequestSpec("FFT", (4, 8)), 2.0),
        (RequestSpec("TSP", (5,)), 3.0),
        (RequestSpec("TSP", (6,)), 1.0),
    ))
    n = 14
    sched = ClusterScheduler(
        serve_cluster(6), serve_classpath(mix.programs()),
        placement=FrontDoorPlacement(),
        # chain bars lowered so this small deterministic stream
        # actually exercises Fig. 1c hops on isolated requests
        offload=QueueDepthPolicy(max_seg_hops=2,
                                 rehop_threshold_mult=1.0,
                                 rehop_gap_extra=0.0,
                                 rehop_remaining_mult=1.0))
    rep = sched.serve(LoadGenerator(mix, n, seed=3))
    assert rep.served == rep.correct == n
    assert rep.failed == 0 and rep.unserved == 0
    assert rep.stats["isolated"] == n  # every request non-reentrant
    assert rep.stats["sod_offloads"] > 0  # migrated mid-request...
    assert rep.stats["seg_rehops"] > 0  # ...and re-hopped mid-request
    # per-request namespaces were reclaimed on completion everywhere
    assert all(not h.machine._namespaces
               for h in sched.engine.hosts.values())
    # and the load index drained (no phantom load from isolation)
    assert all(c == 0 for c in sched.load_index.count.values())


def test_solo_oracle_agrees_with_registry_results():
    """The serve-size FFT/TSP entry points produce deterministic solo
    results (the oracle the differential leans on is itself stable
    across dispatch modes)."""
    for spec in (RequestSpec("FFT", (4, 8)), RequestSpec("TSP", (6,))):
        want = expected_request_result(spec)
        from repro.workloads.mixes import serve_compiled
        m = Machine(serve_compiled(spec.program))  # fast dispatch
        got = m.call(spec.main[0], spec.main[1], list(spec.args))
        assert got == want


def test_checkpoint_round_trips_namespace():
    """A persisted segment checkpoint keeps its namespace tag — a
    resumed task must land in the same cells it left."""
    from repro.migration import capture_segment
    from repro.migration.persistence import state_from_json, state_to_json

    eng = SODEngine(gige_cluster(2), _classes())
    home = eng.host("node0")
    t = _spawn_ns_at_msp(eng, home, 3, "ckpt")
    state = capture_segment(home.vmti, t, 1, home_node="node0")
    assert state.namespace == "ckpt"
    back = state_from_json(state_to_json(state))
    assert back.namespace == "ckpt"
    assert back.statics == state.statics


# -- on-demand class loads in a namespace sync from the TRUE home --------------

HELPER_SRC = """
class Helper { static int s; }
class P {
  static int work(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      acc = acc + Helper.s;
    }
    return acc;
  }
}
"""


def test_on_demand_class_syncs_from_namespace_true_home():
    """A worker's load_listener is bound to whichever home spawned it
    first; a namespaced segment from a *different* home that links a
    helper class on demand must still receive that home's namespace
    cells (not the spawning home's defaults), and the query must not
    materialize empty namespaces on the wrong machine."""
    classes = preprocess_program(compile_source(HELPER_SRC), "faulting")
    eng = SODEngine(gige_cluster(3), classes)
    h1 = eng.host("node1")
    worker = eng.worker_host("node2", h1)  # listener now bound to node1

    h0 = eng.host("node0")
    t = h0.machine.spawn("P", "work", [3], namespace="reqN")
    # the request's namespace cells live on node0: Helper.s = 42 there
    h0.machine.namespace("reqN").load("Helper").statics["s"] = 42
    run_to_msp(h0.machine, t)
    w, wt, _ = eng.migrate(h0, t, "node2", 1)
    assert w is worker
    eng.run(w, wt)  # links Helper on demand inside namespace "reqN"
    eng.complete_segment(w, wt, h0, t, 1)
    assert t.result == 42 * 3  # node0's cells, not node1's defaults
    # ...and peeking never created the namespace on the wrong home
    assert not h1.machine.has_namespace("reqN")


def test_namespace_define_cannot_replace_shared_classpath():
    """The classpath is one object for every context on the machine;
    a namespace cannot see which siblings (or the root) linked a file,
    so redefining through a namespace must be a hard error — silently
    swapping the shared entry would run divergent code for one class
    name across namespaces."""
    from repro.bytecode.code import ClassFile
    from repro.errors import LinkError

    m = Machine(_classes("original"))
    m.loader.load("P")  # root links P
    ns = m.namespace("x")
    with pytest.raises(LinkError, match="shared classpath"):
        ns.define(ClassFile("P"))
    # additive defines still work and are visible machine-wide
    ns.define(ClassFile("Fresh"))
    assert m.loader.has_classfile("Fresh")
