"""The chaos layer: fault plans, crash recovery, deterministic
record/replay, and the engine cleanup invariants recovery leans on.

The load-bearing property throughout: under any injected fault
schedule, every served response still equals its solo oracle (the
report's ``correct`` count) and no request vanishes — recovery may
re-execute or, with the retry budget exhausted, fail a request, but it
may never corrupt one.  The crash times used below were picked against
the traced offload windows of the deterministic front-door run, so
each test pins a specific recovery path (home-requeue, in-flight loss,
link drop) rather than hoping one fires.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import (ChaosInjector, FaultEvent, FaultPlan, random_plan,
                         replay_trace, run_recorded, trace_divergence,
                         traces_equal)
from repro.chaos.fuzz import fuzz
from repro.cluster import gige_cluster, serve_cluster
from repro.errors import ClusterError
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.capture import run_to_msp
from repro.preprocess import preprocess_program
from repro.serve import LoadIndex, naive_pick, serve_mix
from repro.serve.policies import ShedWhenSaturated
from repro.serve.scheduler import build_serving


def _serve(**kw):
    kw.setdefault("mix", "parallel")
    kw.setdefault("n_nodes", 4)
    kw.setdefault("n_requests", 32)
    return serve_mix(**kw)


def _assert_sound(rep):
    """The invariants no fault schedule may break."""
    assert rep.correct == rep.served, (
        f"{rep.served - rep.correct} incorrect responses")
    assert rep.unserved == 0, f"{rep.unserved} requests vanished"


# -- fault plans ---------------------------------------------------------------


def test_fault_plan_roundtrip_and_ordering():
    plan = FaultPlan([
        FaultEvent(at=0.5, kind="crash", node="node2"),
        FaultEvent(at=0.1, kind="link", src="node0", dst="node1", heal=0.2),
        FaultEvent(at=0.3, kind="straggle", node="node1", factor=4.0,
                   heal=0.1),
    ], seed=9)
    assert [e.at for e in plan] == [0.1, 0.3, 0.5]  # sorted by time
    again = FaultPlan.from_dict(plan.to_dict())
    assert again.to_dict() == plan.to_dict()
    assert again.crashes() == ["node2"]


def test_fault_plan_validation():
    with pytest.raises(ClusterError):
        FaultEvent(at=0.1, kind="meteor", node="node1")
    with pytest.raises(ClusterError):
        FaultEvent(at=-1.0, kind="crash", node="node1")
    names = ["node0", "node1"]
    with pytest.raises(ClusterError):  # unknown node
        FaultPlan([FaultEvent(at=0.1, kind="crash", node="ghost")]) \
            .validate(names, "node0")
    with pytest.raises(ClusterError):  # the front cannot die
        FaultPlan([FaultEvent(at=0.1, kind="crash", node="node0")]) \
            .validate(names, "node0")


def test_random_plan_is_seed_deterministic():
    names = [f"node{i}" for i in range(6)]
    a = random_plan(names, 11, horizon=0.02)
    b = random_plan(names, 11, horizon=0.02)
    c = random_plan(names, 12, horizon=0.02)
    assert a.to_dict() == b.to_dict()
    assert a.to_dict() != c.to_dict()
    assert "node0" not in a.crashes()  # front exempt


def test_injector_rejects_bad_plan():
    sched, _load = build_serving(n_requests=4)
    bad = FaultPlan([FaultEvent(at=0.1, kind="crash", node="node0")])
    with pytest.raises(ClusterError):
        ChaosInjector(sched, bad)
    with pytest.raises(ClusterError):
        sched.crash_node("node0")


# -- crash recovery ------------------------------------------------------------


def test_empty_fault_plan_is_inert():
    """The chaos seams must cost nothing when nothing fails: a run
    with an empty plan is byte-identical to one with no plan."""
    a = _serve()
    b = _serve(fault_plan=FaultPlan([]))
    assert json.dumps(a.to_dict(), sort_keys=True) \
        == json.dumps(b.to_dict(), sort_keys=True)


def test_crash_recovers_queued_and_running_work():
    """Crash a node mid-run: its queued/running/homed requests restart
    elsewhere and every response stays correct."""
    plan = FaultPlan([FaultEvent(at=0.08, kind="crash", node="node2")])
    rep = _serve(fault_plan=plan)
    _assert_sound(rep)
    assert rep.stats["crashes"] == 1
    assert rep.stats["retries"] > 0
    assert rep.per_node["node2"]["served"] == 0 or \
        rep.per_node["node2"]["served"] < rep.submitted  # it died early


def test_crash_reexecutes_remote_segments_from_home_state():
    """Crash the worker while migrated segments are restored on it (the
    front-door run has segments 32-34 on node2 in [0.19, 0.245]): each
    parent's home thread kept its full stack and no effects were ever
    flushed, so recovery requeues the parent at home — no from-scratch
    retry, no double-applied writes, same answers."""
    plan = FaultPlan([FaultEvent(at=0.21, kind="crash", node="node2")])
    rep = _serve(placement="front-door", fault_plan=plan)
    _assert_sound(rep)
    assert rep.stats["seg_recoveries"] > 0
    assert rep.stats["home_requeues"] > 0
    assert rep.failed == 0


def test_crash_during_bulk_delivery_loses_message_not_requests():
    """Crash the target while the bulk offload message is on the wire:
    the delivery fails, the eagerly-restored worker threads die with
    the machine, and every parent re-executes from home state."""
    plan = FaultPlan([FaultEvent(at=0.1851, kind="crash", node="node2")])
    rep = _serve(placement="front-door", fault_plan=plan)
    _assert_sound(rep)
    assert rep.stats["delivery_drops"] >= 1
    assert rep.stats["dropped_messages"] >= 1
    assert rep.stats["home_requeues"] >= 1


def test_link_failure_retries_then_requeues_at_origin():
    """Cut the front's link to node2 during the offload window: bulk
    messages drop, the bounded retransmission budget burns down, and
    undeliverable work requeues at its origin — correctness holds."""
    plan = FaultPlan([FaultEvent(at=0.1845, kind="link",
                                 src="node0", dst="node2", heal=0.05)])
    rep = _serve(placement="front-door", fault_plan=plan)
    _assert_sound(rep)
    assert rep.stats["dropped_messages"] >= 1
    assert rep.stats["delivery_retries"] >= 1
    assert rep.stats["seg_recoveries"] >= 1


def test_partition_and_heal_serves_everything():
    plan = FaultPlan([FaultEvent(at=0.04, kind="partition",
                                 nodes=("node2", "node3"), heal=0.08)])
    rep = _serve(fault_plan=plan)
    _assert_sound(rep)
    assert rep.stats["link_failures"] == 1


def test_straggler_slows_then_recovers():
    """An 8x straggler mid-run: nothing is lost, the run just takes
    longer — and the speed scale is restored after the heal."""
    base = _serve()
    plan = FaultPlan([FaultEvent(at=0.02, kind="straggle", node="node1",
                                 factor=8.0, heal=0.1)])
    sched, load = build_serving(mix="parallel", n_nodes=4, n_requests=32,
                                fault_plan=plan)
    rep = sched.serve(load)
    _assert_sound(rep)
    assert rep.stats["straggles"] == 1
    assert rep.makespan >= base.makespan
    assert sched.engine.hosts["node1"].machine._speed == \
        pytest.approx(sched.cluster.node("node1").spec.speed_factor)


def test_chaos_run_is_deterministic():
    plan = FaultPlan([FaultEvent(at=0.08, kind="crash", node="node2"),
                      FaultEvent(at=0.02, kind="link", src="node0",
                                 dst="node1", heal=0.03)])
    a = _serve(placement="front-door", fault_plan=plan)
    b = _serve(placement="front-door", fault_plan=plan)
    assert json.dumps(a.to_dict(), sort_keys=True) \
        == json.dumps(b.to_dict(), sort_keys=True)


def test_crashed_node_is_never_an_offload_target():
    """After a crash, no placement, handoff, or offload decision may
    name the dead node again (stale gossip entries purge lazily)."""
    plan = FaultPlan([FaultEvent(at=0.05, kind="crash", node="node3")])
    sched, load = build_serving(mix="parallel", n_nodes=8, n_requests=48,
                                placement="front-door", fault_plan=plan)
    rep = sched.serve(load)
    _assert_sound(rep)
    assert "node3" in sched.dead
    # nothing was enqueued there after the crash: its store is empty
    # (bar the shutdown sentinel) and nothing new started there
    items = [r for r in sched.stores["node3"].items
             if not isinstance(r, object.__class__)]
    assert all(getattr(r, "rid", None) is None for r in items)
    for r in sched.finished:
        if r.state == "done" and r.finished_at > 0.05:
            assert r.host_node != "node3" or r.finished_at <= 0.05


# -- record / replay -----------------------------------------------------------


def test_fault_free_trace_replays_byte_identically():
    t1, rep1 = run_recorded({"n_requests": 16})
    t2, rep2 = replay_trace(t1)
    assert traces_equal(t1, t2)
    assert trace_divergence(t1, t2) is None
    assert rep1.served == rep2.served == 16


def test_chaos_trace_replays_byte_identically():
    """The headline: a run with crashes, recoveries, retries, and
    backoffs re-executes from its recorded config with byte-identical
    events and virtual timestamps."""
    t1, rep1 = run_recorded({"chaos_seed": 42, "placement": "front-door"})
    assert rep1.stats["crashes"] >= 1
    t2, _rep2 = replay_trace(t1)
    assert traces_equal(t1, t2)
    # the trace is self-contained JSON: a disk roundtrip changes nothing
    t3, _ = replay_trace(json.loads(json.dumps(t1)))
    assert traces_equal(t1, t3)


def test_trace_divergence_pinpoints_first_difference():
    t1, _ = run_recorded({"n_requests": 8})
    mutated = json.loads(json.dumps(t1))
    mutated["events"][3]["t"] += 1e-9
    assert not traces_equal(t1, mutated)
    assert "event 3" in trace_divergence(t1, mutated)


def test_trace_rejects_unknown_config_and_version():
    with pytest.raises(ValueError):
        run_recorded({"warp_factor": 9})
    t1, _ = run_recorded({"n_requests": 8})
    bad = dict(t1, version=99)
    with pytest.raises(ValueError):
        replay_trace(bad)


def test_cli_record_then_replay_roundtrip(tmp_path, capsys):
    """`serve --chaos S --record F` then `serve --replay F` exits 0 and
    reports byte-identity."""
    from repro.__main__ import main as cli_main
    path = str(tmp_path / "trace.json")
    assert cli_main(["serve", "--chaos", "42", "--placement", "front-door",
                     "--record", path]) == 0
    assert cli_main(["serve", "--replay", path]) == 0
    out = capsys.readouterr().out
    assert "byte-identical" in out


# -- the fault-schedule fuzzer -------------------------------------------------


def test_fuzz_random_schedules_match_solo_oracles():
    out = fuzz(4, n_requests=16)
    assert out["n_runs"] == 4
    assert out["crashes"] >= 4  # every seed crashes someone
    assert out["violations"] == [], out["violations"]


# -- engine cleanup invariants recovery relies on ------------------------------


_SRC = """
class D { int v; }
class P {
  static int s1;
  static int work(D d, int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + d.v + i; }
    P.s1 = P.s1 + n;
    return acc;
  }
  static int main(int n) { return 0; }
}
"""


def _engine():
    classes = preprocess_program(compile_source(_SRC), "faulting")
    return SODEngine(gige_cluster(2), classes)


def test_midrestore_failure_rolls_back_ledger_staging(monkeypatch):
    """If the restore dies partway, the capture's staged ledger entries
    must never commit: the worker does not hold the shipped values, so
    a later delta capture eliding them would corrupt the worker."""
    eng = _engine()
    home = eng.host("node0")
    d = home.machine.heap.new_instance(home.machine.loader.load("D"))
    # one clean round trip populates the ledger
    t = eng.spawn(home, "P", "work", [d, 5])
    run_to_msp(home.machine, t)
    worker, wt, _ = eng.migrate(home, t, "node1", 1)
    eng.run(worker, wt)
    eng.complete_segment(worker, wt, home, t, 1)
    led = eng.ledger("node0", "node1")
    epoch_before = led.epoch
    statics_before = dict(led.statics)
    # mutate home statics so the next capture stages a fresh entry...
    home.machine.loader.load("P").statics["s1"] = 777
    # ...and make that restore die partway
    def boom(*a, **kw):
        raise MigrationError("restore interrupted")
    from repro.errors import MigrationError
    monkeypatch.setattr(eng, "_restore_segment", boom)
    t2 = eng.spawn(home, "P", "work", [d, 5])
    run_to_msp(home.machine, t2)
    with pytest.raises(MigrationError):
        eng.migrate(home, t2, "node1", 1)
    assert led.epoch == epoch_before  # commit never ran
    assert dict(led.statics) == statics_before
    # with the fault gone the same migration succeeds and converges
    monkeypatch.undo()
    worker, wt2, _ = eng.migrate(home, t2, "node1", 1)
    assert worker.machine.loader.load("P").statics["s1"] == 777
    eng.run(worker, wt2)
    eng.complete_segment(worker, wt2, home, t2, 1)


def test_abandon_midwriteback_discards_dirty_and_releases_epoch():
    """Abandoning a segment that already ran (its write-back will never
    be applied): the worker's dirty statics are dropped on both ends —
    ledger entries invalidated, home cells untouched — the thread's
    fetch-cache epoch is released, and the idle barrier disarms."""
    eng = _engine()
    home = eng.host("node0")
    d = home.machine.heap.new_instance(home.machine.loader.load("D"))
    s1_home = home.machine.loader.load("P").statics["s1"]
    t = eng.spawn(home, "P", "work", [d, 5])
    run_to_msp(home.machine, t)
    worker, wt, _ = eng.migrate(home, t, "node1", 1)
    eng.run(worker, wt)  # segment ran: P.s1 mutated on the worker only
    assert worker.machine.loader.load("P").statics["s1"] != s1_home
    eng.abandon_segment(worker, wt)
    # home never saw the write (discarded atomically with the segment)
    assert home.machine.loader.load("P").statics["s1"] == s1_home
    # ledger forgot the forked cell and the epoch bookkeeping is clean
    led = eng.ledger("node0", "node1")
    assert ("P", "s1") not in led.statics
    assert wt not in worker.objman.thread_home
    assert not worker.objman.dirty_statics
    # barrier disarmed once idle (no active segments left)
    assert worker.machine.on_write is not worker.objman._barrier
    # the home thread is recoverable: it still runs to the same answer
    eng.run(home, t)
    solo = eng.spawn(home, "P", "work", [d, 5])
    # d.v was never mutated by the program, so re-execution matches
    eng.run(home, solo)
    assert t.result == solo.result


# -- the load index under node loss --------------------------------------------


def test_retired_node_leaves_index_and_picks():
    """Retiring a node: counters stay exact, stale heap entries purge
    lazily, and no pick (fast path or naive oracle) ever names it."""
    cluster = serve_cluster(8, rack_size=4)
    index = LoadIndex(cluster, staleness=0.0)
    for i, n in enumerate(cluster.names()):
        index.add(n, i % 3)
    index.retire("node1")  # lightly loaded: would otherwise win picks
    index.retire("node4")
    for n in ("node1", "node4"):
        assert not index.is_live(n)
    for src in cluster.names():
        if not index.is_live(src):
            continue
        got = index.pick_underloaded(0.0, src, index.load(src, extra=1), 0.5)
        want = naive_pick(index, src, index.load(src, extra=1), 0.5)
        assert got == want
        assert got not in ("node1", "node4")
    # late adds on a retired node keep arithmetic but never re-enter
    index.add("node1", +1)
    got = index.pick_underloaded(0.0, "node0", 99.0, 0.1)
    assert got != "node1"


def test_shed_when_saturated_ignores_dead_rack():
    """Admission control with a fully-dead rack: the digest's stale
    summary must not make the front think capacity exists there (or
    shed against it) — saturation is judged on live racks only."""
    cluster = serve_cluster(8, rack_size=4)
    index = LoadIndex(cluster, staleness=0.0)
    rack1 = [n for n in cluster.names()
             if cluster.rack_of(n) != cluster.rack_of("node0")]
    # rack0 is heavily loaded; rack1 dies entirely
    for n in cluster.names():
        if n not in rack1:
            index.add(n, 5)
    for n in rack1:
        index.retire(n)
    assert index.saturated(0.0, 3.0)  # dead rack is no vent
    # a single survivor in rack1 un-saturates the cluster again
    cluster2 = serve_cluster(8, rack_size=4)
    index2 = LoadIndex(cluster2, staleness=0.0)
    for n in cluster2.names():
        if cluster2.rack_of(n) == cluster2.rack_of("node0"):
            index2.add(n, 5)
    for n in rack1[:-1]:
        index2.retire(n)
    assert not index2.saturated(0.0, 3.0)


def test_serving_with_admission_survives_node_loss():
    """End to end: ShedWhenSaturated + a crash — the run completes,
    answers stay correct, and anything shed is accounted, not lost."""
    plan = FaultPlan([FaultEvent(at=0.03, kind="crash", node="node5")])
    rep = serve_mix(mix="parallel", n_nodes=8, n_requests=48,
                    interarrival=1e-4,
                    admission=ShedWhenSaturated(max_node_load=16.0),
                    fault_plan=plan)
    _assert_sound(rep)
    assert rep.served + rep.failed + rep.stats["shed"] == rep.submitted


# -- chaos x multi-tenant overload ---------------------------------------------


def test_chaos_plus_overload_fuzz():
    """The combined disaster: per-tenant open-loop Poisson overload
    *while* the fault schedule kills nodes.  Capacity collapses under
    an offered load that never lets up — every fuzz invariant must
    still hold (oracle-correct, nothing lost, sheds honest, tenant
    accounting balanced)."""
    from repro.serve import parse_tenants
    out = fuzz(4, mix="parallel", n_requests=24,
               admission="adaptive", shed_at=6.0, slo=0.05,
               tenants=parse_tenants("gold:w=2,free:p=1:r=4"),
               arrival_rate=400.0)
    assert out["violations"] == []
    assert out["crashes"] > 0                      # faults actually fired
    assert any(r["served"] < 24 for r in out["runs"])  # overload actually bit


def test_dead_rack_sheds_are_attributed_not_lost():
    """A whole rack dies under tenant overload: requests refused
    because the dead rack shrank capacity are classified ``shed`` —
    terminal, never started, no result — and the per-tenant books
    still balance."""
    from repro.serve import AdaptiveShed, parse_tenants
    cluster_nodes = [f"node{i}" for i in range(4, 8)]
    plan = FaultPlan([FaultEvent(at=0.002, kind="crash", node=n)
                      for n in cluster_nodes])
    sched, load = build_serving(
        mix="parallel", n_nodes=8, n_requests=48, rack_size=4,
        admission=AdaptiveShed(slo=0.02, init_load=4.0),
        tenants=parse_tenants("gold:w=2,free:p=1:r=6"),
        arrival_rate=600.0, fault_plan=plan)
    rep = sched.serve(load)
    assert rep.correct == rep.served and rep.unserved == 0
    assert rep.stats["shed"] > 0
    shed = [r for r in sched.requests if r.state == "shed"]
    for r in shed:
        assert r.started_at is None and r.result is None
        assert r.thread is None and r.finished_at is not None
    assert len(shed) == rep.stats["shed"]
    for name, block in rep.tenants.items():
        assert block["submitted"] == block["admitted"] + block["shed"]
    assert not any(sched.load_index.tenant_count.values())


def test_record_replay_with_tenants_and_chaos():
    """Tenant QoS config rides the trace: a recorded run with tenants,
    Poisson arrivals, adaptive admission *and* a fault schedule
    replays byte-identically, and the summary attributes every request
    to its tenant."""
    cfg = {"mix": "parallel", "n_nodes": 4, "n_requests": 24, "seed": 5,
           "tenants": [{"name": "gold", "weight": 2.0, "priority": 0,
                        "slo": None, "pool": 4, "rate_factor": 1.0},
                       {"name": "free", "weight": 1.0, "priority": 1,
                        "slo": None, "pool": 2, "rate_factor": 3.0}],
           "arrival_rate": 300.0, "admission": "adaptive", "slo": 0.05,
           "chaos_seed": 11}
    t1, rep1 = run_recorded(cfg)
    t2, rep2 = replay_trace(t1)
    assert trace_divergence(t1, t2) is None
    assert traces_equal(t1, t2)
    rows = t1["summary"]["requests"]
    assert {r["tenant"] for r in rows} == {"gold", "free"}
    assert len(rows) == 24
