"""Byte-stability goldens for the cross-process wire format.

The real-parallel backend ships SOD captures, class-digest tokens, and
ledger ``@cached`` markers between OS processes as
:mod:`repro.runtime.wire` bytes.  Two builds of this repo must agree
on those bytes — an old worker and a new control plane may meet across
a rolling restart, and the class-token scheme is *content-addressed*,
so a silent codec change would make every token mismatch look like
classpath divergence.  These fixtures pin the encoding: each golden is
the hex dump of a representative value, compared byte-for-byte.

To re-bless after an *intentional* format change (bump the wire magic
when you do)::

    REPRO_BLESS_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/test_wire_goldens.py -q
"""

from __future__ import annotations

import os
import textwrap
from pathlib import Path

import pytest

from repro.migration.state import (CACHED_TAG, CapturedFrame, CapturedState,
                                   FrameMarker, fingerprint)
from repro.runtime import wire

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

BLESS = os.environ.get("REPRO_BLESS_GOLDENS") == "1"


def _value_zoo():
    """One value covering every tag and the canonical-form edge cases
    (zero int, negative int, -0.0, empty containers, tuple dict keys)."""
    return (
        None, True, False,
        0, 1, -1, 255, -256, 2 ** 64, -(2 ** 64),
        0.0, -0.0, 1.5, -2.75e300,
        "", "ascii", "snowman ☃", "astral \U0001f40d",
        b"", b"\x00\xff\x7f",
        (), (1, (2, (3,))),
        [], [1, "two", 3.0],
        {}, {("Cls", "field"): 42, "plain": [True, None]},
    )


def _sample_capture() -> CapturedState:
    """A hand-built shipment exercising every shipment feature: full
    frames, a delta-elided :class:`FrameMarker`, object descriptors,
    an ``@cached`` statics marker, and a namespace tag."""
    caller = CapturedFrame(
        class_name="Fib", method_name="run", pc=4, raw_pc=7,
        locals=[10, ("@ref", 3, "node0"), None])
    top = CapturedFrame(
        class_name="Fib", method_name="fib", pc=2, raw_pc=2,
        locals=[9, 34, 1.5, "memo"])
    return CapturedState(
        frames=[FrameMarker(fp=fingerprint(caller)), top],
        statics={("Fib", "calls"): 1024,
                 ("Fib", "table"): ("@ref", 11, "node1"),
                 ("Fib", "limit"): (CACHED_TAG, fingerprint(90))},
        class_names=["Fib"], home_node="node0", return_to="node0",
        thread_name="req#5:Fib(9,)", namespace="rq5",
        cached_statics=1, cached_frames=1, saved_bytes=123)


def _check_golden(name: str, data: bytes) -> None:
    golden = GOLDEN_DIR / f"wire_{name}.hex"
    text = "\n".join(textwrap.wrap(data.hex(), 64)) + "\n"
    if BLESS:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden.write_text(text)
        pytest.skip(f"re-blessed {golden.name}")
    assert golden.exists(), (
        f"missing golden {golden}; generate with REPRO_BLESS_GOLDENS=1")
    expected = golden.read_text()
    assert text == expected, (
        f"wire bytes for {name} diverged from the pinned format "
        f"(old workers would reject new frames); if intentional, "
        f"re-bless and bump the format magic")


def test_value_zoo_bytes_are_pinned():
    _check_golden("values", wire.encode(_value_zoo()))


def test_value_zoo_round_trips():
    zoo = _value_zoo()
    assert wire.decode(wire.encode(zoo)) == zoo


def test_captured_state_bytes_are_pinned():
    _check_golden("capture", wire.capture_to_wire(_sample_capture()))


def test_captured_state_round_trips():
    state = _sample_capture()
    back = wire.capture_from_wire(wire.capture_to_wire(state))
    assert back == state  # dataclass equality: frames, statics, counters


def test_cached_marker_survives_the_wire_byte_exactly():
    """The receiver fingerprint-checks ``@cached`` markers; a codec that
    perturbed them (e.g. int widening) would break delta shipment."""
    state = _sample_capture()
    back = wire.capture_from_wire(wire.capture_to_wire(state))
    marker = back.statics[("Fib", "limit")]
    assert marker == (CACHED_TAG, fingerprint(90))
    assert isinstance(back.frames[0], FrameMarker)
    assert back.frames[0].fp == state.frames[0].fp


def test_class_token_bytes_are_pinned():
    _check_golden("token", wire.class_token("Fib", b"payload-bytes-v1"))


def test_class_token_is_content_addressed():
    t = wire.class_token("Fib", b"payload")
    assert len(t) == wire.CLASS_TOKEN_LEN
    assert t == wire.class_token("Fib", b"payload")
    assert t != wire.class_token("Fib", b"payload2")
    assert t != wire.class_token("Fib2", b"payload")
    # Name/payload boundary is length-framed, not concatenation-ambiguous.
    assert wire.class_token("AB", b"C") != wire.class_token("A", b"BC")


def test_real_classfile_tokens_match_across_builders():
    """Two independently built classpaths for the same mix derive
    identical tokens — the invariant cross-process migration rests on."""
    from repro.runtime.real import _classfile_payload
    from repro.workloads.mixes import MIXES, serve_classpath

    names = MIXES["paper"].programs()
    a = {c: wire.class_token(c, _classfile_payload(cf))
         for c, cf in serve_classpath(names).items()}
    b = {c: wire.class_token(c, _classfile_payload(cf))
         for c, cf in serve_classpath(names).items()}
    assert a == b and a


def test_decode_rejects_malformed_frames():
    with pytest.raises(wire.WireError):
        wire.decode(b"")
    with pytest.raises(wire.WireError):
        wire.decode(b"Z")
    with pytest.raises(wire.WireError):
        wire.decode(wire.encode(1) + b"\x00")  # trailing garbage
    with pytest.raises(wire.WireError):
        wire.decode(b"S\x00\x00\x00\x05ab")  # truncated payload
    with pytest.raises(wire.WireError):
        wire.encode(object())
    with pytest.raises(wire.WireError):
        wire.capture_from_wire(wire.encode(("not", "a", "capture")))


def test_wire_goldens_directory_is_complete():
    if BLESS:
        pytest.skip("blessing run")
    for name in ("values", "capture", "token"):
        path = GOLDEN_DIR / f"wire_{name}.hex"
        assert path.exists() and path.stat().st_size > 0, path
