"""Discrete-event kernel tests."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Resource, Store


def test_timeout_advances_clock():
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(2.5)
        fired.append(env.now)

    env.run_process(proc())
    assert fired == [2.5]
    assert env.now == 2.5


def test_timeout_carries_value():
    env = Environment()

    def proc():
        v = yield env.timeout(1.0, value="hello")
        return v

    assert env.run_process(proc()) == "hello"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_same_time_events_fire_in_scheduling_order():
    env = Environment()
    order = []

    def make(name):
        def proc():
            yield env.timeout(1.0)
            order.append(name)
        return proc

    env.process(make("a")())
    env.process(make("b")())
    env.process(make("c")())
    env.run()
    assert order == ["a", "b", "c"]


def test_nested_processes_sequence():
    env = Environment()
    log = []

    def child():
        yield env.timeout(1)
        log.append(("child", env.now))
        return 42

    def parent():
        v = yield env.process(child())
        log.append(("parent", env.now, v))

    env.run_process(parent())
    assert log == [("child", 1.0), ("parent", 1.0, 42)]


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc():
        evs = [env.timeout(1, "a"), env.timeout(3, "b"), env.timeout(2, "c")]
        vals = yield env.all_of(evs)
        return (env.now, vals)

    now, vals = env.run_process(proc())
    assert now == 3.0
    assert vals == ["a", "b", "c"]


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc():
        vals = yield env.all_of([])
        return vals

    assert env.run_process(proc()) == []


def test_any_of_returns_first():
    env = Environment()

    def proc():
        winner = yield env.any_of([env.timeout(5, "slow"),
                                   env.timeout(1, "fast")])
        return (env.now, winner)

    now, (idx, val) = env.run_process(proc())
    assert now == 1.0
    assert (idx, val) == (1, "fast")


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_callback_on_already_fired_event_runs_now():
    env = Environment()
    ev = env.event()
    ev.succeed("x")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    assert got == ["x"]


def test_run_until_stops_clock():
    env = Environment()

    def proc():
        yield env.timeout(10)

    env.process(proc())
    env.run(until=4.0)
    assert env.now == 4.0


def test_yielding_non_event_raises():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_run_process_detects_deadlock():
    env = Environment()

    def stuck():
        yield env.event()  # never triggered

    with pytest.raises(SimulationError):
        env.run_process(stuck())


def test_resource_serializes_two_holders():
    env = Environment()
    res = Resource(env, capacity=1)
    spans = []

    def worker(name, hold):
        yield res.request()
        start = env.now
        yield env.timeout(hold)
        res.release()
        spans.append((name, start, env.now))

    env.process(worker("a", 2.0))
    env.process(worker("b", 1.0))
    env.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 3.0)]


def test_resource_capacity_two_runs_parallel():
    env = Environment()
    res = Resource(env, capacity=2)
    done = []

    def worker(name):
        yield res.request()
        yield env.timeout(1.0)
        res.release()
        done.append((name, env.now))

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    assert done == [("a", 1.0), ("b", 1.0)]


def test_resource_release_without_request_raises():
    env = Environment()
    res = Resource(env)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_bad_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_schedule_into_past_rejected():
    env = Environment()
    env._schedule(5.0, lambda _: None, None)
    env.run()
    with pytest.raises(SimulationError):
        env._schedule(1.0, lambda _: None, None)


def test_resource_many_waiters_fifo_stress():
    """Thousands of queued requests drain strictly FIFO; the deque-based
    wait queue keeps each wakeup O(1) (a list.pop(0) queue is O(n) per
    release and quadratic overall)."""
    env = Environment()
    res = Resource(env, capacity=1)
    n = 5000
    order = []

    def worker(i):
        yield res.request()
        yield env.timeout(0.001)
        res.release()
        order.append(i)

    for i in range(n):
        env.process(worker(i))
    env.run()
    assert order == list(range(n))
    assert env.now == pytest.approx(n * 0.001)
    assert not res._waiters and res.in_use == 0  # fully drained


# -- Store (FIFO item queue) ---------------------------------------------------

def test_store_put_before_get_preserves_fifo():
    env = Environment()
    store = Store(env)
    for i in range(4):
        store.put(i)
    assert len(store) == 4
    got = []

    def consumer():
        while True:
            item = yield store.get()
            if item is None:
                break
            got.append(item)

    store.put(None)
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2, 3]


def test_store_blocked_getters_wake_fifo():
    env = Environment()
    store = Store(env)
    served = []

    def consumer(name):
        item = yield store.get()
        served.append((name, item, env.now))

    def producer():
        yield env.timeout(1.0)
        store.put("x")
        yield env.timeout(1.0)
        store.put("y")

    env.process(consumer("a"))
    env.process(consumer("b"))
    env.process(producer())
    env.run()
    # oldest getter gets the first item, at the producer's time
    assert served == [("a", "x", 1.0), ("b", "y", 2.0)]


def test_store_remove_steals_only_queued_items():
    env = Environment()
    store = Store(env)
    store.put("keep")
    store.put("steal")
    assert store.remove("steal")
    assert not store.remove("steal")  # already gone
    assert store.get().value == "keep"


# -- scale hardening: trampolined resume + batched puts ----------------------


def test_process_drains_deep_ready_queue_without_recursion():
    """A consumer looping over an already-full store used to recurse
    once per ready item (each yielded event fired synchronously inside
    the previous resume): draining thousands of items must use O(1)
    Python stack — a 64-node scheduler backlog is exactly this shape."""
    env = Environment()
    store = Store(env)
    n = 5000  # comfortably past the default recursion limit
    for i in range(n):
        store.put(i)
    got = []

    def consumer():
        for _ in range(n):
            item = yield store.get()
            got.append(item)

    env.run_process(consumer())
    assert got == list(range(n))


def test_store_put_many_wakes_getters_in_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(k):
        item = yield store.get()
        got.append((k, item))

    for k in range(3):
        env.process(consumer(k))
    env.run()  # both consumers now blocked
    store.put_many(["a", "b", "c", "d", "e"])
    env.run()
    # oldest getter gets the oldest item; the remainder queues
    assert got == [(0, "a"), (1, "b"), (2, "c")]
    assert list(store.items) == ["d", "e"]
    assert len(store) == 2


def test_store_put_many_into_empty_store_just_queues():
    env = Environment()
    store = Store(env)
    store.put_many([1, 2, 3])
    assert list(store.items) == [1, 2, 3]
