"""MiniLang end-to-end semantics: compile and execute on the VM.

These are the language's acceptance tests; every construct is checked by
running it (on the original build unless noted).
"""

import pytest

from repro.errors import CompileError
from repro.vm import UncaughtGuestException

from tests.helpers import compile_and_run


def run(src, cls="T", method="f", args=None, build="original"):
    return compile_and_run(src, cls, method, args, build)[0]


def test_arithmetic_and_precedence():
    assert run("class T { static int f() { return 2 + 3 * 4 - 1; } }") == 13


def test_int_division_truncates_toward_zero():
    assert run("class T { static int f() { return -7 / 2; } }") == -3
    assert run("class T { static int f() { return 7 / -2; } }") == -3


def test_int_modulo_java_sign():
    assert run("class T { static int f() { return -7 % 3; } }") == -1
    assert run("class T { static int f() { return 7 % -3; } }") == 1


def test_float_arithmetic():
    assert run("class T { static float f() { return 1.5 * 4.0; } }") == 6.0


def test_division_by_zero_raises_guest_exception():
    src = """class T { static int f() {
      try { int x = 1 / 0; return x; }
      catch (ArithmeticException e) { return 99; } } }"""
    assert run(src) == 99


def test_uncaught_guest_exception_surfaces():
    with pytest.raises(UncaughtGuestException):
        run("class T { static int f() { return 1 / 0; } }")


def test_comparisons_and_bools():
    assert run("class T { static bool f() { return 3 <= 3; } }") is True
    assert run("class T { static bool f() { return 3 != 3; } }") is False
    assert run("class T { static bool f() { return !(1 > 2); } }") is True


def test_short_circuit_and_does_not_eval_rhs():
    src = """class T {
      static int hits;
      static bool bump() { T.hits = T.hits + 1; return true; }
      static int f() {
        bool r = false && T.bump();
        return T.hits;
      } }"""
    assert run(src) == 0


def test_short_circuit_or_skips_rhs():
    src = """class T {
      static int hits;
      static bool bump() { T.hits = T.hits + 1; return true; }
      static int f() {
        bool r = true || T.bump();
        return T.hits;
      } }"""
    assert run(src) == 0


def test_string_concat_and_mixed():
    assert run('class T { static str f() { return "a" + "b"; } }') == "ab"
    assert run('class T { static str f() { return "n=" + 5; } }') == "n=5"


def test_while_and_for_loops():
    src = """class T { static int f(int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) { s = s + i; }
      int j = 0;
      while (j < 3) { s = s + 100; j = j + 1; }
      return s;
    } }"""
    assert run(src, args=[5]) == 10 + 300


def test_break_and_continue():
    src = """class T { static int f() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) {
        if (i % 2 == 0) { continue; }
        if (i > 6) { break; }
        s = s + i;
      }
      return s;
    } }"""
    assert run(src) == 1 + 3 + 5


def test_nested_loops_with_break():
    src = """class T { static int f() {
      int c = 0;
      for (int i = 0; i < 3; i = i + 1) {
        for (int j = 0; j < 10; j = j + 1) {
          if (j == 2) { break; }
          c = c + 1;
        }
      }
      return c;
    } }"""
    assert run(src) == 6


def test_objects_fields_methods():
    src = """
    class Point { int x; int y;
      int sum() { return x + this.y; }
      void set(int a, int b) { x = a; y = b; }
    }
    class T { static int f() {
      Point p = new Point();
      p.set(3, 4);
      return p.sum();
    } }"""
    assert run(src) == 7


def test_constructor_init_method():
    src = """
    class Box { int v; void init(int v0) { v = v0; } }
    class T { static int f() { Box b = new Box(7); return b.v; } }"""
    assert run(src) == 7


def test_new_with_args_but_no_init_rejected():
    with pytest.raises(CompileError):
        run("""class Box { int v; }
               class T { static int f() { Box b = new Box(7); return 1; } }""")


def test_inheritance_fields_and_virtual_dispatch():
    src = """
    class Animal { int legs; int kind() { return 0; } }
    class Dog extends Animal { int kind() { return 4; } }
    class T { static int f() {
      Dog d = new Dog();
      d.legs = 4;
      Animal a = d;
      return a.kind() + a.legs;
    } }"""
    assert run(src) == 8


def test_inherited_method_lookup():
    src = """
    class Base { int ten() { return 10; } }
    class Derived extends Base { }
    class T { static int f() { Derived d = new Derived(); return d.ten(); } }"""
    assert run(src) == 10


def test_static_fields_inherited_resolution():
    src = """
    class Base { static int shared; }
    class Derived extends Base { static int f() { Base.shared = 3; return Derived.g(); }
      static int g() { return Base.shared; } }
    class T { static int f() { return Derived.f(); } }"""
    assert run(src) == 3


def test_arrays_read_write_length():
    src = """class T { static int f() {
      int[] xs = new int[4];
      xs[0] = 5; xs[3] = 7;
      return xs[0] + xs[3] + Sys.len(xs);
    } }"""
    assert run(src) == 16


def test_array_default_values():
    src = """class T { static int f() {
      int[] xs = new int[3];
      float[] fs = new float[2];
      if (fs[1] == 0.0 && xs[2] == 0) { return 1; }
      return 0;
    } }"""
    assert run(src) == 1


def test_array_out_of_bounds_guest_exception():
    src = """class T { static int f() {
      int[] xs = new int[2];
      try { return xs[5]; }
      catch (IndexOutOfBoundsException e) { return -1; } } }"""
    assert run(src) == -1


def test_ref_array_of_objects():
    src = """
    class Cell { int v; }
    class T { static int f() {
      Cell[] cells = new Cell[3];
      for (int i = 0; i < 3; i = i + 1) {
        Cell c = new Cell();
        c.v = i * 10;
        cells[i] = c;
      }
      return cells[0].v + cells[1].v + cells[2].v;
    } }"""
    assert run(src) == 30


def test_null_field_access_raises_npe():
    src = """
    class Box { int v; }
    class T { static int f() {
      Box b = null;
      try { return b.v; }
      catch (NullPointerException e) { return 42; } } }"""
    assert run(src) == 42


def test_exception_propagates_through_frames():
    src = """
    class T {
      static int deep(int n) {
        if (n == 0) { throw new RuntimeException(); }
        return T.deep(n - 1);
      }
      static int f() {
        try { return T.deep(5); }
        catch (RuntimeException e) { return 7; }
      } }"""
    assert run(src) == 7


def test_catch_matches_superclass():
    src = """class T { static int f() {
      try { throw new NullPointerException(); }
      catch (RuntimeException e) { return 1; } } }"""
    assert run(src) == 1


def test_catch_does_not_match_sibling():
    src = """class T { static int f() {
      try {
        try { throw new ArithmeticException(); }
        catch (NullPointerException e) { return 1; }
      } catch (ArithmeticException e) { return 2; }
    } }"""
    assert run(src) == 2


def test_user_exception_classes():
    src = """
    class AppError extends Exception { }
    class T { static int f() {
      try { throw new AppError(); }
      catch (AppError e) { return 5; } } }"""
    assert run(src) == 5


def test_recursion_fib():
    src = """class T { static int f(int n) {
      if (n < 2) { return n; }
      return T.f(n - 1) + T.f(n - 2);
    } }"""
    assert run(src, args=[12]) == 144


def test_void_method_and_bare_call():
    src = """class T {
      static int acc;
      static void add(int v) { T.acc = T.acc + v; }
      static int f() { add(2); add(3); return T.acc; } }"""
    assert run(src) == 5


def test_implicit_this_field_write_and_call():
    src = """
    class C { int v;
      void bump() { v = v + 1; }
      int get() { bump(); bump(); return v; } }
    class T { static int f() { C c = new C(); return c.get(); } }"""
    assert run(src) == 2


def test_natives_math():
    src = """class T { static int f() {
      return Sys.intOf(Sys.sqrt(16.0)) + Sys.max(2, 9) + Sys.abs(-3)
             + Sys.floor(2.9);
    } }"""
    assert run(src) == 4 + 9 + 3 + 2


def test_sys_print_and_str(app_classes_original):
    _, machine = compile_and_run(
        'class T { static void f() { Sys.print("v=" + 3); } }', "T", "f")
    assert machine.stdout == ["v=3"]


def test_string_helpers():
    src = """class T { static int f() {
      str s = "hello world";
      return Sys.indexOf(s, "world") + Sys.len(s);
    } }"""
    assert run(src) == 6 + 11


def test_duplicate_method_rejected():
    with pytest.raises(CompileError):
        run("class T { static int f() { return 1; } static int f() { return 2; } }")


def test_duplicate_class_rejected():
    with pytest.raises(CompileError):
        run("class T { } class T { }")


def test_unknown_variable_rejected():
    with pytest.raises(CompileError):
        run("class T { static int f() { return zz; } }")


def test_this_in_static_rejected():
    with pytest.raises(CompileError):
        run("class T { int v; static int f() { return this.v; } }")


def test_unknown_superclass_rejected():
    with pytest.raises(CompileError):
        run("class T extends Ghost { static int f() { return 1; } }")


def test_all_builds_agree_on_semantics():
    src = """
    class Pair { int a; int b; int sum() { return a + b; } }
    class T { static int f(int n) {
      Pair p = new Pair();
      int total = 0;
      for (int i = 0; i < n; i = i + 1) {
        p.a = i; p.b = i * 2;
        total = total + p.sum();
      }
      try { int z = 1 / (n - n); } catch (ArithmeticException e) { total = total + 1000; }
      return total;
    } }"""
    results = {build: run(src, args=[10], build=build)
               for build in ("original", "flattened", "faulting", "checking")}
    assert len(set(results.values())) == 1, results
