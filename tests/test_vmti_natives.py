"""VMTI debug interface and native registry tests."""

import pytest

from repro.cluster import Node, NodeSpec, gige_cluster
from repro.errors import NativeError, VMError
from repro.lang import compile_source
from repro.units import mb
from repro.vm import Machine, VMTI

from tests.helpers import compile_and_run

SRC = """
class T {
  static int level;
  static int outer(int n) { return T.inner(n) + 100; }
  static int inner(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
    return acc;
  }
}
"""


@pytest.fixture()
def paused():
    classes = compile_source(SRC)
    m = Machine(classes)
    t = m.spawn("T", "outer", [5])
    m.run(t, stop=lambda th: th.frames[-1].code.name == "inner")
    return m, VMTI(m), t


def test_frame_inspection(paused):
    m, vmti, t = paused
    assert vmti.get_frame_count(t) == 2
    (mid, bci) = vmti.get_frame_location(t, 0)
    assert mid == ("T", "inner") and bci == 0
    (mid1, _) = vmti.get_frame_location(t, 1)
    assert mid1 == ("T", "outer")
    assert vmti.get_method_name(mid) == "T.inner"


def test_local_variable_table_and_locals(paused):
    m, vmti, t = paused
    table = vmti.get_local_variable_table(t, 0)
    names = [n for _s, n in table]
    assert "n" in names and "acc" in names
    assert vmti.get_local(t, 0, 0) == 5
    vmti.set_local(t, 0, 0, 3)
    assert vmti.get_local(t, 0, 0) == 3


def test_local_bad_depth_and_slot(paused):
    m, vmti, t = paused
    with pytest.raises(VMError):
        vmti.get_local(t, 9, 0)
    with pytest.raises(VMError):
        vmti.get_local(t, 0, 99)


def test_vmti_calls_charge_time(paused):
    m, vmti, t = paused
    before = m.clock
    for _ in range(10):
        vmti.get_local(t, 0, 0)
    assert m.clock - before == pytest.approx(10 * m.cost.vmti.get_local)
    assert vmti.calls >= 10


def test_statics_access(paused):
    m, vmti, t = paused
    vmti.set_static("T", "level", 7)
    assert vmti.get_static("T", "level") == 7


def test_force_early_return_and_pop_frame(paused):
    m, vmti, t = paused
    # Pop 'inner', hand a fabricated return value to 'outer'.
    vmti.force_early_return(t, 1234)
    m.run(t)
    assert t.result == 1234 + 100


def test_pop_frame_discards(paused):
    m, vmti, t = paused
    vmti.pop_frame(t)
    assert t.depth() == 1
    with pytest.raises(VMError):
        empty = type(t)("x")
        vmti.pop_frame(empty)


def test_raise_exception_injects(paused):
    m, vmti, t = paused
    vmti.raise_exception(t, "RuntimeException", "injected")
    m.run(t)
    assert t.uncaught is not None
    assert t.uncaught.class_name == "RuntimeException"


def test_operand_stack_empty_probe(paused):
    m, vmti, t = paused
    assert vmti.is_operand_stack_empty(t, 0)


def test_vmti_denied_on_jamvm_node():
    classes = compile_source(SRC)
    m = Machine(classes, node=Node(NodeSpec(name="phone", has_vmti=False)))
    with pytest.raises(VMError):
        VMTI(m)


def test_breakpoint_via_vmti(paused):
    m, vmti, t = paused
    hits = []
    vmti.set_breakpoint("T", "inner", 2)
    vmti.set_breakpoint_callback(lambda mach, th: hits.append(th.frames[-1].pc))
    m.run(t)
    assert hits and all(pc == 2 for pc in hits)
    vmti.clear_breakpoint("T", "inner", 2)
    assert not m.breakpoints


# -- natives --------------------------------------------------------------------

def test_unknown_native_rejected():
    src = "class T { static int f() { return 1; } }"
    classes = compile_source(src)
    m = Machine(classes)
    with pytest.raises(NativeError):
        m.natives.lookup("Sys.frobnicate")


def test_unbound_migration_native_fails_loudly():
    _, m = compile_and_run("class T { static int f() { return 2; } }",
                           "T", "f")
    fn = m.natives.lookup("ObjMan.resolve")
    with pytest.raises(NativeError):
        fn(m, [None])


def test_fs_natives_need_cluster():
    src = 'class T { static int f() { return FS.size("/x"); } }'
    classes = compile_source(src)
    with pytest.raises(NativeError):
        Machine(classes).call("T", "f")


def test_fs_natives_with_cluster():
    cluster = gige_cluster(2)
    cluster.fs.host_file(cluster.node("node0"), "/d/a.txt", mb(2),
                         plant=[(100, "magicword")])
    src = """class T {
      static int f() {
        int size = FS.size("/d/a.txt");
        int hit = FS.scan("/d/a.txt", 0, size, "magicword");
        str w = FS.read("/d/a.txt", 100, 9);
        if (w == "magicword") { return hit; }
        return -1;
      } }"""
    classes = compile_source(src)
    m = Machine(classes, node=cluster.node("node0"), fs=cluster.fs)
    assert m.call("T", "f") == 100
    assert m.clock > 0.005  # disk time charged


def test_fs_list_returns_paths():
    cluster = gige_cluster(1)
    cluster.fs.host_file(cluster.node("node0"), "/p/one", 10)
    cluster.fs.host_file(cluster.node("node0"), "/p/two", 10)
    src = """class T { static int f() {
      str[] files = FS.list("/p/");
      return Sys.len(files);
    } }"""
    m = Machine(compile_source(src), node=cluster.node("node0"),
                fs=cluster.fs)
    assert m.call("T", "f") == 2


def test_sys_setnominal_changes_accounting():
    src = """class T { static int f() {
      int[] xs = new int[100];
      Sys.setNominal(xs, 1024);
      return Sys.nominalSize(xs);
    } }"""
    result, m = compile_and_run(src, "T", "f")
    assert result == 100 * 1024 + 16
    assert m.heap.allocated_bytes >= 100 * 1024


def test_sys_sleep_charges_wall_time():
    src = "class T { static void f() { Sys.sleep(2.5); } }"
    _, m = compile_and_run(src, "T", "f")
    assert m.clock >= 2.5


def test_sys_node_name_defaults_local():
    src = "class T { static str f() { return Sys.nodeName(); } }"
    result, _ = compile_and_run(src, "T", "f")
    assert result == "local"
