"""Capture / restore mechanics (sections III.B.1-2)."""

import pytest

from repro.cluster import gige_cluster
from repro.errors import MigrationError
from repro.lang import compile_source
from repro.migration import (RestoreDriver, SODEngine, capture_segment,
                             java_level_restore, run_to_msp)
from repro.migration.segments import pin_methods
from repro.preprocess import preprocess_program
from repro.vm import Machine, RemoteRef, VMTI

SRC = """
class Data { int v; }
class R {
  static Data shared;
  static int outer(int n) {
    R.shared = new Data();
    R.shared.v = 50;
    int x = R.middle(n);
    return x + R.shared.v;
  }
  static int middle(int n) { return R.inner(n) * 2; }
  static int inner(int n) {
    int acc = 3;
    for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
    acc = acc + R.shared.v;
    return acc;
  }
}
"""


@pytest.fixture()
def classes():
    return preprocess_program(compile_source(SRC), "faulting")


@pytest.fixture()
def paused(classes):
    m = Machine(classes)
    t = m.spawn("R", "outer", [4])
    m.run(t, stop=lambda th: th.frames[-1].code.name == "inner")
    run_to_msp(m, t)
    return m, VMTI(m), t


def test_run_to_msp_lands_on_msp(paused):
    m, vmti, t = paused
    top = t.frames[-1]
    assert top.pc in top.code.msps
    assert not top.stack


def test_capture_top_frame(paused):
    m, vmti, t = paused
    state = capture_segment(vmti, t, 1, home_node="home")
    assert state.nframes() == 1
    rec = state.frames[0]
    assert (rec.class_name, rec.method_name) == ("R", "inner")
    assert rec.pc in t.frames[-1].code.msps
    assert rec.locals[0] == 4  # n by value


def test_capture_segment_order_outermost_first(paused):
    m, vmti, t = paused
    state = capture_segment(vmti, t, 3, home_node="home")
    names = [f.method_name for f in state.frames]
    assert names == ["outer", "middle", "inner"]
    # Suspended callers restore at their call-line start.
    for f in state.frames[:-1]:
        assert f.pc <= f.raw_pc


def test_capture_encodes_statics(paused):
    m, vmti, t = paused
    state = capture_segment(vmti, t, 1, home_node="home")
    enc = state.statics[("R", "shared")]
    assert enc[0] == "@ref"  # object static travels as a descriptor


def test_capture_rejects_bad_sizes(paused):
    m, vmti, t = paused
    with pytest.raises(MigrationError):
        capture_segment(vmti, t, 0, home_node="h")
    with pytest.raises(MigrationError):
        capture_segment(vmti, t, 99, home_node="h")


def test_capture_rejects_pinned_frames(paused):
    m, vmti, t = paused
    pin_methods(t, ["R.middle"])
    capture_segment(vmti, t, 1, home_node="h")  # top only: fine
    with pytest.raises(MigrationError):
        capture_segment(vmti, t, 2, home_node="h")


def test_capture_off_msp_rejected(classes):
    m = Machine(classes)
    t = m.spawn("R", "outer", [4])
    # stop mid-group: right after the first instruction
    m.run(t, max_instrs=1)
    if t.frames[-1].pc in t.frames[-1].code.msps:
        m.run(t, max_instrs=1)
    with pytest.raises(MigrationError):
        capture_segment(VMTI(m), t, 1, home_node="h")


def test_capture_charges_getlocal_costs(paused):
    m, vmti, t = paused
    before = m.clock
    state = capture_segment(vmti, t, 1, home_node="h")
    nlocals = len(state.frames[0].locals)
    assert m.clock - before >= nlocals * m.cost.vmti.get_local


def test_restore_driver_rebuilds_equivalent_state(classes, paused):
    src_m, vmti, t = paused
    state = capture_segment(vmti, t, 3, home_node="home")

    dst = Machine(classes)
    driver = RestoreDriver(dst, VMTI(dst), state)
    restored = driver.restore(run_after=False)
    assert restored.depth() == 3
    names = [f.code.name for f in restored.frames]
    assert names == ["outer", "middle", "inner"]
    # Locals restored: inner's n == 4; object refs are remote sentinels.
    assert restored.frames[-1].locals[0] == 4
    statics = dst.loader.load("R").statics
    assert isinstance(statics["shared"], RemoteRef)
    # Restoration used breakpoints + injected InvalidStateException only.
    assert not dst.breakpoints


def test_java_level_restore_equivalent(classes, paused):
    src_m, vmti, t = paused
    state = capture_segment(vmti, t, 3, home_node="home")
    dst = Machine(classes)
    restored = java_level_restore(dst, state)
    assert [f.code.name for f in restored.frames] == ["outer", "middle",
                                                      "inner"]
    assert restored.frames[-1].pc == state.frames[-1].pc
    # Callers resume after their calls (raw pc), not at the call line.
    assert restored.frames[0].pc == state.frames[0].raw_pc


def test_restore_missing_method_rejected(classes, paused):
    src_m, vmti, t = paused
    state = capture_segment(vmti, t, 1, home_node="home")
    state.frames[0].method_name = "ghost"
    dst = Machine(classes)
    with pytest.raises(MigrationError):
        RestoreDriver(dst, VMTI(dst), state).restore()


def test_run_to_msp_errors_when_finished(classes):
    m = Machine(classes)
    t = m.spawn("R", "outer", [1])
    m.run(t)
    with pytest.raises(MigrationError):
        run_to_msp(m, t)
