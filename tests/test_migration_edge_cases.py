"""Migration edge cases surfaced by the elastic scheduler: offload from
inside a fused superinstruction group, repeated offload of one thread
(stale worker caches), and capture at a native-call safepoint.  Every
scenario is asserted against the legacy-loop single-machine oracle."""

from __future__ import annotations

import pytest

from repro.cluster import gige_cluster
from repro.errors import MigrationError
from repro.lang import compile_source
from repro.migration import SODEngine, capture_segment, run_to_msp
from repro.preprocess import preprocess_program
from repro.vm import Machine, VMTI

# -- shared program: recursion + fused loops + shared mutable object ----------

SRC = """
class Data { int v; }
class R {
  static int work(Data d, int i) {
    d.v = d.v + i;
    int acc = 0;
    for (int j = 0; j < 6; j = j + 1) {
      acc = (acc + d.v * j) % 997;
    }
    return acc;
  }
  static int main(int n) {
    Data d = new Data();
    d.v = 1;
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
      s = s + R.work(d, i);
    }
    return s + d.v;
  }
  static int chatty(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
      Sys.print("step " + i);
      s = s + R.work(new Data(), i);
    }
    Sys.print("done " + s);
    return s;
  }
}
"""


@pytest.fixture(scope="module")
def classes():
    return preprocess_program(compile_source(SRC), "faulting")


def _legacy_oracle(classes, method, args):
    m = Machine(classes, dispatch="legacy")
    result = m.call("R", method, list(args))
    return result, list(m.stdout)


def _interior_fused_bci(machine, code):
    """An original bci strictly inside a multi-instruction fused group
    of ``code``'s decoded stream."""
    stream = machine.decoded(code)
    for i, slot in enumerate(stream):
        if slot[4] >= 3:
            return i + 1
    raise AssertionError("no fused group found")


# -- offload triggered mid-fused-group ----------------------------------------


def test_offload_triggered_mid_fused_group(classes):
    """The scheduler's trigger can fire while a thread sits strictly
    inside a fused superinstruction group; ``run_to_msp`` must walk it
    out (executing the interior components unfused) and the migration
    must still produce the legacy answer."""
    expected, _ = _legacy_oracle(classes, "main", [7])
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    work = home.machine.loader.load("R").find_method("work")
    interior = _interior_fused_bci(home.machine, work)

    t = eng.spawn(home, "R", "main", [7])
    status = eng.run(home, t, stop=lambda th: (
        th.frames[-1].code.name == "work"
        and th.frames[-1].pc == interior))
    assert status == "stopped"
    top = t.frames[-1]
    assert top.pc == interior
    stream = home.machine.decoded(top.code)
    # really interior: this bci is a group continuation, not a head
    heads = set()
    i = 0
    while i < len(stream):
        heads.add(i)
        i += max(1, stream[i][4])
    assert interior not in heads or stream[interior][4] == 1

    result, rec = eng.run_segment_remote(home, t, "node1", nframes=1)
    assert result == expected
    assert rec.nframes == 1


# -- double offload of the same thread ----------------------------------------


def test_double_offload_same_thread_same_worker(classes):
    """Offloading a thread twice to the *same* worker must re-fetch the
    home objects the second time: the home mutates them between
    segments, so serving the first segment's cached copies would fork
    state (regression test for the per-thread cache-epoch release)."""
    expected, _ = _legacy_oracle(classes, "main", [9])
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    t = eng.spawn(home, "R", "main", [9])

    at_work = lambda th: (th.frames[-1].code.name == "work"
                          and th.frames[-1].pc == 0)
    offloads = 0
    while eng.run(home, t, stop=at_work) == "stopped":
        worker, wt, _rec = eng.migrate(home, t, "node1", 1)
        eng.run(worker, wt)
        eng.complete_segment(worker, wt, home, t, 1)
        offloads += 1
    assert offloads >= 2  # genuinely re-offloaded the same thread
    assert t.result == expected
    # the worker really served both segments (not a fresh host each time)
    assert len(eng.migrations) == offloads
    assert all(r.dst == "node1" for r in eng.migrations)


def test_double_offload_alternating_workers(classes):
    """Same flow, alternating destinations: each worker's cache must be
    refreshed independently."""
    expected, _ = _legacy_oracle(classes, "main", [8])
    eng = SODEngine(gige_cluster(3), classes)
    home = eng.host("node0")
    t = eng.spawn(home, "R", "main", [8])
    at_work = lambda th: (th.frames[-1].code.name == "work"
                          and th.frames[-1].pc == 0)
    dsts = []
    while eng.run(home, t, stop=at_work) == "stopped":
        dst = "node1" if len(dsts) % 2 == 0 else "node2"
        worker, wt, _rec = eng.migrate(home, t, dst, 1)
        eng.run(worker, wt)
        eng.complete_segment(worker, wt, home, t, 1)
        dsts.append(dst)
    assert len(dsts) >= 2 and set(dsts) == {"node1", "node2"}
    assert t.result == expected


def test_thread_cannot_be_offloaded_while_remote(classes):
    """The same thread must not be captured again while its segment is
    away: the stale top frames are not at a consistent point."""
    eng = SODEngine(gige_cluster(3), classes)
    home = eng.host("node0")
    t = eng.spawn(home, "R", "main", [6])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "work")
    worker, wt, _rec = eng.migrate(home, t, "node1", 1)
    # home's copy of the migrated frame is pinned-by-convention: the
    # scheduler marks remote parents and never re-runs them; capturing
    # the stale stack from another trigger must at least fail loudly
    # once the worker finished and the home popped the frames.
    eng.run(worker, wt)
    eng.complete_segment(worker, wt, home, t, 1)
    eng.run(home, t)
    assert t.finished


# -- capture during a native-call safepoint -----------------------------------


def test_capture_at_native_call_safepoint(classes):
    """Freeze a thread exactly at a native-call bci (the fast loop's
    safepoint), migrate the frame, and check result + interleaved
    stdout against the legacy oracle: prints before the freeze happen
    at home, segment prints happen on the worker, residual prints back
    at home."""
    expected, ref_stdout = _legacy_oracle(classes, "chatty", [5])
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")

    def at_native(th):
        f = th.frames[-1]
        return (f.code.name == "chatty"
                and f.code.instrs[f.pc].op == "NATIVE"
                and len(home.machine.stdout) == 3)

    t = eng.spawn(home, "R", "chatty", [5])
    status = eng.run(home, t, stop=at_native)
    assert status == "stopped"
    assert t.frames[-1].code.instrs[t.frames[-1].pc].op == "NATIVE"
    # Walk to the MSP ourselves (prints replayed on the way stay at
    # home), then snapshot where home output ends before migrating.
    run_to_msp(home.machine, t)
    assert t.frames[-1].pc in t.frames[-1].code.msps
    pre = len(home.machine.stdout)

    result, _rec = eng.run_segment_remote(home, t, "node1", nframes=1)
    assert result == expected
    worker = eng.hosts["node1"]
    merged = (home.machine.stdout[:pre] + worker.machine.stdout
              + home.machine.stdout[pre:])
    assert merged == ref_stdout


def test_capture_requires_msp(classes):
    """Direct capture at a non-MSP bci is refused (run_to_msp is the
    only legal doorway; the scheduler always goes through it)."""
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    work = home.machine.loader.load("R").find_method("work")
    interior = _interior_fused_bci(home.machine, work)
    t = eng.spawn(home, "R", "main", [5])
    eng.run(home, t, stop=lambda th: (th.frames[-1].code.name == "work"
                                      and th.frames[-1].pc == interior))
    top = t.frames[-1]
    if top.pc in top.code.msps:  # pragma: no cover - layout-dependent
        pytest.skip("interior bci happens to be an MSP in this build")
    with pytest.raises(MigrationError):
        capture_segment(VMTI(home.machine), t, 1, home_node="node0")
    # ...while the doorway works from the same position
    run_to_msp(home.machine, t)
    state = capture_segment(VMTI(home.machine), t, 1, home_node="node0")
    assert state.frames[-1].class_name == "R"


# -- concurrent segments on one worker ----------------------------------------

SHARED_SRC = """
class K { static int tag; }
class Data { int v; }
class W {
  static int bump(Data d, int by) {
    K.tag = K.tag + by;
    d.v = d.v + by;
    int acc = 0;
    for (int j = 0; j < 5; j = j + 1) { acc = acc + d.v; }
    return acc;
  }
  static int main(int n) { return 0; }
}
"""

#: statics on the segment's own class: they travel with the capture,
#: so the engine can see (and refuse) cross-home co-location
OWN_STATIC_SRC = """
class Data { int v; }
class W {
  static int tag;
  static int bump(Data d, int by) {
    W.tag = W.tag + by;
    d.v = d.v + by;
    int acc = 0;
    for (int j = 0; j < 5; j = j + 1) { acc = acc + d.v; }
    return acc;
  }
  static int main(int n) { return 0; }
}
"""


def _shared_classes():
    return preprocess_program(compile_source(SHARED_SRC), "faulting")


def test_cross_home_static_sharing_is_refused():
    """Two homes offload segments of a static-bearing class to one
    worker: a worker machine has one static cell per class, so the
    second restore would overwrite the first home's values and their
    updates would compose on one shared cell.  The engine must refuse
    the co-location loudly instead of corrupting both homes (the serve
    scheduler catches the MigrationError and keeps the thread local)."""
    classes = preprocess_program(compile_source(OWN_STATIC_SRC), "faulting")
    eng = SODEngine(gige_cluster(3), classes)
    homes, threads = {}, {}
    for node in ("node0", "node1"):
        h = eng.host(node)  # both are full homes
        d = h.machine.heap.new_instance(h.machine.loader.load("Data"))
        d.fields["v"] = 10 if node == "node0" else 20
        h.machine.loader.load("W").statics["tag"] = 0
        t = h.machine.spawn("W", "bump", [d, 1 if node == "node0" else 5])
        run_to_msp(h.machine, t)
        homes[node], threads[node] = h, t

    w, wt, _rec = eng.migrate(homes["node0"], threads["node0"], "node2", 1)
    with pytest.raises(MigrationError, match="cross-home static"):
        eng.migrate(homes["node1"], threads["node1"], "node2", 1)
    # the first segment still completes normally, statics intact
    eng.run(w, wt)
    eng.complete_segment(w, wt, homes["node0"], threads["node0"], 1)
    assert homes["node0"].machine.loader.load("W").statics["tag"] == 1
    assert homes["node1"].machine.loader.load("W").statics["tag"] == 0
    # ...and once node2 is free again, node1's segment is welcome
    w2, wt2, _ = eng.migrate(homes["node1"], threads["node1"], "node2", 1)
    eng.run(w2, wt2)
    eng.complete_segment(w2, wt2, homes["node1"], threads["node1"], 1)
    assert homes["node1"].machine.loader.load("W").statics["tag"] == 5


NOSTATIC_SRC = """
class Data { int v; }
class W {
  static int bump(Data d, int by) {
    d.v = d.v + by;
    int acc = 0;
    for (int j = 0; j < 5; j = j + 1) { acc = acc + d.v; }
    return acc;
  }
  static int main(int n) { return 0; }
}
"""


def test_concurrent_segments_from_different_homes_keep_objects_apart():
    """Statics-free segments from two homes CAN share a worker; each
    completion must ship only its own home's dirty objects (regression:
    the unscoped write-back shipped every dirty object keyed by bare
    oid, applying home B's update to whatever object owned that oid on
    home A)."""
    classes = preprocess_program(compile_source(NOSTATIC_SRC), "faulting")
    eng = SODEngine(gige_cluster(3), classes)
    homes, threads, objs = {}, {}, {}
    for node in ("node0", "node1"):
        h = eng.host(node)
        d = h.machine.heap.new_instance(h.machine.loader.load("Data"))
        d.fields["v"] = 10 if node == "node0" else 20
        t = h.machine.spawn("W", "bump", [d, 1 if node == "node0" else 5])
        run_to_msp(h.machine, t)
        homes[node], threads[node], objs[node] = h, t, d

    workers = {}
    for node in ("node0", "node1"):
        workers[node] = eng.migrate(homes[node], threads[node],
                                    "node2", 1)[:2]
    for node in ("node0", "node1"):
        w, wt = workers[node]
        eng.run(w, wt)
    for node in ("node0", "node1"):
        w, wt = workers[node]
        eng.complete_segment(w, wt, homes[node], threads[node], 1)

    assert objs["node0"].fields["v"] == 11
    assert objs["node1"].fields["v"] == 25


def test_shared_cache_entry_survives_other_threads_release():
    """Two segments from ONE home share a fetched object on the worker
    (second fetch is a cache hit).  Completing the first must not evict
    the copy from under the second: its later writes still need the
    home identity to travel back."""
    classes = _shared_classes()
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    d = home.machine.heap.new_instance(home.machine.loader.load("Data"))
    d.fields["v"] = 100
    home.machine.loader.load("K").statics["tag"] = 0

    ta = home.machine.spawn("W", "bump", [d, 1], thread_name="a")
    tb = home.machine.spawn("W", "bump", [d, 2], thread_name="b")
    run_to_msp(home.machine, ta)
    run_to_msp(home.machine, tb)
    w, wta, _ = eng.migrate(home, ta, "node1", 1)
    _, wtb, _ = eng.migrate(home, tb, "node1", 1)
    # both worker threads fault d in; the second hits the cache
    eng.run(w, wta)
    eng.run(w, wtb)
    assert w.objman.stats.faults >= 1
    eng.complete_segment(w, wta, home, ta, 1)   # releases a's epoch
    eng.complete_segment(w, wtb, home, tb, 1)   # b's writes must land
    # both bumps reached the home copy (a: +1, b: +2 on the copy b
    # fetched before a's writeback — last writer wins per release
    # consistency, so v reflects b's final copy)
    assert d.fields["v"] in (102, 103)
    # and b's static increment was not lost with a stale identity
    assert home.machine.loader.load("K").statics["tag"] == 3


def test_write_barrier_disarms_when_worker_goes_idle():
    """After the last segment on a worker completes, the write barrier
    drops so locally served requests regain fast dispatch; the next
    restore re-arms it."""
    classes = _shared_classes()
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    d = home.machine.heap.new_instance(home.machine.loader.load("Data"))
    d.fields["v"] = 1
    t = home.machine.spawn("W", "bump", [d, 3])
    run_to_msp(home.machine, t)
    w, wt, _ = eng.migrate(home, t, "node1", 1)
    assert w.machine.on_write is not None  # armed while segment active
    eng.run(w, wt)
    eng.complete_segment(w, wt, home, t, 1)
    assert w.machine.on_write is None      # idle worker: fast dispatch
    # a second migration re-arms
    t2 = home.machine.spawn("W", "bump", [d, 4])
    run_to_msp(home.machine, t2)
    w2, wt2, _ = eng.migrate(home, t2, "node1", 1)
    assert w2 is w and w.machine.on_write is not None
    eng.run(w2, wt2)
    eng.complete_segment(w2, wt2, home, t2, 1)
    assert t2.finished and w.machine.on_write is None


def test_abandoned_dead_segment_cleans_worker():
    """A segment that dies of an uncaught guest exception is abandoned:
    no write-back, its epoch and pending static writes are dropped, and
    the worker's write barrier disarms (the serve scheduler's failure
    path must not leave the node stuck on the hook-aware loop)."""
    src = """
    class W {
      static int tag;
      static int boom(int n) {
        W.tag = W.tag + 1;
        int s = 0;
        for (int i = 0; i < n; i = i + 1) { s = s + i; }
        return s / (n - n);
      }
      static int main(int n) { return 0; }
    }
    """
    classes = preprocess_program(compile_source(src), "faulting")
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    t = home.machine.spawn("W", "boom", [4])
    run_to_msp(home.machine, t)
    w, wt, _ = eng.migrate(home, t, "node1", 1)
    eng.run(w, wt)
    assert wt.uncaught is not None
    with pytest.raises(MigrationError):
        eng.complete_segment(w, wt, home, t, 1)  # refuses dead segments
    eng.abandon_segment(w, wt)
    assert not w.objman.thread_home and not w.objman.dirty_statics
    assert w.machine.on_write is None  # barrier disarmed, fast dispatch
    # and the home's statics never saw the dead segment's write
    assert home.machine.loader.load("W").statics["tag"] == 0
