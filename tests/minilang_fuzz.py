"""Grammar-based MiniLang program fuzzer.

Generates random-but-valid MiniLang programs (bounded loops, DAG calls,
bounded recursion, arrays, objects, virtual-dispatch hierarchies,
switch/LSWITCH, statics, string bands — concat / compare / length /
substring over locals and a static string cell, substr-clamped so
loop-carried folds stay bounded — try/catch, guest-exception sites) and
differentially checks the fast pre-decoded/fused/inline-cached
interpreter against the legacy string-dispatched loop on
stdout / result / uncaught-exception / instr_count / clock.

Beyond dispatch, :func:`run_migration_fuzz` drives the *migration*
path: each program is re-run on the faulting build, frozen at a
seeded-random instruction count (any capture point the VM can reach,
not just a handpicked trigger method), its top frames SOD-migrated to
a second node, executed remotely, completed home, and the final
result / uncaught class / interleaved stdout compared against the
straight-line oracle.

Seeding: every stream derives from ``random.Random(f"...:{seed}")``
(string seeds hash with SHA-512), so runs are reproducible across
processes and immune to pytest-randomly's global-state shuffling.

On divergence the failing program is *shrunk*: removable statements are
deleted one at a time while the divergence persists, and the minimized
source + seed are reported.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CompileError, MigrationError
from repro.lang import compile_source
from repro.preprocess import preprocess_program
from repro.vm import Machine
from repro.vm.machine import UncaughtGuestException

#: value clamp applied to loop-carried assignments so generated loops
#: cannot grow bigints without bound (repeated squaring would otherwise
#: produce numbers with 2**iterations digits)
CLAMP = 100003

EXC_TYPES = ("ArithmeticException", "IndexOutOfBoundsException",
             "NullPointerException", "Throwable")

BINOPS = ("+", "-", "*", "/", "%")


# -- program representation (shrinkable) ---------------------------------------


@dataclass
class Slot:
    """One statement slot in a method body; ``removable`` slots are
    candidates for deletion during shrinking."""

    text: str
    removable: bool = True


@dataclass
class FuzzProgram:
    """A generated program: fixed prelude classes + method bodies."""

    seed: int
    main_args: Tuple[int, int]
    methods: List[Tuple[str, str, List[Slot]]] = field(default_factory=list)

    def render(self) -> str:
        parts = ["class Box { int v; Box next; }",
                 "class S { static int acc; static str tag; }",
                 # a three-deep virtual-dispatch hierarchy: V/VA/VB all
                 # override f, VB also overrides g (which calls f
                 # virtually through this), so receiver-class inline
                 # caches see monomorphic, bimorphic, and megamorphic
                 # sites depending on what the program news up
                 f"class V {{ int tag; "
                 f"int f(int a, int b) {{ return (a + b + tag) % {CLAMP}; }} "
                 f"int g(int a) {{ return this.f(a, tag) + 1; }} }}",
                 f"class VA extends V {{ "
                 f"int f(int a, int b) {{ return (a * 2 - b + tag) % {CLAMP}; }} }}",
                 f"class VB extends VA {{ "
                 f"int f(int a, int b) {{ return (b - a + 7 * tag) % {CLAMP}; }} "
                 f"int g(int a) {{ return this.f(a, a) - tag; }} }}",
                 "class G {"]
        for _name, header, slots in self.methods:
            parts.append(f"  {header} {{")
            for slot in slots:
                for line in slot.text.splitlines():
                    parts.append(f"    {line}")
            parts.append("  }")
        parts.append("}")
        return "\n".join(parts)

    def removable_sites(self) -> List[Tuple[int, int]]:
        sites = []
        for mi, (_n, _h, slots) in enumerate(self.methods):
            for si, slot in enumerate(slots):
                if slot.removable:
                    sites.append((mi, si))
        return sites

    def without(self, site: Tuple[int, int]) -> "FuzzProgram":
        mi, si = site
        methods = [(n, h, list(slots)) for n, h, slots in self.methods]
        del methods[mi][2][si]
        return FuzzProgram(self.seed, self.main_args, methods)


# -- generation ----------------------------------------------------------------


#: float clamp modulus: a non-integral constant so float identity is
#: exercised (fmod keeps loop-carried floats bounded, away from inf/nan)
FCLAMP = "829.25"

class _Ctx:
    """Per-method scope tracking: what names an expression may use."""

    def __init__(self, rng: random.Random, callable_methods: List[str]):
        self.rng = rng
        self.ints: List[str] = ["a", "b"]
        self.floats: List[str] = []       # declared float vars
        self.strs: List[str] = []         # declared str vars
        self.arrays: List[Tuple[str, int]] = []  # (name, length)
        self.boxes: List[str] = []        # initialized Box vars
        self.null_boxes: List[str] = []   # vars that may hold null
        self.vobjs: List[str] = []        # initialized V-typed vars
        #: names that may be read but never assigned (live loop
        #: variables: writing one could make its loop non-terminating)
        self.no_write: set = set()
        self.callable = callable_methods
        self.counter = 0

    def writable_ints(self) -> List[str]:
        return [v for v in self.ints if v not in self.no_write]

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"


def _expr(ctx: _Ctx, depth: int) -> str:
    rng = ctx.rng
    roll = rng.random()
    if depth <= 0 or roll < 0.28:
        return str(rng.randint(-20, 99))
    if roll < 0.50:
        return rng.choice(ctx.ints)
    if roll < 0.56:
        return "S.acc"
    if roll < 0.59 and ctx.strs:
        return f"Sys.len({_sexpr(ctx, 1)})"  # length band
    if roll < 0.63 and ctx.arrays:
        name, length = rng.choice(ctx.arrays)
        # mostly in bounds, sometimes out (guest IndexOutOfBounds site)
        if rng.random() < 0.85:
            idx = str(rng.randint(0, max(0, length - 1)))
        else:
            idx = _expr(ctx, 0)
        return f"{name}[{idx}]"
    if roll < 0.68 and ctx.boxes:
        return f"{rng.choice(ctx.boxes)}.v"
    if roll < 0.71 and ctx.null_boxes:
        return f"{rng.choice(ctx.null_boxes)}.v"  # NPE site
    if roll < 0.77 and ctx.vobjs:
        # virtual dispatch through the V hierarchy (receiver class is
        # whatever the variable was last assigned)
        recv = rng.choice(ctx.vobjs)
        if rng.random() < 0.7:
            return (f"{recv}.f({_expr(ctx, depth - 1)}, "
                    f"{_expr(ctx, depth - 1)})")
        return f"{recv}.g({_expr(ctx, depth - 1)})"
    if roll < 0.80 and ctx.vobjs:
        return f"{rng.choice(ctx.vobjs)}.tag"
    if roll < 0.86 and ctx.callable:
        callee = rng.choice(ctx.callable)
        return (f"G.{callee}({_expr(ctx, depth - 1)}, "
                f"{_expr(ctx, depth - 1)})")
    if roll < 0.89:
        return f"(-{_expr(ctx, depth - 1)})"
    op = rng.choice(BINOPS)
    return f"({_expr(ctx, depth - 1)} {op} {_expr(ctx, depth - 1)})"


def _fexpr(ctx: _Ctx, depth: int) -> str:
    """A float-valued expression.  Division and modulo only ever see
    non-zero *constant* right-hand sides (a float zero-divide is a host
    error, not a guest exception), and every loop-carried assignment is
    fmod-clamped, so values stay finite and the differential compares
    exact float results across interpreters."""
    rng = ctx.rng
    roll = rng.random()
    if depth <= 0 or roll < 0.30:
        return f"{rng.randint(-12, 40)}.{rng.choice(('0', '25', '5', '75'))}"
    if roll < 0.55 and ctx.floats:
        return rng.choice(ctx.floats)
    if roll < 0.65:
        return rng.choice(ctx.ints)  # int operands promote in mixed ops
    if roll < 0.75:
        denom = f"{rng.randint(1, 9)}.{rng.choice(('5', '25'))}"
        return f"({_fexpr(ctx, depth - 1)} / {denom})"
    op = rng.choice(("+", "-", "*"))
    return f"({_fexpr(ctx, depth - 1)} {op} {_fexpr(ctx, depth - 1)})"


def _float_stmt(ctx: _Ctx) -> str:
    """Declare a fresh float, or fold into an existing one (clamped)."""
    rng = ctx.rng
    if not ctx.floats or rng.random() < 0.5:
        var = ctx.fresh("f")
        text = f"float {var} = {_fexpr(ctx, 2)};"
        ctx.floats.append(var)
        return text
    var = rng.choice(ctx.floats)
    return f"{var} = ({_fexpr(ctx, 2)}) % {FCLAMP};"


#: substring clamp length: loop-carried string folds are cut to this
#: many chars, so concat inside a loop cannot grow without bound
SCLAMP = 8

_STR_LITS = ('""', '"a"', '"xy"', '"Q9"', '"_"')


def _sexpr(ctx: _Ctx, depth: int) -> str:
    """A string-valued expression: literals, declared str vars, the
    static string cell, concat (int operands coerce via ADD's string
    rule), and substring slices.  ``Sys.charAt`` is deliberately
    absent — an out-of-range index there is a *host* IndexError, not a
    guest exception, so it cannot be differentially compared."""
    rng = ctx.rng
    roll = rng.random()
    if depth <= 0 or roll < 0.30:
        return rng.choice(_STR_LITS)
    if roll < 0.50 and ctx.strs:
        return rng.choice(ctx.strs)
    if roll < 0.58:
        return "S.tag"
    if roll < 0.72:
        return f"({_sexpr(ctx, depth - 1)} + {_expr(ctx, 1)})"
    if roll < 0.86:
        return f"({_sexpr(ctx, depth - 1)} + {_sexpr(ctx, depth - 1)})"
    lo = rng.randint(0, 2)
    return (f"Sys.substr({_sexpr(ctx, depth - 1)}, {lo}, "
            f"{lo + rng.randint(0, SCLAMP)})")


def _str_fold(ctx: _Ctx) -> str:
    """Fold into an existing str var or the static string cell —
    always substr-clamped (legal inside loop bodies)."""
    rng = ctx.rng
    if not ctx.strs or rng.random() < 0.3:
        return (f"S.tag = Sys.substr(S.tag + {_sexpr(ctx, 1)}, 0, "
                f"{SCLAMP});")
    var = rng.choice(ctx.strs)
    return f"{var} = Sys.substr({var} + {_sexpr(ctx, 1)}, 0, {SCLAMP});"


def _string_stmt(ctx: _Ctx) -> str:
    """Declare a fresh str, or fold into an existing one."""
    rng = ctx.rng
    if not ctx.strs or rng.random() < 0.45:
        var = ctx.fresh("s")
        text = f"str {var} = {_sexpr(ctx, 2)};"
        ctx.strs.append(var)
        return text
    return _str_fold(ctx)


def _cond(ctx: _Ctx) -> str:
    rng = ctx.rng
    op = rng.choice(("<", "<=", ">", ">=", "==", "!="))
    roll = rng.random()
    if ctx.floats and roll < 0.15:
        c = f"{rng.choice(ctx.floats)} {op} {_fexpr(ctx, 1)}"
    elif ctx.strs and roll < 0.30:
        # string bands: equality on contents, ordering/length via len
        if rng.random() < 0.5:
            c = (f"{rng.choice(ctx.strs)} {rng.choice(('==', '!='))} "
                 f"{_sexpr(ctx, 1)}")
        else:
            c = f"Sys.len({_sexpr(ctx, 1)}) {op} {_expr(ctx, 1)}"
    else:
        c = f"{_expr(ctx, 1)} {op} {_expr(ctx, 1)}"
    if rng.random() < 0.2:
        glue = rng.choice(("&&", "||"))
        c = f"{c} {glue} {_expr(ctx, 1)} {rng.choice(('<', '>'))} " \
            f"{_expr(ctx, 1)}"
    return c


def _simple_stmt(ctx: _Ctx, clamp: bool) -> str:
    """A statement legal inside a nested block: assignment to an
    existing name or a print — never a declaration (keeps inner blocks
    scope-safe under shrinking)."""
    rng = ctx.rng
    roll = rng.random()
    if roll < 0.12:
        return f'Sys.print("v=" + {_expr(ctx, 1)});'
    if roll < 0.24:
        return f"S.acc = (S.acc + {_expr(ctx, 1)}) % {CLAMP};"
    if roll < 0.30:
        return _str_fold(ctx)
    if roll < 0.45 and ctx.arrays:
        name, length = rng.choice(ctx.arrays)
        idx = rng.randint(0, max(0, length - 1))
        return f"{name}[{idx}] = {_expr(ctx, 1)};"
    if roll < 0.52 and ctx.boxes:
        return f"{rng.choice(ctx.boxes)}.v = {_expr(ctx, 1)};"
    if roll < 0.58 and ctx.vobjs:
        return f"{rng.choice(ctx.vobjs)}.tag = {_expr(ctx, 1)};"
    writable = ctx.writable_ints()
    if not writable:
        return f'Sys.print("w=" + {_expr(ctx, 1)});'
    var = rng.choice(writable)
    rhs = _expr(ctx, 2)
    if clamp:
        return f"{var} = ({rhs}) % {CLAMP};"
    return f"{var} = {rhs};"


def _switch_stmt(ctx: _Ctx) -> str:
    """A switch over a small expression: 1-3 integer case arms (possibly
    falling through — no break 40% of the time), usually a default."""
    rng = ctx.rng
    labels = rng.sample(range(-2, 8), rng.randint(1, 3))
    arms: List[str] = []
    for label in labels:
        body = [_simple_stmt(ctx, clamp=False)]
        if rng.random() < 0.6:
            body.append("break;")
        arms.append(f"case {label}:\n"
                    + "\n".join(f"  {line}" for line in body))
    if rng.random() < 0.7:
        arms.append(f"default:\n  {_simple_stmt(ctx, clamp=False)}")
    inner = "\n".join(arms)
    return f"switch ({_expr(ctx, 1)}) {{\n{inner}\n}}"


def _stmt(ctx: _Ctx) -> str:
    rng = ctx.rng
    roll = rng.random()
    if roll < 0.20:
        var = ctx.fresh("v")
        text = f"int {var} = {_expr(ctx, 2)};"
        ctx.ints.append(var)
        return text
    if roll < 0.31:
        return _simple_stmt(ctx, clamp=False)
    if roll < 0.38:
        var = ctx.fresh("xs")
        length = rng.randint(1, 6)
        ctx.arrays.append((var, length))
        return f"int[] {var} = new int[{length}];"
    if roll < 0.45:
        var = ctx.fresh("bx")
        if rng.random() < 0.8:
            ctx.boxes.append(var)
            return (f"Box {var} = new Box();\n"
                    f"{var}.v = {_expr(ctx, 1)};")
        ctx.null_boxes.append(var)
        return f"Box {var} = null;"
    if roll < 0.52:
        var = ctx.fresh("vo")
        cls = rng.choice(("V", "VA", "VB"))
        ctx.vobjs.append(var)
        return (f"V {var} = new {cls}();\n"
                f"{var}.tag = {_expr(ctx, 1)};")
    if roll < 0.57:
        text = _float_stmt(ctx)
        if rng.random() < 0.3 and ctx.floats:
            text += f'\nSys.print("fv=" + {rng.choice(ctx.floats)});'
        return text
    if roll < 0.63:
        text = _string_stmt(ctx)
        if rng.random() < 0.3 and ctx.strs:
            text += f'\nSys.print("sv=" + {rng.choice(ctx.strs)});'
        return text
    if roll < 0.68:
        return (f"if ({_cond(ctx)}) {{\n"
                f"  {_simple_stmt(ctx, clamp=False)}\n"
                f"}} else {{\n"
                f"  {_simple_stmt(ctx, clamp=False)}\n"
                f"}}")
    if roll < 0.73:
        return _switch_stmt(ctx)
    if roll < 0.82:
        i = ctx.fresh("i")
        bound = rng.randint(2, 8)
        ctx.ints.append(i)
        ctx.no_write.add(i)
        body = [_simple_stmt(ctx, clamp=True)
                for _ in range(rng.randint(1, 2))]
        ctx.ints.remove(i)
        ctx.no_write.discard(i)
        inner = "\n".join(f"  {line}" for line in body)
        return (f"for (int {i} = 0; {i} < {bound}; {i} = {i} + 1) {{\n"
                f"{inner}\n}}")
    if roll < 0.92:
        exc = rng.choice(EXC_TYPES)
        handler_var = ctx.fresh("e")
        risky = _simple_stmt(ctx, clamp=False)
        recover = _simple_stmt(ctx, clamp=False)
        return (f"try {{\n  {risky}\n}} catch ({exc} {handler_var}) {{\n"
                f"  {recover}\n}}")
    return f'Sys.print("t=" + {_expr(ctx, 2)});'


def generate(seed: int) -> FuzzProgram:
    """A random valid program, deterministically derived from ``seed``."""
    rng = random.Random(f"minilang-fuzz:{seed}")
    prog = FuzzProgram(seed=seed,
                       main_args=(rng.randint(-3, 9), rng.randint(-3, 9)))
    names: List[str] = []

    # Occasionally: a bounded-recursion helper (depth for migrations).
    if rng.random() < 0.4:
        name = "rec"
        prog.methods.append((name, f"static int {name}(int a, int b)", [
            Slot("if (a <= 0) { return b; }", removable=False),
            Slot(f"return G.{name}(a - 1, (b + a) % {CLAMP});",
                 removable=False),
        ]))
        names.append(name)

    # Helper methods forming a call DAG (m_i may call only m_j, j < i).
    for k in range(rng.randint(1, 3)):
        name = f"m{k}"
        ctx = _Ctx(rng, list(names))
        slots = [Slot(_stmt(ctx)) for _ in range(rng.randint(2, 6))]
        slots.append(Slot(f"return {_expr(ctx, 2)};", removable=False))
        prog.methods.append((name, f"static int {name}(int a, int b)",
                             slots))
        names.append(name)

    # main: some local work, then calls into the DAG.
    ctx = _Ctx(rng, list(names))
    slots = [Slot(_stmt(ctx)) for _ in range(rng.randint(1, 4))]
    ret_terms = [f"G.{n}({_expr(ctx, 1)}, {_expr(ctx, 1)})"
                 for n in rng.sample(names, rng.randint(1, len(names)))]
    if rng.random() < 0.5:
        slots.append(Slot(f'Sys.print("acc=" + S.acc);'))
    slots.append(Slot("return " + " + ".join(ret_terms) + ";",
                      removable=False))
    prog.methods.append(("main", "static int main(int a, int b)", slots))
    return prog


# -- differential checking -----------------------------------------------------

#: dispatch configurations checked against the legacy oracle.  The fast
#: modes pin ``jit=False`` so they stay a pure tier-1 differential no
#: matter what ``REPRO_JIT`` says; the tier-2 modes turn the
#: specializing JIT on explicitly.
MODES = [("fast", dict(dispatch="fast", fuse=True, jit=False)),
         ("fast-nofuse", dict(dispatch="fast", fuse=False, jit=False))]

#: tier-2 configurations: the specializing JIT above each fast mode.
#: Fuzzed under a hotness threshold of 1 (:func:`_jit_threshold`) so
#: even one-shot generated programs compile and run the closures.
TIER2_MODES = [("tier2", dict(dispatch="fast", fuse=True, jit=True)),
               ("tier2-nofuse", dict(dispatch="fast", fuse=False,
                                     jit=True))]


@contextmanager
def _jit_threshold(n: int):
    """Temporarily lower the tier-up hotness threshold (the machine
    reads the module global at loop entry, so this takes effect for
    every run inside the block)."""
    import repro.vm.jit as _jit
    old = _jit.JIT_THRESHOLD
    _jit.JIT_THRESHOLD = n
    try:
        yield
    finally:
        _jit.JIT_THRESHOLD = old


def _observe(classes, args, **kw) -> Tuple[Any, ...]:
    m = Machine(classes, **kw)
    try:
        result = m.call("G", "main", list(args))
        err = None
    except UncaughtGuestException as exc:
        result = None
        err = (exc.exc.class_name, exc.exc.fields.get("msg"))
    return result, err, tuple(m.stdout), m.instr_count, m.clock


#: instruction budget per generated program (rare compositions — e.g. a
#: large-argument recursion inside a loop — can reach millions of
#: instructions; they are valid but too slow to differential-run)
MAX_INSTRS = 1_500_000

SKIPPED = "skipped"


def divergence(source: str, args: Tuple[int, int],
               build: str = "original",
               modes: Optional[List[Tuple[str, Dict[str, Any]]]] = None
               ) -> Optional[str]:
    """None if every mode in ``modes`` (default: the tier-1 fast
    modes) matches the legacy oracle, ``SKIPPED`` if the program
    exceeds the instruction budget, else a human-readable description
    of the first mismatch."""
    try:
        classes = preprocess_program(compile_source(source), build)
    except CompileError as exc:
        return f"generator produced invalid program: {exc}"
    # One legacy run doubles as budget screen and reference oracle.
    screen = Machine(classes, dispatch="legacy")
    thread = screen.spawn("G", "main", list(args))
    if screen.run(thread, max_instrs=MAX_INSTRS) == "limit":
        return SKIPPED
    err = None
    if thread.uncaught is not None:
        err = (thread.uncaught.class_name, thread.uncaught.fields.get("msg"))
    ref = (thread.result, err, tuple(screen.stdout), screen.instr_count,
           screen.clock)
    for label, kw in (MODES if modes is None else modes):
        got = _observe(classes, args, **kw)
        for what, a, b in zip(("result", "uncaught", "stdout",
                               "instr_count", "clock"), ref, got):
            if what == "clock":
                ok = math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
            else:
                ok = a == b
            if not ok:
                return f"[{label}/{build}] {what}: legacy={a!r} {label}={b!r}"
    return None


def tier2_divergence(source: str, args: Tuple[int, int],
                     build: str = "original") -> Optional[str]:
    """The tier-2 differential: both JIT modes vs the legacy oracle,
    under a hotness threshold of 1 so the generated program's methods
    actually compile.  Same observables as :func:`divergence` —
    including exact ``instr_count`` and clock agreement to 1e-9."""
    with _jit_threshold(1):
        return divergence(source, args, build, modes=TIER2_MODES)


def _compiles(source: str) -> bool:
    try:
        compile_source(source)
        return True
    except CompileError:
        return False


def shrink(prog: FuzzProgram, build: str = "original",
           check=None) -> FuzzProgram:
    """Greedy statement deletion while the divergence persists.

    ``check(source, args)`` defaults to the dispatch differential; the
    migration fuzzer passes its own oracle so failures shrink against
    the same capture schedule."""
    if check is None:
        def check(source, args):
            return divergence(source, args, build)
    improved = True
    while improved:
        improved = False
        for site in prog.removable_sites():
            cand = prog.without(site)
            src = cand.render()
            if not _compiles(src):
                continue
            if check(src, prog.main_args) not in (None, SKIPPED):
                prog = cand
                improved = True
                break
    return prog


# -- migration-path fuzzing ----------------------------------------------------

#: instruction budget for the migration oracle run (the migrated replay
#: roughly doubles the work, so the screen is tighter than dispatch's)
MIG_MAX_INSTRS = 400_000


def migration_divergence(source: str, args: Tuple[int, int],
                         seed: int) -> Optional[str]:
    """Differentially check the SOD migration path at a seeded-random
    capture point.

    The program runs once straight-line (legacy dispatch) as the
    oracle, then again under the engine: frozen after a random number
    of instructions, its top frames captured and migrated to a second
    node, executed there, completed home, and the residual stack run
    to the end.  Returns None on agreement of result / uncaught class /
    interleaved stdout, ``SKIPPED`` when the random point is not
    capturable (too shallow, segment died remotely, over budget), else
    a description of the mismatch.

    instr_count/clock are deliberately *not* compared: migration
    charges capture/transfer/restore costs by design.
    """
    import random as _random

    from repro.cluster import gige_cluster
    from repro.migration import SODEngine
    from repro.migration.segments import max_migratable

    try:
        classes = preprocess_program(compile_source(source), "faulting")
    except CompileError as exc:
        return f"generator produced invalid program: {exc}"

    oracle = Machine(classes, dispatch="legacy")
    thread = oracle.spawn("G", "main", list(args))
    if oracle.run(thread, max_instrs=MIG_MAX_INSTRS) == "limit":
        return SKIPPED
    ref_err = None
    if thread.uncaught is not None:
        ref_err = (thread.uncaught.class_name,
                   thread.uncaught.fields.get("msg"))
    ref = (thread.result, ref_err, tuple(oracle.stdout))
    total = oracle.instr_count
    if total < 20:
        return SKIPPED  # nothing meaningful to freeze mid-run

    rng = _random.Random(f"minilang-mig:{seed}")
    cut = rng.randint(10, total - 1)
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    t = eng.spawn(home, "G", "main", list(args))
    eng.run(home, t, max_instrs=cut)
    if t.finished:
        # A guest exception ended the run before the cut: nothing to
        # migrate, but the replay itself must still match the oracle.
        err = None
        if t.uncaught is not None:
            err = (t.uncaught.class_name, t.uncaught.fields.get("msg"))
        got = (t.result, err, tuple(home.machine.stdout))
        if got != ref:
            return f"[mig/pre-capture] legacy={ref!r} engine={got!r}"
        return None

    nmax = min(max_migratable(t), t.depth() - 1)
    if nmax < 1:
        return SKIPPED  # frozen too shallow to ship anything
    nframes = rng.randint(1, nmax)
    try:
        worker, wt, _rec = eng.migrate(home, t, "node1", nframes)
    except MigrationError:
        return SKIPPED  # not capturable at this point (pinned frame...)
    # Prints during the run-to-MSP inside migrate() happened at home
    # before the segment left: snapshot *after* capture.
    pre = len(home.machine.stdout)
    eng.run(worker, wt)
    if wt.uncaught is not None:
        # The exception escaped the migrated segment; residual frames
        # at home may hold the matching handler, which single-segment
        # completion does not model — release the worker state and
        # treat the point as not comparable.
        eng.abandon_segment(worker, wt)
        return SKIPPED
    eng.complete_segment(worker, wt, home, t, nframes)
    eng.run(home, t)
    err = None
    if t.uncaught is not None:
        err = (t.uncaught.class_name, t.uncaught.fields.get("msg"))
    stdout = (tuple(home.machine.stdout[:pre])
              + tuple(worker.machine.stdout)
              + tuple(home.machine.stdout[pre:]))
    got = (t.result, err, stdout)
    for what, a, b in zip(("result", "uncaught", "stdout"), ref, got):
        if a != b:
            return (f"[mig cut={cut} nframes={nframes}] {what}: "
                    f"legacy={a!r} migrated={b!r}")
    return None


def tier2_migration_divergence(source: str, args: Tuple[int, int],
                               seed: int) -> Optional[str]:
    """Force deoptimization mid-compiled-region, then migrate the
    deoptimized frame.

    The engine run keeps the tier-2 JIT on (hotness threshold 1, so
    the generated program's methods compile) and freezes the thread
    with a scheduler ``quantum`` at a seeded-random instruction cut.
    Unlike ``max_instrs`` — which forces the legacy loop — the quantum
    is polled at safepoints *inside* compiled closures, so the freeze
    lands with ``frame.pc`` materialized out of a compiled region: the
    frozen frames are deoptimized tier-2 frames.  Those frames are
    then SOD-captured, migrated to a second node, executed there
    (the worker tiers up independently), completed home, and the
    result / uncaught class / interleaved stdout compared against the
    straight-line legacy oracle.
    """
    import random as _random

    from repro.cluster import gige_cluster
    from repro.migration import SODEngine
    from repro.migration.segments import max_migratable

    try:
        classes = preprocess_program(compile_source(source), "faulting")
    except CompileError as exc:
        return f"generator produced invalid program: {exc}"

    oracle = Machine(classes, dispatch="legacy")
    thread = oracle.spawn("G", "main", list(args))
    if oracle.run(thread, max_instrs=MIG_MAX_INSTRS) == "limit":
        return SKIPPED
    ref_err = None
    if thread.uncaught is not None:
        ref_err = (thread.uncaught.class_name,
                   thread.uncaught.fields.get("msg"))
    ref = (thread.result, ref_err, tuple(oracle.stdout))
    total = oracle.instr_count
    if total < 20:
        return SKIPPED  # nothing meaningful to freeze mid-run

    rng = _random.Random(f"minilang-t2mig:{seed}")
    cut = rng.randint(10, total - 1)
    with _jit_threshold(1):
        eng = SODEngine(gige_cluster(2), classes)
        home = eng.host("node0")
        t = eng.spawn(home, "G", "main", list(args))
        eng.run(home, t, quantum=cut)
        if t.finished:
            err = None
            if t.uncaught is not None:
                err = (t.uncaught.class_name, t.uncaught.fields.get("msg"))
            got = (t.result, err, tuple(home.machine.stdout))
            if got != ref:
                return f"[t2mig/pre-capture] legacy={ref!r} engine={got!r}"
            return None
        if home.machine.jit_compiles == 0:
            return SKIPPED  # nothing tiered up before the cut

        nmax = min(max_migratable(t), t.depth() - 1)
        if nmax < 1:
            return SKIPPED  # frozen too shallow to ship anything
        nframes = rng.randint(1, nmax)
        try:
            worker, wt, _rec = eng.migrate(home, t, "node1", nframes)
        except MigrationError:
            return SKIPPED  # not capturable at this point
        pre = len(home.machine.stdout)
        eng.run(worker, wt)
        if wt.uncaught is not None:
            eng.abandon_segment(worker, wt)
            return SKIPPED  # handler may live in residual home frames
        eng.complete_segment(worker, wt, home, t, nframes)
        eng.run(home, t)
    err = None
    if t.uncaught is not None:
        err = (t.uncaught.class_name, t.uncaught.fields.get("msg"))
    stdout = (tuple(home.machine.stdout[:pre])
              + tuple(worker.machine.stdout)
              + tuple(home.machine.stdout[pre:]))
    got = (t.result, err, stdout)
    for what, a, b in zip(("result", "uncaught", "stdout"), ref, got):
        if a != b:
            return (f"[t2mig cut={cut} nframes={nframes} "
                    f"compiles={home.machine.jit_compiles}] {what}: "
                    f"legacy={a!r} migrated={b!r}")
    return None


def run_tier2_migration_fuzz(base_seed: int, count: int) -> Optional[str]:
    """Fuzz the deopt-at-capture + migration path over ``count``
    generated programs.  Returns None, or a failure report with the
    minimized program."""
    checked = 0
    for i in range(count):
        seed = base_seed + i
        prog = generate(seed)
        source = prog.render()
        diff = tier2_migration_divergence(source, prog.main_args, seed)
        if diff == SKIPPED:
            continue
        checked += 1
        if diff is not None:
            small = shrink(
                prog,
                check=lambda s, a: tier2_migration_divergence(s, a, seed))
            return (f"tier-2 migration divergence at seed={seed} "
                    f"args={prog.main_args}:\n{diff}\n"
                    f"--- minimized program ---\n{small.render()}\n")
    if checked == 0:
        return (f"tier-2 migration fuzz checked 0/{count} programs "
                f"(every capture point skipped) — generator drift?")
    return None


def multihop_divergence(source: str, args: Tuple[int, int],
                        seed: int) -> Optional[str]:
    """Differentially check a Fig. 1c *multi-hop chain* at seeded-random
    capture points.

    The program freezes at a random cut, its top frames migrate
    home -> node1, the segment runs a random slice there, then re-hops
    node1 -> node2 (and, half the time, node2 -> node3) with its effects
    flushed home at each hop; the final hop runs to completion and the
    results return *directly home* (never back through the chain).
    Result / uncaught class / interleaved stdout must match the
    straight-line oracle.
    """
    import random as _random

    from repro.cluster import gige_cluster
    from repro.migration import SODEngine
    from repro.migration.segments import max_migratable

    try:
        classes = preprocess_program(compile_source(source), "faulting")
    except CompileError as exc:
        return f"generator produced invalid program: {exc}"

    oracle = Machine(classes, dispatch="legacy")
    thread = oracle.spawn("G", "main", list(args))
    if oracle.run(thread, max_instrs=MIG_MAX_INSTRS) == "limit":
        return SKIPPED
    ref_err = None
    if thread.uncaught is not None:
        ref_err = (thread.uncaught.class_name,
                   thread.uncaught.fields.get("msg"))
    ref = (thread.result, ref_err, tuple(oracle.stdout))
    total = oracle.instr_count
    if total < 40:
        return SKIPPED  # too little to slice into chain hops

    rng = _random.Random(f"minilang-mhop:{seed}")
    cut = rng.randint(10, total - 1)
    eng = SODEngine(gige_cluster(4), classes)
    home = eng.host("node0")
    t = eng.spawn(home, "G", "main", list(args))
    eng.run(home, t, max_instrs=cut)
    if t.finished:
        err = None
        if t.uncaught is not None:
            err = (t.uncaught.class_name, t.uncaught.fields.get("msg"))
        got = (t.result, err, tuple(home.machine.stdout))
        if got != ref:
            return f"[mhop/pre-capture] legacy={ref!r} engine={got!r}"
        return None

    nmax = min(max_migratable(t), t.depth() - 1)
    if nmax < 1:
        return SKIPPED
    nframes = rng.randint(1, nmax)
    try:
        worker, wt, _rec = eng.migrate(home, t, "node1", nframes)
    except MigrationError:
        return SKIPPED
    pre = len(home.machine.stdout)

    # Chain of 2-3 hops: run a random slice on each intermediate hop,
    # then push the (whole) segment onward, anchored to home.
    hops = ["node2"] + (["node3"] if rng.random() < 0.5 else [])
    chain = [worker]
    for dst in hops:
        slice_instrs = rng.randint(1, max(1, total // 2))
        eng.run(worker, wt, max_instrs=slice_instrs)
        if wt.finished:
            break
        try:
            worker, wt, _rec = eng.rehop_segment(worker, wt, dst, home)
        except MigrationError:
            eng.abandon_segment(worker, wt)
            return SKIPPED
        chain.append(worker)
    if not wt.finished:
        eng.run(worker, wt)
    if wt.uncaught is not None:
        # Residual frames at home may hold the matching handler, which
        # direct segment completion does not model.
        eng.abandon_segment(worker, wt)
        return SKIPPED
    eng.complete_segment(worker, wt, home, t, nframes)
    eng.run(home, t)
    err = None
    if t.uncaught is not None:
        err = (t.uncaught.class_name, t.uncaught.fields.get("msg"))
    stdout = tuple(home.machine.stdout[:pre])
    for hop_host in chain:
        stdout += tuple(hop_host.machine.stdout)
    stdout += tuple(home.machine.stdout[pre:])
    got = (t.result, err, stdout)
    for what, a, b in zip(("result", "uncaught", "stdout"), ref, got):
        if a != b:
            return (f"[mhop cut={cut} nframes={nframes} "
                    f"chain={[h.node_name for h in chain]}] {what}: "
                    f"legacy={a!r} migrated={b!r}")
    return None


def run_multihop_fuzz(base_seed: int, count: int) -> Optional[str]:
    """Fuzz the multi-hop re-offload path over ``count`` generated
    programs.  Returns None, or a failure report with the minimized
    program."""
    checked = 0
    for i in range(count):
        seed = base_seed + i
        prog = generate(seed)
        source = prog.render()
        diff = multihop_divergence(source, prog.main_args, seed)
        if diff == SKIPPED:
            continue
        checked += 1
        if diff is not None:
            small = shrink(
                prog,
                check=lambda s, a: multihop_divergence(s, a, seed))
            return (f"multi-hop divergence at seed={seed} "
                    f"args={prog.main_args}:\n{diff}\n"
                    f"--- minimized program ---\n{small.render()}\n")
    if checked == 0:
        return (f"multi-hop fuzz checked 0/{count} programs "
                f"(every capture point skipped) — generator drift?")
    return None


def run_migration_fuzz(base_seed: int, count: int) -> Optional[str]:
    """Fuzz the migration path over ``count`` generated programs, each
    captured at a seeded-random point.  Returns None, or a failure
    report with the minimized program."""
    checked = 0
    for i in range(count):
        seed = base_seed + i
        prog = generate(seed)
        source = prog.render()
        diff = migration_divergence(source, prog.main_args, seed)
        if diff == SKIPPED:
            continue
        checked += 1
        if diff is not None:
            small = shrink(
                prog,
                check=lambda s, a: migration_divergence(s, a, seed))
            return (f"migration divergence at seed={seed} "
                    f"args={prog.main_args}:\n{diff}\n"
                    f"--- minimized program ---\n{small.render()}\n")
    if checked == 0:
        return (f"migration fuzz checked 0/{count} programs "
                f"(every capture point skipped) — generator drift?")
    return None


def run_fuzz(base_seed: int, count: int,
             faulting_every: int = 5) -> Optional[str]:
    """Fuzz ``count`` programs; every ``faulting_every``-th one is also
    checked on the preprocessed (flattened + handler-injected) build.
    Returns None, or a failure report with the minimized program."""
    for i in range(count):
        seed = base_seed + i
        prog = generate(seed)
        source = prog.render()
        builds = ["original"]
        if i % faulting_every == 0:
            builds.append("faulting")
        for build in builds:
            diff = divergence(source, prog.main_args, build)
            if diff == SKIPPED:
                break  # over budget: still a generated program, move on
            if diff is not None:
                small = shrink(prog, build)
                return (f"fast/legacy divergence at seed={seed} "
                        f"args={prog.main_args} build={build}:\n{diff}\n"
                        f"--- minimized program ---\n{small.render()}\n")
    return None


def run_tier2_fuzz(base_seed: int, count: int,
                   faulting_every: int = 5) -> Optional[str]:
    """The tier-2 differential over ``count`` generated programs (every
    ``faulting_every``-th also on the faulting build).  Returns None,
    or a failure report with the minimized program."""
    for i in range(count):
        seed = base_seed + i
        prog = generate(seed)
        source = prog.render()
        builds = ["original"]
        if i % faulting_every == 0:
            builds.append("faulting")
        for build in builds:
            diff = tier2_divergence(source, prog.main_args, build)
            if diff == SKIPPED:
                break
            if diff is not None:
                small = shrink(
                    prog,
                    check=lambda s, a: tier2_divergence(s, a, build))
                return (f"tier2/legacy divergence at seed={seed} "
                        f"args={prog.main_args} build={build}:\n{diff}\n"
                        f"--- minimized program ---\n{small.render()}\n")
    return None
