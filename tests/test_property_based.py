"""Property-based tests (hypothesis) on core invariants, plus the
grammar-based MiniLang differential fuzzer (see ``minilang_fuzz.py``)."""

import os

from hypothesis import given, settings, strategies as st

from repro.bytecode.verifier import stack_depths, verify
from repro.cluster import gige_cluster
from repro.lang import compile_source
from repro.migration import GraphDecoder, GraphEncoder
from repro.preprocess import flatten, preprocess_program
from repro.sim import Environment
from repro.units import mb
from repro.vm import Machine

# -- expression compiler vs python oracle -------------------------------------

_int_expr = st.recursive(
    st.integers(min_value=-50, max_value=50).map(str),
    lambda inner: st.tuples(inner, st.sampled_from(["+", "-", "*"]), inner)
    .map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
    max_leaves=12,
)


@given(_int_expr)
@settings(max_examples=60, deadline=None)
def test_integer_expressions_match_python(expr):
    src = f"class T {{ static int f() {{ return {expr}; }} }}"
    got = Machine(compile_source(src)).call("T", "f")
    assert got == eval(expr)


@given(st.integers(min_value=-200, max_value=200),
       st.integers(min_value=1, max_value=20))
@settings(max_examples=50, deadline=None)
def test_java_division_and_modulo_identity(a, b):
    src = f"""class T {{ static int f() {{
      return ({a} / {b}) * {b} + ({a} % {b});
    }} }}"""
    assert Machine(compile_source(src)).call("T", "f") == a


# -- flattening preserves semantics on generated programs ------------------------

@given(st.lists(st.integers(min_value=-9, max_value=9), min_size=1,
                max_size=6),
       st.integers(min_value=0, max_value=12))
@settings(max_examples=30, deadline=None)
def test_flatten_preserves_loop_accumulation(coeffs, n):
    body = " + ".join(f"{c} * i" for c in coeffs)
    src = f"""class T {{ static int f(int n) {{
      int s = 0;
      for (int i = 0; i < n; i = i + 1) {{ s = s + ({body}); }}
      return s;
    }} }}"""
    classes = compile_source(src)
    ref = Machine(classes).call("T", "f", [n])
    for build in ("flattened", "faulting", "checking"):
        pp = preprocess_program(classes, build)
        assert Machine(pp).call("T", "f", [n]) == ref


@given(st.integers(min_value=0, max_value=10))
@settings(max_examples=20, deadline=None)
def test_flattened_code_has_empty_stack_at_every_line_start(n):
    src = f"""class T {{
      static int g(int x) {{ return x * 3; }}
      static int f(int n) {{
        int acc = {n};
        for (int i = 0; i < n; i = i + 1) {{
          acc = T.g(acc) + T.g(i) - acc / 2;
        }}
        return acc;
      }} }}"""
    for code in compile_source(src)["T"].methods.values():
        out = flatten(code).code
        verify(out)
        depths = stack_depths(out)
        for bci, _ in out.line_table:
            assert depths.get(bci, 0) == 0
        assert out.msps


# -- graph encode/decode roundtrip --------------------------------------------------

_value = st.one_of(st.integers(min_value=-1000, max_value=1000),
                   st.booleans(), st.text(max_size=8),
                   st.floats(allow_nan=False, allow_infinity=False,
                             width=32))


@given(st.lists(_value, min_size=0, max_size=8))
@settings(max_examples=40, deadline=None)
def test_graph_roundtrip_primitive_arrays(values)\
        :
    src = "class Box { int v; } class T { static int f() { return 0; } }"
    m = Machine(compile_source(src))
    kind = "ref"
    arr = m.heap.new_array("ref", len(values), 8)
    # wrap each value in a Box-like instance chain via fields when int
    arr.data[:] = list(values)
    enc = GraphEncoder(this_node="w", eager=True)
    root = enc.encode(arr)
    dec = GraphDecoder(m.heap, m.loader, "w", enc.graph)
    out = dec.decode(root)
    assert list(out.data) == list(values)
    assert enc.nbytes > 0


@given(st.integers(min_value=1, max_value=12))
@settings(max_examples=20, deadline=None)
def test_graph_roundtrip_linked_list(n):
    src = "class L { int v; L next; } class T { static int f() { return 0; } }"
    m = Machine(compile_source(src))
    head = None
    for i in range(n):
        node = m.heap.new_instance(m.loader.load("L"))
        node.fields["v"] = i
        node.fields["next"] = head
        head = node
    enc = GraphEncoder(this_node="w", eager=True)
    root = enc.encode(head)
    out = GraphDecoder(m.heap, m.loader, "w", enc.graph).decode(root)
    seen = []
    while out is not None:
        seen.append(out.fields["v"])
        out = out.fields["next"]
    assert seen == list(range(n - 1, -1, -1))


# -- FS.scan consistency with FS.read + indexOf ----------------------------------------

@given(st.integers(min_value=0, max_value=mb(2) - 64),
       st.integers(min_value=16, max_value=4096))
@settings(max_examples=30, deadline=None)
def test_fs_scan_agrees_with_read_indexof(plant_off, window):
    cluster = gige_cluster(1)
    path = f"/prop/f{plant_off}_{window}"
    cluster.fs.host_file(cluster.node("node0"), path, mb(2),
                         plant=[(plant_off, "NEEDLE99")])
    src = f"""class T {{
      static int scan(int off, int len) {{
        return FS.scan("{path}", off, len, "NEEDLE99");
      }}
      static int via_read(int off, int len) {{
        str s = FS.read("{path}", off, len);
        int idx = Sys.indexOf(s, "NEEDLE99");
        if (idx < 0) {{ return -1; }}
        return off + idx;
      }} }}"""
    m = Machine(compile_source(src), node=cluster.node("node0"),
                fs=cluster.fs)
    lo = max(0, plant_off - window // 2)
    got_scan = m.call("T", "scan", [lo, window])
    got_read = m.call("T", "via_read", [lo, window])
    assert got_scan == got_read


# -- simulation kernel ordering ------------------------------------------------------

@given(st.lists(st.floats(min_value=0.001, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_sim_kernel_fires_in_time_order(delays):
    env = Environment()
    fired = []

    def proc(d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# -- migration correctness on randomized programs ---------------------------------------

@given(st.integers(min_value=1, max_value=15),
       st.integers(min_value=2, max_value=9))
@settings(max_examples=15, deadline=None)
def test_migration_equivalence_randomized(n, modulus):
    from repro.migration import SODEngine
    src = f"""
    class Acc {{ int total; }}
    class T {{
      static Acc acc;
      static int main(int n) {{
        T.acc = new Acc();
        int r = T.work(n);
        return r + T.acc.total;
      }}
      static int work(int n) {{
        int s = 0;
        for (int i = 0; i < n; i = i + 1) {{
          s = s + i % {modulus};
          T.acc.total = T.acc.total + 1;
        }}
        return s;
      }}
    }}"""
    classes = preprocess_program(compile_source(src), "faulting")
    ref = Machine(classes).call("T", "main", [n])
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    t = eng.spawn(home, "T", "main", [n])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "work")
    result, _rec = eng.run_segment_remote(home, t, "node1", 1)
    assert result == ref


# -- grammar-based differential fuzzing ---------------------------------------
#
# minilang_fuzz generates random-but-valid MiniLang programs and checks
# the fast (pre-decoded/fused/inline-cached) interpreter against the
# legacy loop on stdout/result/uncaught/instr_count/clock, shrinking
# failures to a minimal program.  Seeds derive from string-seeded
# Random (SHA-512), so pytest-randomly cannot perturb the stream;
# override with REPRO_FUZZ_SEED / REPRO_FUZZ_COUNT.

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260726"))
FUZZ_COUNT = int(os.environ.get("REPRO_FUZZ_COUNT", "200"))


def test_minilang_fuzz_generator_is_deterministic():
    from minilang_fuzz import generate

    a, b = generate(FUZZ_SEED), generate(FUZZ_SEED)
    assert a.render() == b.render() and a.main_args == b.main_args
    assert generate(FUZZ_SEED + 1).render() != a.render()


def test_minilang_fuzz_shrinker_removes_statements():
    from minilang_fuzz import generate

    prog = generate(FUZZ_SEED)
    sites = prog.removable_sites()
    assert sites  # generated programs have shrinkable statements
    smaller = prog.without(sites[0])
    assert len(smaller.render()) < len(prog.render())
    # return statements are never removable
    for mi, si in smaller.removable_sites():
        assert not smaller.methods[mi][2][si].text.startswith("return ")


def test_minilang_fuzz_differential_fast_vs_legacy():
    from minilang_fuzz import run_fuzz

    failure = run_fuzz(FUZZ_SEED, FUZZ_COUNT)
    assert failure is None, failure


def test_minilang_fuzz_generates_switch_and_virtual_dispatch():
    """The generator actually reaches the new grammar: a window of the
    seeded stream must contain switch statements, V-hierarchy objects,
    and float arithmetic (guards against probability-band drift
    silently turning the new coverage off)."""
    from minilang_fuzz import generate

    sources = [generate(FUZZ_SEED + i).render() for i in range(40)]
    assert sum("switch (" in s for s in sources) >= 5
    assert sum("new VA()" in s or "new VB()" in s for s in sources) >= 5
    assert sum("float f" in s for s in sources) >= 5


def test_minilang_fuzz_differential_tier2_vs_legacy():
    """Differential fuzz of the *tier-2 JIT*: both jit modes (fused and
    unfused) against the legacy oracle on stdout / result / uncaught /
    instr_count / clock, with the hotness threshold dropped to 1 so the
    generated programs' methods actually compile into closures."""
    from minilang_fuzz import run_tier2_fuzz

    count = int(os.environ.get("REPRO_FUZZ_T2_COUNT", "120"))
    failure = run_tier2_fuzz(FUZZ_SEED, count)
    assert failure is None, failure


def test_minilang_fuzz_tier2_deopt_at_capture_and_migration():
    """Forced deopt mid-compiled-region: each program runs with the JIT
    on and is frozen by a scheduler quantum at a seeded-random cut —
    the quantum is polled at safepoints *inside* compiled closures, so
    the freeze deoptimizes live tier-2 frames — then the deoptimized
    frames are SOD-migrated to a second node, completed home, and
    result/uncaught/stdout compared against the straight-line oracle."""
    from minilang_fuzz import run_tier2_migration_fuzz

    count = int(os.environ.get("REPRO_FUZZ_T2MIG_COUNT", "40"))
    failure = run_tier2_migration_fuzz(FUZZ_SEED, count)
    assert failure is None, failure


def test_minilang_fuzz_migration_at_random_capture_points():
    """Differential fuzz of the *migration* path: every generated
    program is frozen at a seeded-random instruction count, its top
    frames SOD-migrated to a second node, completed home, and the
    final result/uncaught/stdout compared against the straight-line
    oracle.  (This is the harness that caught on-demand-loaded classes
    linking default statics instead of the home's current values.)"""
    from minilang_fuzz import run_migration_fuzz

    count = int(os.environ.get("REPRO_FUZZ_MIG_COUNT", "60"))
    failure = run_migration_fuzz(FUZZ_SEED, count)
    assert failure is None, failure


def test_minilang_fuzz_multihop_chains_at_random_capture_points():
    """Differential fuzz of the Fig. 1c *multi-hop* path: each program
    freezes at a seeded-random cut, migrates home -> node1, runs a
    random slice, re-hops node1 -> node2 (sometimes -> node3) with
    effects flushed home at every hop, completes directly home, and
    the final result/uncaught/stdout must match the straight-line
    oracle."""
    from minilang_fuzz import run_multihop_fuzz

    count = int(os.environ.get("REPRO_FUZZ_MHOP_COUNT", "40"))
    failure = run_multihop_fuzz(FUZZ_SEED, count)
    assert failure is None, failure
