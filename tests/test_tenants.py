"""Multi-tenant QoS: tenants, weighted fair queueing, namespace
pooling, adaptive overload control, and graceful degradation.

The load-bearing guarantees tested here:

* per-tenant arrival streams are *independent* — adding or removing a
  tenant leaves every other tenant's request sequence byte-identical;
* an empty tenant configuration is inert — ``tenants=TenantSet([])``
  serves byte-identically to the legacy single-tenant path;
* pooled namespaces recycle without leaking state — every request
  still matches its solo oracle even when the whole tenant shares one
  pre-linked namespace;
* the adaptive controller learns the latency knee, sheds by priority
  with hysteresis (no admit/shed flapping at the threshold), and caps
  an abusive tenant at its fair share;
* weighted fair queueing actually isolates: a tenant flooding at 10x
  its fair rate absorbs the sheds while the others' latency holds.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.chaos.fuzz import fuzz_one
from repro.cluster import serve_cluster
from repro.errors import ClusterError
from repro.lang import compile_source
from repro.preprocess import preprocess_program
from repro.serve import (AdaptiveShed, FairStore, LoadGenerator, LoadIndex,
                         Tenant, TenantSet, parse_tenants, serve_mix)
from repro.sim import Environment
from repro.vm.machine import Machine
from repro.workloads.mixes import MIXES

# -- tenant configuration ------------------------------------------------------


def test_tenant_validation():
    with pytest.raises(ClusterError):
        Tenant("")
    with pytest.raises(ClusterError):
        Tenant("a", weight=0)
    with pytest.raises(ClusterError):
        Tenant("a", priority=-1)
    with pytest.raises(ClusterError):
        Tenant("a", pool=-1)
    with pytest.raises(ClusterError):
        Tenant("a", rate_factor=0)
    with pytest.raises(ClusterError):
        TenantSet([Tenant("a"), Tenant("a", weight=2)])


def test_tenant_round_trips_through_dict():
    t = Tenant("gold", weight=3.0, priority=1, slo=0.05, pool=2,
               rate_factor=0.5)
    assert Tenant.from_dict(t.to_dict()) == t
    ts = TenantSet([t, Tenant("free")])
    back = TenantSet.from_dict(ts.to_dict())
    assert back.names() == ["gold", "free"]
    assert back.get("gold") == t
    assert TenantSet.from_dict(None) is None


def test_parse_tenants_cli_syntax():
    ts = parse_tenants("gold:w=3:p=0:slo=0.05,silver:weight=2:priority=1,"
                       "free:r=10:pool=0")
    assert ts.names() == ["gold", "silver", "free"]
    assert ts.get("gold").weight == 3.0 and ts.get("gold").slo == 0.05
    assert ts.get("silver").priority == 1
    assert ts.get("free").rate_factor == 10.0 and ts.get("free").pool == 0
    assert ts.share("gold") == pytest.approx(0.5)
    with pytest.raises(ClusterError):
        parse_tenants("a:x=1")
    with pytest.raises(ClusterError):
        parse_tenants("a:w")
    with pytest.raises(ClusterError):
        parse_tenants(" , ")


# -- weighted fair queueing ----------------------------------------------------


def _item(tenant, i):
    return SimpleNamespace(tenant=tenant, i=i)


def _drain(store, n):
    out = []
    for _ in range(n):
        ev = store.get()
        assert ev.triggered
        out.append(ev.value)
    return out


def test_fairstore_weighted_shares():
    """With full backlog, dequeues split proportionally to weight and
    the order is a pure function of the queue state (stride
    scheduling)."""
    env = Environment()
    s = FairStore(env, weights={"a": 2.0, "b": 1.0})
    for i in range(12):
        s.put(_item("a", i))
        s.put(_item("b", i))
    first = [x for x in _drain(s, 9)]
    kinds = [x.tenant for x in first]
    # a has stride 1/2, b stride 1: every window of 3 serves a twice.
    assert kinds.count("a") == 6 and kinds.count("b") == 3
    # FIFO within a tenant survives the interleave.
    for name in ("a", "b"):
        order = [x.i for x in first if x.tenant == name]
        assert order == sorted(order)


def test_fairstore_deterministic_order():
    """Two identically-fed stores dequeue identically (name tie-break,
    no hash-order dependence)."""
    def feed():
        s = FairStore(Environment(), weights={"x": 1.0, "y": 3.0})
        for i in range(8):
            s.put(_item("y", i))
            s.put(_item("x", i))
            s.put(_item(None, i))  # root bucket
        return [(it.tenant, it.i) for it in _drain(s, 24)]
    assert feed() == feed()


def test_fairstore_idle_tenant_forfeits_credit():
    """A tenant that slept through 10 dequeues does not get a 10-item
    burst when it wakes: its pass clamps up to the virtual time."""
    env = Environment()
    s = FairStore(env, weights={"a": 1.0, "b": 1.0})
    for i in range(10):
        s.put(_item("a", i))
    _drain(s, 10)  # a's pass is now ~10; b never queued
    for i in range(4):
        s.put(_item("b", i))
        s.put(_item("a", 10 + i))
    order = [x.tenant for x in _drain(s, 8)]
    # b was clamped to the virtual time, so service alternates instead
    # of b draining all four first.
    assert order[:4] != ["b", "b", "b", "b"]
    assert order.count("b") == 4 and order.count("a") == 4


def test_fairstore_store_interface():
    """remove(), items order, len, and the blocked-getter handoff."""
    env = Environment()
    s = FairStore(env, weights={"a": 2.0})
    ev = s.get()
    assert not ev.triggered
    s.put(_item("a", 0))     # direct handoff to the blocked getter
    assert ev.triggered and ev.value.i == 0 and len(s) == 0
    items = [_item("a", 1), _item("b", 2), _item("a", 3)]
    s.put_many(items)
    assert len(s) == 3
    # The handoff charged a's pass one stride, so b's fresh bucket now
    # sorts first; FIFO order within a survives.
    assert [x.i for x in s.items] == [2, 1, 3]
    assert s.remove(items[1]) and not s.remove(items[1])
    assert len(s) == 2
    assert [x.i for x in _drain(s, 2)] == [1, 3]


# -- per-tenant arrival streams ------------------------------------------------


def _stream_key(rows):
    return [(t, s.program, tuple(s.args)) for t, s in rows]


def test_tenant_streams_are_independent():
    """Satellite 1: the per-tenant stream is a pure function of (mix,
    seed, name, rate) — adding a tenant leaves the others'
    byte-identical, removing one likewise."""
    mix = MIXES["parallel"]
    two = LoadGenerator(mix, 24, seed=7, arrival_rate=100.0,
                        tenants=parse_tenants("a,b"))
    three = LoadGenerator(mix, 24, seed=7, arrival_rate=100.0,
                          tenants=parse_tenants("a,b,c:r=4"))
    assert two.tenant_stream("a") == three.tenant_stream("a")
    assert two.tenant_stream("b") == three.tenant_stream("b")
    # The merged schedule only ever *truncates* a tenant's stream: the
    # per-tenant subsequence is a prefix of its standalone stream.
    for gen in (two, three):
        sched = gen.schedule()
        assert len(sched) == 24
        for name in gen.tenants.names():
            sub = [(w, s) for w, t, s in sched if t == name]
            assert sub == gen.tenant_stream(
                name, gen.tenants.get(name).rate_factor)[: len(sub)]


def test_tenant_stream_rate_scales_arrivals():
    mix = MIXES["parallel"]
    gen = LoadGenerator(mix, 32, seed=1, arrival_rate=50.0,
                        tenants=parse_tenants("slow,fast:r=10"))
    slow = gen.tenant_stream("slow")
    fast = gen.tenant_stream("fast", 10.0)
    assert fast[-1][0] < slow[-1][0] / 5  # 10x rate finishes much sooner
    # Arrival times are strictly increasing within a stream.
    assert all(a[0] < b[0] for a, b in zip(slow, slow[1:]))


def test_loadgen_validation():
    mix = MIXES["parallel"]
    with pytest.raises(ValueError):
        LoadGenerator(mix, 8, tenants=parse_tenants("a"))  # no rate
    with pytest.raises(ValueError):
        LoadGenerator(mix, 8, arrival_rate=0.0)
    # Legacy fixed-gap schedule: untenanted rows at i * interarrival.
    gen = LoadGenerator(mix, 4, seed=2, interarrival=0.5)
    rows = gen.schedule()
    assert [r[0] for r in rows] == [0.0, 0.5, 1.0, 1.5]
    assert all(r[1] is None for r in rows)


# -- inertness of the empty configuration --------------------------------------


def test_empty_tenant_set_is_inert():
    """``TenantSet([])`` must serve byte-identically to the legacy
    path — same discipline as the chaos layer's empty fault plan."""
    a = serve_mix(mix="parallel", n_nodes=4, n_requests=24)
    b = serve_mix(mix="parallel", n_nodes=4, n_requests=24,
                  tenants=TenantSet([]))
    assert json.dumps(a.to_dict(), sort_keys=True) == \
        json.dumps(b.to_dict(), sort_keys=True)


# -- namespace pooling ---------------------------------------------------------

_STATIC_SRC = """
class P {
  static int s;
  static str tag;
  static int work(int n) {
    for (int i = 0; i < n; i = i + 1) {
      P.s = P.s + 1;
      P.tag = "n" + P.s;
    }
    return P.s;
  }
}
"""


def test_revirginize_resets_dirty_cells_in_place():
    classes = preprocess_program(compile_source(_STATIC_SRC), "faulting")
    m = Machine(classes)
    ns = m.namespace("t:a:0")
    before = ns.load("P").statics
    t = m.spawn("P", "work", [3], namespace="t:a:0")
    m.run(t)
    assert before["s"] == 3 and before["tag"] == "n3"
    assert ns.revirginize() == 2  # exactly the two dirtied cells
    # The dict *object* survives (inline caches hold it by reference);
    # only its values reset.
    assert ns.load("P").statics is before
    assert before["s"] == 0 and before["tag"] == ""
    assert ns.revirginize() == 0  # already virgin: nothing to do


def test_pooled_namespaces_recycle_without_leaking_state():
    """pool=1 forces every non-reentrant request of the tenant through
    the same recycled namespace — results must still match the solo
    oracle, and the reuse must actually happen."""
    rep = serve_mix(mix="paper", n_nodes=4, n_requests=16, seed=3,
                    tenants=parse_tenants("a:pool=1"), arrival_rate=20.0)
    assert rep.unserved == 0 and rep.failed == 0
    assert rep.correct == rep.served == 16
    s = rep.stats
    assert s["pool_leases"] > 0
    assert s["pool_reuses"] > 0          # the pool was actually shared
    assert s["pool_cells_reset"] > 0     # recycling had dirt to scrub


def test_pool_zero_disables_pooling():
    rep = serve_mix(mix="paper", n_nodes=4, n_requests=12, seed=3,
                    tenants=parse_tenants("a:pool=0"), arrival_rate=200.0)
    assert rep.correct == rep.served == 12
    s = rep.stats
    # pool=0 never enters the pool path at all: isolated requests take
    # the legacy throwaway req{rid} namespaces, no pool accounting.
    assert s["pool_leases"] == 0
    assert s["pool_reuses"] == 0 and s["pool_exhausted"] == 0
    assert s["isolated"] > 0             # isolation itself still ran


# -- adaptive overload control -------------------------------------------------


class _FakeIndex:
    def __init__(self, level=0.0, live_capacity=4.0):
        self.level = level
        self.live_capacity = live_capacity
        self.tenant_count = {}

    def saturated(self, now, threshold):
        return self.level >= threshold


def _fake_sched(index, tenants=None):
    return SimpleNamespace(load_index=index, tenants=tenants,
                           env=SimpleNamespace(now=0.0))


def _req(tenant=None, latency=None):
    r = SimpleNamespace(tenant=tenant, arrival=0.0, finished_at=None)
    if latency is not None:
        r.finished_at = latency
    return r


def test_adaptive_threshold_learns_the_knee():
    adm = AdaptiveShed(slo=0.1, init_load=8.0, window=8)
    sched = _fake_sched(_FakeIndex())
    for _ in range(8):                     # a window of blown latencies
        adm.observe(sched, _req(latency=1.0))
    assert adm.adjust_down == 1
    assert adm.threshold == pytest.approx(8.0 * adm.decrease)
    for _ in range(8):                     # comfortably under the SLO
        adm.observe(sched, _req(latency=0.01))
    assert adm.adjust_up == 1
    assert adm.threshold == pytest.approx(8.0 * adm.decrease * adm.increase)
    for _ in range(40 * 8):                # sustained overload: bounded
        adm.observe(sched, _req(latency=5.0))
    assert adm.threshold >= adm.min_load
    # A latency in the dead band (margin*slo .. slo) moves nothing.
    moved = adm.threshold
    ups, downs = adm.adjust_up, adm.adjust_down
    for _ in range(8):
        adm.observe(sched, _req(latency=0.09))
    assert adm.threshold == moved
    assert (adm.adjust_up, adm.adjust_down) == (ups, downs)


def test_adaptive_hysteresis_stops_flapping():
    """Once a tier sheds, it keeps shedding until load falls below
    ``hysteresis`` times its bar — load hovering just under the bar
    must not flap admit/shed on alternating requests."""
    idx = _FakeIndex()
    adm = AdaptiveShed(init_load=8.0, hysteresis=0.8)
    sched = _fake_sched(idx)
    idx.level = 8.5                        # above the bar: shed
    assert not adm.admit(sched, _req())
    idx.level = 7.0                        # below bar, above 0.8*bar
    assert not adm.admit(sched, _req())    # hysteresis holds the shed
    idx.level = 6.0                        # below 0.8 * 8 = 6.4
    assert adm.admit(sched, _req())        # tier readmits
    idx.level = 7.0                        # back under the bar only
    assert adm.admit(sched, _req())        # no flap: still admitting


def test_adaptive_sheds_lower_priority_first():
    idx = _FakeIndex()
    tenants = parse_tenants("gold:p=0,free:p=2")
    adm = AdaptiveShed(init_load=8.0, priority_scale=0.5,
                       min_tenant_slots=64)  # fair cap out of the way
    sched = _fake_sched(idx, tenants)
    idx.level = 3.0   # above free's bar (8*0.25=2), below gold's (8)
    assert adm.admit(sched, _req("gold"))
    assert not adm.admit(sched, _req("free"))


def test_adaptive_fair_share_cap_bounds_one_tenant():
    idx = _FakeIndex(live_capacity=8.0)
    tenants = parse_tenants("a,b")
    adm = AdaptiveShed(init_load=8.0, min_tenant_slots=4, fair_factor=2.0)
    sched = _fake_sched(idx, tenants)
    # cap = max(4, 2.0 * 0.5 * 8 * 8) = 64; a holds 100 runnable.
    idx.tenant_count = {"a": 100}
    assert not adm.admit(sched, _req("a"))
    assert adm.fair_sheds == 1
    assert adm.admit(sched, _req("b"))     # b is under its cap


# -- edge cases ----------------------------------------------------------------


def test_all_racks_retired_reads_saturated():
    """A cluster with every node crash-retired has no capacity left:
    the saturation vote must say so (shed everything), not vacuously
    report headroom."""
    cluster = serve_cluster(4, rack_size=2)
    idx = LoadIndex(cluster)
    assert not idx.saturated(0.0, 1.0)
    for n in cluster.names():
        idx.retire(n)
    assert idx.saturated(0.0, 1.0)
    assert idx.live_capacity == 0.0


def test_single_node_cluster_with_tenants():
    rep = serve_mix(mix="parallel", n_nodes=1, n_requests=8, seed=5,
                    tenants=parse_tenants("a:w=2,b"), arrival_rate=100.0,
                    admission=AdaptiveShed())
    assert rep.unserved == 0
    assert rep.correct == rep.served
    assert rep.served + rep.stats["shed"] == 8


def test_tenant_counters_balance_after_crash_retirement():
    """Chaos + tenants: per-tenant runnable counters return to zero
    after the run drains even when crash recovery moved work across
    nodes (the fuzzer's tenant-accounting invariant)."""
    crashed = 0
    for seed in range(4):
        out = fuzz_one(seed, mix="parallel", n_requests=20,
                       tenants=parse_tenants("a:w=2,b"),
                       arrival_rate=400.0)
        assert out["violations"] == []
        crashed += out["report"]["sched"].get("crashes", 0)
    assert crashed > 0  # the schedules actually killed nodes


def test_report_carries_per_tenant_stats():
    rep = serve_mix(mix="parallel", n_nodes=4, n_requests=16, seed=9,
                    tenants=parse_tenants("a:w=2,b"), arrival_rate=200.0)
    assert set(rep.tenants) == {"a", "b"}
    total = sum(t["submitted"] for t in rep.tenants.values())
    assert total == 16
    for block in rep.tenants.values():
        assert block["submitted"] == block["admitted"] + block["shed"]
        assert block["done"] + block["failed"] <= block["admitted"]
        assert set(block["latency_s"]) == {"mean", "p50", "p95", "max"}
    assert "tenants" in rep.to_dict()
    legacy = serve_mix(mix="parallel", n_nodes=4, n_requests=8)
    assert "tenants" not in legacy.to_dict()


# -- isolation under abuse (the fast tier-1 version of the benchmark) ----------


def test_wfq_isolates_abusive_tenant():
    """One tenant flooding at 10x its fair rate: the abuser absorbs
    the sheds, the victims stay correct and their P95 does not blow
    up.  (The overload benchmark asserts the <25%% degradation bound
    at scale; this is the fast always-on version.)"""
    kw = dict(mix="parallel", n_nodes=4, n_requests=48, seed=11,
              arrival_rate=150.0, admission=AdaptiveShed(slo=0.05))
    calm = serve_mix(tenants=parse_tenants("gold:w=2,silver"), **kw)
    storm = serve_mix(tenants=parse_tenants("gold:w=2,silver,"
                                            "abuser:r=10"), **kw)
    assert storm.correct == storm.served  # abuse never corrupts anyone
    assert storm.unserved == 0
    # The abuser exists and pays: it absorbs the bulk of the shedding.
    shed = {n: t["shed"] for n, t in storm.tenants.items()}
    assert shed["abuser"] >= max(shed["gold"], shed["silver"])
    # Victims' tail latency holds within the benchmark's 25% bound.
    for name in ("gold", "silver"):
        before = calm.tenants[name]["latency_s"]["p95"]
        after = storm.tenants[name]["latency_s"]["p95"]
        assert after <= before * 1.25 + 1e-9
