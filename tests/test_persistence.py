"""Checkpoint persistence tests: JSON roundtrip and resume-from-disk."""

import pytest

from repro.cluster import gige_cluster
from repro.errors import MigrationError
from repro.lang import compile_source
from repro.migration import (RestoreDriver, SODEngine, capture_segment,
                             run_to_msp)
from repro.migration.persistence import (load_checkpoint, save_checkpoint,
                                         state_from_json, state_to_json)
from repro.preprocess import preprocess_program
from repro.vm import Machine, VMTI

SRC = """
class Cfg { int bonus; }
class Job {
  static Cfg cfg;
  static int main(int n) {
    Job.cfg = new Cfg();
    Job.cfg.bonus = 1000;
    int r = Job.chew(n);
    return r + Job.cfg.bonus;
  }
  static int chew(int n) {
    float scale = 2.5;
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      acc = acc + Sys.intOf(Sys.floatOf(i) * scale);
    }
    acc = acc + Job.cfg.bonus / 100;
    return acc;
  }
}
"""


@pytest.fixture()
def captured():
    classes = preprocess_program(compile_source(SRC), "faulting")
    m = Machine(classes)
    t = m.spawn("Job", "main", [20])
    m.run(t, stop=lambda th: th.frames[-1].code.name == "chew")
    m.run(t, max_instrs=40)  # into the loop, so `scale` is live
    run_to_msp(m, t)
    state = capture_segment(VMTI(m), t, 1, home_node="node0")
    return classes, m, t, state


def test_json_roundtrip_identity(captured):
    _classes, _m, _t, state = captured
    text = state_to_json(state)
    back = state_from_json(text)
    assert back.home_node == state.home_node
    assert back.class_names == state.class_names
    assert len(back.frames) == len(state.frames)
    assert back.frames[0].locals == state.frames[0].locals
    assert back.statics == state.statics
    # Re-serializing is stable (canonical form).
    assert state_to_json(back) == text


def test_roundtrip_preserves_floats_and_descriptors(captured):
    _c, _m, _t, state = captured
    back = state_from_json(state_to_json(state))
    locs = back.frames[0].locals
    assert any(isinstance(v, float) for v in locs)  # scale == 2.5
    assert any(isinstance(v, tuple) and v[0] == "@ref"
               for v in back.statics.values())


def test_nonfinite_floats_roundtrip():
    from repro.migration.state import CapturedFrame, CapturedState
    state = CapturedState(
        frames=[CapturedFrame("C", "m", 0, 0,
                              locals=[float("inf"), float("-inf")])],
        home_node="h", return_to="h")
    back = state_from_json(state_to_json(state))
    assert back.frames[0].locals == [float("inf"), float("-inf")]


def test_bad_checkpoint_rejected():
    with pytest.raises(MigrationError):
        state_from_json("not json {")
    with pytest.raises(MigrationError):
        state_from_json('{"format": 99}')
    with pytest.raises(MigrationError):
        state_from_json(
            '{"format": 1, "home_node": "h", "return_to": "h", '
            '"class_names": [], "statics": [], "frames": []}')


def test_resume_from_disk_checkpoint(tmp_path, captured):
    """Freeze a task to a file, bring the 'process' down, resume the
    checkpoint on a fresh node, and complete with the home heap."""
    classes, home_machine, home_thread, state = captured
    path = tmp_path / "job.ckpt.json"
    save_checkpoint(state, str(path))

    restored_state = load_checkpoint(str(path))
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    # Adopt the original home machine's heap/thread as the engine home
    # (the checkpoint references node0 oids).
    home.machine = home_machine
    home.server.machine = home_machine
    home.vmti = VMTI(home_machine)

    worker = eng.host("node1", with_classes=True)
    worker.attach_object_manager()
    driver = RestoreDriver(worker.machine, worker.vmti, restored_state)
    worker_thread = driver.restore(run_after=False)
    eng.run(worker, worker_thread)
    eng.complete_segment(worker, worker_thread, home, home_thread, 1)
    eng.run(home, home_thread)

    expected = Machine(classes).call("Job", "main", [20])
    assert home_thread.result == expected


def test_checkpoint_file_is_human_readable(tmp_path, captured):
    _c, _m, _t, state = captured
    path = tmp_path / "ckpt.json"
    save_checkpoint(state, str(path))
    text = path.read_text()
    assert '"class": "Job"' in text and '"method": "chew"' in text
