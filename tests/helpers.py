"""Test helpers shared across modules (importable, unlike conftest)."""

from __future__ import annotations

from repro.lang import compile_source
from repro.preprocess import preprocess_program
from repro.vm import Machine


def compile_and_run(source: str, cls: str, method: str, args=None,
                    build: str = "original"):
    """Compile, preprocess, run; returns (result, machine)."""
    classes = preprocess_program(compile_source(source), build)
    machine = Machine(classes)
    result = machine.call(cls, method, list(args or []))
    return result, machine
