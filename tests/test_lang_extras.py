"""Additional language/native coverage: strings, floats, natives,
deep recursion, init methods, migration of richer programs."""

import math

import pytest

from repro.cluster import gige_cluster
from repro.errors import MigrationError
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.workflow import roam
from repro.preprocess import preprocess_program
from repro.vm import Machine

from tests.helpers import compile_and_run


def run(src, cls="T", method="f", args=None, build="original"):
    return compile_and_run(src, cls, method, args, build)[0]


# -- string natives ----------------------------------------------------------

def test_substr_and_charat():
    src = """class T { static str f() {
      str s = "stackondemand";
      return Sys.substr(s, 5, 7) + Sys.charAt(s, 0);
    } }"""
    assert run(src) == "ons"


def test_parse_int_roundtrip():
    src = """class T { static int f() {
      str s = "" + 451;
      return Sys.parseInt(s) + 1;
    } }"""
    assert run(src) == 452


def test_string_equality_and_ordering():
    assert run('class T { static bool f() { return "abc" == "abc"; } }')
    assert run('class T { static bool f() { return "abc" < "abd"; } }')


def test_string_indexof_charges_scan_cost():
    src = """class T { static int f() {
      str s = "%s";
      return Sys.indexOf(s, "zz");
    } }""" % ("a" * 5000)
    result, m = compile_and_run(src, "T", "f")
    assert result == -1
    assert m.clock > 5000 * m.cost.search_spb * 0.5


# -- math natives ------------------------------------------------------------------

def test_trig_and_pi():
    src = """class T { static float f() {
      return Sys.sin(Sys.pi() / 2.0) + Sys.cos(0.0);
    } }"""
    assert run(src) == pytest.approx(2.0)


def test_ceil_floor_minmax_float():
    src = """class T { static float f() {
      return Sys.floatOf(Sys.ceil(1.2)) + Sys.floatOf(Sys.floor(1.8))
           + Sys.min(0.5, 2.5) + Sys.max(0.5, 2.5);
    } }"""
    assert run(src) == pytest.approx(2 + 1 + 0.5 + 2.5)


def test_numeric_native_rejects_strings():
    from repro.errors import NativeError
    with pytest.raises(NativeError):
        run('class T { static float f() { return Sys.sqrt("four"); } }')


# -- richer structure ------------------------------------------------------------------

def test_deep_recursion_hundreds_of_frames():
    src = """class T { static int f(int n) {
      if (n == 0) { return 0; }
      return 1 + T.f(n - 1);
    } }"""
    assert run(src, args=[500]) == 500


def test_init_method_chain():
    src = """
    class Vec { float x; float y;
      void init(float x0, float y0) { x = x0; y = y0; }
      float norm() { return Sys.sqrt(x * x + y * y); }
    }
    class T { static float f() {
      Vec v = new Vec(3.0, 4.0);
      return v.norm();
    } }"""
    assert run(src) == pytest.approx(5.0)


def test_exception_inside_init_propagates():
    src = """
    class Fragile { int v; void init(int d) { v = 10 / d; } }
    class T { static int f() {
      try { Fragile x = new Fragile(0); return x.v; }
      catch (ArithmeticException e) { return -5; }
    } }"""
    assert run(src) == -5


def test_objects_in_nested_arrays():
    src = """
    class Cell { int v; }
    class T { static int f() {
      Cell[] row0 = new Cell[2];
      Cell[] row1 = new Cell[2];
      Cell c = new Cell();
      c.v = 9;
      row0[1] = c;
      row1[0] = c;
      row1[0].v = row1[0].v + 1;
      return row0[1].v;
    } }"""
    assert run(src) == 10  # aliasing through arrays


def test_mixed_float_int_comparison():
    assert run("class T { static bool f() { return 2 < 2.5; } }")


# -- migration of richer programs ----------------------------------------------------------

RICH_SRC = """
class Order { int qty; float price; str sku; }
class Store {
  static Order[] orders;
  static int filled(int n) {
    Store.orders = new Order[n];
    for (int i = 0; i < n; i = i + 1) {
      Order o = new Order();
      o.qty = i + 1;
      o.price = Sys.floatOf(i) * 1.5;
      o.sku = "sku-" + i;
      Store.orders[i] = o;
    }
    return Store.total();
  }
  static int total() {
    int acc = 0;
    for (int i = 0; i < Sys.len(Store.orders); i = i + 1) {
      Order o = Store.orders[i];
      if (Sys.indexOf(o.sku, "-3") >= 0) { acc = acc + 100; }
      acc = acc + o.qty * Sys.intOf(o.price);
    }
    return acc;
  }
}
"""


def test_migration_with_strings_floats_and_ref_arrays():
    classes = preprocess_program(compile_source(RICH_SRC), "faulting")
    ref = Machine(classes).call("Store", "filled", [8])
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    t = eng.spawn(home, "Store", "filled", [8])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "total")
    result, _rec = eng.run_segment_remote(home, t, "node1", 1)
    assert result == ref
    worker = eng.hosts["node1"]
    # The ref-array and the Order objects all faulted over.
    assert worker.objman.stats.faults >= 9


def test_roam_max_hops_enforced():
    src = """class T {
      static int helper(int i) { return i * 2; }
      static int main(int n) {
        int s = 0;
        for (int i = 0; i < n; i = i + 1) { s = s + T.helper(i); }
        return s;
      } }"""
    classes = preprocess_program(compile_source(src), "faulting")
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    t = eng.spawn(home, "T", "main", [10])
    with pytest.raises(MigrationError):
        roam(eng, home, t,
             itinerary=lambda th: "node1",
             trigger=lambda th: (th.frames[-1].code.name == "helper"
                                 and th.frames[-1].pc == 0),
             max_hops=2)  # ten helper calls want ten hops


def test_migrated_exception_handling_still_works():
    src = """
    class T {
      static int guard(int n) {
        try { return T.risky(n); }
        catch (ArithmeticException e) { return -1; }
      }
      static int risky(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) { acc = acc + 10 / (n - i - 1); }
        return acc;
      }
      static int main(int n) { return T.guard(n); }
    }
    """
    classes = preprocess_program(compile_source(src), "faulting")
    ref = Machine(classes).call("T", "main", [4])
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    t = eng.spawn(home, "T", "main", [4])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "risky")
    # Migrate risky(); it will divide by zero remotely.  The segment
    # dies with the guest exception: SOD surfaces it (the guard frame is
    # at home and never sees the remote unwind in this simple engine).
    worker, wt, _rec = eng.migrate(home, t, "node1", 1)
    eng.run(worker, wt)
    assert wt.uncaught is not None
    with pytest.raises(MigrationError):
        eng.complete_segment(worker, wt, home, t, 1)
