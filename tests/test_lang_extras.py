"""Additional language/native coverage: strings, floats, natives,
deep recursion, init methods, migration of richer programs."""

import math

import pytest

from repro.cluster import gige_cluster
from repro.errors import MigrationError
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.workflow import roam
from repro.preprocess import preprocess_program
from repro.vm import Machine

from tests.helpers import compile_and_run


def run(src, cls="T", method="f", args=None, build="original"):
    return compile_and_run(src, cls, method, args, build)[0]


# -- string natives ----------------------------------------------------------

def test_substr_and_charat():
    src = """class T { static str f() {
      str s = "stackondemand";
      return Sys.substr(s, 5, 7) + Sys.charAt(s, 0);
    } }"""
    assert run(src) == "ons"


def test_parse_int_roundtrip():
    src = """class T { static int f() {
      str s = "" + 451;
      return Sys.parseInt(s) + 1;
    } }"""
    assert run(src) == 452


def test_string_equality_and_ordering():
    assert run('class T { static bool f() { return "abc" == "abc"; } }')
    assert run('class T { static bool f() { return "abc" < "abd"; } }')


def test_string_indexof_charges_scan_cost():
    src = """class T { static int f() {
      str s = "%s";
      return Sys.indexOf(s, "zz");
    } }""" % ("a" * 5000)
    result, m = compile_and_run(src, "T", "f")
    assert result == -1
    assert m.clock > 5000 * m.cost.search_spb * 0.5


# -- math natives ------------------------------------------------------------------

def test_trig_and_pi():
    src = """class T { static float f() {
      return Sys.sin(Sys.pi() / 2.0) + Sys.cos(0.0);
    } }"""
    assert run(src) == pytest.approx(2.0)


def test_ceil_floor_minmax_float():
    src = """class T { static float f() {
      return Sys.floatOf(Sys.ceil(1.2)) + Sys.floatOf(Sys.floor(1.8))
           + Sys.min(0.5, 2.5) + Sys.max(0.5, 2.5);
    } }"""
    assert run(src) == pytest.approx(2 + 1 + 0.5 + 2.5)


def test_numeric_native_rejects_strings():
    from repro.errors import NativeError
    with pytest.raises(NativeError):
        run('class T { static float f() { return Sys.sqrt("four"); } }')


# -- richer structure ------------------------------------------------------------------

def test_deep_recursion_hundreds_of_frames():
    src = """class T { static int f(int n) {
      if (n == 0) { return 0; }
      return 1 + T.f(n - 1);
    } }"""
    assert run(src, args=[500]) == 500


def test_init_method_chain():
    src = """
    class Vec { float x; float y;
      void init(float x0, float y0) { x = x0; y = y0; }
      float norm() { return Sys.sqrt(x * x + y * y); }
    }
    class T { static float f() {
      Vec v = new Vec(3.0, 4.0);
      return v.norm();
    } }"""
    assert run(src) == pytest.approx(5.0)


def test_exception_inside_init_propagates():
    src = """
    class Fragile { int v; void init(int d) { v = 10 / d; } }
    class T { static int f() {
      try { Fragile x = new Fragile(0); return x.v; }
      catch (ArithmeticException e) { return -5; }
    } }"""
    assert run(src) == -5


def test_objects_in_nested_arrays():
    src = """
    class Cell { int v; }
    class T { static int f() {
      Cell[] row0 = new Cell[2];
      Cell[] row1 = new Cell[2];
      Cell c = new Cell();
      c.v = 9;
      row0[1] = c;
      row1[0] = c;
      row1[0].v = row1[0].v + 1;
      return row0[1].v;
    } }"""
    assert run(src) == 10  # aliasing through arrays


def test_mixed_float_int_comparison():
    assert run("class T { static bool f() { return 2 < 2.5; } }")


# -- migration of richer programs ----------------------------------------------------------

RICH_SRC = """
class Order { int qty; float price; str sku; }
class Store {
  static Order[] orders;
  static int filled(int n) {
    Store.orders = new Order[n];
    for (int i = 0; i < n; i = i + 1) {
      Order o = new Order();
      o.qty = i + 1;
      o.price = Sys.floatOf(i) * 1.5;
      o.sku = "sku-" + i;
      Store.orders[i] = o;
    }
    return Store.total();
  }
  static int total() {
    int acc = 0;
    for (int i = 0; i < Sys.len(Store.orders); i = i + 1) {
      Order o = Store.orders[i];
      if (Sys.indexOf(o.sku, "-3") >= 0) { acc = acc + 100; }
      acc = acc + o.qty * Sys.intOf(o.price);
    }
    return acc;
  }
}
"""


def test_migration_with_strings_floats_and_ref_arrays():
    classes = preprocess_program(compile_source(RICH_SRC), "faulting")
    ref = Machine(classes).call("Store", "filled", [8])
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    t = eng.spawn(home, "Store", "filled", [8])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "total")
    result, _rec = eng.run_segment_remote(home, t, "node1", 1)
    assert result == ref
    worker = eng.hosts["node1"]
    # The ref-array and the Order objects all faulted over.
    assert worker.objman.stats.faults >= 9


def test_roam_max_hops_enforced():
    src = """class T {
      static int helper(int i) { return i * 2; }
      static int main(int n) {
        int s = 0;
        for (int i = 0; i < n; i = i + 1) { s = s + T.helper(i); }
        return s;
      } }"""
    classes = preprocess_program(compile_source(src), "faulting")
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    t = eng.spawn(home, "T", "main", [10])
    with pytest.raises(MigrationError):
        roam(eng, home, t,
             itinerary=lambda th: "node1",
             trigger=lambda th: (th.frames[-1].code.name == "helper"
                                 and th.frames[-1].pc == 0),
             max_hops=2)  # ten helper calls want ten hops


def test_migrated_exception_handling_still_works():
    src = """
    class T {
      static int guard(int n) {
        try { return T.risky(n); }
        catch (ArithmeticException e) { return -1; }
      }
      static int risky(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) { acc = acc + 10 / (n - i - 1); }
        return acc;
      }
      static int main(int n) { return T.guard(n); }
    }
    """
    classes = preprocess_program(compile_source(src), "faulting")
    ref = Machine(classes).call("T", "main", [4])
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    t = eng.spawn(home, "T", "main", [4])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "risky")
    # Migrate risky(); it will divide by zero remotely.  The segment
    # dies with the guest exception: SOD surfaces it (the guard frame is
    # at home and never sees the remote unwind in this simple engine).
    worker, wt, _rec = eng.migrate(home, t, "node1", 1)
    eng.run(worker, wt)
    assert wt.uncaught is not None
    with pytest.raises(MigrationError):
        eng.complete_segment(worker, wt, home, t, 1)


# -- switch / LSWITCH --------------------------------------------------------

def test_switch_dispatches_and_defaults():
    src = """class T { static int f(int k) {
      int r = 0;
      switch (k) {
        case 0: r = 10; break;
        case 1:
        case 2: r = 20 + k; break;
        case -3: r = 99; break;
        default: r = -1;
      }
      return r;
    } }"""
    for k, want in [(0, 10), (1, 21), (2, 22), (-3, 99), (5, -1), (-9, -1)]:
        assert run(src, args=[k]) == want


def test_switch_falls_through_without_break():
    src = """class T { static int f(int k) {
      int r = 0;
      switch (k) { case 1: r = r + 1; case 2: r = r + 2; default: r = r + 4; }
      return r;
    } }"""
    assert run(src, args=[1]) == 7   # 1+2+4: falls through both arms
    assert run(src, args=[2]) == 6   # 2+4
    assert run(src, args=[9]) == 4   # default only


def test_switch_without_default_skips_past_end():
    src = """class T { static int f(int k) {
      int r = 5;
      switch (k) { case 1: r = 50; }
      switch (k) { }
      return r;
    } }"""
    assert run(src, args=[1]) == 50
    assert run(src, args=[2]) == 5


def test_switch_emits_lswitch_and_matches_legacy_dispatch():
    from repro.bytecode import opcodes as op
    src = """class T { static int f(int k) {
      int r = 0;
      switch (k % 4) { case 0: r = 1; break; case 1: r = 2; break;
                       case 2: r = 3; break; default: r = 4; }
      return r * k;
    } }"""
    classes = preprocess_program(compile_source(src), "original")
    instrs = classes["T"].methods["f"].instrs
    assert any(i.op == op.LSWITCH for i in instrs)
    for build in ("original", "faulting"):
        built = preprocess_program(compile_source(src), build)
        for k in range(-4, 9):
            fast = Machine(built, dispatch="fast")
            legacy = Machine(built, dispatch="legacy")
            assert fast.call("T", "f", [k]) == legacy.call("T", "f", [k])
            assert fast.instr_count == legacy.instr_count


def test_switch_break_and_continue_in_loop():
    src = """class T { static int f(int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) {
        switch (i) { case 2: continue; case 3: break; default: s = s + i; }
        s = s + 100;
      }
      return s;
    } }"""
    # i=2 skips the +100; i=3 breaks the switch only (still +100)
    expected = sum(i for i in range(6) if i not in (2, 3)) + 100 * 5
    assert run(src, args=[6]) == expected


def test_switch_duplicate_labels_rejected():
    from repro.errors import CompileError
    with pytest.raises(CompileError, match="duplicate case"):
        compile_source("""class T { static int f(int k) {
          switch (k) { case 1: return 1; case 1: return 2; }
          return 0; } }""")
    with pytest.raises(CompileError, match="duplicate default"):
        compile_source("""class T { static int f(int k) {
          switch (k) { default: return 1; default: return 2; }
          return 0; } }""")


def test_switch_arm_survives_sod_migration():
    """Capture inside a switch arm (faulting build) and finish the
    segment remotely: the restored LSWITCH-bearing method must resume
    exactly where it left off."""
    src = """class T {
      static int work(int k) {
        int s = 0;
        switch (k % 3) {
          case 0: s = T.spin(40) + 1; break;
          case 1: s = T.spin(50) + 2; break;
          default: s = T.spin(60) + 3;
        }
        return s;
      }
      static int spin(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) { acc = (acc + i * i) % 9973; }
        return acc;
      }
      static int main(int k) { return T.work(k); }
    }"""
    classes = preprocess_program(compile_source(src), "faulting")
    for k in (0, 1, 2):
        ref = Machine(classes).call("T", "main", [k])
        eng = SODEngine(gige_cluster(2), classes)
        home = eng.host("node0")
        t = eng.spawn(home, "T", "main", [k])
        eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "spin")
        result, _rec = eng.run_segment_remote(home, t, "node1", 2)
        assert result == ref
