"""Differential suite: fast (pre-decoded, fused, inline-cached) dispatch
must be observationally identical to the legacy string-dispatched loop.

Covers every registry workload plus targeted programs for guest
exceptions, fused-sequence faults, inline-cache polymorphism, breakpoint
/ write-hook interplay, mid-fused-sequence suspension and resumption,
and capture/restore on fast-dispatch machines.
"""

from __future__ import annotations

import math

import pytest

from repro.lang import compile_source
from repro.migration import RestoreDriver, capture_segment, run_to_msp
from repro.preprocess import preprocess_program
from repro.preprocess.fuse import fused_coverage
from repro.vm import Machine, VMTI
from repro.vm.machine import UncaughtGuestException
from repro.workloads import registry

#: dispatch configurations under test: (label, Machine kwargs)
MODES = [
    ("fast", dict(dispatch="fast", fuse=True)),
    ("fast-nofuse", dict(dispatch="fast", fuse=False)),
]


def _run(classes, main, args, **kw):
    m = Machine(classes, **kw)
    try:
        result = m.call(main[0], main[1], list(args))
        err = None
    except UncaughtGuestException as exc:
        result, err = None, (exc.exc.class_name, exc.exc.fields.get("msg"))
    return m, result, err


def _assert_equivalent(classes, main, args):
    ref, r_ref, e_ref = _run(classes, main, args, dispatch="legacy")
    for label, kw in MODES:
        m, r, e = _run(classes, main, args, **kw)
        assert r == r_ref, f"{label}: result diverged"
        assert e == e_ref, f"{label}: uncaught-exception diverged"
        assert m.stdout == ref.stdout, f"{label}: stdout diverged"
        assert m.instr_count == ref.instr_count, f"{label}: instr_count"
        assert math.isclose(m.clock, ref.clock, rel_tol=1e-9, abs_tol=1e-12), \
            f"{label}: clock diverged ({m.clock} vs {ref.clock})"
    return ref


# -- every registry workload, original and preprocessed builds ---------------

@pytest.mark.parametrize("name", sorted(registry.WORKLOADS))
def test_registry_workloads_identical(name):
    w = registry.WORKLOADS[name]
    classes = registry.compiled(name, "original")
    ref = _assert_equivalent(classes, w.main, w.sim_args)
    assert ref.instr_count > 1000  # the suite actually executed something


@pytest.mark.parametrize("name", ["Fib", "TSP"])
def test_registry_workloads_identical_faulting_build(name):
    """The preprocessed (flattened + handler-injected) build too: its
    restoration LSWITCH prologues and fault-handler rows produce very
    different instruction shapes."""
    w = registry.WORKLOADS[name]
    classes = registry.compiled(name, "faulting")
    _assert_equivalent(classes, w.main, w.sim_args)


# -- guest exceptions, incl. faults from inside fused sequences --------------

EXC_SRC = """
class E {
  static int guarded(int a, int b) {
    int r = 0;
    try { r = a / b; }                       // LOAD+LOAD+DIV fused group
    catch (ArithmeticException e) { r = 111; }
    try { r = r + a % b; }
    catch (ArithmeticException e) { r = r + 222; }
    return r;
  }
  static int bounds(int n) {
    int[] xs = new int[4];
    int s = 0;
    try {
      for (int i = 0; i <= n; i = i + 1) { s = s + xs[i]; }
    } catch (IndexOutOfBoundsException e) { s = s + 7; }
    return s;
  }
  static int npe() {
    E x = null;
    try { return E.poke(x); }
    catch (NullPointerException e) { return 13; }
  }
  static int poke(E e) { return 1; }
  static str concat(int n) { return "n=" + n; }
  static int uncaught(int n) { return n / 0; }
}
"""


def exc_classes():
    return preprocess_program(compile_source(EXC_SRC), "original")


@pytest.mark.parametrize("main,args", [
    (("E", "guarded"), (7, 0)),
    (("E", "guarded"), (7, 2)),
    (("E", "bounds"), (10,)),
    (("E", "npe"), ()),
    (("E", "concat"), (42,)),
    (("E", "uncaught"), (5,)),
])
def test_guest_exceptions_identical(main, args):
    _assert_equivalent(exc_classes(), main, args)


# -- inline caches -----------------------------------------------------------

POLY_SRC = """
class A { int tag; int get() { return 1; } }
class B extends A { int get() { return 2; } }
class S { static int base; }
class T extends S { }
class P {
  static int virt(int n) {
    A a = new A();
    A b = new B();
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
      A r = a;
      if (i % 2 == 1) { r = b; }
      s = s + r.get();                 // polymorphic site: cache rewrites
    }
    return s;
  }
  static int statics(int n) {
    T.base = 3;                        // PUTS resolved via subclass name
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + T.base; }
    S.base = S.base + 1;
    return s + T.base;
  }
}
"""


def test_polymorphic_virtual_site_identical():
    classes = preprocess_program(compile_source(POLY_SRC), "original")
    ref = _assert_equivalent(classes, ("P", "virt"), (50,))
    assert ref.stdout == []


def test_static_home_cache_respects_inheritance():
    classes = preprocess_program(compile_source(POLY_SRC), "original")
    _assert_equivalent(classes, ("P", "statics"), (20,))
    # and the cached home really is the declaring superclass
    m = Machine(classes)
    m.call("P", "statics", [5])
    assert m.loader.load("S").statics["base"] == 4
    assert "base" not in m.loader.load("T").statics


# -- fusion structure ---------------------------------------------------------

LOOP_SRC = """
class L {
  static int sum(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
  }
}
"""


def _loop_setup():
    classes = preprocess_program(compile_source(LOOP_SRC), "original")
    m = Machine(classes)
    code = m.loader.load("L").find_method("sum")
    return m, code, m.decoded(code)


def test_fused_stream_structure():
    m, code, stream = _loop_setup()
    cov = fused_coverage(stream)
    # the loop header and induction step must both have fused
    assert any("cmp+JZ" in k for k in cov), cov
    assert "LOAD+CONST+ADD+STORE" in cov, cov
    # streams are parallel to the original instrs: every slot is an
    # executable decode for its own bci and groups never run off the end
    assert len(stream) == len(code.instrs)
    for i, slot in enumerate(stream):
        assert slot[4] >= 1
        assert i + slot[4] <= len(stream)


def test_fast_and_unfused_share_results():
    classes = preprocess_program(compile_source(LOOP_SRC), "original")
    _assert_equivalent(classes, ("L", "sum"), (200,))


# -- suspension and resumption mid-fused-sequence -----------------------------

def _interior_bci(stream):
    """An original bci strictly inside a 4-wide fused group (the loop
    header compare-and-branch or the induction step — both live inside
    the loop, so they execute once per iteration)."""
    for i, slot in enumerate(stream):
        if slot[4] == 4:
            return i + 2
    raise AssertionError("no 4-wide fused group found")


def test_resume_inside_fused_group_on_fast_loop():
    m, code, stream = _loop_setup()
    interior = _interior_bci(stream)
    t = m.spawn("L", "sum", [60])
    # stop exactly at the interior bci (slow loop, bci-precise)...
    status = m.run(t, stop=lambda th: th.frames[-1].pc == interior)
    assert status == "stopped"
    assert t.frames[-1].pc == interior
    # ...then resume on the fast loop: execution enters the middle of a
    # fused group and must run the interior slots unfused.
    m.run(t)
    assert t.result == sum(range(60))


def test_breakpoint_fires_mid_fused_sequence():
    m, code, stream = _loop_setup()
    interior = _interior_bci(stream)
    vmti = VMTI(m)
    hits = []
    vmti.set_breakpoint("L", "sum", interior)
    vmti.set_breakpoint_callback(
        lambda mach, th: hits.append(th.frames[-1].pc))
    t = m.spawn("L", "sum", [10])
    m.run(t)
    assert t.result == sum(range(10))
    assert hits and all(pc == interior for pc in hits)
    # the interior bci is loop-body code: it fires once per iteration
    # (n or n+1 times depending on whether it is the header or the step)
    assert len(hits) in (10, 11)


def test_write_hook_observes_all_writes():
    classes = preprocess_program(compile_source(POLY_SRC), "original")
    writes = {"fast": [], "legacy": []}
    machines = {}
    for label in ("fast", "legacy"):
        m = Machine(classes, dispatch=label)
        m.on_write = lambda obj, lab=label: writes[lab].append(type(obj).__name__)
        m.call("P", "statics", [8])
        machines[label] = m
    assert writes["fast"] == writes["legacy"]
    assert writes["fast"]  # statics writes observed
    assert machines["fast"].instr_count == machines["legacy"].instr_count


def test_native_installed_hooks_retreat_to_slow_loop():
    """The loop-selection guard: a native arms a breakpoint mid-run; the
    fast loop must notice at the safepoint and hand over to the
    hook-aware loop so the breakpoint actually fires."""
    src = """
    class G {
      static int go(int n) {
        Sys.armHook();
        int s = 0;
        for (int i = 0; i < n; i = i + 1) { s = s + i; }
        return s;
      }
    }
    """
    classes = preprocess_program(compile_source(src), "original")
    m = Machine(classes)
    hits = []

    def arm(machine, args):
        code = machine.loader.load("G").find_method("go")
        interior = _interior_bci(machine.decoded(code))
        machine.breakpoints.add(("G", "go", interior))
        machine.on_breakpoint = lambda mach, th: hits.append(
            th.frames[-1].pc)
        return None

    m.natives.register("Sys.armHook", arm)
    result = m.call("G", "go", [5])
    assert result == sum(range(5))
    assert hits, "breakpoint armed by a native never fired"


# -- capture / restore on fast-dispatch machines ------------------------------

MIG_SRC = """
class Data { int v; }
class R {
  static Data shared;
  static int outer(int n) {
    R.shared = new Data();
    R.shared.v = 50;
    int x = R.middle(n);
    return x + R.shared.v;
  }
  static int middle(int n) { return R.inner(n) * 2; }
  static int inner(int n) {
    int acc = 3;
    for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
    acc = acc + R.shared.v;
    return acc;
  }
}
"""


def test_capture_restore_roundtrip_on_fast_dispatch():
    """The restore dance (breakpoints + injected handlers + LSWITCH
    dispatch to the saved pc) runs on machines whose default dispatch is
    fast — exercising the fast→slow handover and bci-precise capture
    from a thread that was running fused code."""
    classes = preprocess_program(compile_source(MIG_SRC), "faulting")
    m = Machine(classes)  # fast dispatch
    t = m.spawn("R", "outer", [6])
    m.run(t, stop=lambda th: th.frames[-1].code.name == "inner")
    run_to_msp(m, t)
    top = t.frames[-1]
    assert top.pc in top.code.msps  # frame.pc is an original bci
    captured_pc = top.pc
    captured_locals = list(top.locals)
    state = capture_segment(VMTI(m), t, 1, home_node="home")

    dst = Machine(classes)  # fast dispatch on the destination too
    restored = RestoreDriver(dst, VMTI(dst), state).restore()
    assert restored.depth() == 1
    rf = restored.frames[-1]
    assert rf.pc == captured_pc
    assert not rf.stack
    # primitive locals travel by value (objects become remote refs)
    for a, b in zip(captured_locals, rf.locals):
        if isinstance(a, (int, float, bool, str)) or a is None:
            assert a == b


def test_full_migration_workflow_still_works(sod_engine, app_classes_faulting):
    """End-to-end SOD migration (engines drive breakpoints, write hooks
    and stop predicates) on machines whose default dispatch is fast."""
    expected = Machine(app_classes_faulting,
                       dispatch="legacy").call("App", "work", [5])
    eng = sod_engine
    home = eng.host("node0")
    t = eng.spawn(home, "App", "work", [5])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "step")
    worker, wt, _rec = eng.migrate(home, t, "node1", 1)
    eng.run(worker, wt)
    eng.complete_segment(worker, wt, home, t, 1)
    eng.run(home, t)
    assert t.result == expected
