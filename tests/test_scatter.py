"""Scatter/gather team migration (paper section II.B)."""

import pytest

from repro.cluster import Cluster, NodeSpec
from repro.cluster.topology import gige_cluster
from repro.errors import MigrationError
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.workflow import scatter
from repro.preprocess import preprocess_program
from repro.units import kb
from repro.vm import Machine

SRC = """
class Hunt {
  static str find(str dir, str query) {
    str[] files = FS.list(dir);
    for (int i = 0; i < Sys.len(files); i = i + 1) {
      if (Sys.indexOf(files[i], query) >= 0) { return files[i]; }
    }
    return "";
  }
  static str main(str dir, str query) {
    str hit = Hunt.find(dir, query);
    return hit;
  }
}
"""


@pytest.fixture()
def fleet():
    classes = preprocess_program(compile_source(SRC), "faulting")
    cluster = gige_cluster(1)
    devices = []
    for i in range(3):
        name = f"phone{i}"
        cluster.add_node(NodeSpec(name=name, speed_factor=25.0, kind="phone"))
        devices.append(name)
        for j in range(4):
            tag = "beach" if (i == 1 and j == 2) else "misc"
            cluster.fs.host_file(cluster.node(name),
                                 f"/dev{i}/IMG_{j}_{tag}.jpg", kb(200))
    eng = SODEngine(cluster, classes)
    home = eng.host("node0")
    return classes, eng, home, devices


def _prepared(eng, home, devices):
    tasks = []
    for i, dev in enumerate(devices):
        t = eng.spawn(home, "Hunt", "main", [f"/dev{i}/", "beach"])
        eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "find")
        tasks.append((t, dev, 1))
    return tasks


def test_scatter_gathers_all_branches(fleet):
    classes, eng, home, devices = fleet
    rep = scatter(eng, home, _prepared(eng, home, devices))
    assert rep.result[0] == "" and rep.result[2] == ""
    assert "beach" in rep.result[1]
    assert len(rep.records) == 3


def test_scatter_timeline_is_not_serial(fleet):
    classes, eng, home, devices = fleet
    rep = scatter(eng, home, _prepared(eng, home, devices))
    # Overlap: total < sum of all branch times; hidden > 0.
    assert rep.hidden_latency > 0
    serial_estimate = sum(r.latency for r in rep.records)
    assert rep.total_time < serial_estimate + rep.hidden_latency


def test_scatter_matches_local_results(fleet):
    classes, eng, home, devices = fleet
    rep = scatter(eng, home, _prepared(eng, home, devices))
    for i, dev in enumerate(devices):
        m = Machine(classes, node=eng.cluster.node(dev), fs=eng.cluster.fs)
        assert m.call("Hunt", "main", [f"/dev{i}/", "beach"]) == rep.result[i]


def test_scatter_empty_tasklist(fleet):
    classes, eng, home, devices = fleet
    rep = scatter(eng, home, [])
    assert rep.result == [] and rep.total_time == 0
