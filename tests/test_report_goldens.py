"""Golden-file tests for ``python -m repro report <name>``.

Each experiment's formatted report is compared byte-for-byte against a
checked-in golden under ``tests/goldens/``.  Everything the reports
print is virtual-time arithmetic over the discrete-event kernel, so the
output is deterministic across hosts — any diff is a real behavior
change in the experiment pipeline (cost model, migration flow, VM
accounting), caught structurally instead of silently regenerating.

To re-bless after an *intentional* change::

    REPRO_BLESS_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/test_report_goldens.py -q

and commit the updated files with a note on why the numbers moved.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.__main__ import main as repro_main

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

#: every table/figure the CLI can regenerate (roaming is excluded: its
#: report is exercised by the benchmark suite and takes the longest)
NAMES = ["table1", "table2", "table3", "table4", "table5", "table6",
         "table7", "figure1", "figure5"]

BLESS = os.environ.get("REPRO_BLESS_GOLDENS") == "1"


@pytest.mark.parametrize("name", NAMES)
def test_report_matches_golden(name, capsys):
    rc = repro_main(["report", name])
    out = capsys.readouterr().out
    assert rc == 0
    assert out.strip(), f"report {name} printed nothing"
    golden = GOLDEN_DIR / f"{name}.txt"
    if BLESS:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden.write_text(out)
        pytest.skip(f"re-blessed {golden.name}")
    assert golden.exists(), (
        f"missing golden {golden}; generate with REPRO_BLESS_GOLDENS=1")
    expected = golden.read_text()
    if out != expected:
        import difflib
        diff = "".join(difflib.unified_diff(
            expected.splitlines(keepends=True),
            out.splitlines(keepends=True),
            fromfile=f"goldens/{name}.txt", tofile="regenerated"))
        pytest.fail(f"report {name} diverged from golden:\n{diff}")


def test_report_rejects_unknown_names(capsys):
    assert repro_main(["report", "tableX"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiments" in err


def test_goldens_directory_is_complete():
    """Every golden this suite asserts against exists and is non-empty
    (catches a half-blessed checkout)."""
    if BLESS:
        pytest.skip("blessing run")
    for name in NAMES:
        path = GOLDEN_DIR / f"{name}.txt"
        assert path.exists() and path.stat().st_size > 0, path
