"""Baseline migration systems: correctness + cost structure."""

import pytest

from repro.baselines import (GJavaMPIEngine, Jessica2Engine, XenEngine,
                             heap_nominal_bytes)
from repro.cluster import gige_cluster
from repro.errors import MigrationError
from repro.lang import compile_source
from repro.migration.segments import pin_methods
from repro.preprocess import preprocess_program
from repro.vm import Machine, gjavampi_model, jessica2_model, xen_model

SRC = """
class Blob { int v; }
class P {
  static Blob blob;
  static int[] big;
  static int main(int n) {
    P.blob = new Blob();
    P.blob.v = 7;
    P.big = new int[64];
    Sys.setNominal(P.big, 4096);
    int r = P.work(n);
    return r + P.blob.v;
  }
  static int work(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + i; P.blob.v = s; }
    return s;
  }
}
"""

TRIG = lambda th: th.frames[-1].code.name == "work"


@pytest.fixture(scope="module")
def original():
    return preprocess_program(compile_source(SRC), "original")


@pytest.fixture(scope="module")
def faulting():
    return preprocess_program(compile_source(SRC), "faulting")


def ref(classes):
    return Machine(classes).call("P", "main", [30])


# -- G-JavaMPI ----------------------------------------------------------------

def test_gjavampi_roundtrip(original):
    eng = GJavaMPIEngine(gige_cluster(2), original, gjavampi_model())
    m, t = eng.start("P", "main", [30])
    eng.run(m, t, stop=TRIG)
    dm, dt, rec = eng.migrate(m, t, "node1")
    assert eng.finish(dm, dt) == ref(original)
    assert rec.nframes == 2  # whole stack moved
    assert rec.capture_time > eng.sys.gj_capture_fixed


def test_gjavampi_moves_whole_heap(original):
    eng = GJavaMPIEngine(gige_cluster(2), original, gjavampi_model())
    m, t = eng.start("P", "main", [30])
    eng.run(m, t, stop=TRIG)
    heap = heap_nominal_bytes(m)
    _dm, _dt, rec = eng.migrate(m, t, "node1")
    assert rec.moved_bytes >= heap  # eager copy (plus expansion)
    assert heap > 4096 * 64  # the nominal-big array is in there


def test_gjavampi_cannot_migrate_pinned(original):
    eng = GJavaMPIEngine(gige_cluster(2), original, gjavampi_model())
    m, t = eng.start("P", "main", [30])
    eng.run(m, t, stop=TRIG)
    pin_methods(t, ["P.main"])
    with pytest.raises(MigrationError):
        eng.migrate(m, t, "node1")


def test_gjavampi_capture_scales_with_heap(original):
    def capture_ms(n_elems):
        src = SRC.replace("new int[64]", f"new int[{n_elems}]")
        classes = preprocess_program(compile_source(src), "original")
        eng = GJavaMPIEngine(gige_cluster(2), classes, gjavampi_model())
        m, t = eng.start("P", "main", [5])
        eng.run(m, t, stop=TRIG)
        _dm, _dt, rec = eng.migrate(m, t, "node1")
        return rec.capture_time

    assert capture_ms(64 * 200) > capture_ms(64)


# -- JESSICA2 --------------------------------------------------------------------

def test_jessica2_roundtrip_with_writeback(faulting):
    eng = Jessica2Engine(gige_cluster(2), faulting, jessica2_model())
    m, t = eng.start("P", "main", [30])
    eng.run(m, t, stop=TRIG)
    dm, wt, rec = eng.migrate(m, t, "node1")
    result = eng.finish(dm, wt, home_machine=m, home_thread=t)
    assert result == ref(faulting)
    assert t.finished


def test_jessica2_capture_is_cheap(faulting):
    eng = Jessica2Engine(gige_cluster(2), faulting, jessica2_model())
    m, t = eng.start("P", "main", [30])
    eng.run(m, t, stop=TRIG)
    _dm, _wt, rec = eng.migrate(m, t, "node1")
    # In-kernel capture: far below one GetLocal-based capture.
    assert rec.capture_time < 1e-3
    assert rec.moved_bytes < 4096  # stack only, heap stays home


def test_jessica2_restore_pays_static_allocation(faulting):
    def restore_time(nominal):
        src = SRC.replace("Sys.setNominal(P.big, 4096)",
                          f"Sys.setNominal(P.big, {nominal})")
        classes = preprocess_program(compile_source(src), "faulting")
        eng = Jessica2Engine(gige_cluster(2), classes, jessica2_model())
        m, t = eng.start("P", "main", [5])
        eng.run(m, t, stop=TRIG)
        _dm, _wt, rec = eng.migrate(m, t, "node1")
        return rec.restore_time

    small = restore_time(64)
    big = restore_time(1024 * 1024)  # 64 MB of static array
    assert big > small + 0.05  # tens of ms of load-time allocation


def test_jessica2_vmti_costs_restored_after_capture(faulting):
    eng = Jessica2Engine(gige_cluster(2), faulting, jessica2_model())
    m, t = eng.start("P", "main", [30])
    eng.run(m, t, stop=TRIG)
    eng.migrate(m, t, "node1")
    assert m.cost.vmti.get_local > 0  # zeroing was transient


# -- Xen ---------------------------------------------------------------------------

def test_xen_roundtrip_and_relocation(original):
    eng = XenEngine(gige_cluster(2), original, xen_model())
    m, t = eng.start("P", "main", [30])
    eng.run(m, t, stop=TRIG)
    m2, t2, rec = eng.migrate(m, t, "node1")
    assert m2 is m and t2 is t  # same VM, relocated
    assert m.node.name == "node1"
    assert eng.finish(m, t) == ref(original)


def test_xen_latency_dominated_by_precopy(original):
    eng = XenEngine(gige_cluster(2), original, xen_model())
    m, t = eng.start("P", "main", [30])
    eng.run(m, t, stop=TRIG)
    _m, _t, rec = eng.migrate(m, t, "node1")
    assert rec.capture_time > 1.0          # seconds of pre-copy
    assert eng.last_freeze_time < 0.5      # sub-second freeze
    assert rec.moved_bytes > eng.sys.xen_working_set_bytes


def test_xen_overhead_charged_to_guest(original):
    eng = XenEngine(gige_cluster(2), original, xen_model())
    m, t = eng.start("P", "main", [30])
    eng.run(m, t, stop=TRIG)
    before = m.clock
    eng.migrate(m, t, "node1")
    assert m.clock - before > 1.0
