"""Cluster substrate tests: nodes, links, NFS, topologies."""

import pytest

from repro.cluster import (Cluster, DiskSpec, FileSystem, LinkSpec, Network,
                           Node, NodeSpec, gige_cluster, phone_setup,
                           wan_grid)
from repro.errors import ClusterError
from repro.units import gbps, kbps, mb, us


# -- links / network ------------------------------------------------------

def test_link_transfer_time_includes_latency_and_framing():
    spec = LinkSpec(bandwidth=1000.0, latency=0.5, per_message_bytes=100)
    # 900 payload + 100 framing at 1000 B/s + 0.5 s latency
    assert spec.transfer_time(900) == pytest.approx(1.5)


def test_link_rejects_negative_size():
    with pytest.raises(ClusterError):
        LinkSpec().transfer_time(-1)


def test_network_default_and_override():
    net = Network(default=LinkSpec(bandwidth=gbps(1)))
    slow = LinkSpec(bandwidth=kbps(50))
    net.set_link("a", "phone", slow)
    assert net.link("a", "phone") is slow
    assert net.link("phone", "a") is slow  # symmetric
    assert net.link("a", "b").bandwidth == gbps(1)


def test_network_loopback_is_cheap():
    net = Network()
    assert net.transfer_time("a", "a", mb(1)) < net.transfer_time("a", "b", mb(1))


def test_network_accounts_bytes_and_messages():
    net = Network()
    net.transfer_time("a", "b", 1000)
    net.transfer_time("a", "b", 500)
    assert net.bytes_moved[("a", "b")] == 1500
    assert net.messages[("a", "b")] == 2
    assert net.total_bytes() == 1500


def test_rtt_counts_both_directions():
    net = Network()
    net.rtt("a", "b", 100, 200)
    assert net.bytes_moved[("a", "b")] == 100
    assert net.bytes_moved[("b", "a")] == 200


def test_transfer_proc_serializes_on_same_link():
    net = Network()
    env = net.env
    done = []

    def xfer(name, nbytes):
        yield from net.transfer_proc("a", "b", nbytes)
        done.append((name, env.now))

    env.process(xfer("one", mb(100)))
    env.process(xfer("two", mb(100)))
    env.run()
    t1 = done[0][1]
    t2 = done[1][1]
    assert t2 == pytest.approx(2 * t1, rel=0.01)


# -- nodes ------------------------------------------------------------------

def test_node_cpu_scaling():
    slow = Node(NodeSpec(name="phone", speed_factor=25.0))
    assert slow.cpu_time(1.0) == 25.0


def test_node_ram_admission():
    n = Node(NodeSpec(name="tiny", ram_bytes=1000))
    n.reserve_ram(800)
    with pytest.raises(ClusterError):
        n.reserve_ram(300)
    n.release_ram(500)
    n.reserve_ram(300)


# -- file system ---------------------------------------------------------------

@pytest.fixture()
def fs_pair():
    cluster = gige_cluster(2)
    f = cluster.fs.host_file(cluster.node("node1"), "/data/a.txt", mb(10),
                             plant=[(1000, "needle")])
    return cluster, f


def test_stat_and_exists(fs_pair):
    cluster, f = fs_pair
    assert cluster.fs.stat("/data/a.txt").size == mb(10)
    assert cluster.fs.exists("/data/a.txt")
    assert not cluster.fs.exists("/data/b.txt")
    with pytest.raises(ClusterError):
        cluster.fs.stat("/data/missing")


def test_duplicate_file_rejected(fs_pair):
    cluster, _ = fs_pair
    with pytest.raises(ClusterError):
        cluster.fs.host_file(cluster.node("node0"), "/data/a.txt", 10)


def test_listdir_prefix(fs_pair):
    cluster, _ = fs_pair
    cluster.fs.host_file(cluster.node("node0"), "/data/b.txt", 10)
    cluster.fs.host_file(cluster.node("node0"), "/other/c.txt", 10)
    assert cluster.fs.listdir("/data/") == ["/data/a.txt", "/data/b.txt"]


def test_window_content_is_deterministic(fs_pair):
    _, f = fs_pair
    w1 = f.window(4096, 256)
    w2 = f.window(4096, 256)
    assert w1 == w2
    assert len(w1) == 256


def test_window_plant_visible(fs_pair):
    _, f = fs_pair
    w = f.window(900, 300)
    assert "needle" in w


def test_window_plant_partial_overlap(fs_pair):
    _, f = fs_pair
    # window covers only the first 3 chars of the plant at offset 1000
    w = f.window(900, 103)
    assert w.endswith("nee")


def test_window_out_of_range(fs_pair):
    _, f = fs_pair
    with pytest.raises(ClusterError):
        f.window(mb(10) - 10, 100)


def test_local_read_cheaper_than_nfs(fs_pair):
    cluster, _ = fs_pair
    local = cluster.fs.read_cost("node1", "/data/a.txt", 0, mb(10))
    remote = cluster.fs.read_cost("node0", "/data/a.txt", 0, mb(10))
    assert local < remote


def test_nfs_read_pipelines_disk_and_wire(fs_pair):
    cluster, _ = fs_pair
    remote = cluster.fs.read_cost("node0", "/data/a.txt", 4096, mb(1))
    disk = mb(1) / cluster.fs.disk.read_bandwidth
    wire = cluster.network.link("node1", "node0").transfer_time(mb(1))
    assert remote == pytest.approx(max(disk, wire)
                                   + cluster.network.rtt("node0", "node1", 256, 0),
                                   rel=0.05)


def test_read_returns_content_and_cost(fs_pair):
    cluster, _ = fs_pair
    content, cost = cluster.fs.read("node0", "/data/a.txt", 990, 100)
    assert "needle" in content
    assert cost > 0


# -- topologies -------------------------------------------------------------------

def test_gige_cluster_nodes():
    c = gige_cluster(4)
    assert sorted(c.names()) == ["node0", "node1", "node2", "node3"]
    assert c.node("node0").spec.has_vmti


def test_duplicate_node_rejected():
    c = gige_cluster(1)
    with pytest.raises(ClusterError):
        c.add_node(NodeSpec(name="node0"))


def test_unknown_node_rejected():
    c = gige_cluster(1)
    with pytest.raises(ClusterError):
        c.node("nope")


def test_wan_grid_has_client_and_servers():
    c = wan_grid(3)
    assert "client" in c.names()
    assert "server2" in c.names()


def test_phone_setup_properties():
    c = phone_setup(128)
    phone = c.node("iphone")
    assert not phone.spec.has_vmti
    assert phone.spec.speed_factor > 10
    link = c.network.link("server", "iphone")
    assert link.bandwidth == pytest.approx(kbps(128))
