"""State encoding / object graph wire-format tests."""

import pytest

from repro.lang import compile_source
from repro.migration import (CapturedFrame, CapturedState, GraphDecoder,
                             GraphEncoder, decode_value,
                             encode_object_shallow, encode_value)
from repro.vm import Machine, RemoteRef
from repro.vm.values import LOC_FIELD, LOC_LOCAL

SRC = """
class Node2 { int v; Node2 next; }
class T { static int f() { return 0; } }
"""


@pytest.fixture()
def machine():
    return Machine(compile_source(SRC))


def _node(machine, v):
    obj = machine.heap.new_instance(machine.loader.load("Node2"))
    obj.fields["v"] = v
    return obj


# -- scalar encoding ----------------------------------------------------------

def test_encode_primitives_by_value():
    for v in (5, 2.5, True, None, "hi"):
        enc, nbytes = encode_value(v, "home")
        assert enc == v
        assert nbytes > 0
        assert decode_value(enc) == v


def test_encode_object_becomes_descriptor(machine):
    obj = _node(machine, 1)
    enc, _ = encode_value(obj, "home")
    assert enc == ("@ref", obj.oid, "home")
    ref = decode_value(enc, ("local", None, 3))
    assert isinstance(ref, RemoteRef)
    assert ref.home_oid == obj.oid and ref.loc == ("local", None, 3)


def test_encode_forwards_existing_remote_ref():
    ref = RemoteRef(9, "origin")
    enc, _ = encode_value(ref, "hop2")
    assert enc == ("@ref", 9, "origin")  # still points at the true owner


def test_state_bytes_accumulates(machine):
    frame = CapturedFrame("T", "f", 0, 0, locals=[1, "abcd", ("@ref", 2, "h")])
    state = CapturedState(frames=[frame], statics={("T", "x"): 5},
                          class_names=["T"], home_node="h")
    assert state.state_bytes() > frame.state_bytes() > 0
    assert state.nframes() == 1


# -- shallow object payloads ------------------------------------------------------

def test_shallow_instance_payload(machine):
    a = _node(machine, 1)
    b = _node(machine, 2)
    a.fields["next"] = b
    payload, nbytes = encode_object_shallow(a, "home")
    kind, cname, fields = payload
    assert kind == "I" and cname == "Node2"
    assert fields["v"] == 1
    assert fields["next"] == ("@ref", b.oid, "home")
    assert nbytes >= 16


def test_shallow_primitive_array(machine):
    arr = machine.heap.new_array("int", 4, 8)
    arr.data[:] = [1, 2, 3, 4]
    payload, nbytes = encode_object_shallow(arr, "home")
    assert payload == ("A", "int", 8, [1, 2, 3, 4])
    assert nbytes == 16 + 32


def test_shallow_ref_array_elements_are_descriptors(machine):
    a = _node(machine, 1)
    arr = machine.heap.new_array("ref", 2, 8)
    arr.data[0] = a
    payload, _ = encode_object_shallow(arr, "home")
    assert payload[3][0] == ("@ref", a.oid, "home")
    assert payload[3][1] is None


# -- deep graphs -------------------------------------------------------------------

def test_graph_roundtrip_with_cycle(machine):
    a = _node(machine, 1)
    b = _node(machine, 2)
    a.fields["next"] = b
    b.fields["next"] = a  # cycle
    enc = GraphEncoder(this_node="w", eager=True)
    root = enc.encode(a)
    dec = GraphDecoder(machine.heap, machine.loader, "w", enc.graph)
    a2 = dec.decode(root)
    assert a2.fields["v"] == 1
    assert a2.fields["next"].fields["v"] == 2
    assert a2.fields["next"].fields["next"] is a2  # cycle preserved
    assert a2 is not a  # a copy


def test_graph_respects_home_identity_boundary(machine):
    fetched = _node(machine, 5)
    fresh = _node(machine, 6)
    fetched.fields["next"] = fresh
    enc = GraphEncoder(this_node="worker",
                       home_identity={id(fetched): (77, "home")})
    root = enc.encode(fetched)
    assert root == ("@ref", 77, "home")  # not inlined
    root2 = enc.encode(fresh)
    assert root2[0] == "@g"  # fresh object inlined


def test_graph_decoder_resolves_local_refs(machine):
    target = _node(machine, 9)
    enc_ref = ("@ref", target.oid, "home")
    dec = GraphDecoder(machine.heap, machine.loader, "home", {})
    assert dec.decode(enc_ref) is target


def test_graph_decoder_makes_remote_refs_elsewhere(machine):
    dec = GraphDecoder(machine.heap, machine.loader, "worker", {})
    got = dec.decode(("@ref", 5, "home"), (LOC_FIELD, None, "next"))
    assert isinstance(got, RemoteRef)
    assert got.home_node == "home" and got.loc[0] == LOC_FIELD


def test_graph_arrays_roundtrip(machine):
    arr = machine.heap.new_array("ref", 2, 8)
    arr.data[0] = _node(machine, 3)
    enc = GraphEncoder(this_node="w", eager=True)
    root = enc.encode(arr)
    dec = GraphDecoder(machine.heap, machine.loader, "w", enc.graph)
    arr2 = dec.decode(root)
    assert arr2.data[0].fields["v"] == 3
    assert arr2.data[1] is None


def test_graph_encoder_counts_bytes(machine):
    big = machine.heap.new_array("int", 1000, 8)
    enc = GraphEncoder(this_node="w", eager=True)
    enc.encode(big)
    assert enc.nbytes >= 8000
