"""Bytecode layer tests: code objects, assembler, verifier."""

import pytest

from repro.bytecode import (ClassFile, CodeObject, ExcEntry, Instr, assemble,
                            disassemble, stack_depths, verify, verify_class)
from repro.bytecode import opcodes as op
from repro.errors import VerifyError


# -- Instr / CodeObject -------------------------------------------------------

def test_instr_equality_and_repr():
    a = Instr(op.CONST, 1)
    assert a == Instr(op.CONST, 1)
    assert a != Instr(op.CONST, 2)
    assert "CONST" in repr(a)


def test_stack_effect_static_and_calls():
    assert op.stack_effect(op.ADD) == (2, 1)
    assert op.stack_effect(op.INVOKESTATIC, ("C", "m"), 3) == (3, 1)
    assert op.stack_effect(op.INVOKEVIRT, "m", 2) == (3, 1)
    assert op.stack_effect(op.NATIVE, "Sys.print", 1) == (1, 1)
    with pytest.raises(KeyError):
        op.stack_effect("BOGUS")


def test_line_table_lookup():
    code = CodeObject("C", "m", 0, 1,
                      [Instr(op.CONST, 0)] * 10,
                      line_table=[(0, 1), (4, 2), (7, 3)])
    assert code.line_of(0) == 1
    assert code.line_of(5) == 2
    assert code.line_of(9) == 3
    assert code.line_start(5) == 4
    assert code.line_start(9) == 7
    assert code.line_starts() == [0, 4, 7]


def test_code_copy_is_independent():
    code = CodeObject("C", "m", 0, 1, [Instr(op.CONST, 0), Instr(op.RET)])
    code.msps = {0}
    cp = code.copy()
    cp.instrs.append(Instr(op.NOP))
    cp.msps.add(1)
    assert len(code.instrs) == 2
    assert code.msps == {0}


def test_classfile_field_lookup():
    cf = ClassFile("C", fields=[])
    assert cf.field("x") is None
    from repro.bytecode import FieldDecl
    cf2 = ClassFile("D", fields=[FieldDecl("x", False, "int", 8),
                                 FieldDecl("s", True, "int", 8)])
    assert cf2.field("x").type_name == "int"
    assert [f.name for f in cf2.instance_fields()] == ["x"]
    assert [f.name for f in cf2.static_fields()] == ["s"]


# -- assembler -------------------------------------------------------------------

def test_assemble_simple_method():
    code = assemble("""
    method Math.add static params=2 locals=2
      line 1
      LOAD 0
      LOAD 1
      ADD
      RETV
    """)
    verify(code)
    assert code.qualname == "Math.add"
    assert code.instrs[2].op == op.ADD


def test_assemble_labels_and_catch():
    code = assemble("""
    method C.m static params=1 locals=1
      line 1
      LOAD 0
      JZ Lzero
      CONST 1
      RETV
    Lzero:
      CONST 0
      RETV
    Lhandler:
      POP
      CONST -1
      RETV
      catch 0 4 -> Lhandler NullPointerException
    """)
    verify(code)
    assert code.instrs[1].a == 4
    assert code.exc_table[0].handler == 6


def test_assemble_two_arg_opcodes():
    code = assemble("""
    method C.m static params=0 locals=1
      line 1
      GETS ('C', 'x')
      POP
      NATIVE 'Sys.print' 0
      POP
      RET
    """)
    assert code.instrs[0].a == ("C", "x")
    assert code.instrs[2].a == "Sys.print"
    assert code.instrs[2].b == 0


def test_assemble_rejects_unknown_opcode():
    with pytest.raises(VerifyError):
        assemble("method C.m static params=0 locals=0\n  FROB 1")


def test_assemble_rejects_bad_header():
    with pytest.raises(VerifyError):
        assemble("methodd C.m params=0 locals=0\n  RET")


def test_disassemble_roundtrip_content():
    code = assemble("""
    method C.m static params=1 locals=2
      line 3
      LOAD 0
      STORE 1
      LOAD 1
      RETV
    """)
    text = disassemble(code)
    assert "C.m" in text and "LOAD 0" in text and "line 3" in text


# -- verifier ------------------------------------------------------------------------

def _code(instrs, nlocals=2, exc=None):
    return CodeObject("T", "m", 0, nlocals, instrs, exc_table=exc or [])


def test_verify_rejects_empty():
    with pytest.raises(VerifyError):
        verify(_code([]))


def test_verify_rejects_bad_slot():
    with pytest.raises(VerifyError):
        verify(_code([Instr(op.LOAD, 5), Instr(op.RETV)]))


def test_verify_rejects_bad_jump_target():
    with pytest.raises(VerifyError):
        verify(_code([Instr(op.JMP, 99)]))


def test_verify_rejects_stack_underflow():
    with pytest.raises(VerifyError):
        verify(_code([Instr(op.ADD), Instr(op.RET)]))


def test_verify_rejects_falling_off_end():
    with pytest.raises(VerifyError):
        verify(_code([Instr(op.CONST, 1), Instr(op.POP)]))


def test_verify_rejects_inconsistent_depths():
    # Two paths reach bci 3 with different stack depths.
    instrs = [
        Instr(op.CONST, True),   # 0
        Instr(op.JZ, 3),         # 1 -> 3 with depth 0
        Instr(op.CONST, 7),      # 2 (fallthrough pushes)
        Instr(op.RET),           # 3 reached with depth 0 or 1
    ]
    with pytest.raises(VerifyError):
        verify(_code(instrs))


def test_verify_rejects_bad_exc_range():
    with pytest.raises(VerifyError):
        verify(_code([Instr(op.RET)], exc=[ExcEntry(0, 5, 0, "Throwable")]))


def test_verify_rejects_const_of_weird_type():
    with pytest.raises(VerifyError):
        verify(_code([Instr(op.CONST, object()), Instr(op.RET)]))


def test_verify_accepts_handler_depth_one():
    instrs = [
        Instr(op.CONST, 1),   # 0
        Instr(op.POP),        # 1
        Instr(op.RET),        # 2
        Instr(op.POP),        # 3 handler: exception on stack
        Instr(op.RET),        # 4
    ]
    verify(_code(instrs, exc=[ExcEntry(0, 2, 3, "Throwable")]))


def test_stack_depths_reports_reachable_only():
    instrs = [
        Instr(op.CONST, 1),  # 0
        Instr(op.RETV),      # 1
        Instr(op.NOP),       # 2 unreachable
    ]
    d = stack_depths(_code(instrs))
    assert d[0] == 0 and d[1] == 1
    assert 2 not in d


def test_verify_class_walks_methods(app_classes_original):
    for cf in app_classes_original.values():
        verify_class(cf)


def test_lswitch_targets_checked():
    with pytest.raises(VerifyError):
        verify(_code([Instr(op.CONST, 1), Instr(op.LSWITCH, {0: 99}, 0)]))
