"""Delta frames: an unchanged deep stack prefix rides as markers.

The stack analogue of the ``@cached`` statics delta (ROADMAP
carry-over): when a thread whose segment was already shipped to a
worker re-offloads with its suspended callers untouched, those deep
frames travel as :class:`~repro.migration.state.FrameMarker`
fingerprints instead of full activation records, and the receiver
rehydrates them from the retained transfer-ledger copy.  The scheme is
content-addressed — a marker is emitted only when the sender's
recomputed fingerprint matches the retained record's — so correctness
never depends on *why* the frames match, only that they do.
"""

from __future__ import annotations

import pytest

from repro.cluster import gige_cluster
from repro.errors import MigrationError
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.capture import run_to_msp
from repro.migration.state import (FRAME_MARKER_BYTES, CapturedFrame,
                                   FrameMarker, frame_fingerprint)
from repro.preprocess import preprocess_program

#: three-deep call chain: ``main -> mid -> leaf``.  ``leaf`` loops
#: through MSPs; the two suspended callers are byte-identical across
#: same-argument spawns, which is what the delta elides.
SRC = """
class Q {
  static int total;
  static int leaf(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      acc = (acc * 31 + i + Q.total) % 100003;
    }
    Q.total = Q.total + 1;
    return acc;
  }
  static int mid(int n) {
    int r = Q.leaf(n + 3);
    return r + 7;
  }
  static int main(int n) {
    int out = Q.mid(n);
    return out;
  }
}
"""


def _engine():
    classes = preprocess_program(compile_source(SRC), "faulting")
    return SODEngine(gige_cluster(2), classes, transfer_cache=True)


def _spawn_frozen(eng, home, n, depth=3):
    """Freeze a fresh ``main(n)`` thread at the first MSP reached at
    call depth ``depth`` (inside ``leaf``) — a deterministic point, so
    same-argument spawns freeze with identical stacks."""
    t = eng.spawn(home, "Q", "main", [n])

    def at_deep_msp(th):
        return (len(th.frames) == depth
                and th.frames[-1].pc in th.frames[-1].code.msps)

    status = home.machine.run(t, stop=at_deep_msp, max_instrs=1_000_000)
    assert status == "stopped", status
    return t


def _complete(eng, worker, wt, home, t, nframes):
    eng.run(worker, wt)
    eng.complete_segment(worker, wt, home, t, nframes)
    return t.result


def test_reoffload_elides_unchanged_deep_prefix():
    eng = _engine()
    home = eng.host("node0")

    t = _spawn_frozen(eng, home, 6)
    worker, wt, first = eng.migrate(home, t, "node1", 3)
    assert first.cached_frames == 0  # nothing retained yet
    r1 = _complete(eng, worker, wt, home, t, 3)
    saved_before = eng.cluster.network.total_saved()

    # Same shape, frozen at the same MSP with the same locals: the two
    # suspended callers fingerprint-match the retained records.
    t2 = _spawn_frozen(eng, home, 6)
    worker, wt, second = eng.migrate(home, t2, "node1", 3)
    assert second.cached_frames == 2  # main and mid elided; leaf ships
    assert second.saved_bytes > 0
    # The elision is metered on the modeled network like every other
    # transfer-cache save.
    assert eng.cluster.network.total_saved() \
        >= saved_before + second.saved_bytes
    r2 = _complete(eng, worker, wt, home, t2, 3)
    # Q.total advanced between runs, so results differ — what must
    # match is the independently computed expectation.
    assert (r1, r2) == (_oracle(6, 0), _oracle(6, 1))


def _oracle(n, total_before):
    acc = 0
    for i in range(n + 3):
        acc = (acc * 31 + i + total_before) % 100003
    return acc + 7


def test_changed_deep_frame_breaks_the_prefix():
    """A caller that advanced (different argument => different locals)
    must ship fresh — and everything above it too, even if an outer
    frame happens to match (restore order would otherwise splice stale
    callers under fresh callees)."""
    eng = _engine()
    home = eng.host("node0")

    t = _spawn_frozen(eng, home, 6)
    worker, wt, _ = eng.migrate(home, t, "node1", 3)
    _complete(eng, worker, wt, home, t, 3)

    t2 = _spawn_frozen(eng, home, 7)  # different n: mid's locals differ
    worker, wt, rec = eng.migrate(home, t2, "node1", 3)
    # main(n) also holds n, so nothing in the prefix matches here.
    assert rec.cached_frames == 0
    _complete(eng, worker, wt, home, t2, 3)


def test_top_frame_never_rides_as_marker():
    """Even a (contrived) fingerprint-identical top frame ships full:
    the restore drivers key class shipment and MSP checks off it."""
    eng = _engine()
    home = eng.host("node0")
    for _ in range(2):
        t = _spawn_frozen(eng, home, 6)
        worker, wt, rec = eng.migrate(home, t, "node1", 1)  # leaf only
        assert rec.cached_frames == 0  # single-frame segment: no prefix
        _complete(eng, worker, wt, home, t, 1)


def test_tampered_ledger_record_fails_closed():
    """Rehydration re-fingerprints the retained record; a ledger whose
    copy diverged from its stored fingerprint is a bug, and the restore
    must refuse rather than splice in a wrong frame."""
    eng = _engine()
    home = eng.host("node0")

    t = _spawn_frozen(eng, home, 6)
    worker, wt, _ = eng.migrate(home, t, "node1", 3)
    _complete(eng, worker, wt, home, t, 3)

    led = eng.ledger("node0", "node1")
    key = (None, "main")  # root namespace, default thread name
    assert key in led.frames and len(led.frames[key]) == 3
    fp0, rec0 = led.frames[key][0]
    assert isinstance(rec0, CapturedFrame)
    tampered = CapturedFrame(
        class_name=rec0.class_name, method_name=rec0.method_name,
        pc=rec0.pc, raw_pc=rec0.raw_pc, locals=list(rec0.locals))
    tampered.locals[-1] = 999999  # content no longer matches fp0
    led.frames[key][0] = (fp0, tampered)

    t2 = _spawn_frozen(eng, home, 6)
    with pytest.raises(MigrationError, match="ledger out of sync"):
        eng.migrate(home, t2, "node1", 3)


def test_marker_sizing_and_fingerprint_are_stable():
    f = CapturedFrame(class_name="Q", method_name="mid", pc=1, raw_pc=2,
                      locals=[5, None])
    assert FrameMarker(frame_fingerprint(f)).state_bytes() \
        == FRAME_MARKER_BYTES
    assert frame_fingerprint(f) == frame_fingerprint(CapturedFrame(
        class_name="Q", method_name="mid", pc=1, raw_pc=2,
        locals=[5, None]))
    g = CapturedFrame(class_name="Q", method_name="mid", pc=1, raw_pc=2,
                      locals=[6, None])
    assert frame_fingerprint(f) != frame_fingerprint(g)
