"""Shared fixtures: compiled mini-programs and ready-made engines."""

from __future__ import annotations

import pytest

from repro.cluster import gige_cluster
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.preprocess import preprocess_program
from repro.vm import Machine

#: a small program exercising objects, statics, arrays, calls, try/catch
APP_SOURCE = """
class Counter { int hits; }
class App {
  static int base;
  static Counter c;
  static int work(int n) {
    App.base = 5;
    App.c = new Counter();
    int r = App.step(n);
    return r + App.c.hits + App.base;
  }
  static int step(int n) {
    int total = 0;
    for (int i = 0; i < n; i = i + 1) {
      App.c.hits = App.c.hits + 1;
      total = total + i * 2;
    }
    return total;
  }
  static int safe(int n) {
    int r = 0;
    try { Counter q = null; r = q.hits; }
    catch (NullPointerException e) { r = n; }
    return r;
  }
}
"""


@pytest.fixture(scope="session")
def app_classes_original():
    return preprocess_program(compile_source(APP_SOURCE), "original")


@pytest.fixture(scope="session")
def app_classes_faulting():
    return preprocess_program(compile_source(APP_SOURCE), "faulting")


@pytest.fixture(scope="session")
def app_classes_checking():
    return preprocess_program(compile_source(APP_SOURCE), "checking")


@pytest.fixture()
def app_machine(app_classes_original):
    return Machine(app_classes_original)


@pytest.fixture()
def sod_engine(app_classes_faulting):
    eng = SODEngine(gige_cluster(3), app_classes_faulting)
    return eng


def compile_and_run(source: str, cls: str, method: str, args=None,
                    build: str = "original"):
    """Compile, preprocess, run; returns (result, machine)."""
    classes = preprocess_program(compile_source(source), build)
    machine = Machine(classes)
    result = machine.call(cls, method, list(args or []))
    return result, machine
