"""MiniLang lexer and parser tests."""

import pytest

from repro.errors import CompileError
from repro.lang import ast_nodes as A
from repro.lang.lexer import tokenize
from repro.lang.parser import parse


# -- lexer ---------------------------------------------------------------

def kinds(src):
    return [t.kind for t in tokenize(src)]


def test_tokenize_kinds():
    toks = tokenize('class x 12 3.5 "hi" <= && =')
    assert [t.kind for t in toks[:-1]] == [
        "kw", "ident", "int", "float", "string", "<=", "&&", "="]


def test_tokenize_positions():
    toks = tokenize("a\n  bb")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_line_comment_skipped():
    assert kinds("a // comment\n b") == ["ident", "ident", "eof"]


def test_block_comment_skipped_and_tracks_lines():
    toks = tokenize("/* x\ny */ a")
    assert toks[0].text == "a"
    assert toks[0].line == 2


def test_unterminated_block_comment():
    with pytest.raises(CompileError):
        tokenize("/* never ends")


def test_string_escapes():
    toks = tokenize(r'"a\nb\"c\\"')
    assert toks[0].text == 'a\nb"c\\'


def test_unterminated_string():
    with pytest.raises(CompileError):
        tokenize('"abc')


def test_string_newline_rejected():
    with pytest.raises(CompileError):
        tokenize('"ab\ncd"')


def test_float_variants():
    toks = tokenize("1.5 2e3 7")
    assert [t.kind for t in toks[:-1]] == ["float", "float", "int"]


def test_unexpected_char():
    with pytest.raises(CompileError):
        tokenize("a @ b")


# -- parser ------------------------------------------------------------------

def first_method(src):
    prog = parse(src)
    return prog.classes[0].methods[0]


def test_parse_class_with_field_and_method():
    prog = parse("class A { int x; static int f(int y) { return y; } }")
    cls = prog.classes[0]
    assert cls.name == "A"
    assert cls.fields[0].name == "x" and not cls.fields[0].is_static
    assert cls.methods[0].is_static
    assert cls.methods[0].params[0].name == "y"


def test_parse_extends():
    prog = parse("class B extends A { }\nclass A { }")
    assert prog.classes[0].superclass == "A"


def test_parse_array_types():
    prog = parse("class A { int[] xs; static void f(float[] ys) { } }")
    assert prog.classes[0].fields[0].type_name == "int[]"
    assert prog.classes[0].methods[0].params[0].type_name == "float[]"


def test_parse_precedence():
    m = first_method("class A { static int f() { return 1 + 2 * 3; } }")
    ret = m.body.stmts[0]
    assert isinstance(ret.value, A.Binary) and ret.value.op == "+"
    assert isinstance(ret.value.right, A.Binary) and ret.value.right.op == "*"


def test_parse_unary_and_not():
    m = first_method("class A { static bool f(bool b) { return !b; } }")
    assert isinstance(m.body.stmts[0].value, A.Unary)


def test_parse_if_else_chain():
    m = first_method("""
    class A { static int f(int x) {
      if (x > 0) { return 1; } else if (x < 0) { return -1; } else { return 0; }
    } }""")
    node = m.body.stmts[0]
    assert isinstance(node, A.If)
    assert isinstance(node.otherwise.stmts[0], A.If)


def test_parse_for_and_while():
    m = first_method("""
    class A { static int f(int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) { s = s + i; }
      while (s > 100) { s = s - 1; }
      return s;
    } }""")
    assert isinstance(m.body.stmts[1], A.For)
    assert isinstance(m.body.stmts[2], A.While)


def test_parse_for_with_empty_sections():
    m = first_method("""
    class A { static int f() { for (;;) { break; } return 1; } }""")
    loop = m.body.stmts[0]
    assert loop.init is None and loop.cond is None and loop.step is None


def test_parse_try_catch_throw():
    m = first_method("""
    class A { static int f() {
      try { throw new Exception(); } catch (Exception e) { return 2; }
      return 1;
    } }""")
    t = m.body.stmts[0]
    assert isinstance(t, A.TryCatch)
    assert t.exc_class == "Exception" and t.exc_var == "e"
    assert isinstance(t.body.stmts[0], A.Throw)


def test_parse_call_forms():
    m = first_method("""
    class A { static int f(A a) {
      Sys.print("x");
      a.go(1, 2);
      helper();
      return A.stat();
    } static int stat() { return 0; } static void helper() { } }""")
    calls = [s.expr for s in m.body.stmts[:3]]
    assert all(isinstance(c, A.Call) for c in calls)
    assert calls[0].target.ident == "Sys"
    assert calls[1].method == "go"
    assert calls[2].target is None


def test_parse_new_object_and_array():
    m = first_method("""
    class A { static void f() { A a = new A(); int[] xs = new int[5]; } }""")
    decls = m.body.stmts
    assert isinstance(decls[0].init, A.NewObject)
    assert isinstance(decls[1].init, A.NewArray)


def test_parse_index_and_field_chains():
    m = first_method("""
    class A { A next; int v;
      static int f(A a, int[] xs) { return a.next.v + xs[2]; } }""")
    expr = m.body.stmts[0].value
    assert isinstance(expr.left, A.FieldAccess)
    assert isinstance(expr.right, A.Index)


def test_parse_assignment_targets():
    with pytest.raises(CompileError):
        parse("class A { static void f() { 1 + 2 = 3; } }")


def test_parse_empty_program_rejected():
    with pytest.raises(CompileError):
        parse("   ")


def test_parse_missing_semicolon():
    with pytest.raises(CompileError):
        parse("class A { static void f() { int x = 1 } }")


def test_break_continue_parse():
    m = first_method("""
    class A { static int f(int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) {
        if (i == 2) { continue; }
        if (i == 5) { break; }
        s = s + 1;
      }
      return s;
    } }""")
    assert isinstance(m.body.stmts[1], A.For)
