"""Smoke tests: the example scripts must run cleanly end-to-end.

(The roaming and photo-share examples run multi-second harnesses and are
covered by the benchmarks; here we exercise the quick ones.)
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> None:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart_example(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "migrated result" in out and "migration latency" in out


def test_speculative_cloud_example(capsys):
    run_example("speculative_cloud.py")
    out = capsys.readouterr().out
    assert "rocketed to cloud   : True" in out


def test_elastic_workflows_example(capsys):
    run_example("elastic_workflows.py")
    out = capsys.readouterr().out
    assert "all three flows agree" in out


@pytest.mark.slow
def test_photo_share_example(capsys):
    run_example("photo_share.py")
    out = capsys.readouterr().out
    assert out.count("beach photos found") == 4
