"""Workflow flows (Fig. 1), segmentation, policies, prefetch."""

import pytest

from repro.cluster import gige_cluster, phone_setup
from repro.errors import MigrationError
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.policies import (BandwidthAwarePolicy, LocalityPolicy,
                                      SpeculativeCloudPolicy, after_clock,
                                      after_instrs,
                                      any_of, on_depth, on_method_entry,
                                      rewind_to_line_start)
from repro.migration.prefetch import (HistoryPrefetch, NoPrefetch,
                                      ReachablePrefetch)
from repro.migration.segments import (max_migratable, pin_methods, plan,
                                      segment_bytes_estimate)
from repro.migration.workflow import (deliver_value, multi_hop,
                                      partial_return, roam, total_migration)
from repro.preprocess import preprocess_program
from repro.units import mb
from repro.vm import Machine

FLOW_SRC = """
class W {
  static int data;
  static int main(int n) {
    W.data = 100;
    int r = W.a(n);
    return r + W.data;
  }
  static int a(int n) { return W.b(n) * 2 + 1; }
  static int b(int n) { return W.c(n) + 3; }
  static int c(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + i; }
    W.data = W.data + 1;
    return s;
  }
}
"""


@pytest.fixture(scope="module")
def flow_classes():
    return preprocess_program(compile_source(FLOW_SRC), "faulting")


@pytest.fixture()
def flow(flow_classes):
    eng = SODEngine(gige_cluster(3), flow_classes)
    home = eng.host("node0")
    t = eng.spawn(home, "W", "main", [25])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "c")
    return eng, home, t


def flow_ref(flow_classes):
    return Machine(flow_classes).call("W", "main", [25])


# -- Fig. 1 flows ------------------------------------------------------------

def test_partial_return_flow(flow, flow_classes):
    eng, home, t = flow
    rep = partial_return(eng, home, t, "node1", 1)
    assert rep.result == flow_ref(flow_classes)
    assert len(rep.records) == 1
    assert rep.total_time > 0


def test_total_migration_flow(flow, flow_classes):
    eng, home, t = flow
    rep = total_migration(eng, home, t, "node1", top_frames=1)
    assert rep.result == flow_ref(flow_classes)
    assert len(rep.records) == 2
    assert t.finished and not t.frames  # home stack fully retired
    # home heap stays consistent after the final flush
    assert home.machine.loader.load("W").statics["data"] == 101


def test_total_migration_requires_residual(flow):
    eng, home, t = flow
    with pytest.raises(MigrationError):
        total_migration(eng, home, t, "node1", top_frames=t.depth())


def test_multi_hop_flow(flow, flow_classes):
    eng, home, t = flow
    rep = multi_hop(eng, home, t, "node1", "node2",
                    top_frames=1, second_frames=2)
    assert rep.result == flow_ref(flow_classes)
    assert len(rep.records) == 2
    assert home.machine.loader.load("W").statics["data"] == 101


def test_multi_hop_without_home_residual(flow, flow_classes):
    eng, home, t = flow
    rep = multi_hop(eng, home, t, "node1", "node2",
                    top_frames=1, second_frames=3)
    assert rep.result == flow_ref(flow_classes)
    assert t.finished


def test_deliver_value_intercepts_reinvoke(flow_classes):
    eng = SODEngine(gige_cluster(2), flow_classes)
    home = eng.host("node0")
    t = eng.spawn(home, "W", "main", [25])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "c")
    from repro.migration.workflow import _restore_residual
    worker, residual, _rec = _restore_residual(eng, home, t, "node1",
                                               nframes=3, skip_top=1)
    # deliver c's would-be result; b/a/main math must then run remotely
    deliver_value(eng, worker, residual, 300)
    eng.run(worker, residual)
    assert residual.result == (300 + 3) * 2 + 1 + 100


# -- segmentation --------------------------------------------------------------

def test_plan_validation(flow):
    eng, home, t = flow
    p = plan(t, [1, 2])
    assert p.total == 3
    with pytest.raises(MigrationError):
        plan(t, [])
    with pytest.raises(MigrationError):
        plan(t, [99])


def test_pinning_limits_migratable(flow):
    eng, home, t = flow
    assert max_migratable(t) == t.depth()
    pin_methods(t, ["W.b"])
    assert max_migratable(t) == 1  # only c above the pinned b
    with pytest.raises(MigrationError):
        plan(t, [2])


def test_segment_bytes_estimate_grows(flow):
    eng, home, t = flow
    assert segment_bytes_estimate(t, 2) > segment_bytes_estimate(t, 1)


# -- triggers ------------------------------------------------------------------

def test_trigger_combinators(flow_classes):
    m = Machine(flow_classes)
    t = m.spawn("W", "main", [5])
    m.run(t, stop=on_method_entry("W", "c"))
    assert t.frames[-1].code.name == "c" and t.frames[-1].pc == 0
    t2 = m.spawn("W", "main", [5])
    m.run(t2, stop=on_depth(3))
    assert t2.depth() == 3
    t3 = m.spawn("W", "main", [5])
    m.run(t3, stop=any_of(on_depth(99), after_instrs(m, 10)))
    assert not t3.finished
    t4 = m.spawn("W", "main", [5])
    budget = m.cost.unit_op_cost() * 20
    clock0 = m.clock
    status = m.run(t4, stop=after_clock(m, budget))
    assert status == "stopped" and m.clock - clock0 >= budget
    assert not t4.finished


def test_rewind_to_line_start(flow_classes):
    m = Machine(flow_classes)
    t = m.spawn("W", "c", [5])
    m.run(t, max_instrs=3)
    frame = t.frames[-1]
    rewind_to_line_start(t)
    assert frame.pc == frame.code.line_start(frame.pc)
    assert not frame.stack
    m.run(t)
    assert t.result == 10  # unchanged semantics after rewind


# -- locality / bandwidth policies ----------------------------------------------

def test_locality_policy_picks_file_host(flow_classes):
    eng = SODEngine(gige_cluster(3), flow_classes)
    eng.cluster.fs.host_file(eng.cluster.node("node2"), "/d/x", mb(1))
    pol = LocalityPolicy(engine=eng, path_of=lambda th: "/d/x")
    m = Machine(flow_classes)
    t = m.spawn("W", "main", [1])
    assert pol.destination(t) == "node2"
    pol2 = LocalityPolicy(engine=eng, path_of=lambda th: None)
    assert pol2.destination(t) is None


def test_bandwidth_aware_policy_caps_segment(flow):
    eng, home, t = flow
    pol = BandwidthAwarePolicy(engine=eng, dst="node1", latency_budget=1e-9)
    assert pol.choose_nframes("node0", t) == 1
    pol2 = BandwidthAwarePolicy(engine=eng, dst="node1", latency_budget=1.0)
    assert pol2.choose_nframes("node0", t) == t.depth()


# -- speculative cloud retry ---------------------------------------------------------

SPEC_SRC = """
class T {
  static int crunch(int n) {
    int[] big = new int[n];
    for (int i = 0; i < n; i = i + 1) { big[i] = i; }
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + big[i]; }
    return s;
  }
  static int main(int n) { return T.crunch(n); }
}
"""


def test_speculative_policy_rockets_to_cloud():
    from repro.cluster import Cluster, NodeSpec
    from repro.cluster.topology import _base, gige_cluster
    from repro.units import kb, gb
    classes = preprocess_program(compile_source(SPEC_SRC), "faulting")
    cluster = gige_cluster(1)
    cluster.add_node(NodeSpec(name="device", ram_bytes=kb(256)))
    cluster.add_node(NodeSpec(name="cloud", ram_bytes=gb(64), kind="cloud"))
    eng = SODEngine(cluster, classes)
    device = eng.host("device")
    t = eng.spawn(device, "T", "main", [50_000])  # 400 KB array: too big
    policy = SpeculativeCloudPolicy(eng, device, "cloud")
    result = policy.run(t)
    assert policy.migrated
    assert result == sum(range(50_000))


def test_speculative_policy_stays_local_when_it_fits():
    from repro.cluster import NodeSpec
    from repro.cluster.topology import gige_cluster
    from repro.units import gb
    classes = preprocess_program(compile_source(SPEC_SRC), "faulting")
    cluster = gige_cluster(1)
    cluster.add_node(NodeSpec(name="device", ram_bytes=gb(1)))
    cluster.add_node(NodeSpec(name="cloud", kind="cloud"))
    eng = SODEngine(cluster, classes)
    device = eng.host("device")
    t = eng.spawn(device, "T", "main", [100])
    policy = SpeculativeCloudPolicy(eng, device, "cloud")
    assert policy.run(t) == sum(range(100))
    assert not policy.migrated


# -- prefetch ---------------------------------------------------------------------------

PREFETCH_SRC = """
class Link { int v; Link next; }
class T {
  static Link head;
  static int setup(int n) {
    Link cur = null;
    for (int i = 0; i < n; i = i + 1) {
      Link fresh = new Link();
      fresh.v = i;
      fresh.next = cur;
      cur = fresh;
    }
    T.head = cur;
    return T.walk();
  }
  static int walk() {
    int s = 0;
    Link cur = T.head;
    while (cur != null) { s = s + cur.v; cur = cur.next; }
    return s;
  }
}
"""


def _prefetch_run(prefetcher):
    classes = preprocess_program(compile_source(PREFETCH_SRC), "faulting")
    eng = SODEngine(gige_cluster(2), classes)
    home = eng.host("node0")
    t = eng.spawn(home, "T", "setup", [12])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "walk")
    worker, wt, _rec = eng.migrate(home, t, "node1", 1)
    worker.objman.prefetcher = prefetcher
    eng.run(worker, wt)
    eng.complete_segment(worker, wt, home, t, 1)
    eng.run(home, t)
    return t.result, worker.objman.stats


def test_reachable_prefetch_reduces_demand_faults():
    ref, none_stats = _prefetch_run(NoPrefetch())
    ref2, pf_stats = _prefetch_run(ReachablePrefetch(depth=1))
    assert ref == ref2 == sum(range(12))
    assert pf_stats.prefetched > 0
    assert pf_stats.faults < none_stats.faults


def test_history_prefetch_learns_transitions():
    hp = HistoryPrefetch()
    ref, stats = _prefetch_run(hp)
    assert ref == sum(range(12))
    assert hp.transitions  # learned Link -> Link chains


def test_roam_visits_hosts(flow_classes):
    # A tiny roaming itinerary over the flow program: send c() to node1.
    eng = SODEngine(gige_cluster(2), flow_classes)
    home = eng.host("node0")
    t = eng.spawn(home, "W", "main", [25])
    rep = roam(eng, home, t,
               itinerary=lambda th: "node1",
               trigger=lambda th: (th.frames[-1].code.name == "c"
                                   and th.frames[-1].pc == 0))
    assert rep.result == Machine(flow_classes).call("W", "main", [25])
    assert len(rep.records) == 1
