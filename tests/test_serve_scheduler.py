"""Elastic serving layer: quantum preemption, placement, handoff, SOD
offload, batched capture, and deterministic replay."""

from __future__ import annotations

import json

import pytest

from repro.cluster import serve_cluster
from repro.errors import VMError
from repro.migration.sodee import SODEngine
from repro.serve import (ClockPressurePolicy, ClusterScheduler,
                         FrontDoorPlacement, LoadGenerator, QueueDepthPolicy,
                         Request, ShedWhenSaturated,
                         WeightedRoundRobinPlacement, serve_mix)
from repro.vm import Machine
from repro.workloads.mixes import (MIXES, RequestSpec,
                                   expected_request_result, serve_classpath,
                                   serve_compiled)

# -- VM quantum preemption -----------------------------------------------------


@pytest.mark.parametrize("dispatch", ["fast", "legacy"])
def test_quantum_preemption_preserves_semantics(dispatch):
    """Slicing a run into quanta must not change result, instruction
    count, or virtual clock — on either interpreter loop."""
    oracle = Machine(serve_compiled("Fib"))
    expected = oracle.call("Fib", "main", [15])

    m = Machine(serve_compiled("Fib"), dispatch=dispatch)
    t = m.spawn("Fib", "main", [15])
    statuses = []
    while not t.finished:
        statuses.append(m.run(t, quantum=700))
    assert statuses[-1] == "finished"
    assert set(statuses[:-1]) == {"preempted"}
    assert len(statuses) > 5  # actually sliced
    assert t.result == expected
    assert m.instr_count == oracle.instr_count
    assert m.clock == pytest.approx(oracle.clock, rel=1e-12)


def test_quantum_interleaves_threads_fairly():
    """Two threads round-robined on one machine both finish correctly
    and neither runs to completion in one slice."""
    classes = serve_compiled("NQ")
    expected = Machine(classes).call("NQ", "main", [5])
    m = Machine(classes)
    ta = m.spawn("NQ", "main", [5], thread_name="a")
    tb = m.spawn("NQ", "main", [5], thread_name="b")
    slices = {"a": 0, "b": 0}
    while not (ta.finished and tb.finished):
        for name, th in (("a", ta), ("b", tb)):
            if not th.finished:
                m.run(th, quantum=1000)
                slices[name] += 1
    assert ta.result == tb.result == expected
    assert slices["a"] > 3 and slices["b"] > 3


def test_quantum_preempts_call_free_loop():
    """A loop with no calls must still preempt (back-edge safepoint):
    otherwise one such request monopolizes its node for the loop's
    whole duration and an infinite loop would hang the scheduler."""
    from repro.lang import compile_source
    from repro.preprocess import preprocess_program
    src = """class L { static int main(int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) { s = s + i; }
      return s;
    } }"""
    classes = preprocess_program(compile_source(src), "original")
    oracle = Machine(classes)
    expected = oracle.call("L", "main", [5000])
    m = Machine(classes)
    t = m.spawn("L", "main", [5000])
    preemptions = 0
    while not t.finished:
        if m.run(t, quantum=1000) == "preempted":
            preemptions += 1
            # overshoot is bounded: at most ~one loop body past budget
            assert m.instr_count <= (preemptions + 1) * 1000 + 50
    assert preemptions > 3
    assert t.result == expected
    assert m.instr_count == oracle.instr_count
    assert m.clock == pytest.approx(oracle.clock, rel=1e-12)


def test_quantum_validation():
    m = Machine(serve_compiled("Fib"))
    t = m.spawn("Fib", "main", [5])
    with pytest.raises(VMError):
        m.run(t, quantum=0)


def test_preemption_lands_on_original_bci():
    """A preempted frame's pc is an original bytecode index (fused
    streams are parallel), so capture/VMTI see a consistent thread."""
    m = Machine(serve_compiled("QS"))
    t = m.spawn("QS", "main", [80])
    status = m.run(t, quantum=500)
    assert status == "preempted"
    top = t.frames[-1]
    assert 0 <= top.pc < len(top.code.instrs)


# -- placement -----------------------------------------------------------------


def _mk_sched(n_nodes=3, cpu_weights=None, **kw):
    cluster = serve_cluster(n_nodes, cpu_weights=cpu_weights)
    classes = serve_classpath(["Fib", "NQ"])
    return ClusterScheduler(cluster, classes, **kw)


def test_weighted_round_robin_respects_capacity():
    sched = _mk_sched(n_nodes=3, cpu_weights=[2.0, 1.0, 1.0],
                      placement=WeightedRoundRobinPlacement())
    spec = RequestSpec("Fib", (5,))
    places = [sched.placement.place(sched, None) for _ in range(8)]
    assert places.count("node0") == 4  # double weight, double share
    assert places.count("node1") == 2 and places.count("node2") == 2


def test_front_door_placement_targets_front():
    sched = _mk_sched(placement=FrontDoorPlacement())
    assert sched.placement.place(sched, None) == "node0"


# -- end-to-end serving --------------------------------------------------------


def test_single_node_serves_all_correctly():
    rep = serve_mix("mixed", n_nodes=1, n_requests=10, seed=2)
    assert rep.served == rep.submitted == 10
    assert rep.correct == 10
    assert rep.failed == 0 and rep.unserved == 0
    assert rep.stats["sod_offloads"] == 0  # nowhere to go
    assert rep.makespan > 0 and rep.throughput > 0


def test_multi_node_serving_is_correct_and_offloads():
    rep = serve_mix("parallel", n_nodes=4, n_requests=32, seed=7)
    assert rep.served == rep.correct == 32
    assert rep.stats["sod_offloads"] > 0
    assert rep.stats["completions"] == rep.stats["sod_offloads"]
    # work actually spread: every node served something
    assert all(row["served"] > 0 for row in rep.per_node.values())


def test_front_door_handoff_spreads_load():
    rep = serve_mix("hotspot", n_nodes=4, n_requests=24, seed=3,
                    placement="front-door",
                    offload=QueueDepthPolicy(min_depth=3, mig_frames=2))
    assert rep.served == rep.correct == 24
    assert rep.stats["handoffs"] > 0
    assert rep.stats["sod_offloads"] > 0
    served_away = sum(row["served"] for node, row in rep.per_node.items()
                      if node != "node0")
    assert served_away > 0


def test_clock_pressure_policy_offloads():
    rep = serve_mix("mixed", n_nodes=3, n_requests=18, seed=5,
                    placement="front-door", offload="clock-pressure")
    assert rep.served == rep.correct == 18
    assert rep.stats["handoffs"] + rep.stats["sod_offloads"] > 0


def test_no_offload_policy_keeps_work_in_place():
    rep = serve_mix("parallel", n_nodes=2, n_requests=8, seed=1,
                    placement="front-door", offload="none")
    assert rep.served == rep.correct == 8
    assert rep.stats["sod_offloads"] == 0 and rep.stats["handoffs"] == 0
    assert rep.per_node["node0"]["served"] == 8


def test_heterogeneous_cluster_prefers_fast_nodes():
    rep = serve_mix("parallel", n_nodes=2, n_requests=12, seed=9,
                    cpu_weights=[3.0, 1.0])
    assert rep.served == rep.correct == 12
    assert rep.per_node["node0"]["served"] \
        > rep.per_node["node1"]["served"]


def test_serving_replays_bit_identically():
    a = serve_mix("hotspot", n_nodes=3, n_requests=15, seed=13,
                  placement="front-door")
    b = serve_mix("hotspot", n_nodes=3, n_requests=15, seed=13,
                  placement="front-door")
    assert json.dumps(a.to_dict(), sort_keys=True) \
        == json.dumps(b.to_dict(), sort_keys=True)


def test_interarrival_stream_is_open_loop():
    """With a large interarrival gap, requests are served as they land
    (latency stays near one request's compute, nothing queues)."""
    rep = serve_mix("parallel", n_nodes=1, n_requests=5, seed=4,
                    interarrival=0.5)
    assert rep.served == rep.correct == 5
    assert rep.makespan > 4 * 0.5  # stream stayed open that long
    assert rep.latency_max < 0.5  # each served before the next arrived


# -- batched multi-thread capture ---------------------------------------------


def test_migrate_many_matches_singles_and_amortizes_transfer():
    """A 3-thread batch produces the same worker results as three
    independent runs, while paying the fixed transfer setup once."""
    classes = serve_classpath(["Fib"])
    expected = expected_request_result(RequestSpec("Fib", (12,)))

    def prepared_engine():
        eng = SODEngine(serve_cluster(2), dict(classes))
        home = eng.host("node0")
        threads = []
        for i in range(3):
            t = eng.spawn(home, "Fib", "main", [12])
            eng.run(home, t, stop=lambda th: th.depth() >= 5)
            threads.append(t)
        return eng, home, threads

    eng, home, threads = prepared_engine()
    worker, results = eng.migrate_many(home, threads, "node1", nframes=2)
    assert len(results) == 3
    for (wt, rec), t in zip(results, threads):
        eng.run(worker, wt)
        eng.complete_segment(worker, wt, home, t, rec.nframes)
        eng.run(home, t)
        assert t.result == expected

    # vs three single migrations from an identically prepared engine
    eng2, home2, threads2 = prepared_engine()
    singles = [eng2.migrate(home2, t, "node1", 2) for t in threads2]
    batch_transfer = sum(rec.transfer_time for _wt, rec in results)
    single_transfer = sum(rec.transfer_time for _w, _wt, rec in singles)
    assert batch_transfer < single_transfer  # fixed setup amortized


def test_migrate_many_empty_batch_rejected():
    from repro.errors import MigrationError
    eng = SODEngine(serve_cluster(2), dict(serve_classpath(["Fib"])))
    home = eng.host("node0")
    with pytest.raises(MigrationError):
        eng.migrate_many(home, [], "node1")


# -- load generator ------------------------------------------------------------


def test_load_generator_stream_is_seed_stable():
    mix = MIXES["mixed"]
    gen = LoadGenerator(mix, 20, seed=42)
    assert [s.label() for s in gen.specs()] \
        == [s.label() for s in LoadGenerator(mix, 20, seed=42).specs()]
    other = LoadGenerator(mix, 20, seed=43).specs()
    assert gen.specs() != other  # seed actually matters


def test_scheduler_is_one_shot():
    """The node processes exit with the stream; reuse must fail loudly
    instead of queueing requests nobody will ever serve."""
    from repro.errors import ClusterError
    mix = MIXES["parallel"]
    sched = ClusterScheduler(serve_cluster(2),
                             serve_classpath(mix.programs()))
    rep = sched.serve(LoadGenerator(mix, 4, seed=1))
    assert rep.served == 4
    with pytest.raises(ClusterError, match="one-shot"):
        sched.serve(LoadGenerator(mix, 4, seed=2))


def test_load_generator_validation():
    mix = MIXES["parallel"]
    with pytest.raises(ValueError):
        LoadGenerator(mix, 0)
    with pytest.raises(ValueError):
        LoadGenerator(mix, 5, interarrival=-1.0)


def test_weighted_round_robin_honors_extreme_ratios():
    """A near-zero-capacity node must get a near-zero share, not be
    rounded up to parity (ratios are integerized relative to the
    lightest node, not on an absolute denominator grid)."""
    sched = _mk_sched(n_nodes=2, cpu_weights=[0.005, 1.0],
                      placement=WeightedRoundRobinPlacement())
    places = [sched.placement.place(sched, None) for _ in range(402)]
    assert places.count("node0") == 2  # 1 in 201, got two full cycles


def test_weighted_round_robin_rebuilds_on_reweighted_cluster():
    """Reusing a placement instance on a same-named cluster with
    different weights must not replay the stale cycle."""
    placement = WeightedRoundRobinPlacement()
    even = _mk_sched(n_nodes=2, cpu_weights=[1.0, 1.0],
                     placement=placement)
    assert [placement.place(even, None) for _ in range(4)] \
        .count("node0") == 2
    skewed = _mk_sched(n_nodes=2, cpu_weights=[3.0, 1.0],
                       placement=placement)
    places = [placement.place(skewed, None) for _ in range(8)]
    assert places.count("node0") == 6  # 3:1, not the stale 1:1 cycle


# -- front-door admission control ----------------------------------------------


def test_admission_sheds_when_every_rack_saturated():
    """A burst far beyond capacity with a low shed threshold: once the
    digest shows every rack's lightest node at/above the bar, later
    arrivals are shed — counted, finished-on-arrival, never queued —
    and everything actually admitted is still served correctly."""
    mix = MIXES["parallel"]
    sched = ClusterScheduler(
        serve_cluster(2), serve_classpath(mix.programs()),
        staleness=0.0,  # always-fresh digest: deterministic shed point
        admission=ShedWhenSaturated(max_node_load=2.0))
    n = 16
    rep = sched.serve(LoadGenerator(mix, n, seed=9))
    assert rep.stats["shed"] > 0
    assert rep.served + rep.stats["shed"] == n
    assert rep.served == rep.correct
    assert rep.failed == 0 and rep.unserved == 0
    shed = [r for r in sched.finished if r.state == "shed"]
    assert len(shed) == rep.stats["shed"]
    assert all(r.finished_at == r.arrival and r.thread is None
               for r in shed)
    # the load index drained: shed requests never touched a queue
    assert all(c == 0 for c in sched.load_index.count.values())


def test_admission_admits_everything_under_light_load():
    """Spaced arrivals under the same threshold: the digest never shows
    saturation, nothing is shed."""
    mix = MIXES["parallel"]
    sched = ClusterScheduler(
        serve_cluster(2), serve_classpath(mix.programs()),
        staleness=0.0,
        admission=ShedWhenSaturated(max_node_load=2.0))
    rep = sched.serve(LoadGenerator(mix, 8, seed=9, interarrival=0.05))
    assert rep.stats["shed"] == 0
    assert rep.served == rep.correct == 8
