"""VM core tests: interpreter mechanics, exceptions, breakpoints, heap."""

import pytest

from repro.bytecode import assemble
from repro.cluster import NodeSpec, Node
from repro.errors import LinkError, NativeError, VMError
from repro.lang import compile_source
from repro.vm import (Machine, RemoteRef, ThreadState, UncaughtGuestException,
                      VMArray, VMInstance, is_nullish, truthy)
from repro.vm.costmodel import CostModel
from repro.vm.objects import default_value

from tests.helpers import compile_and_run


# -- values --------------------------------------------------------------

def test_nullish_and_truthy():
    ref = RemoteRef(1, "home")
    assert is_nullish(None) and is_nullish(ref)
    assert truthy(ref)  # a remote ref stands for a real object
    assert not truthy(None) and not truthy(0) and not truthy("")
    assert truthy(5) and truthy("x")


def test_remote_ref_with_loc():
    ref = RemoteRef(3, "home")
    bound = ref.with_loc(("local", None, 2))
    assert bound.home_oid == 3 and bound.loc == ("local", None, 2)
    assert ref.loc is None


def test_default_values():
    assert default_value("int") == 0
    assert default_value("float") == 0.0
    assert default_value("bool") is False
    assert default_value("str") == ""
    assert default_value("SomeClass") is None


# -- machine basics -----------------------------------------------------------

def test_call_static_method(app_machine):
    assert app_machine.call("App", "work", [4]) == 12 + 4 + 5


def test_spawn_rejects_missing_method(app_machine):
    with pytest.raises(LinkError):
        app_machine.spawn("App", "nope")


def test_spawn_on_instance():
    src = """
    class C { int v; int get() { return v; } }
    class T { static int f() { return 0; } }
    """
    classes = compile_source(src)
    m = Machine(classes)
    obj = m.heap.new_instance(m.loader.load("C"))
    obj.fields["v"] = 9
    t = m.spawn_on_instance(obj, "get")
    m.run(t)
    assert t.result == 9


def test_clock_and_instr_count_advance(app_machine):
    app_machine.call("App", "work", [10])
    assert app_machine.instr_count > 50
    assert app_machine.clock > 0


def test_node_speed_scales_clock(app_classes_original):
    fast = Machine(app_classes_original)
    slow = Machine(app_classes_original,
                   node=Node(NodeSpec(name="phone", speed_factor=25.0)))
    fast.call("App", "work", [20])
    slow.call("App", "work", [20])
    assert slow.clock == pytest.approx(25 * fast.clock, rel=0.01)


def test_run_with_stop_condition(app_machine):
    t = app_machine.spawn("App", "work", [10])
    status = app_machine.run(
        t, stop=lambda th: th.frames[-1].code.name == "step")
    assert status == "stopped"
    assert t.frames[-1].code.name == "step"


def test_run_with_instr_limit(app_machine):
    t = app_machine.spawn("App", "work", [1000])
    assert app_machine.run(t, max_instrs=50) == "limit"


def test_uncaught_exception_raises_host_error():
    src = "class T { static int f() { throw new RuntimeException(); } }"
    classes = compile_source(src)
    with pytest.raises(UncaughtGuestException):
        Machine(classes).call("T", "f")


def test_uncaught_hook_consumes(app_classes_original):
    src = "class T { static int f() { return 1 / 0; } }"
    classes = compile_source(src)
    m = Machine(classes)
    seen = []
    m.on_uncaught = lambda mach, th, exc: (seen.append(exc.class_name), True)[1]
    t = m.spawn("T", "f")
    m.run(t)
    assert seen == ["ArithmeticException"]
    assert t.uncaught is None


def test_virtual_call_on_primitive_is_host_error():
    code = assemble("""
    method T.f static params=0 locals=0
      line 1
      CONST 5
      INVOKEVIRT 'm' 0
      RETV
    """)
    from repro.bytecode import ClassFile
    m = Machine({"T": ClassFile("T", methods={"f": code})})
    with pytest.raises(VMError):
        m.call("T", "f")


def test_getfield_unknown_field_is_link_error():
    src = """
    class C { int v; }
    class T { static int f() { C c = new C(); return c.v; } }
    """
    classes = compile_source(src)
    # Corrupt: rewrite field name at runtime
    code = classes["T"].methods["f"]
    for ins in code.instrs:
        if ins.op == "GETF":
            ins.a = "ghost"
    with pytest.raises(LinkError):
        Machine(classes).call("T", "f")


def test_throw_non_throwable_is_host_error():
    code = assemble("""
    method T.f static params=0 locals=0
      line 1
      CONST 5
      THROW
    """)
    from repro.bytecode import ClassFile
    m = Machine({"T": ClassFile("T", methods={"f": code})})
    with pytest.raises(VMError):
        m.call("T", "f")


def test_stdout_capture(app_classes_original):
    _, m = compile_and_run(
        'class T { static void f() { Sys.print(1); Sys.print("x"); } }',
        "T", "f")
    assert m.stdout == ["1", "x"]


# -- breakpoints -----------------------------------------------------------------

def test_breakpoint_fires_once_per_arrival(app_classes_original):
    m = Machine(app_classes_original)
    hits = []
    m.breakpoints.add(("App", "step", 0))
    m.on_breakpoint = lambda mach, th: hits.append(th.frames[-1].pc)
    m.call("App", "work", [3])
    assert hits == [0]


def test_breakpoint_fires_per_frame_for_recursion():
    src = """class T { static int f(int n) {
      if (n == 0) { return 0; }
      return T.f(n - 1);
    } }"""
    classes = compile_source(src)
    m = Machine(classes)
    hits = []
    m.breakpoints.add(("T", "f", 0))
    m.on_breakpoint = lambda mach, th: hits.append(len(th.frames))
    m.call("T", "f", [3])
    assert hits == [1, 2, 3, 4]


def test_injected_exception_delivered(app_classes_original):
    src = """class T { static int f() {
      int x = 0;
      try {
        for (int i = 0; i < 100000; i = i + 1) { x = x + 1; }
      } catch (RuntimeException e) { return -7; }
      return x;
    } }"""
    classes = compile_source(src)
    m = Machine(classes)
    t = m.spawn("T", "f")
    m.run(t, max_instrs=50)
    t.pending_exception = m.make_exception("RuntimeException", "stop")
    m.run(t)
    assert t.result == -7


# -- OOM admission -----------------------------------------------------------------

def test_allocation_beyond_node_ram_raises_guest_oom():
    from repro.units import kb
    src = """class T { static int f(int n) {
      try { int[] big = new int[n]; return Sys.len(big); }
      catch (OutOfMemoryError e) { return -1; }
    } }"""
    classes = compile_source(src)
    node = Node(NodeSpec(name="tiny", ram_bytes=kb(64)))
    m = Machine(classes, node=node)
    assert m.call("T", "f", [100]) == 100
    assert m.call("T", "f", [100000]) == -1


# -- cost model ------------------------------------------------------------------------

def test_op_weights_affect_clock(app_classes_original):
    heavy = CostModel(instr_seconds=1e-9)
    m1 = Machine(app_classes_original, cost=heavy)
    m1.call("App", "work", [50])
    light = CostModel(instr_seconds=1e-9)
    light.op_weights = {}
    m2 = Machine(app_classes_original, cost=light)
    m2.call("App", "work", [50])
    assert m1.clock != m2.clock


def test_cost_copy_overrides():
    c = CostModel(instr_seconds=1e-9)
    c2 = c.copy(exec_factor=4.0)
    assert c2.exec_factor == 4.0 and c.exec_factor == 1.0
    assert c2.instr_seconds == c.instr_seconds
