"""DES overlap validation plus corner-case coverage across modules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import gige_cluster
from repro.errors import CompileError, MigrationError
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.overlap import (HopTiming, analytic_two_hop,
                                     simulate_two_hop)
from repro.preprocess import preprocess_program
from repro.vm import Machine

# -- overlap model -----------------------------------------------------------

_timing = st.builds(
    HopTiming,
    capture=st.floats(min_value=1e-4, max_value=0.01),
    transfer=st.floats(min_value=1e-4, max_value=0.05),
    restore=st.floats(min_value=1e-4, max_value=0.02),
    exec_seconds=st.floats(min_value=1e-4, max_value=0.5),
)


@given(_timing, _timing,
       st.floats(min_value=0.0, max_value=0.01))
@settings(max_examples=60, deadline=None)
def test_des_makespan_matches_analytic(seg1, seg2, forward):
    des = simulate_two_hop(seg1, seg2, forward)
    closed = analytic_two_hop(seg1, seg2, forward)
    assert des.makespan == pytest.approx(closed, rel=0.02)


def test_overlap_hides_second_hop_when_exec_long():
    seg1 = HopTiming(0.001, 0.004, 0.005, exec_seconds=1.0)
    seg2 = HopTiming(0.001, 0.004, 0.005, exec_seconds=0.01)
    r = simulate_two_hop(seg1, seg2)
    # Second hop fully restored long before the value arrives.
    assert r.hidden == pytest.approx(0.010, rel=0.05)


def test_overlap_exposed_when_exec_short():
    seg1 = HopTiming(0.001, 0.001, 0.001, exec_seconds=0.0001)
    seg2 = HopTiming(0.001, 0.5, 0.001, exec_seconds=0.01)
    r = simulate_two_hop(seg1, seg2)
    assert r.hidden < 0.01  # almost nothing hidden


# -- engine corners ---------------------------------------------------------------

def test_flush_segment_effects_noop_when_clean(app_classes_faulting):
    eng = SODEngine(gige_cluster(2), app_classes_faulting)
    home = eng.host("node0")
    worker = eng.host("node1")
    worker.attach_object_manager()
    assert eng.flush_segment_effects(worker, home) == 0.0


def test_resync_statics_copies_home_values(app_classes_faulting):
    eng = SODEngine(gige_cluster(2), app_classes_faulting)
    home = eng.host("node0")
    worker = eng.host("node1", with_classes=True)
    home.machine.loader.load("App").statics["base"] = 77
    worker.machine.loader.load("App").statics["base"] = 0
    eng.resync_statics(worker, home)
    assert worker.machine.loader.load("App").statics["base"] == 77


def test_engine_hosts_are_cached(app_classes_faulting):
    eng = SODEngine(gige_cluster(2), app_classes_faulting)
    assert eng.host("node0") is eng.host("node0")


def test_fetch_remote_unknown_owner(app_classes_faulting):
    from repro.vm import RemoteRef
    eng = SODEngine(gige_cluster(2), app_classes_faulting)
    with pytest.raises(MigrationError):
        eng.fetch_remote("node0", RemoteRef(1, "ghost-node"))


def test_migrate_bad_segment_size(app_classes_faulting):
    eng = SODEngine(gige_cluster(2), app_classes_faulting)
    home = eng.host("node0")
    t = eng.spawn(home, "App", "work", [5])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "step")
    with pytest.raises(MigrationError):
        eng.migrate(home, t, "node1", nframes=99)


# -- heap / objects corners ----------------------------------------------------------

def test_heap_dangling_oid(app_machine):
    from repro.errors import VMError
    with pytest.raises(VMError):
        app_machine.heap.get(424242)
    assert app_machine.heap.maybe_get(424242) is None


def test_heap_adopt_assigns_fresh_oid(app_machine):
    cls = app_machine.loader.load("Counter")
    a = app_machine.heap.new_instance(cls)
    from repro.vm.objects import VMInstance
    stray = VMInstance(cls, oid=0)
    adopted = app_machine.heap.adopt(stray)
    assert adopted.oid > a.oid
    assert app_machine.heap.get(adopted.oid) is stray


def test_negative_array_length_host_checked(app_machine):
    from repro.errors import VMError
    with pytest.raises(VMError):
        app_machine.heap.new_array("int", -1)


def test_object_nominal_bytes_shapes(app_machine):
    cls = app_machine.loader.load("Counter")
    obj = app_machine.heap.new_instance(cls)
    base = obj.nominal_bytes()
    obj.fields["hits"] = 5
    assert obj.nominal_bytes() == base  # ints are fixed width
    arr = app_machine.heap.new_array("float", 10, 8)
    assert arr.nominal_bytes() == 16 + 80
    assert len(arr) == 10


# -- loader corners -------------------------------------------------------------------

def test_loader_define_after_link_rejected(app_classes_faulting):
    from repro.errors import LinkError
    m = Machine(app_classes_faulting)
    m.loader.load("App")
    from repro.bytecode import ClassFile
    with pytest.raises(LinkError):
        m.loader.define(ClassFile("App"))


def test_loader_self_extension_rejected():
    from repro.bytecode import ClassFile
    from repro.errors import LinkError
    m = Machine({"Loop": ClassFile("Loop", superclass="Loop")})
    with pytest.raises(LinkError):
        m.loader.load("Loop")


def test_loader_missing_hook_consulted():
    from repro.bytecode import ClassFile
    m = Machine({})
    calls = []

    def hook(name):
        calls.append(name)
        return ClassFile(name)

    m.loader.missing_class_hook = hook
    cls = m.loader.load("Lazily")
    assert cls.name == "Lazily" and calls == ["Lazily"]


def test_loader_load_listener_fires(app_classes_faulting):
    m = Machine(app_classes_faulting)
    seen = []
    m.loader.load_listener = lambda cls: seen.append(cls.name)
    m.loader.load("App")
    assert "App" in seen


# -- compile error reporting ----------------------------------------------------------

def test_compile_error_carries_position():
    try:
        compile_source("class T { static int f() { return zz; } }")
    except CompileError as e:
        assert e.line >= 1
        assert "zz" in str(e)
    else:  # pragma: no cover
        pytest.fail("expected CompileError")


# -- experiments Table helper -----------------------------------------------------------

def test_table_formatting_and_lookup():
    from repro.experiments.common import Table
    t = Table(title="T", header=("a", "b"))
    t.add("row1", 1.2345)
    t.add("row2", 250.0)
    text = t.format()
    assert "row1" in text and "1.23" in text and "250.0" in text
    assert t.cell("row2", "b") == 250.0
    with pytest.raises(KeyError):
        t.cell("ghost", "b")


def test_report_generate_subset_runs():
    from repro.experiments.report import generate
    out = generate(["figure5"])
    assert "Figure 5" in out and "Table II" not in out
