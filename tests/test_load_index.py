"""The incremental load indexes: property tests proving the
incrementally-maintained state (event-driven counters, per-rack
lazy-deletion heaps, gossip digest) never drifts from a from-scratch
recomputation, across randomized op schedules and live serving runs —
the guarantee that lets the scheduler's hot path drop its O(n)
all-node scans."""

from __future__ import annotations

import math
import random

import pytest

from repro.cluster import serve_cluster
from repro.errors import ClusterError
from repro.serve import (ClusterScheduler, LoadGenerator, LoadIndex,
                         QueueDepthPolicy, WorkProfile, naive_pick,
                         recompute_load, serve_mix)
from repro.serve.loadgen import Request
from repro.workloads.mixes import MIXES, serve_classpath


# -- randomized schedules vs from-scratch recomputation ------------------------


def _shadow_load(counts, weights, node):
    return counts[node] / weights[node]


@pytest.mark.parametrize("n_nodes,rack_size,seed", [
    (1, 4, 0), (3, 4, 1), (8, 4, 2), (9, 4, 3), (13, 5, 4), (24, 4, 5),
    (7, 1, 6), (16, 16, 7),
])
def test_index_matches_recomputation_over_random_schedule(
        n_nodes, rack_size, seed):
    """Drive a LoadIndex through a random enqueue/dequeue/offload-ish
    schedule; after every operation the incremental state must equal
    the shadow model, and every pick (staleness=0: always-fresh
    semantics) must equal the naive full-scan implementing the same
    documented rule."""
    cluster = serve_cluster(n_nodes, rack_size=rack_size)
    index = LoadIndex(cluster, staleness=0.0)
    rng = random.Random(f"loadindex:{seed}")
    names = cluster.names()
    counts = {n: 0 for n in names}
    weights = {n: cluster.node(n).spec.cpu_weight for n in names}
    now = 0.0
    for step in range(600):
        node = rng.choice(names)
        if counts[node] > 0 and rng.random() < 0.45:
            delta = -1
        else:
            delta = +1
        counts[node] += delta
        index.add(node, delta)
        now += rng.random() * 1e-4
        # counters never drift
        assert index.count[node] == counts[node]
        assert index.load(node) == _shadow_load(counts, weights, node)
        if step % 7 == 0:
            src = rng.choice(names)
            src_load = index.load(src, extra=1)
            min_gap = rng.choice((0.5, 1.0, 2.0))
            got = index.pick_underloaded(now, src, src_load, min_gap)
            want = naive_pick(index, src, src_load, min_gap)
            assert got == want, (
                f"step {step}: pick from {src} gave {got}, naive {want}")
        if step % 13 == 0:
            # rack minima and aggregates agree with a full scan
            for rack, members in index.racks.items():
                fresh = index.rack_min(rack)
                naive = min((index.load(n), n) for n in members)
                assert fresh == naive
                agg = sum(counts[n] for n in members) \
                    / sum(weights[n] for n in members)
                assert index.rack_load(rack) == pytest.approx(agg)


def test_index_matches_scheduler_during_live_serving():
    """Sample the scheduler mid-run from inside the event kernel: at
    every probe instant the incremental index must equal
    ``recompute_load`` (queue depth + running slot + in-flight
    deliveries) for every node — including while offload storms are in
    the air."""
    mix = MIXES["hotspot"]
    cluster = serve_cluster(4)
    sched = ClusterScheduler(
        cluster, serve_classpath(mix.programs()),
        placement=None, offload=QueueDepthPolicy(min_depth=3, mig_frames=2))
    samples = []

    def probe():
        for _ in range(400):
            yield sched.env.timeout(0.0005)
            if sched._stopped:
                return
            for n in sched.node_names:
                samples.append(
                    (sched.env.now, n, sched.load_index.load(n),
                     recompute_load(sched, n)))

    sched.env.process(probe(), name="probe")
    rep = sched.serve(LoadGenerator(mix, 24, seed=3))
    assert rep.served == rep.correct == 24
    assert rep.stats["sod_offloads"] > 0  # storms actually happened
    assert len(samples) > 100
    for at, node, incremental, recomputed in samples:
        assert incremental == recomputed, (
            f"index drift on {node} at t={at}: "
            f"index={incremental} recompute={recomputed}")


def test_index_drained_after_serving():
    """When a run completes, everything the index counted has been
    consumed again: all counters return to zero (no leaked load)."""
    mix = MIXES["parallel"]
    sched = ClusterScheduler(serve_cluster(3),
                             serve_classpath(mix.programs()),
                             offload=QueueDepthPolicy())
    sched.serve(LoadGenerator(mix, 9, seed=5))
    assert all(c == 0 for c in sched.load_index.count.values())
    assert all(p == 0 for p in sched.pending.values())
    assert all(r is None for r in sched.running.values())


# -- decision cost stays sub-linear --------------------------------------------


def test_decision_cost_is_logarithmic_not_linear():
    """The per-decision index cost must be bounded by a small multiple
    of log2(n), not by n — the acceptance property that the hot path
    no longer scans all nodes."""
    costs = {}
    for n in (16, 64):
        rep = serve_mix("scale", n_nodes=n, n_requests=200, seed=7)
        s = rep.stats
        assert s["decisions"] > 0
        costs[n] = s["decision_ops"] / s["decisions"]
        # generous constant: an O(n) scan would cost >= n-1 per pick
        assert costs[n] <= 4 * math.log2(n) + 12, (n, costs[n])
    assert costs[64] < 2.0 * costs[16]


def test_gossip_staleness_bounds_refreshes():
    """A larger staleness bound means fewer gossip rounds for the same
    run, never stale beyond the bound (rounds are keyed to virtual
    time, so this is exact and deterministic)."""
    fresh = serve_mix("parallel", n_nodes=4, n_requests=24, seed=7,
                      staleness=0.0)
    bounded = serve_mix("parallel", n_nodes=4, n_requests=24, seed=7,
                        staleness=5e-3)
    assert fresh.stats["gossip_rounds"] > bounded.stats["gossip_rounds"]
    assert bounded.stats["gossip_rounds"] >= 1
    # both serve everything correctly: staleness bounds the *signal*,
    # never correctness
    assert fresh.served == fresh.correct == 24
    assert bounded.served == bounded.correct == 24


def test_index_validation():
    cluster = serve_cluster(2)
    with pytest.raises(ClusterError):
        LoadIndex(cluster, staleness=-1.0)
    index = LoadIndex(cluster)
    with pytest.raises(ClusterError, match="underflow"):
        index.add("node0", -1)


# -- the work profile ----------------------------------------------------------


def test_work_profile_running_mean_and_remaining():
    prof = WorkProfile()
    req = Request(rid=0)
    assert prof.remaining(req) is None  # no spec, no estimate
    for instrs in (1000, 2000, 3000):
        prof.observe("Fib", instrs)
    assert prof.mean("Fib") == pytest.approx(2000.0)
    assert prof.mean("NQ") is None
    # remaining budgets against the P75, not the mean (interpolated
    # exactly while the sample is small)
    assert prof.p75("Fib") == pytest.approx(2500.0)

    class Spec:
        program = "Fib"
    req = Request(rid=1, spec=Spec())
    req.instrs = 500
    assert prof.remaining(req) == pytest.approx(2000.0)
    req.instrs = 5000  # past the budget: clamped, never negative
    assert prof.remaining(req) == 0.0


def test_work_profile_segment_remaining_spans_parent_work():
    """A migrated segment has no spec of its own: its remaining work is
    the parent program's budget minus work done on both sides of the
    offload."""
    prof = WorkProfile()
    for _ in range(8):
        prof.observe("Fib", 10_000)

    class Spec:
        program = "Fib"
    parent = Request(rid=1, spec=Spec())
    parent.instrs = 4000
    seg = Request(rid=2, kind="segment", parent=parent)
    seg.instrs = 2500
    assert prof.remaining(seg) == pytest.approx(3500.0)


def test_work_profile_p75_tracks_bimodal_mixes():
    """ROADMAP "work-profile variance": a program whose cost is bimodal
    (cheap common case, expensive tail) must not have its expensive
    requests vetoed as nearly-done.  The running mean sits between the
    modes; the streaming P75 sits at the heavy mode, so a heavy request
    midway through keeps a large remaining-work estimate."""
    prof = WorkProfile()
    light, heavy = 1_000, 100_000
    for i in range(60):
        prof.observe("Bi", light if i % 2 == 0 else heavy)
    mean = prof.mean("Bi")
    p75 = prof.p75("Bi")
    assert mean == pytest.approx((light + heavy) / 2, rel=0.05)
    assert p75 > 0.9 * heavy  # the estimator sits at the heavy mode

    class Spec:
        program = "Bi"
    req = Request(rid=3, spec=Spec())
    req.instrs = 60_000  # a heavy request, just past the mean
    # mean-based budgeting would call this finished (veto misfire);
    # P75 budgeting sees the real residual work
    assert mean - req.instrs < 0
    assert prof.remaining(req) > 30_000

    # deterministic: the same stream replays to the same estimate
    prof2 = WorkProfile()
    for i in range(60):
        prof2.observe("Bi", light if i % 2 == 0 else heavy)
    assert prof2.p75("Bi") == p75


def test_victim_vetoes_spare_nearly_done_threads():
    """With the remaining-work filter active, runs record vetoes under
    load (deep-but-nearly-done threads kept home) and still serve
    everything; an effectively-disabled filter records none."""
    picky = serve_mix("scale", n_nodes=24, n_requests=150, seed=7)
    assert picky.served == picky.correct == 150
    lax = serve_mix("scale", n_nodes=24, n_requests=150, seed=7,
                    offload=QueueDepthPolicy(min_remaining_quanta=0.0))
    assert lax.served == lax.correct == 150
    assert picky.stats["victim_vetoes"] > 0
    assert lax.stats["victim_vetoes"] == 0
