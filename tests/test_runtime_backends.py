"""The runtime seam: virtual and real backends behind one interface.

Primitive-level contract tests for both runtimes, plus the suite the
tentpole stands on: a same-seed **differential** between the
multiprocess wall-clock backend and the virtual-time oracle on the
paper mix — results, correctness flags, and tenant attribution must be
equal request by request (timings and placement excluded — those are
the quantities the backends are supposed to disagree on), and a
worker-process crash must surface as chaos-style recovery on the
survivors, never as a hang or a wrong answer.
"""

from __future__ import annotations

import os

import pytest

from repro.runtime import BACKENDS, get_runtime
from repro.runtime.base import Runtime
from repro.runtime.crosscheck import (CrosscheckError,
                                      crosscheck_real_vs_virtual,
                                      virtual_request_rows)
from repro.runtime.real import RealRuntime, available_cores, serve_real
from repro.runtime.virtual import VirtualRuntime

#: small enough to stay civil on a 1-core CI box, large enough to mix
#: programs and (with 2 procs) exercise the control plane
N_SMALL = 6

#: wall-clock ceiling for every real-backend run in this suite: these
#: runs take ~1 s; a hang must fail loudly long before CI's timeout
DEADLINE = float(os.environ.get("REPRO_REAL_DEADLINE_S", "180"))


# -- factory and primitives ----------------------------------------------------


def test_factory_resolves_both_backends():
    assert set(BACKENDS) == {"virtual", "real"}
    assert isinstance(get_runtime("virtual"), VirtualRuntime)
    rt = get_runtime("real", procs=3)
    assert isinstance(rt, RealRuntime) and rt.procs == 3
    with pytest.raises(ValueError, match="unknown backend"):
        get_runtime("imaginary")


def test_runtime_interface_is_abstract():
    with pytest.raises(TypeError):
        Runtime()  # all four primitives + serve are abstract


def test_virtual_primitives_run_on_the_kernel():
    rt = VirtualRuntime()
    fired = []
    rt.timer(2.5, fired.append)
    store = rt.store()

    def consumer(out):
        got = yield store.get()
        out.append((rt.now(), got))

    consumed = []
    rt.spawn(consumer, consumed)
    rt.spawn(lambda: store.put("item"))  # plain callable: runs inline
    rt.run(until=10.0)
    assert fired == [None] and consumed == [(0.0, "item")]
    assert rt.now() == 2.5  # the kernel stops at the last event
    # transfers price through the modeled link spec: deterministic, > 0
    t = rt.transfer("node0", "node1", 10_000)
    assert t == rt.transfer("node0", "node1", 10_000) > 0.0


def test_virtual_serve_is_the_unchanged_scheduler_path():
    rt = VirtualRuntime()
    rep = rt.serve(mix="paper", n_requests=N_SMALL, seed=7)
    assert rep["backend"] == "virtual"
    assert rep["served"] == rep["correct"] == N_SMALL


def test_real_runtime_primitives_are_wall_clock():
    rt = RealRuntime(procs=2)
    assert rt.procs == 2
    before = rt.now()
    done = []
    t = rt.spawn(lambda: done.append(True))
    t.join(5.0)
    assert done == [True] and rt.now() >= before
    q = rt.store()
    q.put(1)
    assert q.get(timeout=5.0) == 1
    rt.transfer("a", "b", 100)
    rt.transfer("a", "b", 28)
    assert rt.bytes_moved[("a", "b")] == 128


def test_real_runtime_rejects_virtual_only_knobs():
    rt = RealRuntime(procs=1)
    with pytest.raises(ValueError, match="virtual oracle"):
        rt.serve(mix="paper", n_requests=2, seed=7,
                 fault_plan=[("crash", 0.1)])


def test_real_backend_needs_at_least_one_proc():
    with pytest.raises(ValueError, match="at least one worker"):
        serve_real(mix="paper", n_requests=2, seed=7, procs=0)


# -- the differential ----------------------------------------------------------


def _real(n=N_SMALL, seed=7, procs=2, **kw):
    kw.setdefault("deadline_s", DEADLINE)
    return serve_real(mix="paper", n_requests=n, seed=seed, procs=procs,
                      **kw)


def test_real_backend_serves_the_paper_mix_correctly():
    rep = _real()
    assert rep["backend"] == "real" and rep["procs"] == 2
    assert rep["served"] == rep["correct"] == N_SMALL
    assert rep["failed"] == rep["unserved"] == 0
    # every request rode a real process: worker attribution is total
    assert {r["worker"] for r in rep["requests"]} <= {"proc0", "proc1"}
    assert rep["wall"]["seconds"] > 0.0


def test_same_seed_virtual_and_real_agree_request_by_request():
    rep = _real()
    summary = crosscheck_real_vs_virtual(rep)
    assert summary["ok"] and summary["compared"] == N_SMALL


def test_crosscheck_catches_a_wrong_result():
    rep = _real()
    rep["requests"][2]["result"] = "corrupted"
    rep["requests"][2]["correct"] = False
    with pytest.raises(CrosscheckError, match="req 2"):
        crosscheck_real_vs_virtual(rep)


def test_crosscheck_catches_a_missing_request():
    rep = _real()
    del rep["requests"][1]
    with pytest.raises(CrosscheckError, match="req 1: missing"):
        crosscheck_real_vs_virtual(rep)


def test_differential_with_tenants_preserves_attribution():
    from repro.serve import parse_tenants
    tenants = parse_tenants("gold:w=3,free:w=1")
    rep = _real(n=N_SMALL, tenants=tenants, arrival_rate=50.0)
    assert rep.get("tenants"), "per-tenant counters missing"
    summary = crosscheck_real_vs_virtual(rep, tenants=tenants,
                                         arrival_rate=50.0)
    assert summary["ok"]


def test_virtual_rows_align_with_real_rids():
    """The alignment invariant the cross-checker rests on: row *i* of
    the virtual run is the same (program, args) as real rid *i*."""
    rows = virtual_request_rows(mix="paper", n_requests=N_SMALL, seed=7)
    rep = _real()
    assert len(rows) == N_SMALL
    for i, v in enumerate(rows):
        r = rep["requests"][i]
        assert (r["rid"], r["program"], tuple(r["args"])) == \
            (i, v["program"], tuple(v["args"]))


def test_migration_ships_real_bytes_and_stays_correct():
    """A small quantum forces mid-request control traffic: stolen work
    crosses the pipe as an eager SOD image with verified class tokens,
    and every result still matches the oracle."""
    rep = _real(n=4, seed=7, quantum=2000)
    s = rep["sched"]
    crosscheck_real_vs_virtual(rep)
    if s["migrations"]:  # timing-dependent on a loaded box
        assert s["image_bytes"] > 0 and s["token_bytes"] > 0


# -- crash recovery ------------------------------------------------------------


def test_worker_crash_recovers_like_chaos_crash_node():
    """SIGKILL a worker mid-run: the control plane must requeue its
    outstanding requests onto survivors (counted as crashes/retries,
    the chaos ``crash_node`` vocabulary) and the run must still produce
    oracle-correct results for *every* request — no hang, no loss."""
    rep = _real(n=8, procs=2,
                fault_plan={"kill_worker": 0, "after_done": 2})
    s = rep["sched"]
    assert s["crashes"] == 1
    assert s["retries"] >= 1
    assert rep["served"] == rep["correct"] == 8
    crosscheck_real_vs_virtual(rep)
    # the survivor finished the dead worker's share
    survivors = {r["worker"] for r in rep["requests"]}
    assert "proc1" in survivors


def test_wedged_run_hits_the_deadline_not_a_hang():
    """Kill the only worker after everything it owes is dispatched but
    with completions still outstanding *and no survivor to requeue to*:
    the run must terminate with a loud error, never block on a pipe."""
    with pytest.raises(RuntimeError, match="all workers dead"):
        serve_real(mix="paper", n_requests=4, seed=7, procs=1,
                   fault_plan={"kill_worker": 0, "after_done": 1},
                   deadline_s=DEADLINE)


def test_available_cores_reports_a_positive_count():
    assert available_cores() >= 1
