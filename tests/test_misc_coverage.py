"""Final odds and ends: reprs, records, report plumbing."""

import pytest

from repro.bytecode import disassemble
from repro.errors import CompileError, ReproError, VMError
from repro.migration import CapturedFrame, MigrationRecord
from repro.migration.workflow import FlowReport


def test_error_hierarchy():
    assert issubclass(VMError, ReproError)
    assert issubclass(CompileError, ReproError)
    e = CompileError("boom", line=3, col=7)
    assert "3:7" in str(e) and e.line == 3


def test_compile_error_without_position():
    assert str(CompileError("plain")) == "plain"


def test_migration_record_latency_sums_components():
    rec = MigrationRecord(src="a", dst="b", nframes=2,
                          capture_time=0.001, transfer_time=0.002,
                          restore_time=0.003, worker_spawn_time=0.004)
    assert rec.latency == pytest.approx(0.010)


def test_captured_frame_state_bytes_scale_with_locals():
    small = CapturedFrame("C", "m", 0, 0, locals=[1])
    big = CapturedFrame("C", "m", 0, 0, locals=[1] * 20 + ["longish-string"])
    assert big.state_bytes() > small.state_bytes()


def test_flow_report_phases_accumulate():
    rep = FlowReport()
    rep.phase("a", 0.1)
    rep.phase("b", 0.2)
    assert rep.phases == [("a", 0.1), ("b", 0.2)]


def test_disassemble_preprocessed_marks_msps(app_classes_faulting):
    text = disassemble(app_classes_faulting["App"].methods["step"])
    assert ";msp" in text
    assert "catch" in text and "InvalidStateException" in text


def test_experiment_paper_constants_cover_all_workloads():
    from repro.experiments import table2, table3, table4
    from repro.workloads import WORKLOADS
    for name in WORKLOADS:
        assert name in table2.PAPER
        assert name in table3.PAPER
        assert name in table4.PAPER


def test_report_registry_names_unique_and_callable():
    from repro.experiments.report import ALL
    assert len(ALL) == 10
    for fn in ALL.values():
        assert callable(fn)
