"""Unit-helper tests."""

import pytest

from repro import units


def test_kb_mb_gb():
    assert units.kb(1) == 1024
    assert units.mb(1) == 1024 ** 2
    assert units.gb(1) == 1024 ** 3
    assert units.mb(0.5) == 512 * 1024


def test_network_rates_use_decimal_bits():
    assert units.kbps(8) == 1000.0
    assert units.mbps(8) == 1_000_000.0
    assert units.gbps(1) == 125_000_000.0


def test_time_helpers():
    assert units.us(1) == pytest.approx(1e-6)
    assert units.ms(250) == pytest.approx(0.25)
    assert units.to_ms(0.25) == pytest.approx(250)
    assert units.to_us(1e-6) == pytest.approx(1.0)


def test_fmt_bytes_scales():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(64 * 1024) == "64.0 KB"
    assert units.fmt_bytes(units.mb(3)) == "3.0 MB"
    assert units.fmt_bytes(units.gb(2)) == "2.0 GB"


def test_fmt_bytes_huge_stays_gb():
    assert units.fmt_bytes(units.gb(4096)).endswith("GB")
