#!/usr/bin/env python
"""Quickstart: compile a guest program, preprocess it for migration,
run it locally, then migrate its hot method to another node mid-flight.

Run:  python examples/quickstart.py
"""

from repro.cluster import gige_cluster
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.preprocess import preprocess_program
from repro.vm import Machine

SOURCE = """
class Stats { int samples; }
class App {
  static Stats stats;
  static int crunch(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      acc = acc + i * i % 1000;
      App.stats.samples = App.stats.samples + 1;
    }
    return acc;
  }
  static int main(int n) {
    App.stats = new Stats();
    int r = App.crunch(n);
    Sys.print("samples=" + App.stats.samples);
    return r;
  }
}
"""


def main() -> None:
    # 1. Compile MiniLang to bytecode and run the class preprocessor:
    #    the "faulting" build carries migration-safe points, restoration
    #    handlers and object-fault handlers (paper section III).
    classes = preprocess_program(compile_source(SOURCE), "faulting")

    # 2. Plain local run for reference.
    local = Machine(classes)
    expected = local.call("App", "main", [5000])
    print(f"local result       : {expected}")

    # 3. A two-node GigE cluster; start the program on node0.
    engine = SODEngine(gige_cluster(2), classes)
    home = engine.host("node0")
    thread = engine.spawn(home, "App", "main", [5000])

    # 4. Run until the hot method is entered, then ship its frame to
    #    node1.  The heap stays home; objects fault over on demand.
    engine.run(home, thread,
               stop=lambda t: t.frames[-1].code.name == "crunch")
    result, record = engine.run_segment_remote(home, thread, "node1",
                                               nframes=1)
    print(f"migrated result    : {result}")
    assert result == expected

    worker = engine.hosts["node1"]
    print(f"migration latency  : {record.latency * 1e3:.2f} ms "
          f"(capture {record.capture_time * 1e3:.2f} / "
          f"transfer {record.transfer_time * 1e3:.2f} / "
          f"restore {record.restore_time * 1e3:.2f})")
    print(f"captured state     : {record.state_bytes} bytes "
          f"({record.nframes} frame)")
    print(f"object faults      : {worker.objman.stats.faults} "
          f"({worker.objman.stats.fetched_bytes} bytes fetched on demand)")
    print(f"simulated time     : {engine.timeline:.4f} s")
    print(f"guest console      : {home.machine.stdout}")


if __name__ == "__main__":
    main()
