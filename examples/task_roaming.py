#!/usr/bin/env python
"""Autonomous task roaming (paper section IV.C): a search task visits
ten WAN-connected NFS servers instead of pulling 3 GB over the WAN.

Run:  python examples/task_roaming.py
"""

from repro.cluster import wan_grid
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.policies import LocalityPolicy
from repro.migration.workflow import roam
from repro.preprocess import preprocess_program
from repro.units import mb
from repro.vm.costmodel import sodee_model
from repro.workloads import programs

N_SERVERS = 10
FILE_MB = 300
NEEDLE = "xylophone"


def build():
    classes = preprocess_program(compile_source(programs.TEXTSEARCH),
                                 "faulting")
    cluster = wan_grid(N_SERVERS)
    for i in range(N_SERVERS):
        cluster.fs.host_file(cluster.node(f"server{i}"),
                             f"/grid/doc{i}.txt", mb(FILE_MB),
                             plant=[(mb(FILE_MB) - 2048, NEEDLE)])
    return classes, cluster


def main() -> None:
    # Baseline: stay on the client, read everything over WAN NFS.
    classes, cluster = build()
    engine = SODEngine(cluster, classes, cost=sodee_model())
    client = engine.host("client")
    thread = engine.spawn(client, "Search", "runMany", ["/grid/", NEEDLE])
    engine.run(client, thread)
    stay = engine.timeline
    print(f"stay-at-home: found {thread.result} matches "
          f"in {stay:7.2f} simulated seconds")

    # Roaming: every searchFile call ships to the node hosting its file.
    classes, cluster = build()
    engine = SODEngine(cluster, classes, cost=sodee_model(),
                       prestart_workers=False)
    client = engine.host("client")
    thread = engine.spawn(client, "Search", "runMany", ["/grid/", NEEDLE])
    policy = LocalityPolicy(
        engine=engine,
        path_of=lambda t: t.frames[-1].locals[0]
        if isinstance(t.frames[-1].locals[0], str) else None)
    report = roam(
        engine, client, thread,
        itinerary=policy.destination,
        trigger=lambda t: (t.frames[-1].code.name == "searchFile"
                           and t.frames[-1].pc == 0))
    print(f"roaming     : found {report.result} matches "
          f"in {report.total_time:7.2f} simulated seconds "
          f"({len(report.records)} hops)")
    print(f"speedup     : {stay / report.total_time:.2f}x "
          f"(paper: 3.39x)")
    for i, rec in enumerate(report.records[:3]):
        print(f"  hop {i}: {rec.src} -> {rec.dst}  "
              f"latency {rec.latency * 1e3:.1f} ms, "
              f"state {rec.state_bytes} B")


if __name__ == "__main__":
    main()
