#!/usr/bin/env python
"""The three elastic execution flows of the paper's Fig. 1:

(a) partial migration with return-to-home;
(b) total migration (residual pushed behind the executing segment);
(c) multi-hop workflow across three nodes with freeze-time hiding.

All three must produce the same answer as a purely local run.

Run:  python examples/elastic_workflows.py
"""

from repro.cluster import gige_cluster
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.workflow import (multi_hop, partial_return,
                                      total_migration)
from repro.preprocess import preprocess_program
from repro.units import to_ms
from repro.vm import Machine
from repro.vm.costmodel import sodee_model

SOURCE = """
class Pipeline {
  static int audit;
  static int main(int n) {
    Pipeline.audit = 1;
    int r = Pipeline.stage1(n);
    return r + Pipeline.audit;
  }
  static int stage1(int n) { return Pipeline.stage2(n) * 2 + 1; }
  static int stage2(int n) { return Pipeline.stage3(n) + 7; }
  static int stage3(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + i % 13; }
    Pipeline.audit = Pipeline.audit + 1;
    return s;
  }
}
"""

N = 60_000


def fresh():
    classes = preprocess_program(compile_source(SOURCE), "faulting")
    engine = SODEngine(gige_cluster(3), classes,
                       cost=sodee_model(instr_seconds=2e-7))
    home = engine.host("node0")
    thread = engine.spawn(home, "Pipeline", "main", [N])
    engine.run(home, thread,
               stop=lambda t: t.frames[-1].code.name == "stage3")
    return engine, home, thread


def main() -> None:
    classes = preprocess_program(compile_source(SOURCE), "faulting")
    expected = Machine(classes).call("Pipeline", "main", [N])
    print(f"local reference: {expected}\n")

    engine, home, thread = fresh()
    rep = partial_return(engine, home, thread, "node1", nframes=1)
    print(f"(a) partial return : result={rep.result} "
          f"total={to_ms(rep.total_time):8.2f} ms")
    assert rep.result == expected

    engine, home, thread = fresh()
    rep = total_migration(engine, home, thread, "node1", top_frames=1)
    print(f"(b) total migration: result={rep.result} "
          f"total={to_ms(rep.total_time):8.2f} ms  "
          f"hidden={to_ms(rep.hidden_latency):6.2f} ms "
          f"(residual push behind stage3 execution)")
    assert rep.result == expected

    engine, home, thread = fresh()
    rep = multi_hop(engine, home, thread, "node1", "node2",
                    top_frames=1, second_frames=2)
    print(f"(c) multi-hop      : result={rep.result} "
          f"total={to_ms(rep.total_time):8.2f} ms  "
          f"hidden={to_ms(rep.hidden_latency):6.2f} ms "
          f"(second hop latency hidden, value forwarded node1->node2)")
    assert rep.result == expected

    print("\nall three flows agree with the local run.")


if __name__ == "__main__":
    main()
