#!/usr/bin/env python
"""Speculative exception-driven offloading (paper section II.B):

    "if exceptions like ... OutOfMemoryException are thrown, the
     exception handler will capture the execution state and rocket it
     into the Cloud that has wider library base and memory capacity for
     retrying the execution."

A memory-hungry job starts on a 256 KB device; the moment its next
allocation would not fit, the active segment rockets to the cloud node
and the job completes there.

Run:  python examples/speculative_cloud.py
"""

from repro.cluster import NodeSpec
from repro.cluster.topology import gige_cluster
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.policies import SpeculativeCloudPolicy
from repro.preprocess import preprocess_program
from repro.units import gb, kb
from repro.vm import Machine

SOURCE = """
class T {
  static int crunch(int n) {
    int[] big = new int[n];
    for (int i = 0; i < n; i = i + 1) { big[i] = i % 97; }
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + big[i]; }
    return s;
  }
  static int main(int n) { return T.crunch(n); }
}
"""


def main() -> None:
    classes = preprocess_program(compile_source(SOURCE), "faulting")
    n = 50_000  # a ~400 KB array: doomed on the device
    expected = Machine(classes).call("T", "main", [n])

    cluster = gige_cluster(1)
    cluster.add_node(NodeSpec(name="device", ram_bytes=kb(256),
                              kind="phone"))
    cluster.add_node(NodeSpec(name="cloud", ram_bytes=gb(64), kind="cloud"))

    engine = SODEngine(cluster, classes)
    device = engine.host("device")
    thread = engine.spawn(device, "T", "main", [n])
    policy = SpeculativeCloudPolicy(engine, device, "cloud")
    result = policy.run(thread)

    print(f"device RAM          : 256 KB; requested array ~ "
          f"{n * 8 // 1024} KB")
    print(f"rocketed to cloud   : {policy.migrated}")
    print(f"result              : {result} (expected {expected})")
    print(f"simulated time      : {engine.timeline * 1e3:.2f} ms")
    assert result == expected and policy.migrated


if __name__ == "__main__":
    main()
