#!/usr/bin/env python
"""The paper's section IV.D scenario: a web server shares photos that
live on an iPhone, *without installing any server software on the phone*.

The server's photo-search method is pushed to the device with SOD (the
frame holding the client socket is pinned at home); the found list comes
back as the method's return value.  The run sweeps the paper's Table VII
bandwidths.

Run:  python examples/photo_share.py
"""

from repro.cluster import phone_setup
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.segments import pin_methods
from repro.preprocess import preprocess_program
from repro.units import kb, to_ms
from repro.vm.costmodel import sodee_model
from repro.workloads import programs

DCIM = "/User/Media/DCIM/100APPLE"


def serve_once(bandwidth_kbps: float) -> None:
    classes = preprocess_program(compile_source(programs.PHOTOSHARE),
                                 "faulting")
    cluster = phone_setup(bandwidth_kbps)
    phone = cluster.node("iphone")
    for i in range(18):
        tag = "beach" if i % 5 == 0 else "cat"
        cluster.fs.host_file(phone, f"{DCIM}/IMG_{i:04d}_{tag}.jpg", kb(600))

    engine = SODEngine(cluster, classes, cost=sodee_model())
    server = engine.host("server")
    thread = engine.spawn(server, "PhotoServer", "serve", [DCIM, "beach"])
    # The serving frame holds the browser connection: pinned (IV.D).
    pin_methods(thread, ["PhotoServer.serve"])

    engine.run(server, thread,
               stop=lambda t: t.frames[-1].code.name == "searchPhotos")
    listing, record = engine.run_segment_remote(server, thread, "iphone",
                                                nframes=1)
    photos = [p for p in listing.split(";") if p]
    print(f"{bandwidth_kbps:>5.0f} kbps | "
          f"capture {to_ms(record.capture_time):7.2f} ms | "
          f"state {to_ms(record.state_transfer_time):8.2f} ms | "
          f"class {to_ms(record.class_transfer_time):8.2f} ms | "
          f"restore {to_ms(record.restore_time):7.2f} ms | "
          f"latency {to_ms(record.latency):8.2f} ms | "
          f"{len(photos)} beach photos found")


def main() -> None:
    print("SOD photo sharing: server -> iPhone task push (Table VII sweep)")
    for bw in (50, 128, 384, 764):
        serve_once(bw)
    print("note: capture/restore stay flat; only the transfers scale "
          "with the link, as in the paper.")


if __name__ == "__main__":
    main()
