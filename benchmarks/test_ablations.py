"""Ablation benches for the design choices DESIGN.md calls out.

* detection scheme: SOD with object-fault handlers vs status checks;
* prefetching: none vs reachable-closure vs history;
* worker pre-start: pre-started worker JVM vs cold spawn;
* segment size: latency as a function of frames migrated.
"""

import pytest
from conftest import once

from repro.cluster import gige_cluster
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.prefetch import (HistoryPrefetch, NoPrefetch,
                                      ReachablePrefetch)
from repro.preprocess import preprocess_program
from repro.vm import Machine

CHAIN_SRC = """
class Link { int v; Link next; }
class T {
  static Link head;
  static int setup(int n) {
    Link cur = null;
    for (int i = 0; i < n; i = i + 1) {
      Link fresh = new Link();
      fresh.v = i;
      fresh.next = cur;
      cur = fresh;
    }
    T.head = cur;
    return T.walk();
  }
  static int walk() {
    int s = 0;
    Link cur = T.head;
    while (cur != null) { s = s + cur.v; cur = cur.next; }
    return s;
  }
}
"""

DEEP_SRC = """
class T {
  static int deep(int n, int acc) {
    if (n == 0) { return T.leaf(acc); }
    return T.deep(n - 1, acc + n);
  }
  static int leaf(int acc) {
    int s = 0;
    for (int i = 0; i < 2000; i = i + 1) { s = s + i % 7; }
    return acc + s;
  }
  static int main(int n) { return T.deep(n, 0); }
}
"""


def _sod_run(build, prefetcher=None, prestart=True, n=24):
    classes = preprocess_program(compile_source(CHAIN_SRC), build)
    eng = SODEngine(gige_cluster(2), classes, prestart_workers=prestart)
    home = eng.host("node0")
    t = eng.spawn(home, "T", "setup", [n])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "walk")
    worker, wt, rec = eng.migrate(home, t, "node1", 1)
    if prefetcher is not None:
        worker.objman.prefetcher = prefetcher
    eng.run(worker, wt)
    eng.complete_segment(worker, wt, home, t, 1)
    eng.run(home, t)
    return t.result, eng.timeline, worker.objman.stats, rec


def test_ablation_detection_scheme(benchmark):
    """Fault handlers vs status checks under SOD migration: identical
    results; the checking build executes strictly more instructions."""

    def run():
        res_f, time_f, _s, _r = _sod_run("faulting")
        res_c, time_c, _s2, _r2 = _sod_run("checking")
        return res_f, res_c, time_f, time_c

    res_f, res_c, time_f, time_c = once(benchmark, run)
    print(f"\nSOD faulting={time_f * 1e3:.2f} ms, "
          f"checking={time_c * 1e3:.2f} ms")
    assert res_f == res_c == sum(range(24))


def test_ablation_prefetch(benchmark):
    """Prefetchers trade bytes for round trips on a pointer chase."""

    def run():
        out = {}
        for name, pf in (("none", NoPrefetch()),
                         ("reachable", ReachablePrefetch(depth=8)),
                         ("history", HistoryPrefetch())):
            result, elapsed, stats, _rec = _sod_run("faulting", prefetcher=pf)
            out[name] = (result, elapsed, stats.faults, stats.prefetched)
        return out

    out = once(benchmark, run)
    print("\nprefetch ablation:")
    for name, (result, elapsed, faults, prefetched) in out.items():
        print(f"  {name:10s} time={elapsed * 1e3:8.2f} ms "
              f"faults={faults:3d} prefetched={prefetched:3d}")
        assert result == sum(range(24))
    assert out["reachable"][2] < out["none"][2]       # fewer demand faults
    assert out["reachable"][1] < out["none"][1]       # and less time


def test_ablation_worker_prestart(benchmark):
    """Cold worker spawn adds the paper's worker-JVM startup cost."""

    def run():
        _r1, warm, _s1, rec_warm = _sod_run("faulting", prestart=True)
        _r2, cold, _s2, rec_cold = _sod_run("faulting", prestart=False)
        return warm, cold, rec_warm, rec_cold

    warm, cold, rec_warm, rec_cold = once(benchmark, run)
    print(f"\nprestarted={warm * 1e3:.1f} ms  cold={cold * 1e3:.1f} ms")
    assert rec_cold.worker_spawn_time > 0 == rec_warm.worker_spawn_time
    assert cold > warm


def test_ablation_segment_size(benchmark):
    """Capture/transfer grow with segment size; the top-frame-only
    migration is the cheapest (the SOD default)."""
    classes = preprocess_program(compile_source(DEEP_SRC), "faulting")
    ref = Machine(classes).call("T", "main", [12])

    def run():
        latencies = {}
        for nframes in (1, 4, 8, 12):
            eng = SODEngine(gige_cluster(2), classes)
            home = eng.host("node0")
            t = eng.spawn(home, "T", "main", [12])
            eng.run(home, t,
                    stop=lambda th: th.frames[-1].code.name == "leaf")
            result, rec = eng.run_segment_remote(home, t, "node1", nframes)
            assert result == ref
            latencies[nframes] = rec.latency
        return latencies

    latencies = once(benchmark, run)
    print("\nsegment-size sweep (latency ms):",
          {k: round(v * 1e3, 2) for k, v in latencies.items()})
    assert latencies[1] < latencies[12]


def test_interpreter_throughput(benchmark):
    """Raw VM speed (host-side): guards against interpreter regressions."""
    classes = preprocess_program(compile_source(
        "class F { static int fib(int n) { if (n < 2) { return n; } "
        "return F.fib(n-1) + F.fib(n-2); } }"), "original")

    def run():
        m = Machine(classes)
        m.call("F", "fib", [18])
        return m.instr_count

    instrs = benchmark(run)
    assert instrs > 10_000


def test_capture_restore_microbench(benchmark):
    """Capture+restore cycle cost for a 10-frame recursive segment."""
    classes = preprocess_program(compile_source(DEEP_SRC), "faulting")

    def run():
        from repro.migration import RestoreDriver, capture_segment, run_to_msp
        from repro.vm import VMTI
        m = Machine(classes)
        t = m.spawn("T", "main", [10])
        m.run(t, stop=lambda th: th.frames[-1].code.name == "leaf")
        run_to_msp(m, t)
        state = capture_segment(VMTI(m), t, 10, home_node="home")
        dst = Machine(classes)
        restored = RestoreDriver(dst, VMTI(dst), state).restore()
        return restored.depth()

    assert benchmark(run) == 10
