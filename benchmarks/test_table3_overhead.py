"""Bench: regenerate Table III (migration overhead per system)."""

from conftest import once

from repro.experiments import table3


def test_table3_overhead(benchmark):
    t = once(benchmark, table3.run)
    print("\n" + t.format())
    # Headline: SODEE lowest on Fib/NQ/FFT; TSP flips to eager copy.
    for wl in ("Fib", "NQ", "FFT"):
        sod = table3.overhead("SODEE", wl)[0]
        assert all(sod < table3.overhead(o, wl)[0]
                   for o in ("G-JavaMPI", "JESSICA2", "Xen"))
    assert (table3.overhead("G-JavaMPI", "TSP")[0]
            < table3.overhead("SODEE", "TSP")[0])
