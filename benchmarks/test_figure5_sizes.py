"""Bench: regenerate Fig. 5's class-size comparison."""

from conftest import once

from repro.experiments import figure5


def test_figure5_sizes(benchmark):
    t = once(benchmark, figure5.run)
    print("\n" + t.format())
    sizes = figure5.sizes()
    assert sizes["original"] < sizes["checking"] < sizes["faulting"]
