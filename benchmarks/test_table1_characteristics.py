"""Bench: regenerate Table I (program characteristics)."""

from conftest import once

from repro.experiments import table1


def test_table1_characteristics(benchmark):
    t = once(benchmark, table1.run)
    print("\n" + t.format())
    # F(FFT) must exceed the paper's 64 MB bound; stack heights real.
    h_fft, f_fft = table1.measure("FFT")
    assert f_fft > 64 * 1024 * 1024
    assert h_fft == 4
