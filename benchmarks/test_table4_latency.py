"""Bench: regenerate Table IV (migration latency breakdown)."""

from conftest import once

from repro.experiments import table4


def test_table4_latency(benchmark):
    t = once(benchmark, table4.run)
    print("\n" + t.format())
    # SOD's latency is heap-size independent; G-JavaMPI's is not.
    sod_totals = [table4.breakdown("SOD", wl)[0]
                  for wl in ("Fib", "NQ", "FFT", "TSP")]
    assert max(sod_totals) < 2 * min(sod_totals)
    assert (table4.breakdown("G-JavaMPI", "FFT")[0]
            > 10 * table4.breakdown("G-JavaMPI", "Fib")[0])
