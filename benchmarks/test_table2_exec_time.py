"""Bench: regenerate Table II (execution time per system, mig/no-mig)."""

from conftest import once

from repro.experiments import table2
from repro.experiments.common import outcome


def test_table2_exec_time(benchmark):
    t = once(benchmark, table2.run)
    print("\n" + t.format())
    # Migration must never make a run *faster* (there is no free lunch).
    for system in ("SODEE", "G-JavaMPI", "JESSICA2", "Xen"):
        for wl in ("Fib", "NQ", "FFT", "TSP"):
            assert (outcome(system, wl, True).exec_seconds
                    >= outcome(system, wl, False).exec_seconds)
