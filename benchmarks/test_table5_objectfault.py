"""Bench: regenerate Table V (object faulting vs status checking)."""

from conftest import once

from repro.experiments import table5


def test_table5_objectfault(benchmark):
    t = once(benchmark, table5.run)
    print("\n" + t.format())
    measured = table5.measure()
    for label, row in measured.items():
        base, faulting, checking, slow_f, slow_c = row
        assert abs(slow_f) < 1.0, label     # faulting ~ free
        assert slow_c > 20.0, label         # checking pays per access
