"""Bench: regenerate Table VI (NFS text-search locality gain)."""

from conftest import once

from repro.experiments import table6


def test_table6_locality(benchmark):
    t = once(benchmark, table6.run)
    print("\n" + t.format())
    sodee = table6.run_sodee()
    j2 = table6.run_jessica2()
    gain = lambda r: (r[0] - r[1]) / r[1] * 100.0
    assert gain(sodee) > 15.0
    assert abs(gain(j2)) < 2.0
