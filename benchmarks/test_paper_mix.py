"""Bench: serving the full paper registry — the ``"paper"`` mix.

FFT and TSP keep their working state in mutable statics and were
excluded from every serving mix until class-loader namespaces gave each
request its own static cells.  This bench proves the unlock holds at
benchmark scale, in deterministic virtual time:

* **multi-node speedup** — the paper mix (FFT/TSP alongside reentrant
  Fib/NQ) on 1 vs. 4 nodes with SOD offload enabled: everything served
  and solo-correct, namespaced requests actually offloaded, and the
  4-node run at least ``MIN_SPEEDUP``x the single node.

* **isolation overhead** — the reentrant ``"parallel"`` mix served
  with ``isolation="off"`` (the PR 2 shared-cells behavior) vs.
  ``isolation="all"`` (every request namespaced): virtual throughput
  must agree within ``MAX_ISOLATION_DRIFT`` — the namespace
  indirection must not perturb the fast loop or the transfer path
  beyond the tag bytes it ships.

Emits ``BENCH_paper.json`` at the repo root.  ``BENCH_PAPER_SMOKE=1``
trims the request streams (CI smoke mode); run directly
(``python benchmarks/test_paper_mix.py``) to print the JSON.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_paper.json"

SEED = 7
MIX = "paper"
N_NODES = 4
#: 4-node floor on the heterogeneous statics-heavy mix (virtual time is
#: deterministic, so the floor is strict; measured ~3x)
MIN_SPEEDUP = 2.0
#: allowed relative virtual-throughput drift when every reentrant
#: request is force-namespaced (the acceptance bound: namespace
#: indirection must not cost the serving path)
MAX_ISOLATION_DRIFT = 0.05


def _n_requests() -> int:
    if os.environ.get("BENCH_PAPER_SMOKE") == "1":
        return 24
    return 48


def _serve(mix: str, n_nodes: int, n_requests: int, **kw) -> dict:
    from repro.serve import QueueDepthPolicy, serve_mix

    rep = serve_mix(mix, n_nodes=n_nodes, n_requests=n_requests,
                    seed=SEED, offload=QueueDepthPolicy(max_seg_hops=2),
                    **kw)
    return rep.to_dict()


def run_sweep() -> dict:
    n_requests = _n_requests()
    solo = _serve(MIX, 1, n_requests)
    multi = _serve(MIX, N_NODES, n_requests)
    iso_n = max(16, n_requests // 2)
    iso_off = _serve("parallel", N_NODES, iso_n, isolation="off")
    iso_all = _serve("parallel", N_NODES, iso_n, isolation="all")
    return {
        "bench": "paper_mix",
        "unit": "virtual-time requests/second",
        "smoke": os.environ.get("BENCH_PAPER_SMOKE") == "1",
        "mix": MIX, "seed": SEED, "n_requests": n_requests,
        "single_node": solo,
        "multi_node": multi,
        "speedup_x": round(multi["throughput_rps"]
                           / solo["throughput_rps"], 3),
        "isolation_overhead": {
            "mix": "parallel", "n_nodes": N_NODES, "n_requests": iso_n,
            "off_throughput_rps": iso_off["throughput_rps"],
            "all_throughput_rps": iso_all["throughput_rps"],
            "drift": round(abs(iso_all["throughput_rps"]
                               - iso_off["throughput_rps"])
                           / iso_off["throughput_rps"], 5),
        },
    }


def test_paper_mix_serving(benchmark):
    from conftest import once

    report = once(benchmark, run_sweep)
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    solo, multi = report["single_node"], report["multi_node"]
    iso = report["isolation_overhead"]
    print(f"\npaper mix ({report['unit']}):")
    print(f"  1 node:  {solo['throughput_rps']:.1f} rps   "
          f"{N_NODES} nodes: {multi['throughput_rps']:.1f} rps "
          f"({report['speedup_x']}x)")
    print(f"  multi-node: {multi['sched']['isolated']} isolated requests, "
          f"{multi['sched']['sod_offloads']} offloads "
          f"({multi['sched']['seg_rehops']} chain hops), "
          f"{multi['sched']['bytes_saved']} B kept off the wire")
    print(f"  isolation overhead (parallel mix, off vs all): "
          f"{iso['off_throughput_rps']:.2f} vs "
          f"{iso['all_throughput_rps']:.2f} rps "
          f"(drift {iso['drift'] * 100:.2f}%)")
    print(f"  -> {BENCH_JSON.name}")

    # Everything served and solo-correct in both configurations —
    # the statics-heavy programs survive concurrent serving.
    for row in (solo, multi):
        assert row["served"] == row["submitted"] == report["n_requests"]
        assert row["correct"] == row["served"], row
        assert row["failed"] == 0 and row["unserved"] == 0
    # Non-reentrant requests were actually isolated and actually moved
    # (offload under load), on the multi-node run.
    assert multi["sched"]["isolated"] > 0
    assert multi["sched"]["sod_offloads"] > 0
    # The unlock scales: multi-node speedup on the paper mix.
    assert report["speedup_x"] >= MIN_SPEEDUP, report["speedup_x"]
    # Namespacing every reentrant request must not shift virtual
    # throughput beyond the tag bytes' noise floor.
    assert iso["drift"] <= MAX_ISOLATION_DRIFT, iso
    for label in ("off_throughput_rps", "all_throughput_rps"):
        assert iso[label] > 0


def test_paper_mix_is_deterministic():
    """The bench point replays bit-identically — the artifact is
    meaningful history, not noise."""

    def point():
        return json.dumps(_serve(MIX, 2, 10), sort_keys=True)

    assert point() == point()


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    print(json.dumps(run_sweep(), indent=2))
