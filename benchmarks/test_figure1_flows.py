"""Bench: regenerate Fig. 1 (the three SOD execution flows)."""

from conftest import once

from repro.experiments import figure1


def test_figure1_flows(benchmark):
    t = once(benchmark, figure1.run)
    print("\n" + t.format())
    assert all(row[2] for row in t.rows)      # all flows correct
    assert t.rows[1][4] > 0 and t.rows[2][4] > 0  # latency hiding
