"""Bench: goodput past saturation — static vs adaptive overload control.

Serves open-loop Poisson traffic (arrivals never wait for completions,
so offered load keeps coming past saturation) and measures **goodput**:
correct responses *within the SLO* per virtual second.  Raw throughput
is the wrong metric under overload — a cluster that admits everything
still "serves" requests, just seconds too late to be worth anything.

Two admission policies face the same offered-load sweep around the
cluster's measured saturation point:

* **static** — ``ShedWhenSaturated`` at a fixed, generously chosen
  threshold: the operator guessed once, and past the knee the guess
  admits work the cluster cannot finish in time;
* **adaptive** — ``AdaptiveShed`` learns the latency/goodput knee
  online (AIMD on windowed P95 vs the SLO) and sheds down to it.

The headline assertion: adaptive goodput strictly beats static at
**every** offered load >= 1.2x saturation.  Degradation past the knee
is graceful, not a cliff.

The second scenario is **tenant isolation under abuse**: one tenant
floods at 10x its fair arrival rate.  Weighted fair queueing plus the
adaptive controller's per-tenant fair-share cap must confine the
damage — the abuser absorbs the sheds while the victims' P95 degrades
by less than 25% against the abuse-free run of the same streams (the
per-tenant arrival streams are independent by construction, so the
victims' offered work is byte-identical in both runs).

Emits ``BENCH_overload.json`` at the repo root.  ``BENCH_OVERLOAD_
SMOKE=1`` sweeps fewer points (CI smoke mode); run directly
(``python benchmarks/test_overload.py``) to print the JSON.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_overload.json"

SEED = 7
N_NODES = 4
MIX = "parallel"
#: end-to-end P95 target (virtual seconds): a served response slower
#: than this is not goodput
SLO = 0.15
#: the static policy's per-node weighted-load threshold — deliberately
#: the kind of "generous" guess an operator makes without a sweep
STATIC_LOAD = 16.0
#: adaptive control window (completions per P95 estimate)
WINDOW = 16


def _smoke() -> bool:
    return os.environ.get("BENCH_OVERLOAD_SMOKE") == "1"


def _sweep_points():
    # offered load as multiples of measured saturation throughput
    if _smoke():
        return (0.8, 1.5, 2.0)
    return (0.8, 1.0, 1.2, 1.5, 2.0)


def _n_requests() -> int:
    return 96 if _smoke() else 160


def _serve(admission, arrival_rate, n_requests, tenants=None):
    from repro.serve.scheduler import build_serving

    sched, load = build_serving(
        mix=MIX, n_nodes=N_NODES, n_requests=n_requests, seed=SEED,
        admission=admission, tenants=tenants, arrival_rate=arrival_rate)
    rep = sched.serve(load)
    return sched, rep


def _goodput(sched, rep) -> float:
    ok = sum(1 for r in sched.requests
             if r.state == "done" and r.finished_at - r.arrival <= SLO)
    return ok / rep.makespan


def calibrate_saturation() -> float:
    """Saturation throughput: what the cluster sustains on an
    already-queued burst of the same mix (requests per virtual
    second).  Deterministic, so the sweep's offered loads are exact
    multiples of it."""
    from repro.serve import serve_mix

    rep = serve_mix(mix=MIX, n_nodes=N_NODES, n_requests=64, seed=SEED)
    return rep.served / rep.makespan


def run_sweep(capacity: float) -> dict:
    from repro.serve import AdaptiveShed
    from repro.serve.policies import ShedWhenSaturated

    n = _n_requests()
    points = {}
    for factor in _sweep_points():
        rate = capacity * factor
        row = {}
        for name, adm in (
                ("static", ShedWhenSaturated(max_node_load=STATIC_LOAD)),
                ("adaptive", AdaptiveShed(slo=SLO, init_load=STATIC_LOAD,
                                          window=WINDOW))):
            sched, rep = _serve(adm, rate, n)
            row[name] = {
                "goodput_rps": round(_goodput(sched, rep), 1),
                "p95_s": round(rep.latency_p95, 4),
                "served": rep.served,
                "shed": rep.stats["shed"],
                "incorrect": rep.served - rep.correct,
                "unserved": rep.unserved,
            }
        row["adaptive_wins"] = (row["adaptive"]["goodput_rps"]
                                > row["static"]["goodput_rps"])
        points[str(factor)] = row
    return points


def run_isolation(capacity: float) -> dict:
    """The 10x abusive tenant vs the abuse-free baseline of the very
    same victim streams."""
    from repro.serve import AdaptiveShed, parse_tenants

    rate = 0.25 * capacity  # per-tenant base rate: healthy when calm
    victims = "gold:w=8,silver:w=8"
    adm_kw = dict(slo=SLO, init_load=4.0, window=WINDOW,
                  fair_factor=1.0, min_tenant_slots=1)
    _, calm = _serve(AdaptiveShed(**adm_kw), rate, 144,
                     tenants=parse_tenants(victims))
    _, storm = _serve(AdaptiveShed(**adm_kw), rate, 144,
                      tenants=parse_tenants(victims + ",abuser:p=2:r=10"))
    out = {
        "base_rate_rps": round(rate, 1),
        "abuser_rate_factor": 10.0,
        "incorrect": storm.served - storm.correct,
        "unserved": storm.unserved,
        "sheds": {name: t["shed"] for name, t in storm.tenants.items()},
        "victims": {},
    }
    for name in ("gold", "silver"):
        before = calm.tenants[name]["latency_s"]["p95"]
        after = storm.tenants[name]["latency_s"]["p95"]
        out["victims"][name] = {
            "p95_calm_s": round(before, 4),
            "p95_storm_s": round(after, 4),
            "degradation": round(after / before, 3),
        }
    return out


def run_bench() -> dict:
    capacity = calibrate_saturation()
    report = {
        "bench": "overload",
        "unit": "within-SLO correct responses per virtual second",
        "mix": MIX, "n_nodes": N_NODES, "seed": SEED,
        "n_requests": _n_requests(), "slo_s": SLO,
        "static_load": STATIC_LOAD,
        "smoke": _smoke(),
        "saturation_rps": round(capacity, 1),
        "sweep": run_sweep(capacity),
        "isolation": run_isolation(capacity),
    }
    return report


def test_overload(benchmark):
    from conftest import once

    report = once(benchmark, run_bench)
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\noverload ({report['unit']}; saturation "
          f"{report['saturation_rps']} rps, SLO {report['slo_s']}s):")
    for factor, row in report["sweep"].items():
        print(f"  {float(factor):.1f}x: "
              f"static={row['static']['goodput_rps']:7.1f} rps "
              f"(shed {row['static']['shed']:3d})  "
              f"adaptive={row['adaptive']['goodput_rps']:7.1f} rps "
              f"(shed {row['adaptive']['shed']:3d})  "
              f"wins={row['adaptive_wins']}")
    iso = report["isolation"]
    for name, v in iso["victims"].items():
        print(f"  abuse: {name} p95 {v['p95_calm_s']}s -> "
              f"{v['p95_storm_s']}s ({v['degradation']}x)")
    print(f"  abuser absorbed {iso['sheds'].get('abuser', 0)} sheds "
          f"-> {BENCH_JSON.name}")

    # Overload never corrupts or loses: at every point, both policies.
    for row in report["sweep"].values():
        for policy in ("static", "adaptive"):
            assert row[policy]["incorrect"] == 0, row
            assert row[policy]["unserved"] == 0, row

    # The headline: adaptive strictly beats static goodput at every
    # offered load past the knee (>= 1.2x saturation).  Deterministic
    # virtual time — a tie is a regression, not noise.
    for factor, row in report["sweep"].items():
        if float(factor) >= 1.2:
            assert row["adaptive"]["goodput_rps"] > \
                row["static"]["goodput_rps"], (factor, row)

    # Overload control actually engaged past the knee.
    assert any(row["adaptive"]["shed"] > 0
               for f, row in report["sweep"].items() if float(f) >= 1.2)

    # Tenant isolation: the abuser pays, the victims barely notice.
    assert iso["incorrect"] == 0 and iso["unserved"] == 0
    assert iso["sheds"]["abuser"] > 0
    for name, v in iso["victims"].items():
        assert iso["sheds"][name] == 0, iso  # victims are never shed
        assert v["degradation"] < 1.25, iso


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    print(json.dumps(run_bench(), indent=2))
