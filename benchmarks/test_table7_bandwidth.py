"""Bench: regenerate Table VII (iPhone migration latency vs bandwidth)."""

from conftest import once

from repro.experiments import table7


def test_table7_bandwidth(benchmark):
    t = once(benchmark, table7.run)
    print("\n" + t.format())
    recs = {bw: table7.migrate_once(bw)[0] for bw in (50, 764)}
    assert recs[50].latency > 2 * recs[764].latency
    assert (abs(recs[50].capture_time - recs[764].capture_time)
            < 0.2 * recs[50].capture_time)
