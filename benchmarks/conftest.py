"""Benchmark helpers: run heavyweight harnesses once per measurement."""

from __future__ import annotations


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once per round (harnesses are seconds-scale;
    statistical repetition happens across rounds, not iterations)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
