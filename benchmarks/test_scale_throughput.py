"""Bench: scale-out serving — throughput and scheduling-decision cost
vs cluster size.

Sweeps the cluster scheduler over 1/4/16/32/64 simulated nodes serving
thousands of light requests from the ``scale`` mix and asserts:

* near-linear served-throughput scaling (virtual time is fully
  simulated and deterministic, so the floor is strict — host noise
  cannot move it, only a real scheduler/VM regression can);
* the per-decision scheduler cost — heap operations inside the
  incremental load index per ``pick_underloaded`` query — grows
  *sub-linearly* in cluster size: the 64-node cost must stay under 2x
  the 16-node cost (it is O(log n); the seed implementation's O(n)
  all-node scan would quadruple from 16 to 64).

Host-dependent measurements live under ``"wall"`` subkeys (per the
bench JSON convention): ``decision_cost`` carries only deterministic
op counts, and the host seconds spent inside the decision path ride in
``row["wall"]["decision_s"]`` — a regeneration on any machine may only
move ``"wall"`` blocks; any other diff is a real behavior change.

Emits ``BENCH_scale.json`` at the repo root.  ``BENCH_SCALE_SMOKE=1``
serves a smaller stream (CI smoke mode); run directly
(``python benchmarks/test_scale_throughput.py``) to print the JSON.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_scale.json"

NODE_COUNTS = (1, 4, 16, 32, 64)
SEED = 7
MIX = "scale"


def _n_requests() -> int:
    if os.environ.get("BENCH_SCALE_SMOKE") == "1":
        return 300
    return 2000


def run_point(n_nodes: int, n_requests: int) -> dict:
    from repro.cluster import serve_cluster
    from repro.serve import ClusterScheduler, LoadGenerator, QueueDepthPolicy
    from repro.workloads.mixes import MIXES, serve_classpath

    mixobj = MIXES[MIX]
    cluster = serve_cluster(n_nodes)
    sched = ClusterScheduler(cluster, serve_classpath(mixobj.programs()),
                             offload=QueueDepthPolicy())
    rep = sched.serve(LoadGenerator(mixobj, n_requests, seed=SEED))
    rep.mix, rep.seed = MIX, SEED
    row = rep.to_dict()
    s = row["sched"]
    decisions = max(1, s["decisions"])
    row["decision_cost"] = {
        # deterministic: index heap ops per pick_underloaded query
        "ops_per_decision": round(s["decision_ops"] / decisions, 3),
        # deterministic: total index work amortized per served request
        "ops_per_request": round(s["decision_ops"] / n_requests, 3),
    }
    # host-dependent wall-clock noise, quarantined per convention
    row["wall"] = {"decision_s": sched.decision_seconds}
    return row


def run_sweep() -> dict:
    n_requests = _n_requests()
    report = {
        "bench": "scale_throughput",
        "unit": "served requests per virtual second",
        "mix": MIX,
        "n_requests": n_requests,
        "seed": SEED,
        "smoke": os.environ.get("BENCH_SCALE_SMOKE") == "1",
        "sweep": {},
    }
    base = None
    for n in NODE_COUNTS:
        row = run_point(n, n_requests)
        if base is None:
            base = row["throughput_rps"]
        row["scaling"] = round(row["throughput_rps"] / base, 2)
        report["sweep"][str(n)] = row
    return report


def test_scale_throughput_and_decision_cost(benchmark):
    from conftest import once

    report = once(benchmark, run_sweep)
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nscale-out serving ({report['unit']}, "
          f"{report['n_requests']} requests):")
    for n, row in report["sweep"].items():
        dc = row["decision_cost"]
        print(f"  nodes={n:>2s}: tput={row['throughput_rps']:9.1f} rps "
              f"scaling={row['scaling']:6.2f}x "
              f"ops/decision={dc['ops_per_decision']:6.2f} "
              f"sod={row['sched']['sod_offloads']} "
              f"handoffs={row['sched']['handoffs']} "
              f"vetoes={row['sched']['victim_vetoes']} "
              f"overshoot={row['sched']['max_quantum_overshoot']} "
              f"t2={row['sched']['tier2_compiles']}")
    print(f"  -> {BENCH_JSON.name}")

    # Preemption coverage: quantum overshoot stays bounded by a loop
    # body / leaf tail, never a runaway (fairness would need finer
    # safepoint polling if this grew toward the quantum itself) — and
    # the bound holds *inside tier-2 compiled regions*, whose
    # straight-line safepoint polls keep long chains preemptible.
    for row in report["sweep"].values():
        assert row["sched"]["max_quantum_overshoot"] < 2000
    if os.environ.get("REPRO_JIT", "1") not in ("0", "false", "False", ""):
        # the JIT was on: the overshoot bound was exercised with live
        # compiled closures, not just the tier-1 loop
        assert all(row["sched"]["tier2_compiles"] > 0
                   for row in report["sweep"].values())

    # Every request is served and every result matches the standalone
    # legacy-dispatch oracle.
    for row in report["sweep"].values():
        assert row["served"] == row["submitted"] == report["n_requests"]
        assert row["correct"] == row["served"]
        assert row["failed"] == 0 and row["unserved"] == 0

    # Acceptance floor: >= 12x served throughput at 32 nodes vs 1.
    # Virtual time is deterministic, so no noise margin is needed; the
    # env override exists for exploratory runs only.
    floor = float(os.environ.get("BENCH_SCALE_MIN_SCALING", "12.0"))
    assert report["sweep"]["32"]["scaling"] >= floor, report["sweep"]["32"]
    # and scaling is monotone in cluster size
    scalings = [report["sweep"][str(n)]["scaling"] for n in NODE_COUNTS]
    assert scalings == sorted(scalings)

    # Per-decision scheduler cost grows sub-linearly in node count:
    # 64-node cost under 2x the 16-node cost (4x nodes).  Both numbers
    # are deterministic heap-op counts, so this is exact.
    c16 = report["sweep"]["16"]["decision_cost"]["ops_per_decision"]
    c64 = report["sweep"]["64"]["decision_cost"]["ops_per_decision"]
    assert report["sweep"]["16"]["sched"]["decisions"] > 0
    assert report["sweep"]["64"]["sched"]["decisions"] > 0
    assert c64 < 2.0 * c16, (c16, c64)


def test_scale_run_is_deterministic():
    """The same sweep point replays bit-identically (the CI artifact is
    meaningful history, not noise)."""
    from repro.serve import serve_mix

    a = serve_mix(MIX, n_nodes=16, n_requests=64, seed=11)
    b = serve_mix(MIX, n_nodes=16, n_requests=64, seed=11)
    assert json.dumps(a.to_dict(), sort_keys=True) \
        == json.dumps(b.to_dict(), sort_keys=True)


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    print(json.dumps(run_sweep(), indent=2))
