"""Bench: regenerate the section IV.C roaming study (speedup 3.39)."""

from conftest import once

from repro.experiments import roaming


def test_roaming_speedup(benchmark):
    t = once(benchmark, roaming.run)
    print("\n" + t.format())
    r = roaming.measure()
    assert r.speedup > 3.0
