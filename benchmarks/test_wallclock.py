"""Bench: the real-parallel backend turns modeled speedup into hardware.

Serves the paper mix through the multiprocess wall-clock backend at 1
and 4 worker processes (best of ``ATTEMPTS`` timing runs per point —
load on a shared box only ever slows a run down) and cross-checks
*every* attempt request-by-request against the same-seed virtual-time
oracle.  Correctness assertions are
unconditional; the **speedup assertion is core-gated**: wall-clock
scaling needs hardware parallelism, so the ≥``MIN_SPEEDUP``x floor at
4 procs applies only when the box exposes ≥4 usable cores
(``os.sched_getaffinity``-aware — a 1-core CI container still runs the
full bench and the cross-checks, and instead asserts the dispatch
overhead stays bounded).

Emits ``BENCH_wallclock.json`` at the repo root.  Following the bench
JSON convention, everything under ``"wall"`` keys is host-dependent
wall-clock noise; everything else is deterministic.
``BENCH_WALLCLOCK_SMOKE=1`` trims the stream for CI.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_wallclock.json"

SEED = 7
MIX = "paper"
PROCS_HI = 4
#: wall-clock floor at 4 procs vs 1 — asserted only with >= 4 usable
#: cores (override: REPRO_MIN_WALL_SPEEDUP)
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_WALL_SPEEDUP", "2.0"))
#: without cores to scale on, 4-proc dispatch overhead must still stay
#: within this factor of the 1-proc run (override: REPRO_MAX_WALL_OVERHEAD)
MAX_OVERHEAD = float(os.environ.get("REPRO_MAX_WALL_OVERHEAD", "3.0"))
DEADLINE = float(os.environ.get("REPRO_REAL_DEADLINE_S", "420"))
#: timing attempts per procs point — the fastest run wins (the
#: interpreter-bench idiom: a loaded box can only slow a run down, so
#: min-of-N is the honest estimate of the backend's own cost)
ATTEMPTS = 2


def _n_requests() -> int:
    if os.environ.get("BENCH_WALLCLOCK_SMOKE") == "1":
        return 8
    return 16


def _cores() -> int:
    from repro.runtime.real import available_cores
    return available_cores()


def run_sweep() -> dict:
    from repro.runtime.crosscheck import (crosscheck_real_vs_virtual,
                                          virtual_request_rows)
    from repro.runtime.real import serve_real

    n_requests = _n_requests()
    oracle = virtual_request_rows(mix=MIX, n_requests=n_requests,
                                  seed=SEED)
    runs = {}
    checks = {}
    for procs in (1, PROCS_HI):
        best = None
        for _ in range(ATTEMPTS):
            rep = serve_real(mix=MIX, n_requests=n_requests, seed=SEED,
                             procs=procs, deadline_s=DEADLINE)
            # every attempt must agree with the oracle, not just the
            # fastest one — timing may vary, results may not
            checks[procs] = crosscheck_real_vs_virtual(
                rep, virtual_rows=oracle)
            if best is None or rep["wall"]["seconds"] \
                    < best["wall"]["seconds"]:
                best = rep
        runs[procs] = best
    solo, multi = runs[1], runs[PROCS_HI]
    return {
        "bench": "wallclock",
        "unit": "wall-clock requests/second",
        "smoke": os.environ.get("BENCH_WALLCLOCK_SMOKE") == "1",
        "mix": MIX, "seed": SEED, "n_requests": n_requests,
        "procs": [1, PROCS_HI], "attempts": ATTEMPTS,
        # deterministic fields: results and oracle agreement
        "served": {p: runs[p]["served"] for p in runs},
        "correct": {p: runs[p]["correct"] for p in runs},
        "crosscheck": {p: checks[p] for p in checks},
        "sched": {p: runs[p]["sched"] for p in runs},
        # host-dependent wall-clock noise, quarantined per convention
        "wall": {
            "cores": _cores(),
            "solo_s": solo["wall"]["seconds"],
            "multi_s": multi["wall"]["seconds"],
            "solo_rps": solo["wall"]["throughput_rps"],
            "multi_rps": multi["wall"]["throughput_rps"],
            "speedup_x": round(solo["wall"]["seconds"]
                               / multi["wall"]["seconds"], 3)
            if multi["wall"]["seconds"] else 0.0,
        },
    }


def test_wallclock_backend(benchmark):
    from conftest import once

    report = once(benchmark, run_sweep)
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    w = report["wall"]
    n = report["n_requests"]
    print(f"\nwall-clock backend ({report['unit']}, "
          f"{w['cores']} usable cores):")
    print(f"  1 proc:  {w['solo_rps']:.1f} rps ({w['solo_s']:.2f}s)   "
          f"{PROCS_HI} procs: {w['multi_rps']:.1f} rps "
          f"({w['multi_s']:.2f}s)  -> {w['speedup_x']}x")
    for p in (1, PROCS_HI):
        c = report["crosscheck"][p]
        print(f"  crosscheck @{p} procs: {c['compared']} requests "
              f"matched the virtual oracle")
    print(f"  -> {BENCH_JSON.name}")

    # Unconditional: everything served, everything oracle-identical.
    for p in (1, PROCS_HI):
        assert report["served"][p] == report["correct"][p] == n
        assert report["crosscheck"][p]["ok"]
        assert report["crosscheck"][p]["compared"] == n
    if w["cores"] >= PROCS_HI:
        # Real hardware parallelism: the modeled speedup must be real.
        assert w["speedup_x"] >= MIN_SPEEDUP, (
            f"{PROCS_HI}-proc wall speedup {w['speedup_x']}x below the "
            f"{MIN_SPEEDUP}x floor on a {w['cores']}-core box")
    else:
        # Timesliced cores cannot scale; the control plane must at
        # least not drown the run in dispatch overhead.
        assert w["multi_s"] <= w["solo_s"] * MAX_OVERHEAD, (
            f"{PROCS_HI}-proc run {w['multi_s']:.2f}s vs 1-proc "
            f"{w['solo_s']:.2f}s: dispatch overhead above "
            f"{MAX_OVERHEAD}x on a {w['cores']}-core box")


def test_wallclock_results_are_deterministic_across_backends():
    """The *results* of a wall-clock run are a pure function of the
    seed even though its timings are not: two real runs at different
    parallelism serve byte-identical request streams with identical
    outcomes."""
    from repro.runtime.real import serve_real

    a = serve_real(mix=MIX, n_requests=6, seed=SEED, procs=1,
                   deadline_s=DEADLINE)
    b = serve_real(mix=MIX, n_requests=6, seed=SEED, procs=2,
                   deadline_s=DEADLINE)
    strip = ["worker", "instrs", "migrated", "retries"]
    rows_a = [{k: v for k, v in r.items() if k not in strip}
              for r in a["requests"]]
    rows_b = [{k: v for k, v in r.items() if k not in strip}
              for r in b["requests"]]
    assert rows_a == rows_b


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    print(json.dumps(run_sweep(), indent=2))
