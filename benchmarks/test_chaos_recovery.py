"""Bench: goodput and recovery latency under injected fault schedules.

Serves the parallel mix through one front door while a seeded
fault plan crashes nodes, cuts links, and slows machines mid-run, then
compares against the fault-free run of the same configuration:

* **goodput** — correct responses per virtual second.  Faults cost
  capacity and force re-execution, so goodput drops; the floor asserts
  the recovery machinery keeps the drop bounded (work is re-placed,
  not lost).
* **recovery latency** — the mean extra sojourn time of the requests
  that were actually hit (retried from scratch or re-queued at home)
  versus their own fault-free latency.
* **zero incorrect** — the hard invariant: under every schedule, each
  served response still equals its solo oracle and no request is lost.

Also records a replay-equivalence probe: the worst-case schedule is
recorded and re-executed, and the two traces must be byte-identical.

Emits ``BENCH_chaos.json`` at the repo root.  ``BENCH_CHAOS_SMOKE=1``
runs fewer schedules (CI smoke mode); run directly
(``python benchmarks/test_chaos_recovery.py``) to print the JSON.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_chaos.json"

SEED = 7
N_NODES = 4
N_REQUESTS = 32
HORIZON = 0.2  # fault window ~ the front-door makespan


def _chaos_seeds():
    if os.environ.get("BENCH_CHAOS_SMOKE") == "1":
        return (1, 2)
    return (1, 2, 3, 4, 5)


def _run(fault_plan=None):
    from repro.serve.scheduler import build_serving

    sched, load = build_serving(
        mix="parallel", n_nodes=N_NODES, n_requests=N_REQUESTS, seed=SEED,
        placement="front-door", fault_plan=fault_plan)
    rep = sched.serve(load)
    latency = {r.rid: r.finished_at - r.arrival
               for r in sched.requests if r.state == "done"}
    hit = sorted(r.rid for r in sched.requests
                 if r.state == "done" and r.retries > 0)
    return rep, latency, hit


def run_bench() -> dict:
    from repro.chaos import random_plan, replay_trace, run_recorded, \
        traces_equal

    base_rep, base_latency, _ = _run()
    base_goodput = base_rep.correct / base_rep.makespan
    names = [f"node{i}" for i in range(N_NODES)]
    report = {
        "bench": "chaos_recovery",
        "unit": "correct responses per virtual second",
        "mix": "parallel", "placement": "front-door",
        "n_nodes": N_NODES, "n_requests": N_REQUESTS, "seed": SEED,
        "smoke": os.environ.get("BENCH_CHAOS_SMOKE") == "1",
        "fault_free": {"goodput_rps": round(base_goodput, 1),
                       "makespan_s": base_rep.makespan,
                       **{k: base_rep.to_dict()[k]
                          for k in ("served", "correct", "failed")}},
        "schedules": {},
    }
    worst = None
    for cs in _chaos_seeds():
        plan = random_plan(names, cs, horizon=HORIZON)
        rep, latency, hit = _run(plan)
        goodput = rep.correct / rep.makespan
        # recovery latency: extra sojourn of the requests a fault hit,
        # relative to what the very same requests cost fault-free
        extra = [latency[rid] - base_latency[rid] for rid in hit
                 if rid in base_latency]
        row = {
            "faults": [e.label() for e in plan],
            "goodput_rps": round(goodput, 1),
            "goodput_ratio": round(goodput / base_goodput, 3),
            "requests_hit": len(hit),
            "recovery_latency_ms": (round(1e3 * sum(extra) / len(extra), 3)
                                    if extra else 0.0),
            "incorrect": rep.served - rep.correct,
            **{k: rep.to_dict()[k]
               for k in ("served", "correct", "failed", "unserved")},
            "stats": {k: rep.stats[k] for k in (
                "crashes", "link_failures", "straggles", "retries",
                "seg_recoveries", "home_requeues", "delivery_retries",
                "delivery_drops", "dropped_messages")},
        }
        report["schedules"][str(cs)] = row
        if worst is None or row["goodput_ratio"] < worst[1]:
            worst = (cs, row["goodput_ratio"])

    # replay-equivalence probe on the worst schedule: the whole run —
    # faults, recoveries, retries, timestamps — re-executes
    # byte-identically from its recorded config
    t1, _ = run_recorded({"chaos_seed": worst[0], "chaos_horizon": HORIZON,
                          "placement": "front-door"})
    t2, _ = replay_trace(t1)
    report["replay"] = {"chaos_seed": worst[0],
                        "events": len(t1["events"]),
                        "byte_identical": traces_equal(t1, t2)}
    ratios = [r["goodput_ratio"] for r in report["schedules"].values()]
    report["min_goodput_ratio"] = min(ratios)
    report["total_recoveries"] = sum(
        r["stats"]["seg_recoveries"] + r["stats"]["retries"]
        for r in report["schedules"].values())
    return report


def test_chaos_recovery(benchmark):
    from conftest import once

    report = once(benchmark, run_bench)
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nchaos recovery ({report['unit']}; fault-free "
          f"{report['fault_free']['goodput_rps']} rps):")
    for cs, row in report["schedules"].items():
        print(f"  seed={cs}: goodput={row['goodput_rps']:8.1f} rps "
              f"({row['goodput_ratio']:.2f}x) hit={row['requests_hit']:2d} "
              f"recovery={row['recovery_latency_ms']:7.3f} ms "
              f"crashes={row['stats']['crashes']} "
              f"recoveries={row['stats']['seg_recoveries']}"
              f"+{row['stats']['retries']}")
    print(f"  replay byte-identical: {report['replay']['byte_identical']} "
          f"({report['replay']['events']} events) -> {BENCH_JSON.name}")

    # The hard invariant: zero incorrect responses, nothing lost,
    # under every schedule.
    for row in report["schedules"].values():
        assert row["incorrect"] == 0, row
        assert row["unserved"] == 0, row
        assert row["served"] + row["failed"] == report["n_requests"]

    # The schedules did real damage and the stack really recovered.
    assert sum(r["stats"]["crashes"]
               for r in report["schedules"].values()) >= len(
                   report["schedules"])
    assert report["total_recoveries"] > 0

    # Goodput floor: faults cost capacity but recovery keeps the run
    # moving.  Deterministic virtual time — no noise margin needed.
    floor = float(os.environ.get("BENCH_CHAOS_MIN_GOODPUT", "0.4"))
    assert report["min_goodput_ratio"] >= floor, report["schedules"]

    # And the recorded worst case replays byte-identically.
    assert report["replay"]["byte_identical"]


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    print(json.dumps(run_bench(), indent=2))
