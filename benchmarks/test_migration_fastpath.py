"""Bench: the migration fast path — delta captures, transfer caches,
and multi-hop chains.

Two sweeps, both in deterministic virtual time (strict floors, no noise
margin):

* **repeat offloads** — the same program is SOD-offloaded to the same
  worker five times in a row at the engine level.  The first shipment
  pays for the class file, the full static state, and the program's
  chunky read-mostly array; repeats ship a class digest token, @cached
  static markers, and a tiny object revalidation instead.  Asserted:
  >= 2x reduction in bytes-on-wire for repeat offloads (the measured
  ratio is far higher), and repeat migration latency strictly below
  the first.

* **offload-heavy serving** — the ``offload`` mix (uniformly heavy,
  deep requests) through a single front door on 8 nodes, single-hop
  (``max_seg_hops=0``) vs. multi-hop (``max_seg_hops=2``, Fig. 1c
  chains).  Asserted: both serve everything correctly, chains actually
  fire, and multi-hop never loses to single-hop on throughput.

Emits ``BENCH_migration.json`` at the repo root.
``BENCH_MIGRATION_SMOKE=1`` trims the serving stream (CI smoke mode);
run directly (``python benchmarks/test_migration_fastpath.py``) to
print the JSON.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_migration.json"

SEED = 7
N_NODES = 8
MIX = "offload"
REPEATS = 5

#: the repeat-offload guest: a segment that scans a chunky read-mostly
#: home array and folds a couple of statics (one mutated per request)
REPEAT_SRC = """
class P {
  static int round;
  static int bias;
  static int work(int[] xs, int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      acc = (acc + xs[i % 256] + P.bias) % 100003;
    }
    P.round = P.round + 1;
    return acc;
  }
  static int main(int n) { return 0; }
}
"""

#: modeled bytes per array element: a few-hundred-KB working set, the
#: regime where the paper's SOD wins (big state stays home / cached)
ELEM_BYTES = 1024


def _n_requests() -> int:
    if os.environ.get("BENCH_MIGRATION_SMOKE") == "1":
        return 40
    return 80


def _repeat_engine(transfer_cache: bool):
    from repro.cluster import gige_cluster
    from repro.lang import compile_source
    from repro.migration import SODEngine
    from repro.preprocess import preprocess_program

    classes = preprocess_program(compile_source(REPEAT_SRC), "faulting")
    eng = SODEngine(gige_cluster(2), classes,
                    transfer_cache=transfer_cache)
    home = eng.host("node0")
    xs = home.machine.heap.new_array("int", 256, ELEM_BYTES)
    for i in range(256):
        xs.data[i] = (i * 37 + 11) % 1000
    return eng, home, xs


def run_repeat_offloads(transfer_cache: bool) -> dict:
    """Offload the same program home -> node1 REPEATS times; per-round
    bytes-on-wire and migration latency."""
    from repro.migration.capture import run_to_msp

    eng, home, xs = _repeat_engine(transfer_cache)
    net = eng.cluster.network
    rounds = []
    results = set()
    for _ in range(REPEATS):
        before = net.total_bytes()
        t = eng.spawn(home, "P", "work", [xs, 300])
        run_to_msp(home.machine, t)
        worker, wt, rec = eng.migrate(home, t, "node1", 1)
        eng.run(worker, wt)
        eng.complete_segment(worker, wt, home, t, 1)
        results.add(t.result)
        rounds.append({
            "bytes_on_wire": net.total_bytes() - before,
            "migration_latency_s": rec.latency,
            "cached_class": rec.cached_class,
            "cached_statics": rec.cached_statics,
        })
    assert len(results) == 1  # every round computed the same answer
    return {
        "rounds": rounds,
        "total_bytes": net.total_bytes(),
        "saved_bytes": net.total_saved(),
    }


def run_serving_comparison(n_requests: int) -> dict:
    from repro.serve import QueueDepthPolicy, serve_mix

    out = {}
    for label, hops in (("single_hop", 0), ("multi_hop", 2)):
        rep = serve_mix(MIX, n_nodes=N_NODES, n_requests=n_requests,
                        seed=SEED, placement="front-door",
                        offload=QueueDepthPolicy(max_seg_hops=hops))
        rep.mix, rep.seed = MIX, SEED
        out[label] = rep.to_dict()
    return out


def run_sweep() -> dict:
    n_requests = _n_requests()
    cached = run_repeat_offloads(transfer_cache=True)
    full = run_repeat_offloads(transfer_cache=False)
    first = cached["rounds"][0]
    repeats = cached["rounds"][1:]
    repeat_mean = sum(r["bytes_on_wire"] for r in repeats) / len(repeats)
    serving = run_serving_comparison(n_requests)
    sh = serving["single_hop"]
    mh = serving["multi_hop"]
    return {
        "bench": "migration_fastpath",
        "unit": "bytes on wire / virtual seconds",
        "smoke": os.environ.get("BENCH_MIGRATION_SMOKE") == "1",
        "repeat_offload": {
            "program_elem_bytes": ELEM_BYTES,
            "rounds": cached["rounds"],
            "first_bytes": first["bytes_on_wire"],
            "repeat_bytes_mean": repeat_mean,
            "bytes_reduction_x": round(
                first["bytes_on_wire"] / repeat_mean, 2),
            "first_latency_s": first["migration_latency_s"],
            "repeat_latency_mean_s": sum(
                r["migration_latency_s"] for r in repeats) / len(repeats),
            "cache_on_total_bytes": cached["total_bytes"],
            "cache_off_total_bytes": full["total_bytes"],
            "cache_saved_bytes": cached["saved_bytes"],
        },
        "serving": {
            "mix": MIX, "n_nodes": N_NODES, "n_requests": n_requests,
            "seed": SEED,
            "single_hop": sh,
            "multi_hop": mh,
            "multihop_speedup_x": round(
                mh["throughput_rps"] / sh["throughput_rps"], 3),
            "seg_rehops": mh["sched"]["seg_rehops"],
            "bytes_saved": mh["sched"]["bytes_saved"],
            "max_quantum_overshoot":
                mh["sched"]["max_quantum_overshoot"],
        },
    }


def test_migration_fastpath(benchmark):
    from conftest import once

    report = once(benchmark, run_sweep)
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    ro = report["repeat_offload"]
    sv = report["serving"]
    print(f"\nmigration fast path ({report['unit']}):")
    print(f"  repeat offloads: first={ro['first_bytes']} B "
          f"repeat={ro['repeat_bytes_mean']:.0f} B "
          f"reduction={ro['bytes_reduction_x']}x "
          f"latency {ro['first_latency_s'] * 1e3:.2f} -> "
          f"{ro['repeat_latency_mean_s'] * 1e3:.2f} ms")
    print(f"  serving ({sv['mix']}, {sv['n_nodes']} nodes, "
          f"{sv['n_requests']} requests): "
          f"single={sv['single_hop']['throughput_rps']:.1f} rps "
          f"multi={sv['multi_hop']['throughput_rps']:.1f} rps "
          f"({sv['multihop_speedup_x']}x, {sv['seg_rehops']} chain hops, "
          f"{sv['bytes_saved']} B saved)")
    print(f"  -> {BENCH_JSON.name}")

    # Acceptance: >= 2x fewer bytes on the wire for repeat offloads of
    # the same program (virtual-deterministic, so the floor is strict).
    assert ro["bytes_reduction_x"] >= 2.0, ro
    # Every repeat round hit the class cache and elided statics.
    for r in ro["rounds"][1:]:
        assert r["cached_class"] and r["cached_statics"] > 0, r
    # Repeat migration latency strictly below the first shipment's.
    assert ro["repeat_latency_mean_s"] < ro["first_latency_s"], ro
    # The cache-off engine moved at least 2x the bytes for the same work.
    assert ro["cache_off_total_bytes"] >= 2.0 * ro["cache_on_total_bytes"]

    # Serving: everything served and correct in both modes...
    for label in ("single_hop", "multi_hop"):
        row = sv[label]
        assert row["served"] == row["submitted"] == sv["n_requests"]
        assert row["correct"] == row["served"]
        assert row["failed"] == 0 and row["unserved"] == 0
    # ...chains actually fired, and multi-hop never loses to single-hop
    # on the offload-heavy mix.
    assert sv["seg_rehops"] > 0, sv
    assert sv["multi_hop"]["throughput_rps"] \
        >= sv["single_hop"]["throughput_rps"], sv


def test_migration_fastpath_is_deterministic():
    """The serving comparison replays bit-identically (the CI artifact
    is meaningful history, not noise)."""
    from repro.serve import QueueDepthPolicy, serve_mix

    def point():
        rep = serve_mix(MIX, n_nodes=4, n_requests=12, seed=11,
                        placement="front-door",
                        offload=QueueDepthPolicy(max_seg_hops=2))
        return json.dumps(rep.to_dict(), sort_keys=True)

    assert point() == point()


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    print(json.dumps(run_sweep(), indent=2))
