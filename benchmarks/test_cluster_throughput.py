"""Bench: elastic serving throughput vs cluster size.

Sweeps the cluster scheduler over 1/2/4/8 simulated nodes serving the
embarrassingly parallel request mix and asserts near-linear scaling of
served requests per *virtual* second.  Time is fully simulated under
the discrete-event kernel, so the numbers are bit-reproducible: the
scaling floor is asserted strictly (host noise cannot move it — only a
real scheduler/VM regression can).

Also measures the pure-elasticity scenario: every request arrives at
one front node and only request handoff + SOD offload spread the load.

Emits ``BENCH_cluster.json`` at the repo root.  ``BENCH_CLUSTER_SMOKE=1``
serves a smaller stream (CI smoke mode); run directly
(``python benchmarks/test_cluster_throughput.py``) to print the JSON.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_cluster.json"

NODE_COUNTS = (1, 2, 4, 8)
SEED = 7


def _n_requests() -> int:
    if os.environ.get("BENCH_CLUSTER_SMOKE") == "1":
        return 32
    return 64


def run_sweep() -> dict:
    from repro.serve import serve_mix

    n_requests = _n_requests()
    report = {
        "bench": "cluster_throughput",
        "unit": "served requests per virtual second",
        "mix": "parallel",
        "n_requests": n_requests,
        "seed": SEED,
        "smoke": os.environ.get("BENCH_CLUSTER_SMOKE") == "1",
        "sweep": {},
    }
    base = None
    for n in NODE_COUNTS:
        rep = serve_mix("parallel", n_nodes=n, n_requests=n_requests,
                        seed=SEED)
        row = rep.to_dict()
        if base is None:
            base = rep.throughput
        row["scaling"] = round(rep.throughput / base, 2)
        report["sweep"][str(n)] = row

    # Pure elasticity: a single front door, offload does all spreading.
    # The hotspot mix is mostly shallow-stacked light requests, so the
    # policy allows smaller segments than the serving default (a
    # depth-3 thread with 2 migratable frames is worth shipping here).
    from repro.serve import QueueDepthPolicy
    front = {}
    for n in (1, 4):
        rep = serve_mix("hotspot", n_nodes=n, n_requests=max(24,
                        n_requests // 2), seed=3, placement="front-door",
                        offload=QueueDepthPolicy(min_depth=3, mig_frames=2))
        front[str(n)] = rep.to_dict()
    front["speedup"] = round(
        front["1"]["makespan_s"] / front["4"]["makespan_s"], 2)
    report["front_door"] = front
    return report


def test_cluster_throughput_scaling(benchmark):
    from conftest import once

    report = once(benchmark, run_sweep)
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\ncluster serving throughput ({report['unit']}):")
    for n, row in report["sweep"].items():
        print(f"  nodes={n}: tput={row['throughput_rps']:8.1f} rps "
              f"scaling={row['scaling']:.2f}x "
              f"sod_offloads={row['sched']['sod_offloads']} "
              f"handoffs={row['sched']['handoffs']}")
    print(f"  front-door elasticity speedup (4 nodes): "
          f"{report['front_door']['speedup']:.2f}x -> {BENCH_JSON.name}")

    # Every request is served and every result matches the standalone
    # legacy-dispatch oracle.
    for row in report["sweep"].values():
        assert row["served"] == row["submitted"] == report["n_requests"]
        assert row["correct"] == row["served"]
        assert row["failed"] == 0 and row["unserved"] == 0

    # Acceptance floor: >= 3x served throughput at 8 nodes vs 1 on the
    # parallel mix.  Virtual time is deterministic, so no noise margin
    # is needed; the env override exists for exploratory runs only.
    floor = float(os.environ.get("BENCH_CLUSTER_MIN_SCALING", "3.0"))
    assert report["sweep"]["8"]["scaling"] >= floor, report["sweep"]["8"]
    # and scaling is monotone in cluster size
    scalings = [report["sweep"][str(n)]["scaling"] for n in NODE_COUNTS]
    assert scalings == sorted(scalings)

    # The multi-node runs actually exercised stack-on-demand offload.
    for n in ("2", "4", "8"):
        assert report["sweep"][n]["sched"]["sod_offloads"] > 0
    # The front-door scenario used handoff AND offload, and they paid:
    fd = report["front_door"]
    assert fd["4"]["sched"]["handoffs"] > 0
    assert fd["4"]["sched"]["sod_offloads"] > 0
    assert fd["speedup"] >= 1.5
    assert fd["4"]["correct"] == fd["4"]["served"] == fd["4"]["submitted"]


def test_serving_run_is_deterministic():
    """The same sweep configuration replays bit-identically (the CI
    artifact is meaningful history, not noise)."""
    from repro.serve import serve_mix

    a = serve_mix("mixed", n_nodes=2, n_requests=16, seed=11)
    b = serve_mix("mixed", n_nodes=2, n_requests=16, seed=11)
    assert json.dumps(a.to_dict(), sort_keys=True) \
        == json.dumps(b.to_dict(), sort_keys=True)


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    print(json.dumps(run_sweep(), indent=2))
