"""Bench: raw interpreter throughput (instructions/second) across every
registry workload — legacy dispatch vs tier-1 fast dispatch vs the
tier-2 specializing JIT.

Methodology: each workload is measured in its own pristine subprocess so
results are independent of suite ordering and of CPython's warm-state
drift (the legacy loop speeds up substantially once the host interpreter
is warm, which would make in-process ratios depend on when the bench
runs).  Within a child the tier-2 run is timed *first* (fully cold —
the timed interval includes tier-up compilation), tier-1 fast second,
and the legacy loop last — any residual warm-state benefit goes to the
baselines, keeping the reported speedups conservative.  A second call
on the tier-2 machine gives the warm-vs-cold split (closures already
compiled, caches hot).  Three attempts per workload; the fastest run
per mode wins.

Emits ``BENCH_interpreter.json`` at the repo root so the performance
trajectory of the VM hot path is tracked from this PR on.  Two asserted
floors: geomean fast-vs-legacy >= 3x (the PR 1 dispatch rebuild bar)
and geomean tier2-vs-tier1 >= 2x (this PR's bar).

JSON layout convention: host-dependent wall-clock measurements
(ips rates, speedup ratios) live under ``"wall"`` subkeys — per
workload and at top level — while everything outside ``"wall"`` is
deterministic (instruction counts, compile counts, fused sites) and
must be byte-stable across regenerations on any host.  Diffs touching
only ``"wall"`` blocks are timing noise; anything else is a real
behavior change.

Run directly (``python benchmarks/test_interpreter_throughput.py``) to
print the JSON report to stdout; ``--one <workload>`` runs a single
child measurement.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_interpreter.json"

#: fresh-subprocess attempts per workload; the fastest run per mode wins
ATTEMPTS = 3

#: per-workload keys aggregated by max across attempts
_IPS_KEYS = ("before_ips", "after_ips", "tier2_ips", "tier2_warm_ips")


def _timed_run(classes, main, args, **kw):
    from repro.vm.machine import Machine
    m = Machine(classes, **kw)
    t0 = time.perf_counter()
    m.call(main[0], main[1], list(args))
    return time.perf_counter() - t0, m


def measure_one(name: str) -> dict:
    """Measure one workload in this (expected: fresh) process."""
    from repro.preprocess.fuse import fused_coverage
    from repro.workloads import registry

    w = registry.WORKLOADS[name]
    classes = registry.compiled(name, "original")
    # tier-2 first, fully cold: the timed interval pays decoding AND
    # tier-up compilation, so the reported ips is end-to-end honest
    t2_dt, tm = _timed_run(classes, w.main, w.sim_args, jit=True)
    t2_instrs = tm.instr_count
    # warm split: same machine, closures compiled, caches hot
    t0 = time.perf_counter()
    tm.call(w.main[0], w.main[1], list(w.sim_args))
    t2_warm_dt = time.perf_counter() - t0
    t2_warm_instrs = tm.instr_count - t2_instrs
    fast_dt, fm = _timed_run(classes, w.main, w.sim_args, jit=False)
    legacy_dt, lm = _timed_run(classes, w.main, w.sim_args,
                               dispatch="legacy")
    assert fm.instr_count == lm.instr_count == t2_instrs  # same work
    cov: dict = {}
    for cls in fm.loader.loaded_classes().values():
        for code in cls.cf.methods.values():
            for k, v in fused_coverage(fm.decoded(code)).items():
                cov[k] = cov.get(k, 0) + v
    return {
        "instr_count": fm.instr_count,
        "before_ips": fm.instr_count / legacy_dt,
        "after_ips": fm.instr_count / fast_dt,
        "tier2_ips": t2_instrs / t2_dt,
        "tier2_warm_ips": t2_warm_instrs / t2_warm_dt,
        "jit_compiles": tm.jit_compiles,
        "jit_guard_bails": tm.jit_guard_bails,
        "fused_sites": sum(cov.values()),
    }


def _child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def run_throughput() -> dict:
    """Spawn one fresh subprocess per (workload, attempt) and aggregate."""
    from repro.workloads import registry

    report = {
        "bench": "interpreter_throughput",
        "unit": "guest instructions per second (host wall clock)",
        "dispatch": {
            "before": "legacy string-keyed if/elif chain",
            "after": "pre-decoded + fused + inline-cached",
            "tier2": "specializing JIT: guard-checked Python closures",
        },
        "methodology": (f"best of {ATTEMPTS} fresh-subprocess runs per "
                        "workload; tier-2 timed fully cold (compilation "
                        "inside the timed interval), tier-1 second, "
                        "legacy last; tier2_warm is a re-run on the "
                        "already-compiled machine"),
        "workloads": {},
    }
    speedups = []
    t2_speedups = []
    env = _child_env()
    for name in sorted(registry.WORKLOADS):
        best: dict = {}
        for _ in range(ATTEMPTS):
            out = subprocess.run(
                [sys.executable, str(Path(__file__).resolve()),
                 "--one", name],
                env=env, cwd=REPO_ROOT, capture_output=True, text=True,
                check=True)
            row = json.loads(out.stdout)
            if not best:
                best = row
            else:
                for k in _IPS_KEYS:
                    best[k] = max(best[k], row[k])
        speedup = best["after_ips"] / best["before_ips"]
        t2_speedup = best["tier2_ips"] / best["after_ips"]
        speedups.append(speedup)
        t2_speedups.append(t2_speedup)
        report["workloads"][name] = {
            # deterministic: identical on every host, every run
            "instr_count": best["instr_count"],
            "jit_compiles": best["jit_compiles"],
            "jit_guard_bails": best["jit_guard_bails"],
            "fused_sites": best["fused_sites"],
            # host-dependent wall-clock noise, quarantined
            "wall": {
                "before_ips": round(best["before_ips"]),
                "after_ips": round(best["after_ips"]),
                "tier2_ips": round(best["tier2_ips"]),
                "tier2_warm_ips": round(best["tier2_warm_ips"]),
                "speedup": round(speedup, 2),
                "tier2_speedup": round(t2_speedup, 2),
            },
        }

    def geomean(xs):
        return round(math.exp(sum(map(math.log, xs)) / len(xs)), 2)

    report["wall"] = {
        "geomean_speedup": geomean(speedups),
        "geomean_tier2_speedup": geomean(t2_speedups),
    }
    return report


def test_interpreter_throughput_vs_legacy(benchmark):
    from conftest import once

    report = once(benchmark, run_throughput)
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\ninterpreter throughput ({report['unit']}):")
    for name, row in report["workloads"].items():
        w = row["wall"]
        print(f"  {name:4s} before={w['before_ips'] / 1e6:6.2f}M/s "
              f"after={w['after_ips'] / 1e6:6.2f}M/s "
              f"tier2={w['tier2_ips'] / 1e6:6.2f}M/s "
              f"(warm {w['tier2_warm_ips'] / 1e6:6.2f}M/s) "
              f"x{w['speedup']:.2f}/x{w['tier2_speedup']:.2f} "
              f"compiles={row['jit_compiles']} "
              f"bails={row['jit_guard_bails']}")
    print(f"  geomean: fast/legacy {report['wall']['geomean_speedup']:.2f}x, "
          f"tier2/fast {report['wall']['geomean_tier2_speedup']:.2f}x "
          f"-> {BENCH_JSON.name}")
    # acceptance floors: >= 3x dispatch rebuild, >= 2x tier-2 on top —
    # on a quiet machine; shared CI runners override via the env vars
    # so a noisy-neighbour timing dip cannot fail unrelated PRs
    floor = float(os.environ.get("BENCH_MIN_SPEEDUP", "3.0"))
    assert report["wall"]["geomean_speedup"] >= floor
    # and every workload individually benefits substantially
    assert all(r["wall"]["speedup"] >= floor * 2 / 3
               for r in report["workloads"].values())
    t2_floor = float(os.environ.get("BENCH_MIN_T2_SPEEDUP", "2.0"))
    assert report["wall"]["geomean_tier2_speedup"] >= t2_floor
    assert all(r["wall"]["tier2_speedup"] >= 1.0
               for r in report["workloads"].values())


if __name__ == "__main__":
    if len(sys.argv) >= 3 and sys.argv[1] == "--one":
        print(json.dumps(measure_one(sys.argv[2])))
    else:
        print(json.dumps(run_throughput(), indent=2))
