"""Bench: raw interpreter throughput (instructions/second), fast vs
legacy dispatch, across every registry workload.

Methodology: each workload is measured in its own pristine subprocess so
results are independent of suite ordering and of CPython's warm-state
drift (the legacy loop speeds up substantially once the host interpreter
is warm, which would make in-process ratios depend on when the bench
runs).  Within a child the fast loop is timed *first* (fully cold) and
the legacy loop second — any residual warm-state benefit goes to the
baseline, keeping the reported speedup conservative.  Two attempts per
workload; the fastest run per mode wins.

Emits ``BENCH_interpreter.json`` at the repo root so the performance
trajectory of the VM hot path is tracked from this PR on.  The asserted
floor (geometric-mean speedup >= 3x) is the acceptance bar for the
pre-decoded/fused/inline-cached dispatch rebuild.

Run directly (``python benchmarks/test_interpreter_throughput.py``) to
print the JSON report to stdout; ``--one <workload>`` runs a single
child measurement.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_interpreter.json"

#: fresh-subprocess attempts per workload; the fastest run per mode wins
ATTEMPTS = 2


def _timed_run(classes, main, args, **kw):
    from repro.vm.machine import Machine
    m = Machine(classes, **kw)
    t0 = time.perf_counter()
    m.call(main[0], main[1], list(args))
    return time.perf_counter() - t0, m


def measure_one(name: str) -> dict:
    """Measure one workload in this (expected: fresh) process."""
    from repro.preprocess.fuse import fused_coverage
    from repro.workloads import registry

    w = registry.WORKLOADS[name]
    classes = registry.compiled(name, "original")
    fast_dt, fm = _timed_run(classes, w.main, w.sim_args)
    legacy_dt, lm = _timed_run(classes, w.main, w.sim_args,
                               dispatch="legacy")
    assert fm.instr_count == lm.instr_count  # same work performed
    cov: dict = {}
    for cls in fm.loader.loaded_classes().values():
        for code in cls.cf.methods.values():
            for k, v in fused_coverage(fm.decoded(code)).items():
                cov[k] = cov.get(k, 0) + v
    return {
        "instr_count": fm.instr_count,
        "before_ips": fm.instr_count / legacy_dt,
        "after_ips": fm.instr_count / fast_dt,
        "fused_sites": sum(cov.values()),
    }


def _child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def run_throughput() -> dict:
    """Spawn one fresh subprocess per (workload, attempt) and aggregate."""
    from repro.workloads import registry

    report = {
        "bench": "interpreter_throughput",
        "unit": "guest instructions per second (host wall clock)",
        "dispatch": {"before": "legacy string-keyed if/elif chain",
                     "after": "pre-decoded + fused + inline-cached"},
        "methodology": (f"best of {ATTEMPTS} fresh-subprocess runs per "
                        "workload; fast timed cold, legacy timed second"),
        "workloads": {},
    }
    speedups = []
    env = _child_env()
    for name in sorted(registry.WORKLOADS):
        best: dict = {}
        for _ in range(ATTEMPTS):
            out = subprocess.run(
                [sys.executable, str(Path(__file__).resolve()),
                 "--one", name],
                env=env, cwd=REPO_ROOT, capture_output=True, text=True,
                check=True)
            row = json.loads(out.stdout)
            if not best:
                best = row
            else:
                best["before_ips"] = max(best["before_ips"],
                                         row["before_ips"])
                best["after_ips"] = max(best["after_ips"], row["after_ips"])
        speedup = best["after_ips"] / best["before_ips"]
        speedups.append(speedup)
        report["workloads"][name] = {
            "instr_count": best["instr_count"],
            "before_ips": round(best["before_ips"]),
            "after_ips": round(best["after_ips"]),
            "speedup": round(speedup, 2),
            "fused_sites": best["fused_sites"],
        }
    report["geomean_speedup"] = round(
        math.exp(sum(map(math.log, speedups)) / len(speedups)), 2)
    return report


def test_interpreter_throughput_vs_legacy(benchmark):
    from conftest import once

    report = once(benchmark, run_throughput)
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\ninterpreter throughput ({report['unit']}):")
    for name, row in report["workloads"].items():
        print(f"  {name:4s} before={row['before_ips'] / 1e6:6.2f}M/s "
              f"after={row['after_ips'] / 1e6:6.2f}M/s "
              f"speedup={row['speedup']:.2f}x "
              f"fused_sites={row['fused_sites']}")
    print(f"  geomean speedup {report['geomean_speedup']:.2f}x "
          f"-> {BENCH_JSON.name}")
    # acceptance floor: >= 3x over the seed interpreter on a quiet
    # machine; shared CI runners override via BENCH_MIN_SPEEDUP so a
    # noisy-neighbour timing dip cannot fail unrelated PRs
    floor = float(os.environ.get("BENCH_MIN_SPEEDUP", "3.0"))
    assert report["geomean_speedup"] >= floor
    # and every workload individually benefits substantially
    assert all(r["speedup"] >= floor * 2 / 3
               for r in report["workloads"].values())


if __name__ == "__main__":
    if len(sys.argv) >= 3 and sys.argv[1] == "--one":
        print(json.dumps(measure_one(sys.argv[2])))
    else:
        print(json.dumps(run_throughput(), indent=2))
