"""G-JavaMPI-style eager-copy process migration (paper ref [9]).

The whole process moves: every stack frame is captured through a
JVMDI-era debugger interface (slow fixed + per-frame costs) and the
*entire heap plus statics* is serialized eagerly with Java serialization
(the paper: "the whole process data is captured with eager-copy, and
worse still, all objects are exported using Java serialization").

Mechanically we clone the thread and the full object graph into the
destination machine, so correctness is real; costs follow the calibrated
G-JavaMPI constants (Table IV's fixed/per-frame/per-byte structure).
After migration the process lives entirely at the destination — there is
no residual home stack and no faulting.

A known G-JavaMPI restriction reproduced here: a process holding pinned
frames (open sockets) cannot migrate at all (section IV.D).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.base import BaselineEngine, BaselineRecord, heap_nominal_bytes
from repro.errors import MigrationError
from repro.migration.state import GraphDecoder, GraphEncoder
from repro.vm.frames import Frame, ThreadState
from repro.vm.machine import Machine
from repro.vm.values import RemoteRef


class GJavaMPIEngine(BaselineEngine):
    """Eager-copy process migration."""

    name = "G-JavaMPI"

    def start(self, class_name: str, method: str,
              args: Optional[List[Any]] = None,
              at: str = "node0") -> Tuple[Machine, ThreadState]:
        machine = self.machine_on(at)
        return machine, machine.spawn(class_name, method, args)

    def migrate(self, src_machine: Machine, thread: ThreadState,
                dst_node: str) -> Tuple[Machine, ThreadState, BaselineRecord]:
        """Move the whole process to ``dst_node``."""
        if any(f.pinned for f in thread.frames):
            raise MigrationError(
                "G-JavaMPI cannot migrate a process with pinned frames "
                "(active socket connections)")
        src_node = src_machine.node.name
        rec = BaselineRecord(system=self.name, src=src_node, dst=dst_node,
                             nframes=thread.depth())

        # -- capture: all frames via the debugger + eager heap serialize --
        t0 = src_machine.clock
        src_machine.charge(self.sys.gj_capture_fixed)
        src_machine.charge(self.sys.gj_capture_per_frame * thread.depth())
        for f in thread.frames:
            for _slot in range(f.code.max_locals):
                src_machine.charge(src_machine.cost.vmti.get_local)
        heap_bytes = heap_nominal_bytes(src_machine)
        src_machine.charge(src_machine.cost.serialize_cost(heap_bytes))
        rec.capture_time = src_machine.clock - t0

        # -- transfer: serialized process image --
        rec.moved_bytes = src_machine.cost.wire_bytes(heap_bytes) + 4096
        rec.transfer_time = (self.sys.gj_transfer_fixed
                             + self.transfer_time(src_node, dst_node,
                                                  rec.moved_bytes))

        # -- restore: deserialize everything, rebuild all frames --
        dst_machine = self.machine_on(dst_node)
        t0 = dst_machine.clock
        dst_machine.charge(self.sys.gj_restore_fixed)
        dst_machine.charge(self.sys.gj_restore_per_frame * thread.depth())
        dst_machine.charge(dst_machine.cost.deserialize_cost(heap_bytes))
        new_thread = self._clone_process(src_machine, thread, dst_machine)
        rec.restore_time = dst_machine.clock - t0

        self.timeline += rec.latency
        self.records.append(rec)
        return dst_machine, new_thread, rec

    def _clone_process(self, src: Machine, thread: ThreadState,
                       dst: Machine) -> ThreadState:
        """Deep-copy the heap graph reachable from the stack + statics,
        then rebuild the frames against the copies."""
        enc = GraphEncoder(this_node="", eager=True)
        frame_locals = [[enc.encode(v) for v in f.locals]
                        for f in thread.frames]
        frame_stacks = [[enc.encode(v) for v in f.stack]
                        for f in thread.frames]
        statics_enc: Dict[Tuple[str, str], Any] = {}
        for cls in src.loader.loaded_classes().values():
            for fname, v in cls.statics.items():
                statics_enc[(cls.name, fname)] = enc.encode(v)

        dec = GraphDecoder(dst.heap, dst.loader, this_node="",
                           graph=enc.graph)
        for (cname, fname), e in statics_enc.items():
            home = dst.loader.load(cname).find_static_home(fname)
            home.statics[fname] = dec.decode(e)
        new_thread = ThreadState(thread.name)
        for f, locs, stk in zip(thread.frames, frame_locals, frame_stacks):
            code = dst.loader.load(f.code.class_name).cf.methods[f.code.name]
            nf = Frame(code)
            nf.locals = [dec.decode(e) for e in locs]
            nf.stack = [dec.decode(e) for e in stk]
            nf.pc = f.pc
            new_thread.frames.append(nf)
        return new_thread

    def finish(self, machine: Machine, thread: ThreadState) -> Any:
        """Run to completion at the current location."""
        self.run(machine, thread)
        if thread.uncaught is not None:
            raise MigrationError(
                f"process died: {thread.uncaught.class_name}")
        return thread.result
