"""Xen-style live VM migration (paper ref [5], Clark et al. NSDI'05).

The entire guest OS image moves by iterative pre-copy: RAM is copied
while the VM keeps running, dirtied pages are re-sent for a few rounds,
then a short stop-and-copy finishes.  Freeze time is therefore small,
but *migration latency* is the full image transfer ("it starts capturing
and pre-copying dirty pages to the destination well ahead of execution
stoppage ... so it is not considered as lightweight migration and
excluded from the [latency] comparison"), and *migration overhead* is
several seconds of interference + stop-copy (Table III's 3.7-7.2 s).

Mechanically nothing inside the guest changes: the same Machine keeps
running, its hosting node is swapped, and the cost model charges the
pre-copy traffic, interference and freeze.  Because the node changes,
data locality effects (Table VI) are real: NFS reads that were remote
become local after migration.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.baselines.base import BaselineEngine, BaselineRecord, heap_nominal_bytes
from repro.errors import MigrationError
from repro.vm.frames import ThreadState
from repro.vm.machine import Machine


class XenEngine(BaselineEngine):
    """Pre-copy live migration of the whole VM."""

    name = "Xen"

    def start(self, class_name: str, method: str,
              args: Optional[List[Any]] = None,
              at: str = "node0") -> Tuple[Machine, ThreadState]:
        machine = self.machine_on(at)
        return machine, machine.spawn(class_name, method, args)

    def migrate(self, machine: Machine, thread: ThreadState,
                dst_node: str) -> Tuple[Machine, ThreadState, BaselineRecord]:
        """Live-migrate the VM under the running thread."""
        src_node = machine.node.name
        rec = BaselineRecord(system=self.name, src=src_node, dst=dst_node,
                             nframes=thread.depth())

        image = self.sys.xen_working_set_bytes + heap_nominal_bytes(machine)
        rec.moved_bytes = int(image * self.sys.xen_dirty_rounds)
        precopy = self.transfer_time(src_node, dst_node, rec.moved_bytes)
        freeze = self.sys.xen_stop_copy

        # Latency = pre-copy + stop-and-copy; freeze time is only the
        # stop-and-copy, but the paper's Table III overhead reflects
        # interference during pre-copy plus the freeze.
        rec.capture_time = precopy          # pre-copy phase (VM running)
        rec.transfer_time = freeze          # stop-and-copy (VM frozen)
        rec.restore_time = 0.0
        overhead = precopy * self.sys.xen_interference + freeze
        machine.charge_raw(overhead)
        self.timeline += overhead

        # Relocate the VM: the same machine now runs on the new node.
        machine.node = self.cluster.node(dst_node)
        machine._speed = machine.node.spec.speed_factor
        self.machines.pop(src_node, None)
        self.machines[dst_node] = machine
        self.records.append(rec)
        return machine, thread, rec

    @property
    def last_freeze_time(self) -> float:
        """Stop-and-copy duration of the most recent migration."""
        if not self.records:
            raise MigrationError("no migration yet")
        return self.sys.xen_stop_copy

    def finish(self, machine: Machine, thread: ThreadState) -> Any:
        self.run(machine, thread)
        if thread.uncaught is not None:
            raise MigrationError(f"VM guest died: {thread.uncaught.class_name}")
        return thread.result
