"""Baseline migration systems the paper compares against."""

from repro.baselines.base import BaselineEngine, BaselineRecord, heap_nominal_bytes
from repro.baselines.gjavampi import GJavaMPIEngine
from repro.baselines.jessica2 import Jessica2Engine
from repro.baselines.xen import XenEngine

__all__ = [
    "BaselineEngine", "BaselineRecord", "heap_nominal_bytes",
    "GJavaMPIEngine", "Jessica2Engine", "XenEngine",
]
