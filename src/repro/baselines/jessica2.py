"""JESSICA2-style in-JVM thread migration (paper ref [6]).

JESSICA2 modifies the JVM (Kaffe) itself: state is read straight out of
the JVM kernel, so capture is extremely fast (no debugger interface) —
but the JIT is an old Kaffe JIT, ~4x slower than Sun JDK 1.6 in raw
execution (Table II), and static arrays are allocated **at class-load
time**, which makes its FFT restore dominated by a 64 MB allocation
(Table IV and the paper's analysis).

The heap stays home in a global object space; remote access fetches
objects on demand.  We reuse the repro object-fault machinery as the
stand-in for its DSM layer (same fetch granularity, same home-based
protocol), while the cost model carries the system-specific constants.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.base import BaselineEngine, BaselineRecord
from repro.errors import MigrationError
from repro.migration.capture import capture_segment, run_to_msp
from repro.migration.object_manager import (HomeObjectServer,
                                            WorkerObjectManager)
from repro.migration.restore import java_level_restore
from repro.migration.state import CapturedState
from repro.vm.frames import ThreadState
from repro.vm.machine import Machine
from repro.vm.objects import VMArray
from repro.vm.vmti import VMTI


class Jessica2Engine(BaselineEngine):
    """In-JVM thread migration over a home-based global object space."""

    name = "JESSICA2"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.servers: Dict[str, HomeObjectServer] = {}

    def start(self, class_name: str, method: str,
              args: Optional[List[Any]] = None,
              at: str = "node0") -> Tuple[Machine, ThreadState]:
        machine = self.machine_on(at)
        self.servers[at] = HomeObjectServer(machine, at)
        return machine, machine.spawn(class_name, method, args)

    def _static_alloc_bytes(self, machine: Machine) -> int:
        """Bytes of static arrays that class loading must allocate at the
        destination (JESSICA2 allocates static arrays at load time)."""
        total = 0
        for cls in machine.loader.loaded_classes().values():
            for v in cls.statics.values():
                if isinstance(v, VMArray):
                    total += v.nominal_bytes()
        return total

    def migrate(self, src_machine: Machine, thread: ThreadState,
                dst_node: str) -> Tuple[Machine, ThreadState, BaselineRecord]:
        """Migrate the whole thread (all frames); heap stays home."""
        src_node = src_machine.node.name
        rec = BaselineRecord(system=self.name, src=src_node, dst=dst_node,
                             nframes=thread.depth())
        run_to_msp(src_machine, thread)

        # -- capture: direct JVM-kernel access, no debugger interface --
        t0 = src_machine.clock
        src_machine.charge(self.sys.j2_capture_fixed)
        src_machine.charge(self.sys.j2_capture_per_frame * thread.depth())
        vmti = VMTI(src_machine)
        free = src_machine.cost.vmti
        saved = (free.get_local, free.get_frame_location,
                 free.get_local_variable_table, free.get_static)
        # Kernel-level reads are ~free compared to JVMTI calls.
        free.get_local = free.get_frame_location = 0.0
        free.get_local_variable_table = free.get_static = 0.0
        try:
            state = capture_segment(vmti, thread, thread.depth(),
                                    home_node=src_node)
        finally:
            (free.get_local, free.get_frame_location,
             free.get_local_variable_table, free.get_static) = saved
        rec.capture_time = src_machine.clock - t0

        # -- transfer: raw thread context --
        rec.moved_bytes = state.state_bytes()
        rec.transfer_time = (self.sys.j2_transfer_fixed
                             + self.transfer_time(src_node, dst_node,
                                                  rec.moved_bytes))

        # -- restore: direct frame rebuild + load-time static allocation --
        dst_machine = self.machine_on(dst_node)
        t0 = dst_machine.clock
        dst_machine.charge(self.sys.j2_restore_fixed)
        dst_machine.charge(self.sys.j2_restore_per_frame * thread.depth())
        alloc = self._static_alloc_bytes(src_machine)
        dst_machine.charge(alloc * dst_machine.cost.alloc_spb)
        new_thread = java_level_restore(dst_machine, state)
        objman = WorkerObjectManager(
            dst_machine, dst_node,
            fetch_service=self._fetch, rtt_service=self._rtt)
        objman.service_fixed = self.sys.fault_service_fixed
        objman.install_natives()
        dst_machine.extras["objman"] = objman
        rec.restore_time = dst_machine.clock - t0
        # The migrated thread now runs under the global-object-space
        # access checks of the destination JVM.
        dst_machine.cost = dst_machine.cost.copy(
            exec_factor=dst_machine.cost.exec_factor
            * (1.0 + self.sys.j2_dsm_exec_overhead))

        self.timeline += rec.latency
        self.records.append(rec)
        return dst_machine, new_thread, rec

    # -- global object space services ------------------------------------

    def _fetch(self, requester: str, ref) -> Tuple[Any, int, str]:
        server = self.servers.get(ref.home_node)
        if server is None:
            raise MigrationError(f"no object server on {ref.home_node}")
        payload, nbytes = server.fetch(ref.home_oid)
        return payload, nbytes, ref.home_node

    def _rtt(self, src: str, dst: str, req: int, reply: int) -> float:
        return self.cluster.network.rtt(src, dst, req, reply)

    def finish(self, machine: Machine, thread: ThreadState,
               home_machine: Optional[Machine] = None,
               home_thread: Optional[ThreadState] = None) -> Any:
        """Run the migrated thread to completion; write results back to
        the home space and retire the home thread."""
        self.run(machine, thread)
        if thread.uncaught is not None:
            raise MigrationError(f"thread died: {thread.uncaught.class_name}")
        objman = machine.extras.get("objman")
        if objman is not None and home_machine is not None:
            message, nbytes = objman.build_writeback(thread.result)
            self.timeline += self.transfer_time(
                machine.node.name, home_machine.node.name,
                machine.cost.wire_bytes(nbytes))
            server = self.servers[home_machine.node.name]
            value = server.apply_writeback(
                message["updates"], message["elem_updates"],
                message["static_updates"], message["graph"],
                message["return"])
            if home_thread is not None:
                home_thread.frames.clear()
                home_thread.finished = True
                home_thread.result = value
            return value
        return thread.result
