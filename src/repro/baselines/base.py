"""Shared pieces for the baseline migration systems.

Each baseline engine exposes the same surface the experiments drive:

* ``start(class, method, args)`` -> (host, thread)
* ``run(...)`` with triggers
* ``migrate(thread, dst)`` -> :class:`BaselineRecord`
* ``finish(thread)`` -> final result

so Tables II-IV and VI can sweep systems uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bytecode.code import ClassFile
from repro.cluster.topology import Cluster
from repro.errors import MigrationError
from repro.vm.costmodel import CostModel, SystemCosts
from repro.vm.frames import ThreadState
from repro.vm.machine import Machine


@dataclass
class BaselineRecord:
    """Migration latency breakdown for a baseline system (Table IV)."""

    system: str
    src: str
    dst: str
    nframes: int = 0
    capture_time: float = 0.0
    transfer_time: float = 0.0
    restore_time: float = 0.0
    moved_bytes: int = 0

    @property
    def latency(self) -> float:
        return self.capture_time + self.transfer_time + self.restore_time


class BaselineEngine:
    """Common host/timeline plumbing for baseline systems."""

    name = "baseline"

    def __init__(self, cluster: Cluster, classes: Dict[str, ClassFile],
                 cost: CostModel, syscosts: Optional[SystemCosts] = None):
        self.cluster = cluster
        self.classes = classes
        self.cost = cost
        self.sys = syscosts or SystemCosts()
        self.timeline = 0.0
        self.machines: Dict[str, Machine] = {}
        self.records: List[BaselineRecord] = []

    def machine_on(self, node_name: str) -> Machine:
        m = self.machines.get(node_name)
        if m is None:
            m = Machine(dict(self.classes), cost=self.cost.copy(),
                        node=self.cluster.node(node_name),
                        fs=self.cluster.fs, name=f"{self.name}@{node_name}")
            self.machines[node_name] = m
        return m

    def run(self, machine: Machine, thread: ThreadState,
            stop: Optional[Callable[[ThreadState], bool]] = None,
            max_instrs: Optional[int] = None) -> str:
        t0 = machine.clock
        status = machine.run(thread, stop=stop, max_instrs=max_instrs)
        self.timeline += machine.clock - t0
        return status

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        return self.cluster.network.transfer_time(src, dst, nbytes)


def heap_nominal_bytes(machine: Machine) -> int:
    """Total nominal bytes of all live heap objects plus statics (what an
    eager-copy migration must serialize)."""
    total = machine.heap.allocated_bytes
    for cls in machine.loader.loaded_classes().values():
        for fname, v in cls.statics.items():
            if isinstance(v, str):
                total += 4 + len(v)
            else:
                total += 8
    return total
