"""Discrete-event simulation kernel used by the cluster substrate."""

from repro.sim.kernel import Environment, Event, Process, Resource, Store

__all__ = ["Environment", "Event", "Process", "Resource", "Store"]
