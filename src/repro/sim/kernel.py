"""A compact discrete-event simulation kernel.

The cluster substrate and the multi-hop migration workflows need a
virtual clock with overlapping activities (e.g. Fig. 1c of the paper:
a segment transfers to node 3 *while* node 2 executes the top frame, so
the second hop's freeze time is hidden).  This module provides a minimal,
dependency-free kernel in the style of SimPy:

* :class:`Environment` owns the clock and the event queue.
* A *process* is a Python generator that yields :class:`Event` objects;
  the kernel resumes it when the yielded event fires.
* ``env.timeout(dt)`` produces an event that fires ``dt`` seconds later.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so runs
are bit-reproducible.

The kernel is the serving layer's hot path: at thousands of concurrent
guest threads every quantum costs one ``Store.get`` and one ``timeout``
round-trip, so this module is written for constant factors —
``__slots__`` everywhere, a single-callback fast slot on events (the
overwhelmingly common case), lambda-free timeout scheduling, and a
*trampolined* process resume: a process whose yielded event is already
triggered (a run queue with work waiting) continues in a loop instead
of recursing, so a node draining a thousand-deep queue cannot overflow
the Python stack.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

ProcessGen = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, is *triggered* with an optional value, and
    then fires: every waiting callback/process receives the value.
    """

    __slots__ = ("env", "_cb", "_cbs", "triggered", "value", "name")

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        # Nearly every event has exactly one waiter (the process that
        # yielded it): a dedicated slot avoids allocating a list per
        # event; ``_cbs`` overflows only for fan-out events (all_of).
        self._cb: Optional[Callable[["Event"], None]] = None
        self._cbs: Optional[list[Callable[["Event"], None]]] = None
        self.triggered = False
        self.value: Any = None
        self.name = name

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event fires.  If the event has
        already fired, ``fn`` runs at the current simulated time."""
        if self.triggered:
            fn(self)
        elif self._cb is None:
            self._cb = fn
        elif self._cbs is None:
            self._cbs = [fn]
        else:
            self._cbs.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event *now* with ``value``."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        cb, cbs = self._cb, self._cbs
        self._cb = self._cbs = None
        if cb is not None:
            cb(self)
        if cbs is not None:
            for fn in cbs:
                fn(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.triggered else "pending"
        return f"<Event {self.name or id(self)} {state}>"


class Process(Event):
    """A running generator; also an event that fires when the generator
    returns (with its return value)."""

    __slots__ = ("gen",)

    def __init__(self, env: "Environment", gen: ProcessGen, name: str = ""):
        super().__init__(env, name=name or getattr(gen, "__name__", "process"))
        self.gen = gen
        # Kick off at current time.
        env._schedule(env.now, self._resume, None)

    def _resume(self, fired: Optional[Event]) -> None:
        # Trampoline: while the yielded event has already fired (a run
        # queue with items waiting, a zero-delay handoff), keep feeding
        # the generator here instead of recursing through add_callback —
        # a node draining an arbitrarily deep queue uses O(1) stack and
        # observes exactly the same synchronous ordering.
        send = self.gen.send
        while True:
            try:
                target = send(fired.value if fired is not None else None)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {target!r}, "
                    f"expected an Event")
            if not target.triggered:
                target.add_callback(self._resume)
                return
            fired = target


class Environment:
    """The simulation environment: clock + event queue + runner."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable, Any]] = []
        self._seq = 0

    # -- scheduling ------------------------------------------------------

    def _schedule(self, at: float, fn: Callable, arg: Any) -> None:
        if at < self.now - 1e-15:
            raise SimulationError(f"cannot schedule at {at} < now {self.now}")
        self._seq += 1
        heapq.heappush(self._queue, (at, self._seq, fn, arg))

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event firing ``delay`` seconds from now, carrying ``value``."""
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        ev = Event(self, name=name)
        # The bound succeed is the scheduled callable directly: no
        # closure allocation per timeout (the kernel's hottest path).
        self._schedule(self.now + delay, ev.succeed, value)
        return ev

    def event(self, name: str = "") -> Event:
        """A bare event to be triggered manually via :meth:`Event.succeed`."""
        return Event(self, name=name)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Start ``gen`` as a process at the current time."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event], name: str = "") -> Event:
        """An event firing when every event in ``events`` has fired; its
        value is the list of their values in input order."""
        events = list(events)
        done = self.event(name=name or "all_of")
        remaining = len(events)
        if remaining == 0:
            done.succeed([])
            return done
        values: list[Any] = [None] * remaining
        state = {"n": remaining}

        def make_cb(i: int) -> Callable[[Event], None]:
            def cb(ev: Event) -> None:
                values[i] = ev.value
                state["n"] -= 1
                if state["n"] == 0:
                    done.succeed(values)

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    def any_of(self, events: Iterable[Event], name: str = "") -> Event:
        """An event firing when the first of ``events`` fires; its value is
        ``(index, value)`` of the winner."""
        done = self.event(name=name or "any_of")

        def make_cb(i: int) -> Callable[[Event], None]:
            def cb(ev: Event) -> None:
                if not done.triggered:
                    done.succeed((i, ev.value))

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    # -- running ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains (or the clock passes ``until``).
        Returns the final simulated time."""
        queue = self._queue
        pop = heapq.heappop
        if until is None:
            while queue:
                at, _seq, fn, arg = pop(queue)
                self.now = at
                fn(arg)
            return self.now
        while queue:
            if queue[0][0] > until:
                self.now = until
                return self.now
            at, _seq, fn, arg = pop(queue)
            self.now = at
            fn(arg)
        return self.now

    def run_process(self, gen: ProcessGen, name: str = "") -> Any:
        """Convenience: start ``gen``, run to completion, return its value."""
        proc = self.process(gen, name=name)
        self.run()
        if not proc.triggered:
            raise SimulationError(f"process {proc.name!r} never finished (deadlock?)")
        return proc.value


class Store:
    """An unbounded FIFO item queue connecting producer and consumer
    processes (e.g. a scheduler's per-node run queue).

    ``put(item)`` delivers immediately: if a consumer is blocked in
    ``get()`` the oldest one wakes at the current simulated time,
    otherwise the item queues.  ``get()`` returns an event whose value
    is the item.  Ordering is strictly FIFO on both sides, so runs are
    deterministic.

    ``items`` is deliberately exposed: schedulers inspect queue depth
    for load accounting and may remove queued items (work stealing /
    request handoff) via :meth:`remove`.
    """

    __slots__ = ("env", "name", "items", "_getters")

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        #: queued items, oldest first (only items no consumer has taken)
        self.items: deque = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Enqueue ``item`` (wakes the oldest blocked getter, if any)."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)

    def put_many(self, items: Iterable[Any]) -> None:
        """Enqueue a batch in order: blocked getters are woken one per
        item (oldest getter, oldest item) and the remainder is extended
        onto the queue in a single pass — one batched run-queue wakeup
        instead of k separate ``put`` bookkeeping rounds."""
        getters = self._getters
        it = iter(items)
        for item in it:
            if getters:
                getters.popleft().succeed(item)
            else:
                self.items.append(item)
                self.items.extend(it)
                return

    def get(self) -> Event:
        """An event firing with the next item (immediately if one is
        queued, else when a producer puts one)."""
        ev = self.env.event(name=f"{self.name or 'store'}.get")
        if self.items:
            ev.succeed(self.items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def remove(self, item: Any) -> bool:
        """Remove a specific queued item (for handoff/stealing).
        Returns False if the item is no longer queued."""
        try:
            self.items.remove(item)
            return True
        except ValueError:
            return False


class Resource:
    """A counted resource (e.g. a link slot or a CPU) with FIFO queueing.

    ``request()`` returns an event that fires when a unit is granted;
    ``release()`` hands the unit to the next waiter.
    """

    __slots__ = ("env", "capacity", "in_use", "_waiters")

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        # deque: release() wakes the oldest waiter in O(1); a list's
        # pop(0) is O(n) and melts under thousands of queued requests
        self._waiters: deque[Event] = deque()

    def request(self) -> Event:
        """An event firing when a unit of the resource is acquired."""
        ev = self.env.event(name="resource.request")
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Release one unit; wakes the oldest waiter if any."""
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            if self.in_use <= 0:
                raise SimulationError("release() without matching request()")
            self.in_use -= 1
