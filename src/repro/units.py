"""Unit helpers: byte sizes, bandwidths and durations.

All simulated durations in this package are plain ``float`` **seconds**;
all data sizes are ``int`` **bytes**; all bandwidths are ``float``
**bytes per second**.  These helpers exist so call sites read like the
paper ("1 Gbps link", "600 MB file", "30 us per GetLocal call").
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def kb(n: float) -> int:
    """``n`` kibibytes, in bytes."""
    return int(n * KB)


def mb(n: float) -> int:
    """``n`` mebibytes, in bytes."""
    return int(n * MB)


def gb(n: float) -> int:
    """``n`` gibibytes, in bytes."""
    return int(n * GB)


def kbps(n: float) -> float:
    """``n`` kilobits/s, in bytes/s (network convention: 1 kb = 1000 bits)."""
    return n * 1000.0 / 8.0


def mbps(n: float) -> float:
    """``n`` megabits/s, in bytes/s."""
    return n * 1_000_000.0 / 8.0


def gbps(n: float) -> float:
    """``n`` gigabits/s, in bytes/s."""
    return n * 1_000_000_000.0 / 8.0


def us(n: float) -> float:
    """``n`` microseconds, in seconds."""
    return n * 1e-6


def ms(n: float) -> float:
    """``n`` milliseconds, in seconds."""
    return n * 1e-3


def to_ms(seconds: float) -> float:
    """Seconds -> milliseconds (for table printing)."""
    return seconds * 1e3


def to_us(seconds: float) -> float:
    """Seconds -> microseconds (for table printing)."""
    return seconds * 1e6


def fmt_bytes(n: int) -> str:
    """Human-readable byte count, e.g. ``fmt_bytes(65536) == '64.0 KB'``."""
    x = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if x < 1024.0 or unit == "GB":
            return f"{x:.1f} {unit}" if unit != "B" else f"{int(x)} B"
        x /= 1024.0
    raise AssertionError("unreachable")
