"""SODEE — the Stack-On-Demand Execution Engine (paper section III).

Glues the substrates together: a :class:`Host` is a JVM process placed on
a cluster node; the :class:`SODEngine` starts guest threads, migrates
stack segments between hosts, serves object faults, applies write-back,
and accounts an experiment-level timeline.

Timeline model: phases are sequential on a single logical control flow
(run -> freeze/capture -> transfer -> restore -> run -> return), so the
engine sums per-phase durations; overlapping multi-hop flows (paper
Fig. 1b/c) are built on top in :mod:`repro.migration.workflow` using the
event kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bytecode.code import ClassFile
from repro.cluster.topology import Cluster
from repro.errors import MigrationError
from repro.migration.capture import capture_segment, run_to_msp
from repro.migration.object_manager import (HomeObjectServer,
                                            WorkerObjectManager)
from repro.migration.restore import RestoreDriver, java_level_restore
from repro.migration.state import (CapturedState, FrameMarker, encode_value,
                                   fingerprint, frame_fingerprint,
                                   is_cached_marker)
from repro.preprocess.sizes import class_size
from repro.vm.costmodel import CostModel, SystemCosts, sodee_model
from repro.vm.frames import ThreadState
from repro.vm.machine import Machine
from repro.vm.values import RemoteRef
from repro.vm.vmti import VMTI


#: wire size of a content-addressed class token (name + digest): what a
#: repeat offload ships instead of the class file + its pre-decoded
#: stream when the destination's classpath already holds them
CLASS_TOKEN_BYTES = 24


class TransferLedger:
    """Per-(home, worker) shipment ledger: the content-addressed record
    of what a worker already holds from one home.

    * ``statics`` maps ``(class, field)`` to the fingerprint of the
      encoded value last *synchronized* with the worker (shipped by a
      capture, a class-load sync, a resync, or applied back home by a
      completed segment's write-back) — a delta capture elides any
      static whose current fingerprint matches.
    * ``stamp`` records the shipment epoch each entry was last written
      at, and ``epoch`` counts shipments — the observability handle the
      delta property tests assert against (an unchanged static must not
      be re-stamped by a re-offload).

    Static cells live per class-loader *namespace*, so the ledger keeps
    one ``(statics, stamp)`` view per namespace tag: two requests
    running the same class through one (home, worker) pair never share
    markers.  The attribute pair above is the root (``None``) view —
    the single-tenant fast path reads it with zero indirection;
    :meth:`view` resolves any tag.

    Classes and their pre-decoded instruction streams need no ledger:
    a worker's classpath *is* the truth (class files are immutable,
    namespace-independent, and shared across namespaces by reference),
    so repeat offloads ship a :data:`CLASS_TOKEN_BYTES` digest token
    instead of the class — whatever namespace first pulled it.
    Object payloads are revalidated content-addressed per fetch (see
    :meth:`WorkerObjectManager.fetch` / ``fetch_if_changed``).
    """

    def __init__(self) -> None:
        self.epoch = 0
        self.statics: Dict[Tuple[str, str], int] = {}
        self.stamp: Dict[Tuple[str, str], int] = {}
        #: per-namespace (statics, stamp) views; root lives above
        self._ns: Dict[str, Tuple[Dict, Dict]] = {}
        #: delta frames: per-(namespace, thread) retained activation
        #: records from the last committed shipment, outermost-first as
        #: ``(fingerprint, CapturedFrame)`` pairs.  A re-offload of the
        #: same thread to this worker elides an unchanged deep prefix
        #: as markers; the engine rehydrates them from here at restore.
        self.frames: Dict[Tuple[Optional[str], str],
                          List[Tuple[int, Any]]] = {}

    def frame_view(self, ns: Optional[str],
                   thread_name: str) -> List[Tuple[int, Any]]:
        """Retained (fingerprint, record) pairs for one thread's last
        committed shipment (empty if none)."""
        return self.frames.get((ns, thread_name), [])

    def record_frames(self, ns: Optional[str], thread_name: str,
                      entries: List[Tuple[int, Any]]) -> None:
        """The restore succeeded: the worker now retains exactly these
        activation records for ``thread_name`` (wholesale replacement —
        markers in the shipment referenced records already present)."""
        self.frames[(ns, thread_name)] = list(entries)

    def view(self, ns: Optional[str]) -> Tuple[Dict, Dict]:
        """The (statics, stamp) dicts for namespace ``ns``."""
        if ns is None:
            return self.statics, self.stamp
        pair = self._ns.get(ns)
        if pair is None:
            pair = self._ns[ns] = ({}, {})
        return pair

    def record(self, key: Tuple[str, str], enc: Any,
               ns: Optional[str] = None) -> None:
        """Note that the worker now holds ``enc`` for static ``key`` in
        namespace ``ns`` (object-valued descriptors are never ledgered
        — see capture)."""
        statics, stamp = self.view(ns)
        if isinstance(enc, tuple) and enc and enc[0] == "@ref":
            statics.pop(key, None)
            stamp.pop(key, None)
            return
        statics[key] = fingerprint(enc)
        stamp[key] = self.epoch

    def invalidate(self, key: Tuple[str, str],
                   ns: Optional[str] = None) -> None:
        statics, stamp = self.view(ns)
        statics.pop(key, None)
        stamp.pop(key, None)

    def drop_namespace(self, ns: str) -> None:
        """Forget a namespace's view (its request completed and the
        worker dropped the cells the fingerprints described)."""
        self._ns.pop(ns, None)
        for key in [k for k in self.frames if k[0] == ns]:
            del self.frames[key]


class CaptureBaseline:
    """Mutable ledger view staged during one (possibly batched) capture,
    scoped to one class-loader namespace (``ns=None`` = root).

    A migration can still be refused *after* capture (cross-home static
    conflict, restore failure) — nothing shipped, so nothing may be
    ledgered.  Captures read and update this overlay (so the second
    capture of a batch can elide statics the first one just shipped);
    :meth:`commit` folds the staged entries into the real ledger only
    once the restore has succeeded.
    """

    def __init__(self, led: TransferLedger, ns: Optional[str] = None):
        self.led = led
        self.ns = ns
        #: the fingerprint view capture_segment reads
        self.statics: Dict[Tuple[str, str], int] = dict(led.view(ns)[0])
        self._fresh: List[Tuple[Tuple[str, str], Any]] = []
        #: delta frames staged per thread name (committed with statics)
        self._frames: Dict[str, List[Tuple[int, Any]]] = {}

    def frame_fps(self, thread_name: str) -> List[int]:
        """Fingerprints of the destination's retained activation
        records for ``thread_name``, outermost-first — what a delta
        capture may elide an unchanged deep prefix against."""
        return [fp for fp, _rec in
                self.led.frame_view(self.ns, thread_name)]

    def frame_record(self, thread_name: str, index: int):
        """The retained record behind a shipped frame marker (from the
        *durable* ledger — staged entries are not restorable yet)."""
        view = self.led.frame_view(self.ns, thread_name)
        return view[index][1] if index < len(view) else None

    def stage_frames(self, thread_name: str,
                     entries: List[Tuple[int, Any]]) -> None:
        """Stage one capture's full frame-record list (elided frames
        included — their content is identical to the retained copy)."""
        self._frames[thread_name] = entries

    def stage(self, state: "CapturedState") -> None:
        """Overlay one capture's fresh-shipped statics."""
        for key, enc in state.statics.items():
            if is_cached_marker(enc):
                continue
            self._fresh.append((key, enc))
            if isinstance(enc, tuple) and enc and enc[0] == "@ref":
                self.statics.pop(key, None)
            else:
                self.statics[key] = fingerprint(enc)

    def commit(self) -> None:
        self.led.epoch += 1
        for key, enc in self._fresh:
            self.led.record(key, enc, self.ns)
        for thread_name, entries in self._frames.items():
            self.led.record_frames(self.ns, thread_name, entries)


@dataclass
class MigrationRecord:
    """Timings and sizes of one SOD migration (Table IV row material)."""

    src: str
    dst: str
    nframes: int
    capture_time: float = 0.0
    transfer_time: float = 0.0
    state_transfer_time: float = 0.0
    class_transfer_time: float = 0.0
    restore_time: float = 0.0
    state_bytes: int = 0
    class_bytes: int = 0
    worker_spawn_time: float = 0.0
    #: transfer-cache outcome: did the class collapse to a digest token,
    #: how many statics rode as @cached markers, how many deep frames
    #: rode as FrameMarkers, and the payload bytes the delta kept off
    #: the wire vs. a from-scratch capture
    cached_class: bool = False
    cached_statics: int = 0
    cached_frames: int = 0
    saved_bytes: int = 0

    @property
    def latency(self) -> float:
        """Migration latency = freeze-to-resume (capture+transfer+restore);
        worker spawn is excluded when a worker is pre-started, as in the
        paper's testbed."""
        return (self.capture_time + self.transfer_time + self.restore_time
                + self.worker_spawn_time)


class Host:
    """A JVM process on a node: machine + optional VMTI + object server."""

    def __init__(self, engine: "SODEngine", node_name: str,
                 machine: Machine):
        self.engine = engine
        self.node_name = node_name
        self.machine = machine
        self.vmti: Optional[VMTI] = None
        if machine.node is None or machine.node.spec.has_vmti:
            self.vmti = VMTI(machine)
        self.server = HomeObjectServer(machine, node_name)
        self.objman: Optional[WorkerObjectManager] = None

    def attach_object_manager(self) -> WorkerObjectManager:
        """Install the worker-side object manager (ObjMan natives).
        Re-attaching re-arms the write barrier (it may have been
        disarmed between segment episodes to keep fast dispatch)."""
        if self.objman is None:
            self.objman = WorkerObjectManager(
                self.machine, self.node_name,
                fetch_service=self.engine.fetch_remote,
                rtt_service=self.engine.rtt)
            self.objman.service_fixed = self.engine.sys.fault_service_fixed
            if self.engine.transfer_cache:
                self.objman.reval_service = self.engine.fetch_remote_if_changed
            # Serving fetches from this node must forward nested fetched
            # copies to their true home (multi-hop chains fault through
            # intermediate hops).
            self.server.identity = self.objman.home_identity
            self.objman.install_natives()
        else:
            self.objman.arm()
        return self.objman

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.node_name}>"


class SODEngine:
    """The distributed runtime."""

    def __init__(self, cluster: Cluster, classes: Dict[str, ClassFile],
                 cost: Optional[CostModel] = None,
                 syscosts: Optional[SystemCosts] = None,
                 prestart_workers: bool = True,
                 transfer_cache: bool = True):
        self.cluster = cluster
        self.classes = classes
        self.cost = cost or sodee_model()
        self.sys = syscosts or SystemCosts()
        self.prestart_workers = prestart_workers
        #: migration fast path: content-addressed per-(home, worker)
        #: transfer caches — delta static captures, class digest tokens,
        #: retained-object revalidation.  ``False`` restores the
        #: ship-everything-every-time behavior (the delta property
        #: tests' oracle configuration).
        self.transfer_cache = transfer_cache
        self._ledgers: Dict[Tuple[str, str], TransferLedger] = {}
        #: namespace tag -> the node whose cells are authoritative for
        #: it (the home a segment in that namespace was captured from).
        #: A worker's load_listener is bound to the home that *spawned*
        #: the worker; cross-home namespaced segments would otherwise
        #: sync on-demand class statics against the wrong machine.
        self._ns_home: Dict[str, str] = {}
        #: namespace tag -> node names that materialized it (spawn and
        #: restore sites) — lets :meth:`forget_namespace` reclaim only
        #: the 2-3 hosts/links a request actually touched instead of
        #: sweeping the whole cluster per completion
        self._ns_sites: Dict[str, set] = {}
        self.hosts: Dict[str, Host] = {}
        #: experiment timeline, seconds
        self.timeline = 0.0
        self.migrations: List[MigrationRecord] = []

    # -- hosts -------------------------------------------------------------

    def host(self, node_name: str, with_classes: bool = True,
             cost: Optional[CostModel] = None) -> Host:
        """Get or create the host on ``node_name``.  The *home* host gets
        the full classpath; workers start empty and fetch classes on
        demand (``with_classes=False``)."""
        h = self.hosts.get(node_name)
        if h is not None:
            return h
        node = self.cluster.node(node_name)
        machine = Machine(
            classpath=dict(self.classes) if with_classes else None,
            cost=(cost or self.cost).copy(), node=node, fs=self.cluster.fs,
            name=f"vm@{node_name}")
        h = Host(self, node_name, machine)
        self.hosts[node_name] = h
        return h

    def _worker_host(self, node_name: str, home: Host,
                     attach_objman: bool = True) -> Tuple[Host, float]:
        """Get/spawn the worker host on ``node_name`` with on-demand class
        fetching from ``home``.  Returns (host, spawn_seconds)."""
        existing = self.hosts.get(node_name)
        if existing is not None:
            if attach_objman:
                existing.attach_object_manager()
            return existing, 0.0
        worker = self.host(node_name, with_classes=False)
        spawn = 0.0 if self.prestart_workers else self.sys.worker_spawn

        def missing(name: str) -> ClassFile:
            cf = home.machine.loader.classfile(name)
            nbytes = class_size(cf)
            worker.machine.charge_raw(self.rtt(node_name, home.node_name, 96, 0))
            worker.machine.charge_raw(self.transfer_time(
                home.node_name, node_name, nbytes))
            return cf

        worker.machine.loader.missing_class_hook = missing
        worker.machine.loader.load_listener = (
            lambda vmclass: self._sync_loaded_statics(worker, home, vmclass))
        if attach_objman:
            worker.attach_object_manager()
        return worker, spawn

    def _sync_loaded_statics(self, worker: Host, home: Host,
                             vmclass) -> None:
        """Class state travels with on-demand code: when a worker links
        a class fetched from its home, the home's *current* static
        values ride along (captured-segment classes already ship theirs
        with the capture; this closes the gap for classes the segment
        merely references — e.g. a static counter in a helper class the
        captured frames read but never own).  Without it the worker
        links paper defaults and silently computes on stale state.

        The class links inside some namespace (``vmclass.namespace``);
        the authoritative values are the cells *in that same namespace*
        on the namespace's true home — the engine's ``_ns_home`` map,
        recorded when the segment restored, overrides the listener's
        spawn-time ``home`` binding (a worker first spawned by H1 can
        later host a segment whose namespace lives on H0).  The home is
        peeked, never created: an absent namespace there means nobody
        holds values for it and the paper defaults are authoritative.

        Object-valued statics become remote refs, which need the fault
        natives: on a worker without an object manager (a node serving
        only handed-off, statics-free requests) they keep their
        defaults — such programs never touch them."""
        from repro.migration.state import decode_value
        from repro.vm.values import LOC_STATIC
        if not vmclass.statics:
            return
        ns = vmclass.namespace
        if ns is not None:
            true_home = self.hosts.get(self._ns_home.get(ns, ""))
            if true_home is not None:
                home = true_home
        if home.machine is worker.machine:
            return  # linking ON the namespace's home: defaults are it
        home_loader = home.machine.namespace(ns, create=False)
        if home_loader is None or not home_loader.is_loaded(vmclass.name):
            return  # home never linked it: defaults are authoritative
        home_cls = home_loader.load(vmclass.name)
        led = (self.ledger(home.node_name, worker.node_name)
               if self.transfer_cache else None)
        nbytes = 0
        for fname in list(vmclass.statics):
            enc, b = encode_value(home_cls.statics[fname], home.node_name)
            dec = decode_value(enc, (LOC_STATIC, vmclass.name, fname))
            if isinstance(dec, RemoteRef) and worker.objman is None:
                continue
            vmclass.statics[fname] = dec
            nbytes += b
            if led is not None:
                led.record((vmclass.name, fname), enc, ns)
        if nbytes:
            worker.machine.charge_raw(self.transfer_time(
                home.node_name, worker.node_name, nbytes))

    def worker_host(self, node_name: str, home: Host,
                    attach_objman: bool = True) -> Host:
        """Public worker-host accessor for schedulers: the host on
        ``node_name`` with on-demand class fetching from ``home``.  A
        first-time spawn cost (when workers are not pre-started) is
        charged to the engine timeline.

        ``attach_objman=False`` defers the object manager (and its
        write barrier, which forces the hook-aware interpreter loop):
        a node serving only locally spawned requests keeps fast
        dispatch, and :meth:`migrate`/:meth:`migrate_many` attach the
        manager the moment a segment actually lands there."""
        worker, spawn = self._worker_host(node_name, home,
                                          attach_objman=attach_objman)
        self.timeline += spawn
        return worker

    # -- network services -------------------------------------------------------

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        return self.cluster.network.transfer_time(src, dst, nbytes)

    def rtt(self, src: str, dst: str, req: int, reply: int) -> float:
        return self.cluster.network.rtt(src, dst, req, reply)

    def fetch_remote(self, requester: str, ref: RemoteRef
                     ) -> Tuple[Any, int, str]:
        """Object-fetch service: locate the owner host and serialize.
        Each service includes the home agent's fixed JVMTI-lookup +
        serialization-setup cost (it elapses while the requester waits,
        so it is charged on the requester's clock too)."""
        owner = self.hosts.get(ref.home_node)
        if owner is None:
            raise MigrationError(f"no host on {ref.home_node} to serve fetch")
        payload, nbytes = owner.server.fetch(ref.home_oid)
        return payload, nbytes, ref.home_node

    def fetch_remote_if_changed(self, requester: str, ref: RemoteRef,
                                fp: int) -> Tuple[Optional[Any], int, str]:
        """Conditional object-fetch service: ``None`` payload means the
        requester's retained copy (fingerprint ``fp``) is still current
        and only a validation reply crossed the wire — the saved payload
        bytes are credited to the link's savings meter."""
        owner = self.hosts.get(ref.home_node)
        if owner is None:
            raise MigrationError(f"no host on {ref.home_node} to serve fetch")
        payload, nbytes = owner.server.fetch_if_changed(ref.home_oid, fp)
        if payload is None:
            self.cluster.network.record_saved(ref.home_node, requester,
                                              max(0, nbytes - 16))
        return payload, nbytes, ref.home_node

    def ledger(self, home_node: str, worker_node: str) -> TransferLedger:
        """The (home, worker) transfer ledger (created on first use)."""
        key = (home_node, worker_node)
        led = self._ledgers.get(key)
        if led is None:
            led = self._ledgers[key] = TransferLedger()
        return led

    def crash_host(self, name: str) -> None:
        """Node ``name`` died (chaos layer): its JVM process — machine,
        caches, object manager, restored segments — is gone, and so is
        every transfer-ledger epoch it participated in.  Ledgers where
        the dead node was the *worker* describe state that no longer
        exists; ledgers where it was the *home* describe fingerprints
        nobody can verify against anymore.  Both sides drop, so a
        post-recovery re-offload over the same pair starts from a
        from-scratch shipment instead of trusting markers for cells
        that evaporated.  Namespace site records shed the dead node so
        later :meth:`forget_namespace` sweeps stay exact."""
        self.hosts.pop(name, None)
        for key in [k for k in self._ledgers
                    if k[0] == name or k[1] == name]:
            del self._ledgers[key]
        for sites in self._ns_sites.values():
            sites.discard(name)

    def note_namespace_site(self, tag: str, node_name: str) -> None:
        """Record that ``node_name`` materialized namespace ``tag``
        (the scheduler calls this at spawn; restores record their own
        sites) so reclamation can stay O(sites the request touched)."""
        self._ns_sites.setdefault(tag, set()).add(node_name)

    def forget_namespace(self, tag: str) -> None:
        """End of a namespace's life (its request completed): drop its
        linked classes and decoded streams, its ledger views, and its
        bookkeeping — per-request namespaces must not accumulate
        across a long serving run.  With recorded sites the sweep is
        O(sites²) dict pops (a request touches 2-3 nodes, not the
        cluster); a tag with no recorded sites falls back to the full
        host/ledger sweep so engine-level callers that never note
        sites still reclaim everything."""
        self._ns_home.pop(tag, None)
        sites = self._ns_sites.pop(tag, None)
        if sites is None:
            for h in self.hosts.values():
                h.machine.drop_namespace(tag)
            for led in self._ledgers.values():
                led.drop_namespace(tag)
            return
        for n in sites:
            h = self.hosts.get(n)
            if h is not None:
                h.machine.drop_namespace(tag)
        for a in sites:
            for b in sites:
                led = self._ledgers.get((a, b))
                if led is not None:
                    led.drop_namespace(tag)

    def recycle_namespace(self, tag: str) -> int:
        """Re-virginize a *pooled* namespace for its next lease and
        return how many static cells were actually reset.

        Unlike :meth:`forget_namespace`, the namespace's expensive
        state survives: linked classes, decoded instruction streams,
        inline-cache bindings, and tier-2 compiled closures all stay
        warm on every site the tag ever touched — that is the pool's
        whole point.  What must NOT survive a lease:

        * **dirty static cells** — each site's loader resets them to
          class-file defaults in place (copy-on-write: clean cells are
          untouched, and the ``statics`` dict identity is preserved so
          the caches stay bound to the live cells);
        * **the tag's ledger views** — the per-(home, worker) static
          fingerprints describe the *previous* request's cells; a
          stale entry could elide a static whose content happens to
          re-fingerprint identically after the reset, pinning the
          worker to re-virginized defaults.  Dropping the views makes
          the next capture ship (and re-stamp) fresh values;
        * **the namespace's home binding** — the next lease may spawn
          anywhere, so ``_ns_home`` re-binds at its next migration.

        Sites are kept: future recycles must keep sweeping every node
        that ever linked this tag."""
        self._ns_home.pop(tag, None)
        sites = self._ns_sites.get(tag)
        if not sites:
            return 0
        reset = 0
        for n in sites:
            h = self.hosts.get(n)
            if h is None:
                continue
            ns = h.machine.namespace(tag, create=False)
            if ns is not None:
                reset += ns.revirginize()
        for a in sites:
            for b in sites:
                led = self._ledgers.get((a, b))
                if led is not None:
                    led.drop_namespace(tag)
        return reset

    # -- program control ------------------------------------------------------------

    def spawn(self, host: Host, class_name: str, method: str,
              args: Optional[List[Any]] = None) -> ThreadState:
        """Start a guest thread on ``host`` (not yet run)."""
        return host.machine.spawn(class_name, method, args)

    def run(self, host: Host, thread: ThreadState,
            stop: Optional[Callable[[ThreadState], bool]] = None,
            max_instrs: Optional[int] = None,
            quantum: Optional[int] = None) -> str:
        """Run a thread on its host, advancing the timeline.

        ``quantum`` forwards to :meth:`Machine.run`'s scheduler budget;
        unlike ``max_instrs`` it keeps the fast (and tier-2) path, so a
        thread can be frozen at a safepoint inside compiled code and
        then captured — the tier-2 migration fuzzer leans on this."""
        t0 = host.machine.clock
        status = host.machine.run(thread, stop=stop, max_instrs=max_instrs,
                                  quantum=quantum)
        self.timeline += host.machine.clock - t0
        return status

    # -- SOD migration -----------------------------------------------------------------

    def _class_ship_bytes(self, dst_node: str, name: str,
                          cf: ClassFile) -> Tuple[int, bool]:
        """Wire bytes for shipping class ``name`` to ``dst_node``: the
        full class file (plus its pre-decoded stream riding along) on
        first contact, or a content-addressed digest token when the
        destination's classpath already holds it — the classpath *is*
        the cache (class files are immutable once defined).  Returns
        (bytes, cached)."""
        full = class_size(cf)
        if not self.transfer_cache:
            return full, False
        dst = self.hosts.get(dst_node)
        if dst is not None and dst.machine.loader.has_classfile(name):
            return CLASS_TOKEN_BYTES, True
        return full, False

    def _ship_class(self, rec: MigrationRecord, dst_node: str, name: str,
                    cf: ClassFile) -> None:
        """Price one class shipment into ``rec`` — full bytes or digest
        token — and account the elided bytes."""
        rec.class_bytes, rec.cached_class = self._class_ship_bytes(
            dst_node, name, cf)
        if rec.cached_class:
            rec.saved_bytes += max(0, class_size(cf) - rec.class_bytes)

    def _baseline(self, home_node: str, dst_node: str,
                  ns: Optional[str] = None) -> Optional[CaptureBaseline]:
        """Staged delta-capture view of the (home, worker) ledger for
        one namespace, or None with the transfer cache disabled."""
        if not self.transfer_cache:
            return None
        return CaptureBaseline(self.ledger(home_node, dst_node), ns)

    def _commit_shipment(self, base: Optional[CaptureBaseline], src: str,
                         dst_node: str, saved_bytes: int) -> None:
        """A migration's restore succeeded: fold the staged delta into
        the durable ledger and credit the elided bytes to the link's
        savings meter."""
        if base is not None:
            base.commit()
        if saved_bytes:
            self.cluster.network.record_saved(src, dst_node, saved_bytes)

    @staticmethod
    def _static_classes(state: CapturedState) -> frozenset:
        """Classes whose statics travel with this captured segment."""
        return frozenset(cname for (cname, _f) in state.statics)

    @staticmethod
    def _check_cross_home_statics(worker: Host, state: CapturedState,
                                  src_node: str) -> None:
        """Refuse to co-locate segments from *different* homes whose
        classes carry mutable statics **within one class-loader
        namespace**: a namespace has one static cell per class, so
        restoring the second segment would overwrite the first home's
        values and their updates would compose on one shared cell —
        silent cross-tenant corruption.  (Same-home co-location keeps
        last-writer-wins release consistency.)

        Segments in *different* namespaces each carry their own cells,
        so they co-locate freely whatever their homes — this is what
        lets the serving layer run statics-heavy programs (FFT/TSP)
        concurrently: the scheduler gives each such request a fresh
        namespace and the old whole-worker refusal no longer fires."""
        objman = worker.objman
        if objman is None:
            return
        new = SODEngine._static_classes(state)
        if not new:
            return
        for thread, home in objman.thread_home.items():
            if home == src_node:
                continue
            if getattr(thread, "namespace", None) != state.namespace:
                continue  # disjoint cells: no conflict possible
            shared = objman.thread_statics.get(thread, frozenset()) & new
            if shared:
                raise MigrationError(
                    f"cross-home static conflict on {sorted(shared)}: "
                    f"worker {worker.node_name} already hosts a segment "
                    f"from {home} using these statics in the same "
                    f"namespace; cannot also serve {src_node}")

    def migrate(self, src_host: Host, thread: ThreadState, dst_node: str,
                nframes: int = 1,
                run_after_restore: bool = False
                ) -> Tuple[Host, ThreadState, MigrationRecord]:
        """Migrate the top ``nframes`` frames of ``thread`` to
        ``dst_node``.  The source thread keeps its full (now partially
        stale) stack, as the paper's home node does, until the segment
        completes and :meth:`complete_segment` pops it.

        Returns (worker_host, worker_thread, record)."""
        if src_host.vmti is None:
            raise MigrationError(
                f"source {src_host.node_name} lacks VMTI; cannot capture")
        rec = MigrationRecord(src=src_host.node_name, dst=dst_node,
                              nframes=nframes)
        machine = src_host.machine

        # Freeze at a migration-safe point.
        t0 = machine.clock
        run_to_msp(machine, thread)
        self.timeline += machine.clock - t0

        # -- capture (C2 part 1): a delta snapshot against the ledger of
        # what this destination already holds from this home, in the
        # thread's namespace --
        base = self._baseline(src_host.node_name, dst_node,
                              thread.namespace)
        t0 = machine.clock
        state = capture_segment(src_host.vmti, thread, nframes,
                                home_node=src_host.node_name,
                                baseline=base)
        machine.charge(self.sys.sod_capture_fixed)
        dst_spec = self.cluster.node(dst_node).spec
        if not dst_spec.has_vmti:
            # Destination cannot restore via VMTI: re-encode the captured
            # data with Java serialization into a portable format.
            machine.charge(self.sys.portable_capture_fixed)
        rec.capture_time = machine.clock - t0

        # -- transfer (serialized sizes go on the wire) --
        rec.state_bytes = state.state_bytes()
        rec.cached_statics = state.cached_statics
        rec.cached_frames = state.cached_frames
        rec.saved_bytes = state.saved_bytes
        if base is not None:
            base.stage(state)
        top_class = state.frames[-1].class_name
        cf = machine.loader.classfile(top_class)
        self._ship_class(rec, dst_node, top_class, cf)
        state_wire = machine.cost.wire_bytes(rec.state_bytes)
        class_wire = machine.cost.wire_bytes(rec.class_bytes)
        if not dst_spec.has_vmti:
            # Portable (Java-serialized) format: class descriptors and
            # string tables ride along with both payloads (section IV.D).
            state_wire += self.sys.portable_state_overhead_bytes
            class_wire += self.sys.portable_state_overhead_bytes // 2
        rec.state_transfer_time = (
            self.sys.sod_transfer_fixed
            + self.transfer_time(src_host.node_name, dst_node, state_wire))
        rec.class_transfer_time = self.transfer_time(
            src_host.node_name, dst_node, class_wire)
        rec.transfer_time = rec.state_transfer_time + rec.class_transfer_time

        # -- restore (destination) --
        worker, spawn = self._worker_host(dst_node, src_host)
        rec.worker_spawn_time = spawn
        # The top frame's class arrives with the state.
        worker.machine.loader._classpath.setdefault(top_class, cf)
        worker.attach_object_manager()
        self._check_cross_home_statics(worker, state, src_host.node_name)
        if worker.vmti is not None:
            worker_thread = self._restore_segment(worker, state, nframes,
                                                  src_host, rec, base)
        else:
            # Reflection-based rebuild on the (slow) device CPU; no
            # VMTI/JNI machinery involved (paper section IV.D).
            if state.namespace is not None:
                self._ns_home[state.namespace] = src_host.node_name
                self.note_namespace_site(state.namespace, worker.node_name)
                self.note_namespace_site(state.namespace,
                                         src_host.node_name)
            t0 = worker.machine.clock
            worker.machine.charge(
                self.sys.java_restore_fixed
                + self.sys.java_restore_per_frame * nframes)
            worker.machine.charge(worker.machine.cost.deserialize_cost(
                rec.state_bytes))
            self._rehydrate_frames(state, base)
            worker_thread = java_level_restore(
                worker.machine, state,
                static_fallback=self._static_fallback(worker, src_host,
                                                      base))
            if worker.objman is not None:
                worker.objman.register_thread_home(
                    worker_thread, src_host.node_name,
                    self._static_classes(state))
            rec.restore_time = worker.machine.clock - t0
        self._commit_shipment(base, src_host.node_name, dst_node,
                              rec.saved_bytes)

        self.timeline += rec.latency
        self.migrations.append(rec)
        if run_after_restore:
            self.run(worker, worker_thread)
        return worker, worker_thread, rec

    def migrate_many(self, src_host: Host, threads: List[ThreadState],
                     dst_node: str, nframes: int = 1
                     ) -> Tuple[Host, List[Tuple[ThreadState,
                                                 MigrationRecord]]]:
        """Batched SOD offload: capture the top ``nframes`` frames of
        *several* threads and ship them to ``dst_node`` in one bulk
        message.

        Under serving load the offload trigger routinely fires for more
        than one hot thread at once; shipping the captures together
        amortizes the fixed per-message transfer setup
        (``sod_transfer_fixed``) and sends each distinct top-frame class
        once instead of once per thread.  Per-thread capture and restore
        costs are unchanged (VMTI walks every frame either way).

        Returns ``(worker_host, [(worker_thread, record), ...])`` in
        input order.  Requires ``threads`` to be non-empty.
        """
        if not threads:
            raise MigrationError("migrate_many: empty thread batch")
        if src_host.vmti is None:
            raise MigrationError(
                f"source {src_host.node_name} lacks VMTI; cannot capture")
        machine = src_host.machine
        dst_spec = self.cluster.node(dst_node).spec
        if not dst_spec.has_vmti:
            raise MigrationError(
                "migrate_many targets VMTI-capable nodes only")

        # -- capture every thread (each at its own MSP), each a delta
        # against the staged ledger view of its *own namespace* (the
        # first capture in the batch ships a static fresh; same-
        # namespace batchmates ride as @cached markers; other
        # namespaces have their own cells and their own baselines) --
        bases: Dict[Optional[str], Optional[CaptureBaseline]] = {}
        recs: List[MigrationRecord] = []
        states: List[CapturedState] = []
        for thread in threads:
            if thread.namespace not in bases:
                bases[thread.namespace] = self._baseline(
                    src_host.node_name, dst_node, thread.namespace)
            base = bases[thread.namespace]
            t0 = machine.clock
            run_to_msp(machine, thread)
            self.timeline += machine.clock - t0
            t0 = machine.clock
            state = capture_segment(src_host.vmti, thread, nframes,
                                    home_node=src_host.node_name,
                                    baseline=base)
            machine.charge(self.sys.sod_capture_fixed)
            rec = MigrationRecord(src=src_host.node_name, dst=dst_node,
                                  nframes=nframes)
            rec.capture_time = machine.clock - t0
            rec.state_bytes = state.state_bytes()
            rec.cached_statics = state.cached_statics
            rec.cached_frames = state.cached_frames
            rec.saved_bytes = state.saved_bytes
            if base is not None:
                base.stage(state)
            states.append(state)
            recs.append(rec)

        # -- one bulk transfer: single fixed setup, classes deduplicated
        # within the batch and digest-tokenized against the worker --
        class_files = {}
        for state in states:
            top_class = state.frames[-1].class_name
            if top_class not in class_files:
                class_files[top_class] = machine.loader.classfile(top_class)
        state_wire = sum(machine.cost.wire_bytes(r.state_bytes)
                         for r in recs)
        class_bytes = {}
        class_cached = {}
        for name, cf in class_files.items():
            class_bytes[name], class_cached[name] = self._class_ship_bytes(
                dst_node, name, cf)
        class_wire = sum(machine.cost.wire_bytes(b)
                         for b in class_bytes.values())
        bulk_state = (self.sys.sod_transfer_fixed
                      + self.transfer_time(src_host.node_name, dst_node,
                                           state_wire))
        bulk_class = self.transfer_time(src_host.node_name, dst_node,
                                        class_wire)
        # Attribute the shared bulk times evenly across the batch so
        # per-record latencies still sum to the true wire time; each
        # distinct class's bytes are charged to the first record that
        # ships it (summing class_bytes across records must equal what
        # actually crossed the wire).
        n = len(recs)
        charged: set = set()
        for rec, state in zip(recs, states):
            top_class = state.frames[-1].class_name
            if top_class not in charged:
                charged.add(top_class)
                rec.class_bytes = class_bytes[top_class]
                rec.cached_class = class_cached[top_class]
                if rec.cached_class:
                    rec.saved_bytes += max(
                        0, class_size(class_files[top_class])
                        - rec.class_bytes)
            rec.state_transfer_time = bulk_state / n
            rec.class_transfer_time = bulk_class / n
            rec.transfer_time = rec.state_transfer_time \
                + rec.class_transfer_time

        # -- restore each segment on the worker --
        worker, spawn = self._worker_host(dst_node, src_host)
        for name, cf in class_files.items():
            worker.machine.loader._classpath.setdefault(name, cf)
        worker.attach_object_manager()
        for state in states:
            self._check_cross_home_statics(worker, state,
                                           src_host.node_name)
        out: List[Tuple[ThreadState, MigrationRecord]] = []
        for rec, state in zip(recs, states):
            rec.worker_spawn_time = spawn
            spawn = 0.0  # charged once per batch
            worker_thread = self._restore_segment(worker, state, nframes,
                                                  src_host, rec,
                                                  bases[state.namespace])
            self.timeline += rec.latency
            self.migrations.append(rec)
            out.append((worker_thread, rec))
        saved = sum(r.saved_bytes for r in recs)
        for base in bases.values():
            self._commit_shipment(base, src_host.node_name, dst_node, 0)
        if saved:
            self.cluster.network.record_saved(src_host.node_name, dst_node,
                                              saved)
        return worker, out

    # -- multi-hop re-offload (Fig. 1c chains) -----------------------------------------

    def rehop_segment(self, src_worker: Host, seg_thread: ThreadState,
                      dst_node: str, home: Host
                      ) -> Tuple[Host, ThreadState, MigrationRecord]:
        """Move a previously-offloaded segment onward along a Fig. 1c
        chain: capture *all* of ``seg_thread``'s frames on the current
        hop and restore them on ``dst_node``, still anchored to
        ``home`` — the segment's eventual completion returns its value
        and write-back directly to the home node, never back through
        the chain.

        Before the segment leaves, its effects flush home (the home
        heap is authoritative again, and the (home, dst) transfer
        ledger prices the statics as a delta); fetched copies in its
        frames are re-encoded as references to their *true* home via
        the hop's identity map, so no proxy chains build up.  Objects
        the hop itself created stay on its heap and serve on-demand
        fetches from the next hop.

        Returns (worker_host, worker_thread, record)."""
        if src_worker.vmti is None:
            raise MigrationError(
                f"hop {src_worker.node_name} lacks VMTI; cannot capture")
        if dst_node == src_worker.node_name:
            raise MigrationError("re-offload to the same node")
        machine = src_worker.machine
        objman = src_worker.objman

        # Freeze at a migration-safe point (may finish the thread, in
        # which case the caller completes it normally).
        t0 = machine.clock
        run_to_msp(machine, seg_thread)
        self.timeline += machine.clock - t0
        nframes = len(seg_thread.frames)
        rec = MigrationRecord(src=src_worker.node_name, dst=dst_node,
                              nframes=nframes)

        # Home heap becomes authoritative before the segment moves on —
        # and so does every *earlier hop* whose objects this segment
        # dirtied (the next hop re-faults them from their owners, so
        # unflushed writes would silently vanish).  Object updates are
        # scoped to THIS thread's working set: a same-home sibling
        # segment's in-flight writes stay tracked for its own
        # completion (statics keep the documented last-writer-wins
        # release consistency, as at completion).
        if objman is not None:
            own = set(objman.fetched_by.get(seg_thread, []))
            self.flush_segment_effects(src_worker, home,
                                       scope_home=home.node_name,
                                       only_keys=own)
            self._flush_foreign_effects(src_worker, home.node_name,
                                        seg_thread)

        base = self._baseline(home.node_name, dst_node,
                              seg_thread.namespace)
        identity = objman.home_identity if objman is not None else None
        t0 = machine.clock
        state = capture_segment(src_worker.vmti, seg_thread, nframes,
                                home_node=src_worker.node_name,
                                return_to=home.node_name,
                                baseline=base, identity=identity)
        machine.charge(self.sys.sod_capture_fixed)
        rec.capture_time = machine.clock - t0

        rec.state_bytes = state.state_bytes()
        rec.cached_statics = state.cached_statics
        rec.cached_frames = state.cached_frames
        rec.saved_bytes = state.saved_bytes
        if base is not None:
            base.stage(state)
        top_class = state.frames[-1].class_name
        cf = machine.loader.classfile(top_class)
        self._ship_class(rec, dst_node, top_class, cf)
        rec.state_transfer_time = (
            self.sys.sod_transfer_fixed
            + self.transfer_time(src_worker.node_name, dst_node,
                                 machine.cost.wire_bytes(rec.state_bytes)))
        rec.class_transfer_time = self.transfer_time(
            src_worker.node_name, dst_node,
            machine.cost.wire_bytes(rec.class_bytes))
        rec.transfer_time = rec.state_transfer_time + rec.class_transfer_time

        # Restore at the next hop, class-fetching from the *home*.
        worker, spawn = self._worker_host(dst_node, home)
        rec.worker_spawn_time = spawn
        if worker.vmti is None:
            raise MigrationError("multi-hop targets VMTI-capable nodes only")
        worker.machine.loader._classpath.setdefault(top_class, cf)
        worker.attach_object_manager()
        self._check_cross_home_statics(worker, state, home.node_name)
        worker_thread = self._restore_segment(worker, state, nframes,
                                              home, rec, base)
        self._commit_shipment(base, src_worker.node_name, dst_node,
                              rec.saved_bytes)

        # The source hop's role is over: end its epoch and drop dead
        # dirty-tracking so locally served requests regain fast dispatch
        # (objects it created stay on its heap for on-demand fetches).
        if objman is not None:
            objman.release_thread(seg_thread)
            objman.dirty = {
                k: o for k, o in objman.dirty.items()
                if objman.home_identity.get(id(o)) is not None}
            if (not objman.thread_home and not objman.dirty
                    and not objman.dirty_statics):
                objman.disarm()

        self.timeline += rec.latency
        self.migrations.append(rec)
        return worker, worker_thread, rec

    # -- segment completion ------------------------------------------------------------

    def complete_segment(self, worker: Host, worker_thread: ThreadState,
                         home: Host, home_thread: ThreadState,
                         nframes: int) -> float:
        """Ship the finished segment's results home and resume the
        residual stack there (paper section III.A: return value and
        updated data are sent back, the home pops the outdated frames
        with ForceEarlyReturn, and execution resumes).

        Returns the write-back + resume-bookkeeping duration (the caller
        continues running ``home_thread`` itself)."""
        if not worker_thread.finished:
            raise MigrationError("segment has not finished executing")
        if worker_thread.uncaught is not None:
            raise MigrationError(
                f"segment died with uncaught "
                f"{worker_thread.uncaught.class_name}")
        objman = worker.objman
        if objman is None:
            raise MigrationError("worker has no object manager")
        t0 = worker.machine.clock
        # Scope the message to this segment's home: a worker serving
        # several concurrent segments must not ship another home's
        # dirty objects (their oids are meaningless to this server).
        message, nbytes = objman.build_writeback(worker_thread.result,
                                                 home_node=home.node_name)
        worker.machine.charge(worker.machine.cost.serialize_cost(nbytes))
        wb_serialize = worker.machine.clock - t0
        wire = self.transfer_time(worker.node_name, home.node_name,
                                  worker.machine.cost.wire_bytes(nbytes))

        # Multi-hop chains: dirty copies owned by an *intermediate* hop
        # (the segment faulted objects created on the node it re-offloaded
        # from) must flush to that owner — their oids mean nothing to the
        # completion home's server.
        extra = self._flush_foreign_effects(worker, home.node_name,
                                            worker_thread)

        t0 = home.machine.clock
        home.machine.charge(home.machine.cost.deserialize_cost(nbytes))
        value = home.server.apply_writeback(
            message["updates"], message["elem_updates"],
            message["static_updates"], message["graph"], message["return"])
        self._refresh_static_ledger(home, worker.node_name,
                                    message["static_updates"])
        if home.vmti is not None:
            for _ in range(nframes - 1):
                home.vmti.pop_frame(home_thread)
            home.vmti.force_early_return(home_thread, value)
        else:  # pragma: no cover - home always has VMTI in our experiments
            for _ in range(nframes - 1):
                home_thread.frames.pop()
            home_thread.frames.pop()
            if home_thread.frames:
                home_thread.frames[-1].stack.append(value)
            else:
                home_thread.finished = True
                home_thread.result = value
        apply_time = home.machine.clock - t0
        objman.clear_dirty(home.node_name)
        objman.release_thread(worker_thread)
        if (not objman.thread_home and not objman.dirty
                and not objman.dirty_statics):
            # No segment epoch left on this worker (thread_home tracks
            # every restored-and-unreleased segment, including ones
            # that have not faulted anything yet): drop the write
            # barrier so locally served requests regain fast dispatch
            # (the next restore re-arms it via attach_object_manager).
            objman.disarm()

        dt = wb_serialize + wire + apply_time
        self.timeline += dt
        return dt + extra

    def _static_fallback(self, worker: Host, home: Host,
                         base: Optional[CaptureBaseline]):
        """Self-heal service for mismatched delta markers: fetch the
        static's true value from the home's matching namespace (one
        small round trip on the worker's clock) and re-stamp the
        ledger — the worker physically holds the value afterwards,
        whatever else the restore does."""
        if base is None:
            return None
        led = base.led
        ns = base.ns

        def fetch(cname: str, fname: str) -> Any:
            from repro.migration.state import decode_value
            from repro.vm.classloader import Namespace
            from repro.vm.values import LOC_STATIC
            ldr = home.machine.namespace(ns, create=False)
            if ldr is None:
                # The home never materialized this namespace: nothing
                # ever wrote its cells there, so the paper defaults are
                # the true values — read them through a *transient*
                # (unregistered) view rather than creating an empty
                # namespace on the home as a side effect.
                ldr = Namespace(home.machine.loader, ns)
            cls = ldr.load(cname).find_static_home(fname)
            enc, b = encode_value(cls.statics[fname], home.node_name)
            worker.machine.charge_raw(
                self.rtt(worker.node_name, home.node_name, 64, b))
            led.record((cname, fname), enc, ns)
            return decode_value(enc, (LOC_STATIC, cname, fname))

        return fetch

    @staticmethod
    def _rehydrate_frames(state: CapturedState,
                          base: Optional[CaptureBaseline]) -> None:
        """Replace delta-capture :class:`FrameMarker`\\ s with the
        destination ledger's retained activation records (digest-
        verified) so the restore drivers only see full frames.  Runs
        *after* transfer pricing — the whole point is that markers,
        not frames, crossed the wire."""
        for i, f in enumerate(state.frames):
            if not isinstance(f, FrameMarker):
                continue
            rec = base.frame_record(state.thread_name, i) \
                if base is not None else None
            if rec is None or frame_fingerprint(rec) != f.fp:
                raise MigrationError(
                    f"frame marker {i} of {state.thread_name} does not "
                    f"match the retained record (ledger out of sync)")
            state.frames[i] = rec

    def _restore_segment(self, worker: Host, state: CapturedState,
                         nframes: int, home: Host,
                         rec: MigrationRecord,
                         base: Optional[CaptureBaseline]) -> ThreadState:
        """Shared VMTI restore tail: cost charges, the breakpoint-dance
        restore (with delta-marker fallback wired to ``home``), epoch
        registration, and ``rec.restore_time``."""
        self._rehydrate_frames(state, base)
        if state.namespace is not None:
            self._ns_home[state.namespace] = home.node_name
            self.note_namespace_site(state.namespace, worker.node_name)
            self.note_namespace_site(state.namespace, home.node_name)
        t0 = worker.machine.clock
        worker.machine.charge(self.sys.sod_restore_fixed
                              + self.sys.sod_restore_per_frame * nframes)
        driver = RestoreDriver(
            worker.machine, worker.vmti, state,
            static_fallback=self._static_fallback(worker, home, base))
        worker_thread = driver.restore(run_after=False)
        if worker.objman is not None:
            worker.objman.register_thread_home(
                worker_thread, home.node_name, self._static_classes(state))
        rec.restore_time = worker.machine.clock - t0
        return worker_thread

    def _flush_foreign_effects(self, worker: Host, exclude: str,
                               thread: ThreadState) -> float:
        """Flush ``thread``'s dirty objects owned by homes *other than*
        ``exclude`` back to their owners (multi-hop chains fault — and
        may write — objects created on intermediate hops; those writes
        must not be lost when the segment completes or moves on).

        Scoped to the identities ``thread`` itself faulted: a sibling
        segment's in-flight writes stay untouched — flushing them early
        would publish partial state its own completion (or abandonment)
        is supposed to govern."""
        objman = worker.objman
        if objman is None or not objman.dirty:
            return 0.0
        thread_keys = set(objman.fetched_by.get(thread, []))
        if not thread_keys:
            return 0.0
        by_home: Dict[str, set] = {}
        for o in objman.dirty.values():
            ident = objman.home_identity.get(id(o))
            if (ident is not None and ident[1] != exclude
                    and ident in thread_keys):
                by_home.setdefault(ident[1], set()).add(ident)
        dt = 0.0
        for other in sorted(by_home):
            other_host = self.hosts.get(other)
            if other_host is not None:
                dt += self.flush_segment_effects(worker, other_host,
                                                 scope_home=other,
                                                 only_keys=by_home[other])
        return dt

    def _refresh_static_ledger(self, home: Host, worker_node: str,
                               static_updates: Dict) -> None:
        """After a write-back lands, both sides agree on the written
        statics: re-stamp the (home, worker) ledger with the home's
        post-apply values so the next delta capture can elide them.
        Update keys carry the namespace whose cells were written."""
        if not self.transfer_cache or not static_updates:
            return
        led = self.ledger(home.node_name, worker_node)
        for (ns, cname, fname) in static_updates:
            cls = home.machine.namespace(ns).load(cname) \
                .find_static_home(fname)
            enc, _b = encode_value(cls.statics[fname], home.node_name)
            led.record((cname, fname), enc, ns)

    def abandon_segment(self, worker: Host,
                        worker_thread: ThreadState) -> None:
        """Discard a dead segment's worker-side state without any
        write-back (e.g. it died of an uncaught guest exception): the
        epoch is released, the home's pending static writes are dropped
        unless a sibling segment from that home is still running, and
        the write barrier disarms once the worker is idle — mirroring
        :meth:`complete_segment`'s cleanup, minus the message."""
        objman = worker.objman
        if objman is None:
            return
        home = objman.thread_home.get(worker_thread)
        if home is not None and self.transfer_cache:
            # The dead segment's static writes never shipped home: the
            # worker's cells have forked from the ledgered values, so a
            # later delta capture must re-ship them in full.  Writes
            # with no attribution are invalidated too — conservative,
            # and a forked cell must never survive as a marker.
            led = self._ledgers.get((home, worker.node_name))
            if led is not None:
                for (ns, cname, fname), (_cls, h) in \
                        objman.dirty_statics.items():
                    if h == home or h is None:
                        led.invalidate((cname, fname), ns)
        objman.release_thread(worker_thread)
        if home is not None and home not in objman.thread_home.values():
            objman.dirty_statics = {
                k: (c, h) for k, (c, h) in objman.dirty_statics.items()
                if h != home}
        # drop untracked local roots too: they are never shipped and
        # would only keep the barrier armed
        objman.dirty = {
            k: o for k, o in objman.dirty.items()
            if objman.home_identity.get(id(o)) is not None}
        if (not objman.thread_home and not objman.dirty
                and not objman.dirty_statics):
            objman.disarm()

    def resync_statics(self, worker: Host, home: Host) -> float:
        """Refresh the worker's static fields from the home's current
        values (release consistency at a hop boundary: a residual
        segment restored *before* an earlier segment finished must see
        that segment's static updates when control arrives).  Every
        class-loader namespace resyncs against the home's matching
        namespace; namespaces the home does not hold are skipped (the
        worker's cells are the only live copy — home defaults would
        clobber them)."""
        from repro.migration.state import decode_value
        from repro.vm.values import LOC_STATIC
        led = (self.ledger(home.node_name, worker.node_name)
               if self.transfer_cache else None)
        nbytes = 0
        for loader in worker.machine.loaders():
            ns = loader.tag
            if ns is not None and not home.machine.has_namespace(ns):
                continue
            home_loader = home.machine.namespace(ns)
            for cls in loader.loaded_classes().values():
                if not cls.statics:
                    continue
                try:
                    home_cls = home_loader.load(cls.name)
                except Exception:
                    continue
                for fname in cls.statics:
                    enc, b = encode_value(home_cls.find_static_home(fname)
                                          .statics[fname], home.node_name)
                    nbytes += b
                    cls.statics[fname] = decode_value(
                        enc, (LOC_STATIC, cls.name, fname))
                    if led is not None:
                        led.record((cls.name, fname), enc, ns)
        dt = self.transfer_time(home.node_name, worker.node_name,
                                nbytes + 64)
        self.timeline += dt
        return dt

    def flush_segment_effects(self, worker: Host, home: Host,
                              scope_home: Optional[str] = None,
                              only_keys: Optional[set] = None) -> float:
        """Write a worker's dirty objects/statics back to ``home`` without
        popping any frames (used by multi-hop flows before forwarding a
        value onward, so the home heap is authoritative again).

        ``scope_home`` restricts the flush to state owned by that home
        (a multi-tenant worker must not ship another home's oids);
        ``only_keys`` narrows it further to one thread's working set;
        ``None`` keeps the single-tenant flush-everything behavior."""
        objman = worker.objman
        if objman is None or (not objman.dirty and not objman.dirty_statics):
            return 0.0
        t0 = worker.machine.clock
        message, nbytes = objman.build_writeback(None, home_node=scope_home,
                                                 only_keys=only_keys)
        worker.machine.charge(worker.machine.cost.serialize_cost(nbytes))
        dt = worker.machine.clock - t0
        dt += self.transfer_time(worker.node_name, home.node_name,
                                 worker.machine.cost.wire_bytes(nbytes))
        t0 = home.machine.clock
        home.machine.charge(home.machine.cost.deserialize_cost(nbytes))
        home.server.apply_writeback(
            message["updates"], message["elem_updates"],
            message["static_updates"], message["graph"], message["return"])
        self._refresh_static_ledger(home, worker.node_name,
                                    message["static_updates"])
        dt += home.machine.clock - t0
        objman.clear_dirty(scope_home, only_keys=only_keys)
        self.timeline += dt
        return dt

    # -- one-call convenience ---------------------------------------------------------------

    def run_segment_remote(self, home: Host, thread: ThreadState,
                           dst_node: str, nframes: int = 1
                           ) -> Tuple[Any, MigrationRecord]:
        """Migrate, execute remotely to completion, return home, resume:
        the paper's Fig. 1a flow.  Returns (final result of the home
        thread, migration record)."""
        worker, worker_thread, rec = self.migrate(home, thread, dst_node,
                                                  nframes)
        self.run(worker, worker_thread)
        self.complete_segment(worker, worker_thread, home, thread, nframes)
        self.run(home, thread)
        if thread.uncaught is not None:
            raise MigrationError(
                f"home thread died: {thread.uncaught.class_name}")
        return thread.result, rec
