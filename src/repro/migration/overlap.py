"""Event-driven validation of the multi-hop overlap model.

The Fig. 1b/1c flows compute hidden latency analytically
(``min(exec_time, second_hop_latency)``).  This module rebuilds the same
schedule on the discrete-event kernel — capture is serialized on the
home CPU, transfers run concurrently on their links, execution starts
when a segment's restore completes, the value forwards when both the
first segment finishes and the second restore is done — and returns the
end-to-end makespan.  Tests assert the DES makespan matches the
analytic timeline, which keeps the cheap arithmetic honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.kernel import Environment


@dataclass(frozen=True)
class HopTiming:
    """Measured phases of one hop (from MigrationRecords + runs)."""

    capture: float
    transfer: float
    restore: float
    exec_seconds: float  # segment execution time at the destination


@dataclass(frozen=True)
class OverlapResult:
    """DES-computed schedule for a two-hop workflow."""

    makespan: float
    seg1_done: float
    seg2_ready: float
    hidden: float


def simulate_two_hop(seg1: HopTiming, seg2: HopTiming,
                     forward: float = 0.0) -> OverlapResult:
    """Schedule Fig. 1c on the event kernel.

    * captures serialize on the home CPU (seg1 first, then seg2);
    * each segment's transfer + restore pipeline runs independently;
    * segment 1 executes after its restore;
    * segment 2 starts executing when **both** its restore is done and
      segment 1's value has been forwarded.
    """
    env = Environment()
    marks = {}
    cap1_done = env.event("cap1")

    def hop1():
        yield env.timeout(seg1.capture)
        cap1_done.succeed()
        yield env.timeout(seg1.transfer)
        yield env.timeout(seg1.restore)
        yield env.timeout(seg1.exec_seconds)
        marks["seg1_done"] = env.now
        yield env.timeout(forward)
        marks["value_at_2"] = env.now

    def hop2():
        # Home CPU captures segment 2 only after segment 1's capture.
        yield cap1_done
        yield env.timeout(seg2.capture)
        yield env.timeout(seg2.transfer)
        yield env.timeout(seg2.restore)
        marks["seg2_ready"] = env.now

    def chain():
        p1 = env.process(hop1())
        p2 = env.process(hop2())
        yield env.all_of([p1, p2])
        yield env.timeout(seg2.exec_seconds)
        marks["done"] = env.now

    env.run_process(chain())
    seg1_done = marks["seg1_done"]
    seg2_ready = marks["seg2_ready"]
    hop2_latency = seg2.capture + seg2.transfer + seg2.restore
    hidden = hop2_latency - max(0.0, seg2_ready - marks["value_at_2"])
    return OverlapResult(makespan=marks["done"], seg1_done=seg1_done,
                         seg2_ready=seg2_ready,
                         hidden=max(0.0, min(hidden, hop2_latency)))


def analytic_two_hop(seg1: HopTiming, seg2: HopTiming,
                     forward: float = 0.0) -> float:
    """The closed-form makespan the workflow module's arithmetic implies:
    segment 2 starts at max(value arrival, its own readiness)."""
    value_at_2 = (seg1.capture + seg1.transfer + seg1.restore
                  + seg1.exec_seconds + forward)
    seg2_ready = (seg1.capture + seg2.capture + seg2.transfer
                  + seg2.restore)
    return max(value_at_2, seg2_ready) + seg2.exec_seconds
