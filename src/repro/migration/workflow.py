"""Flexible SOD execution flows (paper Fig. 1) and task roaming.

Three flows over the :class:`~repro.migration.sodee.SODEngine`:

* :func:`partial_return` — Fig. 1a: migrate the top segment, execute it
  remotely, return the value home, resume the residual stack there.
  (This is :meth:`SODEngine.run_segment_remote`, re-exported for
  symmetry.)
* :func:`total_migration` — Fig. 1b: migrate the top frame, then push
  the residual frames to the same destination *while the top frame
  executes*; after the top segment pops, execution continues purely
  locally at the destination.
* :func:`multi_hop` — Fig. 1c: the top segment goes to one node and the
  next segment concurrently to another; when the top segment finishes,
  its return value is forwarded to the second node (not home), hiding
  the second hop's freeze time behind the first segment's execution.

Residual segments restored at a destination are left suspended at their
re-invoke point; :func:`deliver_value` satisfies the pending call with
the arrived value using only VMTI facilities (a breakpoint-style
intercept of the re-invoked callee plus ``ForceEarlyReturn``).

Also here: :func:`roam` — autonomous task roaming across a node
itinerary (the 10-NFS-server study, section IV.C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import MigrationError
from repro.migration.capture import capture_segment, run_to_msp
from repro.migration.restore import RestoreDriver
from repro.migration.sodee import Host, MigrationRecord, SODEngine
from repro.preprocess.sizes import class_size
from repro.vm.frames import ThreadState


@dataclass
class FlowReport:
    """Timeline accounting for one flow run."""

    result: Any = None
    total_time: float = 0.0
    records: List[MigrationRecord] = field(default_factory=list)
    #: seconds of second-hop latency hidden behind first-hop execution
    hidden_latency: float = 0.0
    phases: List[Tuple[str, float]] = field(default_factory=list)

    def phase(self, name: str, dt: float) -> None:
        self.phases.append((name, dt))


def partial_return(engine: SODEngine, home: Host, thread: ThreadState,
                   dst_node: str, nframes: int = 1) -> FlowReport:
    """Fig. 1a — migrate, execute remotely, return home, resume."""
    rep = FlowReport()
    t0 = engine.timeline
    result, rec = engine.run_segment_remote(home, thread, dst_node, nframes)
    rep.result = result
    rep.records.append(rec)
    rep.total_time = engine.timeline - t0
    return rep


def _restore_residual(engine: SODEngine, home: Host, thread: ThreadState,
                      dst_node: str, nframes: int,
                      skip_top: int) -> Tuple[Host, ThreadState, MigrationRecord]:
    """Capture frames below the already-migrated top ``skip_top`` frames
    and restore them on ``dst_node``, suspended at the re-invoke point.

    Implementation note: capture reads depths ``skip_top ..
    skip_top+nframes-1`` of the *home* stack (stale top frames still
    present, as the paper's home keeps them).
    """
    if home.vmti is None:
        raise MigrationError("home lacks VMTI")
    rec = MigrationRecord(src=home.node_name, dst=dst_node, nframes=nframes)
    machine = home.machine

    # Temporarily drop the stale top frames from view for capture: the
    # residual segment's top frame must look like the thread's top.
    saved = thread.frames[len(thread.frames) - skip_top:]
    del thread.frames[len(thread.frames) - skip_top:]
    try:
        t0 = machine.clock
        # The residual's top frame is suspended at a call (not an MSP):
        # capture it as a caller so it restores to its re-invoke line.
        state = capture_segment(home.vmti, thread, nframes,
                                home_node=home.node_name,
                                top_is_caller=True)
        machine.charge(engine.sys.sod_capture_fixed)
        rec.capture_time = machine.clock - t0
    finally:
        thread.frames.extend(saved)

    rec.state_bytes = state.state_bytes()
    cf = machine.loader.classfile(state.frames[-1].class_name)
    rec.class_bytes = class_size(cf)
    rec.state_transfer_time = (engine.sys.sod_transfer_fixed
                               + engine.transfer_time(home.node_name, dst_node,
                                                      rec.state_bytes))
    rec.class_transfer_time = engine.transfer_time(home.node_name, dst_node,
                                                   rec.class_bytes)
    rec.transfer_time = rec.state_transfer_time + rec.class_transfer_time

    worker, spawn = engine._worker_host(dst_node, home)
    rec.worker_spawn_time = spawn
    worker.machine.loader._classpath.setdefault(
        state.frames[-1].class_name, cf)
    worker.attach_object_manager()
    t0 = worker.machine.clock
    worker.machine.charge(engine.sys.sod_restore_fixed
                          + engine.sys.sod_restore_per_frame * nframes)
    if worker.vmti is None:
        raise MigrationError("residual restore requires VMTI at destination")
    driver = RestoreDriver(worker.machine, worker.vmti, state)
    residual_thread = driver.restore(run_after=False)
    if worker.objman is not None:
        worker.objman.register_thread_home(residual_thread, home.node_name)
    rec.restore_time = worker.machine.clock - t0
    engine.migrations.append(rec)
    return worker, residual_thread, rec


def deliver_value(engine: SODEngine, worker: Host, residual: ThreadState,
                  value: Any) -> float:
    """Satisfy the residual segment's pending call with ``value``.

    The suspended frame re-executes its call line; the freshly created
    callee frame is intercepted and popped with ``ForceEarlyReturn`` —
    the arrived value takes the place of the call's result."""
    if worker.vmti is None:
        raise MigrationError("deliver_value requires VMTI")
    base_depth = residual.depth()
    t0 = worker.machine.clock
    status = worker.machine.run(
        residual, stop=lambda t: t.depth() > base_depth,
        max_instrs=10_000_000)
    if status != "stopped":
        raise MigrationError(f"residual did not re-invoke (status {status})")
    worker.vmti.force_early_return(residual, value)
    dt = worker.machine.clock - t0
    engine.timeline += dt
    return dt


def total_migration(engine: SODEngine, home: Host, thread: ThreadState,
                    dst_node: str, top_frames: int = 1) -> FlowReport:
    """Fig. 1b — the whole stack ends up at the destination.

    The top segment migrates first and starts executing; the residual
    frames are pushed concurrently, hiding their transfer behind the top
    segment's execution.  When the top segment finishes, its value is
    delivered locally and execution continues at the destination."""
    rep = FlowReport()
    depth = thread.depth()
    if top_frames >= depth:
        raise MigrationError("total migration needs a residual below the top")
    residual_n = depth - top_frames

    t_start = engine.timeline
    worker, top_thread, rec1 = engine.migrate(home, thread, dst_node,
                                              top_frames)
    rep.records.append(rec1)
    rep.phase("top segment migration", rec1.latency)

    # Residual push happens while the top segment executes: overlap.
    worker2, residual_thread, rec2 = _restore_residual(
        engine, home, thread, dst_node, residual_n, skip_top=top_frames)
    assert worker2 is worker
    rep.records.append(rec2)

    t0 = worker.machine.clock
    engine.run(worker, top_thread)
    exec_time = worker.machine.clock - t0
    rep.phase("top segment execution", exec_time)

    hidden = min(exec_time, rec2.latency)
    rep.hidden_latency = hidden
    engine.timeline += rec2.latency - hidden
    rep.phase("residual push (exposed part)", rec2.latency - hidden)

    if top_thread.uncaught is not None:
        raise MigrationError(
            f"top segment died: {top_thread.uncaught.class_name}")
    deliver_value(engine, worker, residual_thread, top_thread.result)
    engine.run(worker, residual_thread)
    if residual_thread.uncaught is not None:
        raise MigrationError(
            f"residual died: {residual_thread.uncaught.class_name}")
    # The process now lives at the destination; leave the home heap
    # consistent with the final state.
    engine.flush_segment_effects(worker, home)
    # The home stack is now entirely stale; discard it (total migration).
    thread.frames.clear()
    thread.finished = True
    thread.result = residual_thread.result
    rep.result = residual_thread.result
    rep.total_time = engine.timeline - t_start
    return rep


def multi_hop(engine: SODEngine, home: Host, thread: ThreadState,
              first_node: str, second_node: str,
              top_frames: int = 1,
              second_frames: Optional[int] = None) -> FlowReport:
    """Fig. 1c — distributed workflow across three nodes.

    Top segment -> ``first_node``; next segment -> ``second_node`` in
    parallel; the first segment's return value is forwarded to
    ``second_node``; whatever remains below stays home and receives the
    final value."""
    rep = FlowReport()
    depth = thread.depth()
    if second_frames is None:
        second_frames = depth - top_frames
    if top_frames + second_frames > depth:
        raise MigrationError("segments exceed stack depth")
    residual_at_home = depth - top_frames - second_frames

    t_start = engine.timeline
    worker1, top_thread, rec1 = engine.migrate(home, thread, first_node,
                                               top_frames)
    rep.records.append(rec1)

    worker2, mid_thread, rec2 = _restore_residual(
        engine, home, thread, second_node, second_frames,
        skip_top=top_frames)
    rep.records.append(rec2)

    t0 = worker1.machine.clock
    engine.run(worker1, top_thread)
    exec1 = worker1.machine.clock - t0
    rep.phase("segment-1 execution", exec1)
    if top_thread.uncaught is not None:
        raise MigrationError(
            f"segment 1 died: {top_thread.uncaught.class_name}")

    # Second-hop migration latency is hidden behind segment-1 execution.
    hidden = min(exec1, rec2.latency)
    rep.hidden_latency = hidden
    engine.timeline += rec2.latency - hidden

    # Flush segment-1 effects home and refresh the second hop's statics
    # (it restored before segment 1 ran), then forward the value
    # first-hop -> second-hop (not via home).
    engine.flush_segment_effects(worker1, home)
    engine.resync_statics(worker2, home)
    fwd = engine.transfer_time(first_node, second_node, 64)
    engine.timeline += fwd
    rep.phase("value forward", fwd)
    deliver_value(engine, worker2, mid_thread, top_thread.result)
    engine.run(worker2, mid_thread)
    if mid_thread.uncaught is not None:
        raise MigrationError(
            f"segment 2 died: {mid_thread.uncaught.class_name}")
    engine.flush_segment_effects(worker2, home)

    if residual_at_home > 0:
        # Pop the stale migrated frames at home, deliver the value there.
        stale = top_frames + second_frames
        if home.vmti is None:
            raise MigrationError("home lacks VMTI")
        for _ in range(stale - 1):
            home.vmti.pop_frame(thread)
        engine.timeline += engine.transfer_time(second_node,
                                                home.node_name, 64)
        home.vmti.force_early_return(thread, mid_thread.result)
        engine.run(home, thread)
        rep.result = thread.result
    else:
        thread.frames.clear()
        thread.finished = True
        thread.result = mid_thread.result
        rep.result = mid_thread.result
    rep.total_time = engine.timeline - t_start
    return rep


def scatter(engine: SODEngine, home: Host,
            tasks: Sequence[Tuple[ThreadState, str, int]],
            ) -> FlowReport:
    """Scatter a team of stack segments to many nodes concurrently
    (paper section II.B: "migrating a team of thread stack segments to
    all connected and trusted mobile clients").

    ``tasks`` is a list of ``(thread, dst_node, nframes)`` with every
    thread already stopped at its migration point.  Captures serialize
    on the home CPU; the branches then proceed concurrently, so the
    elapsed time is the serial capture prefix plus the slowest branch
    (transfer + restore + execution + write-back).  Results are gathered
    in task order into ``report.result`` (a list).

    Correctness is exactly per-branch ``run_segment_remote``; only the
    timeline accounting models the fan-out overlap.
    """
    rep = FlowReport()
    t_start = engine.timeline
    branch_times: List[float] = []
    results: List[Any] = []
    capture_serial = 0.0
    for thread, dst_node, nframes in tasks:
        t0 = engine.timeline
        worker, worker_thread, rec = engine.migrate(home, thread, dst_node,
                                                    nframes)
        engine.run(worker, worker_thread)
        engine.complete_segment(worker, worker_thread, home, thread,
                                nframes)
        engine.run(home, thread)
        if thread.uncaught is not None:
            raise MigrationError(
                f"scatter branch to {dst_node} died: "
                f"{thread.uncaught.class_name}")
        branch_total = engine.timeline - t0
        # Undo the serial accounting: branches overlap after capture.
        engine.timeline = t0
        capture_serial += rec.capture_time
        branch_times.append(branch_total - rec.capture_time)
        rep.records.append(rec)
        results.append(thread.result)
    slowest = max(branch_times) if branch_times else 0.0
    engine.timeline = t_start + capture_serial + slowest
    rep.hidden_latency = sum(branch_times) - slowest
    rep.result = results
    rep.total_time = engine.timeline - t_start
    rep.phase("serial captures", capture_serial)
    rep.phase("slowest branch", slowest)
    return rep


def roam(engine: SODEngine, home: Host, thread: ThreadState,
         itinerary: Callable[[ThreadState], Optional[str]],
         trigger: Callable[[ThreadState], bool],
         nframes: int = 1,
         max_hops: int = 1000) -> FlowReport:
    """Autonomous task roaming: whenever ``trigger`` fires, ship the top
    segment to the node chosen by ``itinerary`` (None = stay), execute
    there, return home, and continue until the program completes.

    Used by the roaming study (section IV.C): the itinerary sends each
    file-search call to the node hosting the file."""
    rep = FlowReport()
    t_start = engine.timeline
    hops = 0
    while True:
        status = engine.run(home, thread, stop=trigger)
        if status == "finished":
            break
        if hops >= max_hops:
            raise MigrationError("roaming exceeded max hops")
        dst = itinerary(thread)
        if dst is None or dst == home.node_name:
            # Forced progress: execute one instruction locally, re-arm.
            engine.run(home, thread, max_instrs=1)
            continue
        # Migrate, execute remotely, return the value home — but leave
        # the home thread suspended so the next trigger can fire.
        worker, worker_thread, rec = engine.migrate(home, thread, dst,
                                                    nframes)
        engine.run(worker, worker_thread)
        engine.complete_segment(worker, worker_thread, home, thread,
                                nframes)
        rep.records.append(rec)
        hops += 1
        if thread.finished:
            break
    if thread.uncaught is not None:
        raise MigrationError(f"roaming thread died: "
                             f"{thread.uncaught.class_name}")
    rep.result = thread.result
    rep.total_time = engine.timeline - t_start
    return rep
