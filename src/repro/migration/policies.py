"""Migration policies and triggers.

The paper leaves "migration, prefetching and task distribution policies"
as the tuning surface of SOD (section VI); this module supplies the ones
its scenarios need:

* trigger combinators (:func:`on_method_entry`, :func:`on_depth`,
  :func:`after_instrs`) used by the experiment harnesses to decide
  *when* to freeze;
* :class:`LocalityPolicy` — migrate a data-access method to the node
  hosting its data (the text-search / roaming studies);
* :class:`SpeculativeCloudPolicy` — the section II.B scenario: "if
  exceptions like ClassNotFoundException or OutOfMemoryException are
  thrown, the exception handler will capture the execution state and
  rocket it into the Cloud".  We trigger *just before* a doomed
  allocation (the allocation would exceed the device's RAM), freeze at
  the MSP, and rocket the active segment to the cloud node where the
  retry succeeds.
* :class:`BandwidthAwarePolicy` — size segments against a link budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.bytecode import opcodes as op
from repro.errors import MigrationError
from repro.migration.segments import max_migratable, segment_bytes_estimate
from repro.migration.sodee import Host, SODEngine
from repro.vm.frames import ThreadState

Trigger = Callable[[ThreadState], bool]


def rewind_to_line_start(thread: ThreadState) -> None:
    """Rewind the top frame to the start of its current line and clear
    the (transient) operand stack.  Legal on flattened code: re-executing
    a line region from its start only re-runs loads/stores of temps that
    are still live (call groups are their own regions, so no call is ever
    re-executed)."""
    frame = thread.frames[-1]
    frame.pc = frame.code.line_start(frame.pc)
    frame.stack.clear()


# -- triggers ----------------------------------------------------------------

def on_method_entry(class_name: str, method: str) -> Trigger:
    """Fires when the named method becomes the top frame at its entry."""

    def trig(t: ThreadState) -> bool:
        f = t.frames[-1]
        return (f.code.class_name == class_name and f.code.name == method
                and f.pc == 0)

    return trig


def on_depth(depth: int) -> Trigger:
    """Fires when the stack reaches ``depth`` frames."""
    return lambda t: t.depth() >= depth


def after_instrs(machine, budget: int) -> Trigger:
    """Fires once the machine has executed ``budget`` more instructions."""
    start = machine.instr_count
    return lambda t: machine.instr_count - start >= budget


def after_clock(machine, budget: float) -> Trigger:
    """Fires once the machine's virtual clock has advanced ``budget``
    simulated seconds (the serve scheduler's clock-pressure offload
    trigger is built on the same idea at node granularity)."""
    start = machine.clock
    return lambda t: machine.clock - start >= budget


def any_of(*triggers: Trigger) -> Trigger:
    """Fires when any sub-trigger fires."""
    return lambda t: any(trig(t) for trig in triggers)


# -- locality ------------------------------------------------------------------

@dataclass
class LocalityPolicy:
    """Choose the migration destination by data locality: given the file
    path the top frame is about to read (extracted by ``path_of``), send
    the segment to the node hosting that file."""

    engine: SODEngine
    path_of: Callable[[ThreadState], Optional[str]]

    def destination(self, thread: ThreadState) -> Optional[str]:
        path = self.path_of(thread)
        if path is None or not self.engine.cluster.fs.exists(path):
            return None
        return self.engine.cluster.fs.stat(path).host


# -- speculative cloud retry ---------------------------------------------------------

class SpeculativeCloudPolicy:
    """Run on a resource-poor device; when the next allocation would blow
    the device's RAM (the OutOfMemoryError the paper's try-catch wrapper
    would catch), freeze and migrate the active segment to the cloud.

    Usage::

        policy = SpeculativeCloudPolicy(engine, device_host, "cloud")
        result = policy.run(thread)
    """

    def __init__(self, engine: SODEngine, device: Host, cloud_node: str,
                 headroom_bytes: int = 0, nframes: Optional[int] = None):
        self.engine = engine
        self.device = device
        self.cloud_node = cloud_node
        self.headroom = headroom_bytes
        self.nframes = nframes
        #: set when a migration was triggered (for tests/reporting)
        self.migrated = False

    def _doomed(self, thread: ThreadState) -> bool:
        frame = thread.frames[-1]
        ins = frame.code.instrs[frame.pc]
        if ins.op != op.NEWARR:
            return False
        if not frame.stack:
            return False
        length = frame.stack[-1]
        if not isinstance(length, int):
            return False
        node = self.device.machine.node
        if node is None:
            return False
        need = length * (ins.b or 8)
        budget = node.spec.ram_bytes - node.ram_used - self.headroom
        return need > budget

    def run(self, thread: ThreadState) -> Any:
        """Execute to completion, rocketing to the cloud if doomed."""
        status = self.engine.run(self.device, thread, stop=self._doomed)
        if status == "finished":
            if thread.uncaught is not None:
                raise MigrationError(
                    f"device thread died: {thread.uncaught.class_name}")
            return thread.result
        # Rewind to the line start (the paper's try-block wrapper catches
        # the OutOfMemoryError before the line commits; re-executing a
        # line from its start is safe by the flattening invariants) and
        # rocket the migratable segment to the cloud.
        rewind_to_line_start(thread)
        self.migrated = True
        nframes = self.nframes or max_migratable(thread)
        nframes = max(1, min(nframes, thread.depth()))
        if nframes == thread.depth():
            from repro.migration.workflow import total_migration
            if nframes > 1:
                rep = total_migration(self.engine, self.device, thread,
                                      self.cloud_node,
                                      top_frames=1)
                return rep.result
        result, _rec = self.engine.run_segment_remote(
            self.device, thread, self.cloud_node, nframes)
        return result


# -- bandwidth-aware segment sizing ----------------------------------------------------

@dataclass
class BandwidthAwarePolicy:
    """Pick the largest top segment whose estimated transfer time fits a
    latency budget on the (possibly slow) link to ``dst``."""

    engine: SODEngine
    dst: str
    latency_budget: float

    def choose_nframes(self, src: str, thread: ThreadState) -> int:
        best = 1
        for n in range(1, max_migratable(thread) + 1):
            est = segment_bytes_estimate(thread, n)
            t = self.engine.transfer_time(src, self.dst, est)
            if t <= self.latency_budget:
                best = n
            else:
                break
        return best
