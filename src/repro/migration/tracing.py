"""Structured event tracing for the SOD runtime.

Attach a :class:`Tracer` to a :class:`~repro.migration.sodee.SODEngine`
to record every migration, object fault, write-back and class fetch with
simulated timestamps — the observability layer a production middleware
would ship with, and what the examples use to print timelines.

Events are plain records; :func:`format_timeline` renders them as an
aligned textual trace::

    t=  0.000 ms  migrate       node0 -> node1  frames=1 state=187B
    t=  9.601 ms  fault         node1 <- node0  oid=3 bytes=24
    t= 11.205 ms  writeback     node1 -> node0  bytes=88
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.migration.sodee import Host, MigrationRecord, SODEngine
from repro.vm.values import RemoteRef


@dataclass(frozen=True)
class TraceEvent:
    """One runtime event on the engine timeline."""

    at: float          # engine timeline, seconds
    kind: str          # migrate / fault / prefetch / writeback / class
    src: str
    dst: str
    detail: Dict[str, Any]


class Tracer:
    """Engine instrumentation: wraps the hot entry points and records
    events.  Attach with :meth:`attach`; detach restores the originals.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._engine: Optional[SODEngine] = None
        self._orig: Dict[str, Callable] = {}

    # -- attachment --------------------------------------------------------

    def attach(self, engine: SODEngine) -> "Tracer":
        """Instrument ``engine`` (idempotent per tracer)."""
        if self._engine is not None:
            raise ValueError("tracer already attached")
        self._engine = engine
        self._orig["migrate"] = engine.migrate
        self._orig["fetch_remote"] = engine.fetch_remote
        self._orig["complete_segment"] = engine.complete_segment

        def migrate(src_host, thread, dst_node, nframes=1,
                    run_after_restore=False):
            out = self._orig["migrate"](src_host, thread, dst_node, nframes,
                                        run_after_restore)
            rec: MigrationRecord = out[2]
            self._push("migrate", rec.src, rec.dst, frames=rec.nframes,
                       state_bytes=rec.state_bytes,
                       latency_ms=rec.latency * 1e3)
            return out

        def fetch_remote(requester: str, ref: RemoteRef):
            payload, nbytes, owner = self._orig["fetch_remote"](requester,
                                                                ref)
            # Faults happen mid-run; the engine timeline syncs at run
            # boundaries, so carry the requester's own clock too.
            req = engine.hosts.get(requester)
            vm_clock = req.machine.clock if req is not None else 0.0
            self._push("fault", owner, requester, oid=ref.home_oid,
                       bytes=nbytes, vm_clock_ms=vm_clock * 1e3)
            return payload, nbytes, owner

        def complete_segment(worker, worker_thread, home, home_thread,
                             nframes):
            dt = self._orig["complete_segment"](worker, worker_thread,
                                                home, home_thread, nframes)
            self._push("writeback", worker.node_name, home.node_name,
                       seconds=dt)
            return dt

        engine.migrate = migrate  # type: ignore[method-assign]
        engine.fetch_remote = fetch_remote  # type: ignore[method-assign]
        engine.complete_segment = complete_segment  # type: ignore[method-assign]
        return self

    def detach(self) -> None:
        """Restore the engine's original entry points."""
        if self._engine is None:
            return
        for name, fn in self._orig.items():
            setattr(self._engine, name, fn)
        self._engine = None
        self._orig.clear()

    # -- recording -----------------------------------------------------------

    def _push(self, kind: str, src: str, dst: str, **detail: Any) -> None:
        assert self._engine is not None
        self.events.append(TraceEvent(self._engine.timeline, kind, src,
                                      dst, detail))

    # -- queries ----------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Event-kind histogram."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out


def format_timeline(tracer: Tracer) -> str:
    """Render a tracer's events as an aligned textual timeline."""
    lines = []
    for e in tracer.events:
        detail = " ".join(f"{k}={_fmt(v)}" for k, v in e.detail.items())
        lines.append(f"t={e.at * 1e3:10.3f} ms  {e.kind:<10s} "
                     f"{e.src} -> {e.dst}  {detail}")
    return "\n".join(lines)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)
