"""Captured state and the value/object wire encoding.

Encoding rules (host-level tagged tuples; byte counts are modeled from
nominal sizes, see DESIGN.md):

* primitives travel by value;
* a heap object referenced from captured state travels as a *descriptor*
  ``("@ref", oid, home_node)`` — the defining property of SOD: the heap
  stays home and objects fault in on demand;
* object *payloads* (a fetched object, a write-back graph, an eager
  process copy) travel as shallow records ``("I", class, {field: enc})``
  / ``("A", kind, elem_bytes, [enc...])`` or as deep graphs with a
  side-table, cycle-safe.

A :class:`CapturedState` is what the migration manager sends: one
:class:`CapturedFrame` per stack frame (outermost of the segment first),
captured statics, the names of classes referenced, the home/return node,
and the modeled byte size.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MigrationError
from repro.vm.heap import Heap
from repro.vm.objects import VMArray, VMInstance, OBJECT_HEADER_BYTES
from repro.vm.values import (LOC_ELEM, LOC_FIELD, LOC_LOCAL, LOC_STATIC,
                             RemoteRef)

REF_DESC_BYTES = 12
PRIM_BYTES = 8

#: wire size of a delta-capture "unchanged" marker: the 4-byte content
#: digest the receiver validates its cell against, plus framing (the
#: (class, field) key rides the statics table's existing entry header)
CACHED_MARKER_BYTES = 6

#: marker tag for statics elided from a delta capture (the destination
#: already holds the fingerprinted value — see repro.migration.sodee's
#: TransferLedger)
CACHED_TAG = "@cached"

#: wire size of a delta-capture frame marker: the 4-byte content digest
#: of the elided activation record plus framing (tag + stack index)
FRAME_MARKER_BYTES = 10


def fingerprint(enc: Any) -> int:
    """Deterministic content hash of an *encoded* value or payload.

    Drives the content-addressed transfer caches: two encodings are
    "the same bytes on the wire" iff their fingerprints match.  CRC32
    over the canonical repr is stable across processes (unlike
    ``hash()``, which salts strings), cheap, and adequate for a
    simulation — collisions would need adversarial guest programs.
    """
    return zlib.crc32(repr(enc).encode("utf-8", "backslashreplace"))


def is_cached_marker(enc: Any) -> bool:
    """True if ``enc`` is a delta-capture "destination already has this
    value" marker rather than a real encoded value."""
    return isinstance(enc, tuple) and len(enc) == 2 and enc[0] == CACHED_TAG


# -- value encoding ------------------------------------------------------------

def encode_value(v: Any, home_node: str,
                 identity: Optional[Dict[int, Tuple[int, str]]] = None
                 ) -> Tuple[Any, int]:
    """Encode one captured value (SOD-style: objects become descriptors).

    Returns (encoded, modeled_bytes).  A :class:`RemoteRef` captured at an
    intermediate hop is *forwarded* — it keeps pointing at the node that
    actually owns the object (this is what makes task roaming cheap: no
    proxy chains build up).  ``identity`` (``id(obj) -> (home_oid,
    home_node)``, a worker object manager's fetch map) extends the same
    forwarding to *fetched copies*: a multi-hop capture on a worker must
    re-encode a locally-materialized copy as a reference to the object's
    true home, not to the worker's private oid space.
    """
    if isinstance(v, (VMInstance, VMArray)):
        if identity is not None:
            ident = identity.get(id(v))
            if ident is not None:
                return ("@ref", ident[0], ident[1]), REF_DESC_BYTES
        return ("@ref", v.oid, home_node), REF_DESC_BYTES
    if isinstance(v, RemoteRef):
        return ("@ref", v.home_oid, v.home_node), REF_DESC_BYTES
    if isinstance(v, str):
        return v, 4 + len(v)
    return v, PRIM_BYTES


def decode_value(enc: Any, loc: Optional[Tuple] = None) -> Any:
    """Decode one captured value at the destination: descriptors become
    provenance-carrying :class:`RemoteRef` sentinels bound to ``loc``."""
    if isinstance(enc, tuple) and enc and enc[0] == "@ref":
        return RemoteRef(enc[1], enc[2], loc)
    return enc


@dataclass
class CapturedFrame:
    """One captured activation record.

    ``pc`` is the restoration pc (a migration-safe line start: the top
    frame's own MSP, or for suspended callers the start of the line
    containing the in-progress call, which the restored frame will
    re-execute to re-invoke its callee — paper Fig. 4b).  ``raw_pc``
    keeps the exact suspension point for residual-value delivery.
    """

    class_name: str
    method_name: str
    pc: int
    raw_pc: int
    locals: List[Any] = field(default_factory=list)  # encoded values

    def state_bytes(self) -> int:
        total = 40  # method ref + pcs + header
        for enc in self.locals:
            total += _enc_bytes(enc)
        return total


@dataclass
class FrameMarker:
    """A frame elided from a delta capture: the destination's transfer
    ledger retains the identical activation record from the previous
    shipment of this thread, so only the content digest rides the wire
    (the stack-frame analogue of the ``@cached`` statics marker).

    Only an unchanged *deep prefix* of the re-offloaded stack is ever
    elided — a suspended caller that has not run since the last
    shipment — and never the top frame.  The engine rehydrates markers
    from the ledger before restore, so the restore drivers only ever
    see full :class:`CapturedFrame` records.
    """

    fp: int

    def state_bytes(self) -> int:
        return FRAME_MARKER_BYTES


def frame_fingerprint(frame: CapturedFrame) -> int:
    """Content digest of one captured activation record (method
    identity, both pcs, and every encoded local)."""
    return fingerprint((frame.class_name, frame.method_name, frame.pc,
                        frame.raw_pc, tuple(frame.locals)))


def _enc_bytes(enc: Any) -> int:
    if isinstance(enc, tuple) and enc and enc[0] == "@ref":
        return REF_DESC_BYTES
    if is_cached_marker(enc):
        return CACHED_MARKER_BYTES
    if isinstance(enc, str):
        return 4 + len(enc)
    return PRIM_BYTES


@dataclass
class CapturedState:
    """The unit a SOD migration ships (stack segment + statics + class
    manifest).  ``return_to`` names the node holding the residual stack
    (where the segment's eventual return value must be delivered).

    ``namespace`` is the class-loader namespace tag the segment's
    thread executes in (``None`` = root): the destination links the
    segment's classes — and restores its statics — inside the matching
    namespace on the worker machine, so two segments of the same
    program never share static cells."""

    frames: List[CapturedFrame]
    statics: Dict[Tuple[str, str], Any] = field(default_factory=dict)
    class_names: List[str] = field(default_factory=list)
    home_node: str = ""
    return_to: str = ""
    thread_name: str = "main"
    namespace: Optional[str] = None
    #: statics elided as ``@cached`` markers / frames elided as
    #: :class:`FrameMarker`\ s by a delta capture, and the payload bytes
    #: those elisions kept off the wire (vs. a full capture)
    cached_statics: int = 0
    cached_frames: int = 0
    saved_bytes: int = 0

    def nframes(self) -> int:
        return len(self.frames)

    def state_bytes(self) -> int:
        """Modeled serialized size of the captured state."""
        total = 64
        if self.namespace:
            total += 4 + len(self.namespace)
        for f in self.frames:
            total += f.state_bytes()
        for _key, enc in self.statics.items():
            total += 16 + _enc_bytes(enc)
        total += sum(4 + len(n) for n in self.class_names)
        return total


# -- object payloads (fetch / write-back / eager copy) ---------------------------

def encode_object_shallow(obj: Any, owner_node: str,
                          identity: Optional[Dict[int, Tuple[int, str]]]
                          = None) -> Tuple[Any, int]:
    """Encode one heap object for an on-demand fetch: primitive fields by
    value, reference fields as descriptors (they will fault in turn).
    ``identity`` forwards fetched copies to their true home (see
    :func:`encode_value`) — a worker re-encoding its own copy of a home
    object uses it to reproduce the home's encoding bit-for-bit."""
    if isinstance(obj, VMInstance):
        fields: Dict[str, Any] = {}
        nbytes = OBJECT_HEADER_BYTES
        for name, v in obj.fields.items():
            enc, b = encode_value(v, owner_node, identity)
            fields[name] = enc
            nbytes += b
        return ("I", obj.class_name, fields), nbytes
    if isinstance(obj, VMArray):
        elems: List[Any] = []
        nbytes = OBJECT_HEADER_BYTES
        if obj.kind == "ref":
            for v in obj.data:
                enc, b = encode_value(v, owner_node, identity)
                elems.append(enc)
                nbytes += b
        else:
            elems = list(obj.data)
            nbytes += len(obj.data) * obj.nominal_elem_bytes
        return ("A", obj.kind, obj.nominal_elem_bytes, elems), nbytes
    raise MigrationError(f"cannot encode {type(obj).__name__}")


class GraphEncoder:
    """Deep, cycle-safe object-graph encoder.

    ``boundary`` decides per object whether it is *inlined* into the
    graph or referenced as ``("@ref", oid, node)``:

    * eager process migration (G-JavaMPI) inlines everything;
    * SOD write-back inlines only worker-created objects and references
      home-owned objects by their home oid.
    """

    def __init__(self, this_node: str,
                 home_identity: Optional[Dict[int, Tuple[int, str]]] = None,
                 eager: bool = False):
        self.this_node = this_node
        #: id(obj) -> (home_oid, home_node) for fetched copies
        self.home_identity = home_identity or {}
        self.eager = eager
        self.graph: Dict[int, Any] = {}
        self._memo: Dict[int, int] = {}
        self._next = 0
        self.nbytes = 0

    def encode(self, v: Any) -> Any:
        """Encode one value, growing the shared graph table."""
        if isinstance(v, RemoteRef):
            self.nbytes += REF_DESC_BYTES
            return ("@ref", v.home_oid, v.home_node)
        if isinstance(v, (VMInstance, VMArray)):
            if not self.eager:
                ident = self.home_identity.get(id(v))
                if ident is not None:
                    self.nbytes += REF_DESC_BYTES
                    return ("@ref", ident[0], ident[1])
            return self._encode_inline(v)
        if isinstance(v, str):
            self.nbytes += 4 + len(v)
            return v
        self.nbytes += PRIM_BYTES
        return v

    def _encode_inline(self, obj: Any) -> Any:
        key = id(obj)
        if key in self._memo:
            return ("@g", self._memo[key])
        gid = self._next
        self._next += 1
        self._memo[key] = gid
        self.graph[gid] = None  # reserve (cycles)
        self.nbytes += OBJECT_HEADER_BYTES
        if isinstance(obj, VMInstance):
            fields = {n: self.encode(fv) for n, fv in obj.fields.items()}
            self.graph[gid] = ("I", obj.class_name, fields, obj.oid)
        else:
            if obj.kind == "ref":
                elems = [self.encode(e) for e in obj.data]
            else:
                elems = list(obj.data)
                self.nbytes += len(obj.data) * obj.nominal_elem_bytes
            self.graph[gid] = ("A", obj.kind, obj.nominal_elem_bytes, elems,
                               obj.oid)
        return ("@g", gid)


class GraphDecoder:
    """Decode a graph produced by :class:`GraphEncoder` into a heap.

    ``("@ref", oid, node)`` entries pointing at *this* node resolve to
    live heap objects; entries pointing elsewhere become
    :class:`RemoteRef` sentinels (bound to field/element locations so
    they can fault in later).
    """

    def __init__(self, heap: Heap, loader: Any, this_node: str,
                 graph: Dict[int, Any]):
        self.heap = heap
        self.loader = loader
        self.this_node = this_node
        self.graph = graph
        self._made: Dict[int, Any] = {}
        #: (gid -> decoded object) for adoption bookkeeping by callers
        self.decoded: Dict[int, Any] = self._made

    def decode(self, enc: Any, loc: Optional[Tuple] = None) -> Any:
        if isinstance(enc, tuple) and enc:
            tag = enc[0]
            if tag == "@ref":
                _t, oid, node = enc
                if node == self.this_node:
                    return self.heap.get(oid)
                return RemoteRef(oid, node, loc)
            if tag == "@g":
                return self._materialize(enc[1])
        return enc

    def _materialize(self, gid: int) -> Any:
        if gid in self._made:
            return self._made[gid]
        rec = self.graph[gid]
        if rec[0] == "I":
            _t, class_name, fields, _oid = rec
            cls = self.loader.load(class_name)
            obj = self.heap.new_instance(cls)
            self._made[gid] = obj
            for name, fenc in fields.items():
                obj.fields[name] = self.decode(fenc, (LOC_FIELD, obj, name))
            return obj
        _t, kind, elem_bytes, elems, _oid = rec
        arr = self.heap.new_array(kind, len(elems), elem_bytes)
        self._made[gid] = arr
        if kind == "ref":
            for i, eenc in enumerate(elems):
                arr.data[i] = self.decode(eenc, (LOC_ELEM, arr, i))
        else:
            arr.data[:] = elems
        return arr
