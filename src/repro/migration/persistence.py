"""Checkpoint persistence: captured state to/from JSON.

SOD's captured segments are small and self-describing, which makes them
natural *checkpoints*: a frozen task can be written to disk (or a queue)
and resumed later on any node that can reach the home heap.  This module
serializes :class:`~repro.migration.state.CapturedState` to a stable
JSON document and back — the groundwork for the paper's "task
distribution policies" future work (section VI) where segments outlive
transport connections.

Encoding notes:

* the wire encodings produced by capture are already transport-shaped
  (primitives + ``("@ref", oid, node)`` descriptors); JSON needs only a
  tag for tuples vs lists and for non-finite floats;
* documents carry a format version for forward compatibility.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Tuple

from repro.errors import MigrationError
from repro.migration.state import CapturedFrame, CapturedState

FORMAT_VERSION = 1


def _enc(v: Any) -> Any:
    """Encode one captured value into JSON-safe form."""
    if isinstance(v, tuple):
        return {"@t": [_enc(x) for x in v]}
    if isinstance(v, float):
        if math.isnan(v) or math.isinf(v):
            return {"@f": repr(v)}
        return v
    if isinstance(v, (int, str, bool)) or v is None:
        return v
    raise MigrationError(
        f"value {v!r} is not serializable (was the state captured with "
        f"encode_value?)")


def _dec(v: Any) -> Any:
    """Inverse of :func:`_enc`."""
    if isinstance(v, dict):
        if "@t" in v:
            return tuple(_dec(x) for x in v["@t"])
        if "@f" in v:
            return float(v["@f"])
        raise MigrationError(f"bad checkpoint value {v!r}")
    return v


def state_to_json(state: CapturedState, indent: int | None = None) -> str:
    """Serialize a captured segment to a JSON checkpoint document."""
    doc = {
        "format": FORMAT_VERSION,
        "home_node": state.home_node,
        "return_to": state.return_to,
        "thread_name": state.thread_name,
        "namespace": state.namespace,
        "class_names": list(state.class_names),
        "statics": [
            {"class": c, "field": f, "value": _enc(v)}
            for (c, f), v in sorted(state.statics.items())
        ],
        "frames": [
            {
                "class": fr.class_name,
                "method": fr.method_name,
                "pc": fr.pc,
                "raw_pc": fr.raw_pc,
                "locals": [_enc(v) for v in fr.locals],
            }
            for fr in state.frames
        ],
    }
    return json.dumps(doc, indent=indent)


def state_from_json(text: str) -> CapturedState:
    """Rebuild a :class:`CapturedState` from a checkpoint document."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        raise MigrationError(f"bad checkpoint JSON: {e}") from e
    if doc.get("format") != FORMAT_VERSION:
        raise MigrationError(
            f"unsupported checkpoint format {doc.get('format')!r}")
    frames = [
        CapturedFrame(
            class_name=f["class"], method_name=f["method"],
            pc=int(f["pc"]), raw_pc=int(f["raw_pc"]),
            locals=[_dec(v) for v in f["locals"]],
        )
        for f in doc["frames"]
    ]
    if not frames:
        raise MigrationError("checkpoint has no frames")
    statics: Dict[Tuple[str, str], Any] = {
        (s["class"], s["field"]): _dec(s["value"]) for s in doc["statics"]
    }
    return CapturedState(
        frames=frames, statics=statics,
        class_names=list(doc["class_names"]),
        home_node=doc["home_node"], return_to=doc["return_to"],
        thread_name=doc.get("thread_name", "main"),
        namespace=doc.get("namespace"))


def save_checkpoint(state: CapturedState, path: str) -> None:
    """Write a checkpoint file."""
    with open(path, "w") as fh:
        fh.write(state_to_json(state, indent=2))


def load_checkpoint(path: str) -> CapturedState:
    """Read a checkpoint file."""
    with open(path) as fh:
        return state_from_json(fh.read())
