"""Stack segmentation planning.

"One segment should logically map to one agglomerated task" (paper
section II.A).  This module validates and plans how a thread's stack is
chopped into segments: which frames travel, which stay pinned at home
(frames holding sockets, section IV.D), and how a multi-hop plan (Fig.
1c) partitions the remaining frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import MigrationError
from repro.vm.frames import Frame, ThreadState


@dataclass(frozen=True)
class SegmentPlan:
    """A partition of the top of a stack into orderly segments.

    ``sizes[0]`` is the size of the *top* segment (migrated first /
    furthest); the remaining frames below ``sum(sizes)`` stay at home.
    """

    sizes: tuple

    @property
    def total(self) -> int:
        return sum(self.sizes)


def pin_frames(thread: ThreadState,
               predicate: Callable[[Frame], bool]) -> int:
    """Pin every frame matching ``predicate`` (e.g. frames of methods
    known to hold socket connections).  Returns the number pinned."""
    count = 0
    for f in thread.frames:
        if predicate(f):
            f.pinned = True
            count += 1
    return count


def pin_methods(thread: ThreadState, qualnames: Sequence[str]) -> int:
    """Pin frames whose method qualname is in ``qualnames``."""
    names = set(qualnames)
    return pin_frames(thread, lambda f: f.code.qualname in names)


def max_migratable(thread: ThreadState) -> int:
    """The largest top segment that avoids all pinned frames."""
    n = 0
    for f in reversed(thread.frames):
        if f.pinned:
            break
        n += 1
    return n


def plan(thread: ThreadState, sizes: Sequence[int]) -> SegmentPlan:
    """Validate a segmentation of the current stack.

    Raises :class:`MigrationError` if the plan is empty, exceeds the
    stack, or would migrate a pinned frame.
    """
    sizes = tuple(int(s) for s in sizes)
    if not sizes or any(s < 1 for s in sizes):
        raise MigrationError(f"bad segment sizes {sizes}")
    total = sum(sizes)
    if total > thread.depth():
        raise MigrationError(
            f"plan covers {total} frames but stack depth is {thread.depth()}")
    if total > max_migratable(thread):
        raise MigrationError(
            f"plan covers {total} frames but only {max_migratable(thread)} "
            f"are migratable (pinned frames)")
    return SegmentPlan(sizes=sizes)


def segment_bytes_estimate(thread: ThreadState, nframes: int) -> int:
    """Cheap upper-bound estimate of a segment's captured size, used by
    bandwidth-aware policies to size segments before committing."""
    total = 64
    for f in list(reversed(thread.frames))[:nframes]:
        total += 40 + 12 * f.code.max_locals
    return total
