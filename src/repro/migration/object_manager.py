"""Object managers: on-demand heap fetch and write-back (section III.C).

Two halves, as in the paper's architecture (Fig. 2):

* :class:`HomeObjectServer` — the home-side agent that "listens to object
  requests, retrieves object references needed via JVMTI and invokes
  Java serialization to send the object to the requester", and later
  applies write-back.
* :class:`WorkerObjectManager` — the destination-side half: binds the
  ``ObjMan.*`` natives (``resolve`` for the fault-handler path,
  ``check``/``checkStatic`` for the status-check baseline), maintains
  the cache of fetched objects (home-oid -> local copy, preserving
  identity), the dirty set for write-back, and charges
  serialize + network + deserialize costs per miss.

``fetch_service`` decouples the transport: the engine supplies a callable
``(requester_node, ref) -> (payload, nbytes, owner_node)``; the worker
manager charges the round-trip against its own clock (synchronous RPC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from collections import OrderedDict

from repro.errors import MigrationError
from repro.migration.state import (GraphDecoder, GraphEncoder,
                                   encode_object_shallow, fingerprint)
from repro.vm.machine import Machine
from repro.vm.objects import VMArray, VMClass, VMInstance
from repro.vm.values import (LOC_ELEM, LOC_FIELD, LOC_LOCAL, LOC_STATIC,
                             RemoteRef)


class HomeObjectServer:
    """Home-side object service for one machine."""

    def __init__(self, machine: Machine, node_name: str):
        self.machine = machine
        self.node_name = node_name
        #: objects served, for experiment reporting
        self.requests = 0
        #: when this node is also a worker (multi-hop chains), the
        #: worker object manager's ``home_identity`` — served payloads
        #: then forward nested *fetched copies* to their true home
        #: instead of mislabeling them with this node's oid space
        self.identity: Optional[Dict[int, Tuple[int, str]]] = None

    def fetch(self, oid: int) -> Tuple[Any, int]:
        """Serialize one home object (shallow).  Returns (payload, bytes).
        Serving a dangling oid is a host bug; serving an oid whose value
        is itself remote forwards the descriptor."""
        self.requests += 1
        obj = self.machine.heap.get(oid)
        payload, nbytes = encode_object_shallow(obj, self.node_name,
                                                self.identity)
        # Home-side serialization cost happens while the requester waits;
        # charge it on the home machine's clock as well (it burns CPU).
        self.machine.charge(self.machine.cost.serialize_cost(nbytes))
        return payload, nbytes

    def fetch_if_changed(self, oid: int,
                         fp: int) -> Tuple[Optional[Any], int]:
        """Conditional fetch: serialize one home object and compare its
        content fingerprint against ``fp`` (the digest of the payload
        the requester already holds from an earlier fetch).  Returns
        ``(None, nbytes)`` on a match — the requester's retained copy is
        still current, so only a tiny validation reply crosses the wire
        — or ``(payload, nbytes)`` when the object changed.

        The home still pays the serialization CPU either way (it had to
        encode the object to hash it); what a match saves is the wire
        time and the requester-side deserialization — the dominant cost
        for large objects on GigE/WAN links."""
        self.requests += 1
        obj = self.machine.heap.get(oid)
        payload, nbytes = encode_object_shallow(obj, self.node_name,
                                                self.identity)
        self.machine.charge(self.machine.cost.serialize_cost(nbytes))
        if fingerprint(payload) == fp:
            return None, nbytes
        return payload, nbytes

    def apply_writeback(self, updates: Dict[int, Dict[str, Any]],
                        elem_updates: Dict[int, List[Any]],
                        static_updates: Dict[Tuple[Optional[str], str, str],
                                             Any],
                        graph: Dict[int, Any],
                        return_enc: Any) -> Any:
        """Apply a completed segment's effects: dirty object fields, dirty
        array contents, dirty statics (keyed (namespace, class, field) —
        each lands in the matching class-loader namespace), plus the
        (possibly object-valued) return value.  Returns the decoded
        return value."""
        decoder = GraphDecoder(self.machine.heap, self.machine.loader,
                               self.node_name, graph)
        for oid, fields in updates.items():
            obj = self.machine.heap.get(oid)
            if not isinstance(obj, VMInstance):
                raise MigrationError(f"write-back of fields to non-instance #{oid}")
            for name, enc in fields.items():
                obj.fields[name] = decoder.decode(enc, (LOC_FIELD, obj, name))
        for oid, elems in elem_updates.items():
            arr = self.machine.heap.get(oid)
            if not isinstance(arr, VMArray):
                raise MigrationError(f"write-back of elements to non-array #{oid}")
            for i, enc in enumerate(elems):
                arr.data[i] = decoder.decode(enc, (LOC_ELEM, arr, i))
        for (ns, cname, fname), enc in static_updates.items():
            cls = self.machine.namespace(ns).load(cname) \
                .find_static_home(fname)
            cls.statics[fname] = decoder.decode(enc, (LOC_STATIC, cname, fname))
        return decoder.decode(return_enc)


FetchService = Callable[[str, RemoteRef], Tuple[Any, int, str]]


@dataclass
class FaultStats:
    """Counters for the object-faulting path (Table III analysis)."""

    faults: int = 0
    prefetched: int = 0
    fetched_bytes: int = 0
    fetch_seconds: float = 0.0
    #: conditional re-fetches of retained copies, and how many came
    #: back "still current" (only a validation reply crossed the wire)
    revalidations: int = 0
    reval_hits: int = 0


class WorkerObjectManager:
    """Destination-side object manager for one worker machine."""

    def __init__(self, machine: Machine, node_name: str,
                 fetch_service: FetchService,
                 rtt_service: Callable[[str, str, int, int], float]):
        self.machine = machine
        self.node_name = node_name
        self.fetch_service = fetch_service
        self.rtt_service = rtt_service
        #: home-oid@node -> local fetched copy (identity-preserving)
        self.cache: Dict[Tuple[int, str], Any] = {}
        #: id(local obj) -> (home_oid, home_node)
        self.home_identity: Dict[int, Tuple[int, str]] = {}
        #: dirty fetched objects (by id) and locally created dirty roots
        self.dirty: Dict[int, Any] = {}
        #: (namespace, class, field) -> (worker-side class, attributed
        #: home node or None).  The namespace tag comes from the written
        #: VMClass itself (cells live per namespace, so one class name
        #: can be dirty in several namespaces at once); the home
        #: attribution lets a multi-tenant write-back ship each home its
        #: own static updates.  None home means the write came from a
        #: thread with no registered home (a local request, or a
        #: single-tenant flow that never registers).
        self.dirty_statics: Dict[Tuple[Optional[str], str, str],
                                 Tuple[VMClass, Optional[str]]] = {}
        #: cache keys fetched on behalf of each running segment thread,
        #: so its consistency epoch can be released at completion (the
        #: serve scheduler re-offloads threads whose home state has
        #: moved on; serving them stale cached copies would fork state)
        self.fetched_by: Dict[Any, List[Tuple[int, str]]] = {}
        #: clean copies demoted (not evicted) when their segment epoch
        #: ended (their payload fingerprint stays in ``_payload_fp``).
        #: A later segment's fault on the same key revalidates the copy
        #: with a tiny conditional round trip instead of re-shipping the
        #: payload.  LRU-bounded; unused unless the engine installs
        #: ``reval_service``.
        self.retained: "OrderedDict[Tuple[int, str], Any]" = OrderedDict()
        self.retain_limit = 512
        #: conditional-fetch transport installed by the engine:
        #: (requester, ref, fp) -> (payload | None, nbytes, owner)
        self.reval_service: Optional[
            Callable[[str, RemoteRef, int],
                     Tuple[Optional[Any], int, str]]] = None
        #: home-key -> fingerprint of the payload as last received
        self._payload_fp: Dict[Tuple[int, str], int] = {}
        #: keys whose copies were written back since their fetch: their
        #: stored fingerprint is stale and needs a re-encode at release
        #: (clean copies keep the fetch-time digest — no re-encode)
        self._flushed_keys: set = set()
        #: restored segment thread -> the home node its state came from
        self.thread_home: Dict[Any, str] = {}
        #: static-bearing classes each segment thread's state touches
        self.thread_statics: Dict[Any, frozenset] = {}
        #: the one bound barrier (bound methods are created per access;
        #: pinning it makes arm/disarm identity checks possible)
        self._barrier = self._on_write
        self.stats = FaultStats()
        #: pluggable prefetching scheme (see repro.migration.prefetch)
        from repro.migration.prefetch import NoPrefetch
        self.prefetcher = NoPrefetch()
        #: fixed home-agent service cost per request (JVMTI object lookup
        #: + serializer setup); charged once per demand fetch and once
        #: per prefetch *batch* — batching is what prefetching buys.
        self.service_fixed = 0.0
        machine.on_write = self._barrier

    # -- dirty tracking ----------------------------------------------------

    def _on_write(self, target: Any) -> None:
        if isinstance(target, VMClass):
            home = self.thread_home.get(
                getattr(self.machine, "current_thread", None))
            ns = target.namespace
            for fname in target.statics:
                self.dirty_statics[(ns, target.name, fname)] = (target, home)
        else:
            self.dirty[id(target)] = target

    def register_thread_home(self, thread: Any, home_node: str,
                             static_classes: frozenset = frozenset()
                             ) -> None:
        """Record which home a restored segment thread came from (so
        its static writes are attributed and written back to *that*
        home) and which static-bearing classes its state carries (so
        a later cross-home segment sharing them is refused)."""
        self.thread_home[thread] = home_node
        if static_classes:
            self.thread_statics[thread] = static_classes

    def arm(self) -> None:
        """(Re)install the write barrier on the machine."""
        self.machine.on_write = self._barrier

    def disarm(self) -> None:
        """Remove the write barrier (only safe with no active segment
        epochs and nothing dirty: tracking writes for nobody just
        forces every thread on this machine onto the hook-aware loop)."""
        if self.machine.on_write is self._barrier:
            self.machine.on_write = None

    # -- fetching ---------------------------------------------------------------

    def fetch(self, ref: RemoteRef) -> Any:
        """Bring a remote object into the local heap (cached)."""
        key = (ref.home_oid, ref.home_node)
        hit = self.cache.get(key)
        if hit is not None:
            # A cache hit still joins the faulting thread's epoch:
            # releasing another thread must not evict (and de-identify)
            # a copy this thread is actively using.
            self._track_fetch(key)
            return hit
        if self.reval_service is not None and key in self.retained:
            return self._revalidate(ref, key)
        t0 = self.machine.clock
        payload, nbytes, owner = self.fetch_service(self.node_name, ref)
        self.machine.charge_raw(self.service_fixed)
        wire = self.machine.cost.wire_bytes(nbytes)
        self.machine.charge_raw(self.rtt_service(self.node_name, owner, 64, wire))
        self.machine.charge(self.machine.cost.deserialize_cost(nbytes))
        obj = self._decode(payload)
        self.cache[key] = obj
        self.home_identity[id(obj)] = (ref.home_oid, ref.home_node)
        if self.reval_service is not None:
            self._payload_fp[key] = fingerprint(payload)
        self._track_fetch(key)
        self.stats.faults += 1
        self.stats.fetched_bytes += nbytes
        self.prefetcher.record(ref, obj)
        extra = self.prefetcher.after_fetch(self, ref, obj)
        if extra:
            self._prefetch_batch(extra)
        self.stats.fetch_seconds += self.machine.clock - t0
        return obj

    def _revalidate(self, ref: RemoteRef, key: Tuple[int, str]) -> Any:
        """Fault on an object whose clean copy survives from an ended
        segment epoch: ask the home whether the copy is still current
        (one small conditional round trip).  A hit re-adopts the
        retained copy — the payload never re-rides the wire; a miss
        receives the fresh payload in the validation reply."""
        obj = self.retained.pop(key)
        fp = self._payload_fp.get(key, -1)
        t0 = self.machine.clock
        payload, nbytes, owner = self.reval_service(self.node_name, ref, fp)
        self.machine.charge_raw(self.service_fixed)
        self.stats.revalidations += 1
        fresh = payload is not None
        if not fresh:
            # Still current: request + tiny validation reply only.  (No
            # prefetcher hooks — neighbors are likely retained too, and
            # batch-prefetching would re-ship copies revalidation exists
            # to keep off the wire.)
            self.machine.charge_raw(
                self.rtt_service(self.node_name, owner, 72, 16))
            self.stats.reval_hits += 1
        else:
            wire = self.machine.cost.wire_bytes(nbytes)
            self.machine.charge_raw(
                self.rtt_service(self.node_name, owner, 72, wire))
            self.machine.charge(self.machine.cost.deserialize_cost(nbytes))
            obj = self._decode(payload)
            self._payload_fp[key] = fingerprint(payload)
            self.stats.faults += 1
            self.stats.fetched_bytes += nbytes
        self.cache[key] = obj
        self.home_identity[id(obj)] = key
        self._track_fetch(key)
        if fresh:
            # A changed payload is a normal fault: keep the prefetcher's
            # view of the access stream intact.
            self.prefetcher.record(ref, obj)
            extra = self.prefetcher.after_fetch(self, ref, obj)
            if extra:
                self._prefetch_batch(extra)
        self.stats.fetch_seconds += self.machine.clock - t0
        return obj

    def _prefetch_batch(self, refs: List[RemoteRef]) -> None:
        """Fetch a batch of prefetch candidates in one round trip.

        The home agent walks the requested closure server-side (up to the
        prefetcher's ``batch_rounds`` levels), so the worker pays a
        single service cost + RTT with the combined payload — this is
        exactly what prefetching buys over demand faulting."""
        rounds = getattr(self.prefetcher, "batch_rounds", 1)
        by_owner: Dict[str, List[RemoteRef]] = {}
        for r in refs:
            by_owner.setdefault(r.home_node, []).append(r)
        for owner, group in by_owner.items():
            total = 0
            count = 0
            frontier = list(group)
            level = 0
            while frontier and level < rounds:
                next_frontier: List[RemoteRef] = []
                for r in frontier:
                    key = (r.home_oid, r.home_node)
                    if key in self.cache:
                        continue
                    payload, nbytes, _o = self.fetch_service(self.node_name, r)
                    total += nbytes
                    obj = self._decode(payload)
                    self.cache[key] = obj
                    self.home_identity[id(obj)] = key
                    self._track_fetch(key)
                    count += 1
                    next_frontier.extend(
                        x for x in self.prefetcher.after_fetch(self, r, obj)
                        if x.home_node == owner)
                frontier = next_frontier
                level += 1
            if count:
                self.machine.charge_raw(self.service_fixed)
                wire = self.machine.cost.wire_bytes(total)
                self.machine.charge_raw(
                    self.rtt_service(self.node_name, owner, 96, wire))
                self.machine.charge(self.machine.cost.deserialize_cost(total))
                self.stats.prefetched += count
                self.stats.fetched_bytes += total

    def _track_fetch(self, key: Tuple[int, str]) -> None:
        """Attribute a fetched cache entry to the thread that faulted."""
        thread = getattr(self.machine, "current_thread", None)
        if thread is not None:
            self.fetched_by.setdefault(thread, []).append(key)

    def release_thread(self, thread: Any) -> None:
        """End one segment thread's consistency epoch: forget the home
        copies fetched on its behalf.  The home resumes (and mutates)
        those objects the moment the segment completes, so a later
        segment of the same program must re-fetch rather than reuse the
        now-stale cache.  Copies shared with a still-running segment
        (it hit the cache on the same key) stay — evicting them would
        also drop the identity its write-back needs.

        With ``reval_service`` installed, *clean* copies are demoted to
        the retained cache instead of dropped: a later fault on the
        same key revalidates them against the home (content-addressed)
        rather than re-shipping the payload.  Dirty copies — writes the
        worker never shipped home (an abandoned segment) — are always
        dropped: their content has forked from the fingerprint."""
        keys = self.fetched_by.pop(thread, [])
        self.thread_home.pop(thread, None)
        self.thread_statics.pop(thread, None)
        if not keys:
            return
        still_used = set()
        for other in self.fetched_by.values():
            still_used.update(other)
        evict = [k for k in keys if k not in still_used]
        if self.reval_service is not None:
            # Refresh *stale* fingerprints before identities are
            # dropped: a written-back copy's content now matches the
            # home, and the identity-aware re-encoding reproduces the
            # home's payload (nested fetched copies forward to their
            # home oids).  Copies never written back keep their
            # fetch-time digest — no re-encode on the completion path.
            for key in evict:
                if key not in self._flushed_keys:
                    continue
                self._flushed_keys.discard(key)
                obj = self.cache.get(key)
                if obj is None or id(obj) in self.dirty:
                    continue
                payload, _n = encode_object_shallow(obj, key[1],
                                                    self.home_identity)
                self._payload_fp[key] = fingerprint(payload)
        for key in evict:
            obj = self.cache.pop(key, None)
            if obj is None:
                continue
            self.home_identity.pop(id(obj), None)
            was_dirty = self.dirty.pop(id(obj), None) is not None
            if (self.reval_service is not None and not was_dirty
                    and key in self._payload_fp):
                self.retained[key] = obj
                self.retained.move_to_end(key)
                while len(self.retained) > self.retain_limit:
                    old, _o = self.retained.popitem(last=False)
                    self._payload_fp.pop(old, None)
            else:
                self.retained.pop(key, None)
                self._payload_fp.pop(key, None)

    def _decode(self, payload: Any) -> Any:
        from repro.migration.state import decode_value
        if payload[0] == "I":
            _t, class_name, fields = payload
            cls = self.machine.loader.load(class_name)
            obj = self.machine.heap.new_instance(cls)
            for name, enc in fields.items():
                obj.fields[name] = decode_value(enc, (LOC_FIELD, obj, name))
            return obj
        _t, kind, elem_bytes, elems = payload
        arr = self.machine.heap.new_array(kind, len(elems), elem_bytes)
        if kind == "ref":
            for i, enc in enumerate(elems):
                arr.data[i] = decode_value(enc, (LOC_ELEM, arr, i))
        else:
            arr.data[:] = elems
        return arr

    def _patch(self, ref: RemoteRef, obj: Any) -> None:
        """Write the fetched object into the faulting location."""
        loc = ref.loc
        if loc is None:
            return
        kind = loc[0]
        if kind == LOC_LOCAL:
            _k, frame, slot = loc
            frame.locals[slot] = obj
        elif kind == LOC_FIELD:
            _k, owner, name = loc
            owner.fields[name] = obj
        elif kind == LOC_STATIC:
            # Faults happen mid-run, when machine.loader IS the
            # faulting thread's namespace: the patch lands in the
            # cells the thread is actually reading.
            _k, cname, fname = loc
            cls = self.machine.loader.load(cname).find_static_home(fname)
            cls.statics[fname] = obj
        elif kind == LOC_ELEM:
            _k, arr, idx = loc
            arr.data[idx] = obj
        else:  # pragma: no cover
            raise MigrationError(f"bad location {loc!r}")

    # -- natives -------------------------------------------------------------------

    def install_natives(self) -> None:
        """Bind ``ObjMan.*``: the fault-handler path and the status-check
        baseline path."""

        def resolve(machine: Machine, args: List[Any]) -> Any:
            exc, recv_slot = args[0], args[1]
            ref = exc.host_payload
            if not isinstance(ref, RemoteRef):  # pragma: no cover
                raise MigrationError("ObjMan.resolve on a non-fault NPE")
            obj = self.fetch(ref)
            # Patch the hardcoded receiver slot (the temp the re-executed
            # group reads — guarantees forward progress, paper III.C),
            # but only if it actually holds this sentinel: for native
            # sites the faulting value may be a later argument, in which
            # case the origin patch below is what re-execution reads.
            frame = machine.current_thread.frames[-1]
            if 0 <= recv_slot < len(frame.locals):
                cur = frame.locals[recv_slot]
                if isinstance(cur, RemoteRef) and (
                        cur is ref or (cur.home_oid == ref.home_oid
                                       and cur.home_node == ref.home_node)):
                    frame.locals[recv_slot] = obj
            # ...and the sentinel's origin, so the local heap converges.
            self._patch(ref, obj)
            return None

        def check(machine: Machine, args: List[Any]) -> Any:
            v = args[0]
            if isinstance(v, RemoteRef):
                obj = self.fetch(v)
                self._patch(v, obj)
                return obj
            return v

        def check_static(machine: Machine, args: List[Any]) -> Any:
            cname, fname = args[0], args[1]
            cls = self.machine.loader.load(cname).find_static_home(fname)
            v = cls.statics[fname]
            if isinstance(v, RemoteRef):
                obj = self.fetch(v)
                cls.statics[fname] = obj
                return obj
            return v

        self.machine.natives.register("ObjMan.resolve", resolve)
        self.machine.natives.register("ObjMan.check", check)
        self.machine.natives.register("ObjMan.checkStatic", check_static)

    # -- write-back ----------------------------------------------------------------

    def build_writeback(self, return_value: Any,
                        home_node: Optional[str] = None,
                        only_keys: Optional[set] = None
                        ) -> Tuple[Dict[str, Any], int]:
        """Assemble the completion message: return value + dirty objects
        + dirty statics.  Returns (message, modeled_bytes).

        ``home_node`` scopes the message to objects fetched *from that
        home*: a worker machine serving several concurrent segments
        (the elastic scheduler) must not ship another home's dirty
        objects — their oids mean nothing to this home's server and
        would be applied to unrelated objects.  ``None`` keeps the
        single-tenant behavior (ship everything).

        ``only_keys`` (a set of ``(oid, node)`` identities) narrows the
        object updates further — to one *thread's* working set.  A
        multi-hop completion flushes the chain segment's own
        intermediate-hop objects without sweeping up another running
        segment's in-flight writes."""
        enc = GraphEncoder(self.node_name, self.home_identity, eager=False)
        updates: Dict[int, Dict[str, Any]] = {}
        elem_updates: Dict[int, List[Any]] = {}
        for obj in self.dirty.values():
            ident = self.home_identity.get(id(obj))
            if ident is None:
                continue  # locally created: travels inline if reachable
            oid, node = ident
            if home_node is not None and node != home_node:
                continue  # another segment's working set
            if only_keys is not None and ident not in only_keys:
                continue  # another thread's working set
            if isinstance(obj, VMInstance):
                updates[oid] = {n: enc.encode(v) for n, v in obj.fields.items()}
            else:
                if obj.kind == "ref":
                    elem_updates[oid] = [enc.encode(v) for v in obj.data]
                else:
                    elem_updates[oid] = list(obj.data)
                    enc.nbytes += len(obj.data) * obj.nominal_elem_bytes
        # Statics: a scoped write-back ships only writes attributed to
        # that home (every restored segment thread is registered, so an
        # unattributed home=None write comes from a *local* thread and
        # must never ride a foreign segment's completion).  Unscoped
        # write-backs (single-tenant flushes) keep shipping everything.
        # Keys are (namespace, class, field): the home applies each
        # update inside the namespace whose cells were written.
        static_updates = {
            key: enc.encode(cls.statics[key[2]])
            for key, (cls, home) in self.dirty_statics.items()
            if home_node is None or home == home_node
        }
        return_enc = enc.encode(return_value)
        message = {
            "updates": updates,
            "elem_updates": elem_updates,
            "static_updates": static_updates,
            "graph": enc.graph,
            "return": return_enc,
        }
        return message, enc.nbytes + 64

    def clear_dirty(self, home_node: Optional[str] = None,
                    only_keys: Optional[set] = None) -> None:
        """Forget the dirty set after a successful write-back, so later
        flushes (multi-hop roaming) only ship fresh changes.  With
        ``home_node``, forget only what that write-back shipped: objects
        homed there plus locally created roots; another segment's dirty
        objects stay tracked for its own completion.  ``only_keys``
        mirrors :meth:`build_writeback`'s thread-scoped narrowing."""
        if home_node is None:
            for obj in self.dirty.values():
                ident = self.home_identity.get(id(obj))
                if ident is not None:
                    self._flushed_keys.add(ident)
            self.dirty.clear()
            self.dirty_statics.clear()
            return

        def shipped(obj) -> bool:
            ident = self.home_identity.get(id(obj))
            if ident is None:
                return True  # local root: never tracked past a flush
            if ident[1] != home_node:
                return False
            if only_keys is None or ident in only_keys:
                self._flushed_keys.add(ident)
                return True
            return False

        self.dirty = {
            key: obj for key, obj in self.dirty.items() if not shipped(obj)
        }
        # drop exactly what the scoped write-back shipped
        self.dirty_statics = {
            key: (cls, home)
            for key, (cls, home) in self.dirty_statics.items()
            if home != home_node
        }
