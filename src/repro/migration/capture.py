"""State capture via the debug interface (paper section III.B.1, Fig. 3).

The capture loop is the paper's Fig. 3 pseudocode: for each of the top
``nframes`` frames, read the method, the pc, and every local slot via
costed VMTI calls (``GetLocal<Type>`` at ~30 µs dominates).  Object
references are left behind as descriptors; primitive statics of the
classes referenced by the segment travel by value, object statics as
descriptors (which is why a 64 MB static array does not slow SOD down,
section IV.A).

Capture is only legal at a migration-safe point; :func:`run_to_msp`
resumes execution until the next one ("If the execution is suspended at
locations other than a MSP, it will be resumed immediately until hitting
an upcoming one").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import MigrationError
from repro.migration.state import (CACHED_TAG, CapturedFrame, CapturedState,
                                   _enc_bytes, CACHED_MARKER_BYTES,
                                   FRAME_MARKER_BYTES, FrameMarker,
                                   encode_value, fingerprint,
                                   frame_fingerprint)
from repro.vm.frames import ThreadState
from repro.vm.machine import Machine
from repro.vm.vmti import VMTI


def run_to_msp(machine: Machine, thread: ThreadState,
               max_instrs: int = 1_000_000) -> None:
    """Resume ``thread`` until its top frame sits at a migration-safe
    point (no-op if it already does)."""

    def at_msp(t: ThreadState) -> bool:
        f = t.frames[-1]
        return f.pc in f.code.msps

    status = machine.run(thread, stop=at_msp, max_instrs=max_instrs)
    if status == "finished":
        raise MigrationError("thread finished before reaching an MSP")
    if status == "limit":
        raise MigrationError(
            f"no MSP reached within {max_instrs} instructions "
            f"(was the code preprocessed?)")


def capture_segment(vmti: VMTI, thread: ThreadState, nframes: int,
                    home_node: str,
                    return_to: Optional[str] = None,
                    top_is_caller: bool = False,
                    baseline=None,
                    identity=None) -> CapturedState:
    """Capture the top ``nframes`` frames of ``thread`` (which must be
    suspended at an MSP) into a :class:`CapturedState`.

    ``baseline`` (a :class:`repro.migration.sodee.TransferLedger`, or
    anything with a ``statics`` fingerprint dict) turns this into a
    *delta* capture: a static whose encoded value fingerprint matches
    what the destination already holds is shipped as a
    :data:`~repro.migration.state.CACHED_MARKER_BYTES`-sized
    ``@cached`` marker instead of by value — the destination verifies
    the digest against its current cell and keeps the (identical)
    copy.  ``baseline=None`` is the from-scratch full capture, which
    doubles as the delta property-test oracle.

    ``identity`` maps ``id(obj) -> (home_oid, home_node)`` for fetched
    copies on an intermediate hop (see :func:`encode_value`).

    Raises :class:`MigrationError` if the segment would include a pinned
    frame (paper section IV.D: frames holding socket connections are
    pinned down) or if the top frame is not at an MSP.
    """
    machine = vmti.machine
    if nframes < 1 or nframes > len(thread.frames):
        raise MigrationError(
            f"bad segment size {nframes} (stack depth {len(thread.frames)})")
    top = thread.frames[-1]
    if not top_is_caller and top.pc not in top.code.msps:
        raise MigrationError(
            f"top frame {top.code.qualname} at bci {top.pc} is not at an MSP")
    for depth in range(nframes):
        if thread.frames[len(thread.frames) - 1 - depth].pinned:
            raise MigrationError(
                f"segment includes a pinned frame at depth {depth}")

    frames: List[CapturedFrame] = []
    class_names: Set[str] = set()
    # Walk from the segment's outermost frame to the top (restore order).
    for depth in reversed(range(nframes)):
        method_id, pc = vmti.get_frame_location(thread, depth)
        frame = thread.frames[len(thread.frames) - 1 - depth]
        code = frame.code
        if depth == 0 and not top_is_caller:
            restore_pc = pc
        else:
            # Suspended at a call: restart from the call's line start so
            # the restored frame re-invokes its callee (Fig. 4b).
            restore_pc = code.line_start(max(0, pc - 1))
        locals_enc: List[object] = []
        table = vmti.get_local_variable_table(thread, depth)
        for slot, _name in table:
            value = vmti.get_local(thread, depth, slot)
            enc, _bytes = encode_value(value, home_node, identity)
            locals_enc.append(enc)
        frames.append(CapturedFrame(
            class_name=code.class_name, method_name=code.name,
            pc=restore_pc, raw_pc=pc, locals=locals_enc))
        class_names.add(code.class_name)

    # Statics of the classes the segment references (superclass chains
    # included): primitives by value, objects as descriptors — read
    # from the thread's own class-loader namespace, whose cells are the
    # segment's static state.  Against a baseline ledger, values the
    # destination already holds collapse to fingerprint markers (delta
    # snapshot).
    # Delta frames (stack analogue of the statics delta): an unchanged
    # deep prefix of a re-shipped stack rides as fingerprint markers.
    # The ledger retains the previous shipment's records outermost-
    # first; a frame is elided only while every frame beneath it also
    # matched (a changed deep frame invalidates everything above it —
    # restore order would otherwise splice stale callers under fresh
    # callees).  The top frame always ships in full: it is the one
    # frame guaranteed to have advanced, and the restore drivers key
    # class shipment off it.
    cached_frames = 0
    frame_saved = 0
    frame_fps = getattr(baseline, "frame_fps", None)
    if frame_fps is not None and nframes > 1:
        known_fps = frame_fps(thread.name)
        staged = []
        out_frames: List[object] = []
        in_prefix = True
        for i, fr in enumerate(frames):
            fp = frame_fingerprint(fr)
            staged.append((fp, fr))
            if (in_prefix and i < len(frames) - 1 and i < len(known_fps)
                    and known_fps[i] == fp
                    and fr.state_bytes() > FRAME_MARKER_BYTES):
                out_frames.append(FrameMarker(fp))
                cached_frames += 1
                frame_saved += fr.state_bytes() - FRAME_MARKER_BYTES
            else:
                in_prefix = False
                out_frames.append(fr)
        baseline.stage_frames(thread.name, staged)
        frames = out_frames

    known = baseline.statics if baseline is not None else None
    loader = machine.namespace(thread.namespace)
    statics: Dict[Tuple[str, str], object] = {}
    cached = 0
    saved = 0
    for cname in sorted(class_names):
        cls = loader.load(cname)
        walk = cls
        while walk is not None:
            for fname in walk.statics:
                value = vmti.get_static(walk.name, fname,
                                        namespace=thread.namespace)
                enc, _b = encode_value(value, home_node, identity)
                key = (walk.name, fname)
                # Object-valued statics ship as 12-byte descriptors and
                # re-arm the destination's fault path; a marker could
                # pin a stale released copy in the cell — never
                # delta-cache them.  And elide only when the marker is
                # actually smaller than the value it replaces.
                if known is not None and not (
                        isinstance(enc, tuple) and enc
                        and enc[0] == "@ref") \
                        and _enc_bytes(enc) > CACHED_MARKER_BYTES:
                    fp = fingerprint(enc)
                    if known.get(key) == fp:
                        statics[key] = (CACHED_TAG, fp)
                        cached += 1
                        saved += max(0, _enc_bytes(enc)
                                     - CACHED_MARKER_BYTES)
                        continue
                statics[key] = enc
            walk = walk.superclass
    return CapturedState(
        frames=frames, statics=statics, class_names=sorted(class_names),
        home_node=home_node, return_to=return_to or home_node,
        thread_name=thread.name, namespace=thread.namespace,
        cached_statics=cached, cached_frames=cached_frames,
        saved_bytes=saved + frame_saved)
