"""Object prefetching schemes.

The paper handles object misses "by on-demand fetching or some
prefetching schemes" (section I).  These are the schemes:

* :class:`NoPrefetch` — pure on-demand (the paper's measured default).
* :class:`ReachablePrefetch` — when an object faults in, also fetch the
  objects reachable from its reference fields up to ``depth`` levels,
  batched into the same round trip (one RTT, combined payload).
* :class:`HistoryPrefetch` — learns (class, field) -> next-class access
  pairs across runs and piggybacks the predicted next objects.

A prefetcher is attached to a :class:`WorkerObjectManager`; the manager
calls :meth:`after_fetch` with each demand-fetched object and fetches
whatever the scheme proposes (charging the batched transfer but only one
extra round-trip's latency).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Set, Tuple

from repro.vm.objects import VMArray, VMInstance
from repro.vm.values import RemoteRef


class NoPrefetch:
    """On-demand only (default)."""

    def after_fetch(self, objman, ref: RemoteRef, obj: Any) -> List[RemoteRef]:
        return []

    def record(self, ref: RemoteRef, obj: Any) -> None:  # pragma: no cover
        pass


class ReachablePrefetch:
    """Fetch the reference-field closure of each faulted object up to
    ``depth`` levels (``depth=1``: direct fields only)."""

    def __init__(self, depth: int = 1, max_objects: int = 32):
        self.depth = depth
        self.max_objects = max_objects
        #: levels the home agent walks per prefetch round trip
        self.batch_rounds = depth

    def after_fetch(self, objman, ref: RemoteRef, obj: Any) -> List[RemoteRef]:
        out: List[RemoteRef] = []
        frontier = [(obj, 0)]
        seen: Set[int] = {id(obj)}
        while frontier and len(out) < self.max_objects:
            cur, lvl = frontier.pop(0)
            if lvl >= self.depth:
                continue
            for v in _ref_values(cur):
                if isinstance(v, RemoteRef):
                    key = (v.home_oid, v.home_node)
                    if key not in objman.cache:
                        out.append(v)
                        if len(out) >= self.max_objects:
                            break
        return out

    def record(self, ref: RemoteRef, obj: Any) -> None:
        pass


class HistoryPrefetch:
    """Predict the next faults from past fault order.

    Keeps a first-order transition table keyed by the faulted object's
    class; on a fault of class C, prefetches the remote refs among the
    object's fields whose *declared class* historically followed C."""

    def __init__(self, max_objects: int = 16):
        self.max_objects = max_objects
        self._last_class: str = ""
        self.transitions: Dict[str, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int))

    def record(self, ref: RemoteRef, obj: Any) -> None:
        cname = _class_of(obj)
        if self._last_class:
            self.transitions[self._last_class][cname] += 1
        self._last_class = cname

    def after_fetch(self, objman, ref: RemoteRef, obj: Any) -> List[RemoteRef]:
        cname = _class_of(obj)
        likely = self.transitions.get(cname)
        out: List[RemoteRef] = []
        for v in _ref_values(obj):
            if isinstance(v, RemoteRef):
                key = (v.home_oid, v.home_node)
                if key in objman.cache:
                    continue
                if likely is None or not likely:
                    continue
                out.append(v)
                if len(out) >= self.max_objects:
                    break
        return out


def _class_of(obj: Any) -> str:
    if isinstance(obj, VMInstance):
        return obj.class_name
    if isinstance(obj, VMArray):
        return f"{obj.kind}[]"
    return type(obj).__name__


def _ref_values(obj: Any) -> List[Any]:
    if isinstance(obj, VMInstance):
        return list(obj.fields.values())
    if isinstance(obj, VMArray) and obj.kind == "ref":
        return list(obj.data)
    return []
