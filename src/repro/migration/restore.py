"""State restoration at the destination (paper section III.B.2, Fig. 4b).

The :class:`RestoreDriver` replays the paper's per-frame restoration
dance using only VMTI facilities plus the injected restoration handlers:

1. arm a breakpoint at bci 0 of the segment's outermost method and
   invoke it (with empty locals — they are about to be overwritten);
2. the breakpoint fires immediately; the callback arms the breakpoint
   for the *next* frame's method and injects ``InvalidStateException``;
3. the injected handler (see :mod:`repro.preprocess.restoration`) reloads
   every local slot from the ``CapturedState`` and ``lookupswitch``-jumps
   to the saved pc;
4. the frame resumes at its call line, re-invokes its callee, whose
   breakpoint fires — repeat until the innermost frame is restored.

Captured object references come back as provenance-carrying
:class:`RemoteRef` sentinels; the first use of each faults it in through
the object manager.

On devices without VMTI (the paper's JamVM/iPhone case, section IV.D),
:func:`java_level_restore` rebuilds the frames directly — the paper's
"pure Java worker using reflection" — at a much higher per-frame cost
charged on the (slow) device CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.errors import MigrationError
from repro.migration.state import (CapturedState, decode_value,
                                   encode_value, fingerprint,
                                   is_cached_marker)
from repro.preprocess.restoration import RESTORE_EXCEPTION
from repro.vm.frames import Frame, ThreadState
from repro.vm.machine import Machine
from repro.vm.values import LOC_LOCAL, LOC_STATIC
from repro.vm.vmti import VMTI


@dataclass
class RestoreContext:
    """Shared state between the driver, the breakpoint callback and the
    ``CapturedState.*`` natives."""

    state: CapturedState
    index: int = -1           # frame record being restored
    complete: bool = False
    current_frame: Optional[Frame] = None


class RestoreDriver:
    """Rebuilds a captured segment on a worker machine.

    ``static_fallback(cname, fname) -> value`` services delta-capture
    ``@cached`` markers whose fingerprint does *not* match the worker's
    current cell (somebody forked the cell behind the ledger's back —
    e.g. a local guest thread wrote a static between segment episodes):
    the true value is fetched from the home instead of trusting the
    marker.  Without a fallback a mismatched marker is left in place
    (the pre-delta single-tenant contract)."""

    def __init__(self, machine: Machine, vmti: VMTI, state: CapturedState,
                 static_fallback: Optional[Callable[[str, str], Any]]
                 = None):
        self.machine = machine
        self.vmti = vmti
        self.state = state
        self.static_fallback = static_fallback
        self.ctx = RestoreContext(state=state)
        self._armed: List[tuple] = []

    # -- natives -------------------------------------------------------------

    def install_natives(self) -> None:
        """Bind the ``CapturedState.*`` natives used by the injected
        restoration handlers."""

        def cs_read(machine: Machine, args: List[Any]) -> Any:
            slot = args[0]
            rec = self.state.frames[self.ctx.index]
            frame = machine.current_thread.frames[-1]
            enc = rec.locals[slot] if slot < len(rec.locals) else None
            return decode_value(enc, (LOC_LOCAL, frame, slot))

        def cs_pc(machine: Machine, args: List[Any]) -> Any:
            rec = self.state.frames[self.ctx.index]
            if self.ctx.index == len(self.state.frames) - 1:
                self.ctx.complete = True
            return rec.pc

        self.machine.natives.register("CapturedState.read", cs_read)
        self.machine.natives.register("CapturedState.pc", cs_pc)

    # -- statics ---------------------------------------------------------------

    def restore_statics(self) -> None:
        """Load the segment's classes and restore static fields (like JNI
        ``SetStatic<Type>Field`` in the paper) inside the segment's
        class-loader namespace; object statics become remote refs that
        fault on first use."""
        ns = self.state.namespace
        loader = self.machine.namespace(ns)
        for cname in self.state.class_names:
            loader.load(cname)
        for (cname, fname), enc in self.state.statics.items():
            if is_cached_marker(enc):
                # Delta capture: this worker should already hold the
                # fingerprinted value (shipped by an earlier capture or
                # write-back).  Verify before trusting — a cell forked
                # behind the ledger's back heals via the fallback fetch.
                if not _marker_matches(self.machine, cname, fname, enc, ns):
                    if self.static_fallback is not None:
                        self.vmti.set_static(
                            cname, fname, self.static_fallback(cname, fname),
                            namespace=ns)
                continue
            self.vmti.set_static(
                cname, fname, decode_value(enc, (LOC_STATIC, cname, fname)),
                namespace=ns)

    # -- the breakpoint dance -----------------------------------------------------

    def _method_entry(self, i: int) -> tuple:
        rec = self.state.frames[i]
        return (rec.class_name, rec.method_name, 0)

    def _cb(self, machine: Machine, thread: ThreadState) -> None:
        i = self.ctx.index + 1
        if i >= len(self.state.frames):  # pragma: no cover - defensive
            raise MigrationError("breakpoint after restoration completed")
        self.ctx.index = i
        self.vmti.clear_breakpoint(*self._method_entry(i))
        if i + 1 < len(self.state.frames):
            self.vmti.set_breakpoint(*self._method_entry(i + 1))
            self._armed.append(self._method_entry(i + 1))
        self.vmti.raise_exception(thread, RESTORE_EXCEPTION, "restore")

    def start_thread(self) -> ThreadState:
        """Create the worker thread poised to restore: first frame pushed
        with empty locals, breakpoint armed at its entry.  The thread
        joins the segment's namespace, so the whole restoration dance
        (and everything after) runs against the right static cells."""
        rec = self.state.frames[0]
        cls = self.machine.namespace(self.state.namespace).load(
            rec.class_name)
        code = cls.find_method(rec.method_name)
        if code is None:
            raise MigrationError(
                f"restored method {rec.class_name}.{rec.method_name} missing")
        thread = ThreadState(self.state.thread_name,
                             namespace=self.state.namespace)
        thread.frames.append(Frame(code))
        self.vmti.set_breakpoint(*self._method_entry(0))
        self._armed.append(self._method_entry(0))
        self.vmti.set_breakpoint_callback(self._cb)
        return thread

    def finish(self) -> None:
        """Disarm everything after restoration completes."""
        for key in self._armed:
            self.machine.breakpoints.discard(key)
        self._armed.clear()
        self.vmti.set_breakpoint_callback(None)

    def restore(self, run_after: bool = False,
                max_instrs: int = 50_000_000) -> ThreadState:
        """Run the full restoration.

        With ``run_after=False`` the thread is left suspended exactly at
        the innermost frame's restored pc (segment ready to execute);
        with ``run_after=True`` it keeps running to completion.
        """
        self.install_natives()
        self.restore_statics()
        thread = self.start_thread()

        def restored(t: ThreadState) -> bool:
            return (self.ctx.complete
                    and len(t.frames) == len(self.state.frames)
                    and t.frames[-1].pc in t.frames[-1].code.msps)

        status = self.machine.run(thread, stop=restored, max_instrs=max_instrs)
        if status != "stopped":
            raise MigrationError(f"restoration did not converge: {status}")
        self.finish()
        if run_after:
            self.machine.run(thread)
        return thread


def _marker_matches(machine: Machine, cname: str, fname: str,
                    marker: tuple, namespace=None) -> bool:
    """Does the worker's current static cell (in the segment's
    namespace) still hold the value the ``@cached`` marker
    fingerprints?  Markers only ever cover primitive/string statics,
    whose encoding is node-independent, so re-encoding the local cell
    reproduces the capture-side digest."""
    cls = machine.namespace(namespace).load(cname).find_static_home(fname)
    enc, _b = encode_value(cls.statics[fname], "")
    return fingerprint(enc) == marker[1]


def java_level_restore(machine: Machine, state: CapturedState,
                       static_fallback=None) -> ThreadState:
    """VMTI-less restore (JamVM-style device): rebuild frames directly at
    Java level via reflection.  Functionally identical result; the cost
    model charges the much slower per-frame reflective path
    (``SystemCosts.java_restore_per_frame`` scaled by device speed)."""
    ns = state.namespace
    loader = machine.namespace(ns)
    for cname in state.class_names:
        loader.load(cname)
    for (cname, fname), enc in state.statics.items():
        if is_cached_marker(enc):
            # device already holds this value — verify, heal on fork
            if not _marker_matches(machine, cname, fname, enc, ns) \
                    and static_fallback is not None:
                cls = loader.load(cname).find_static_home(fname)
                cls.statics[fname] = static_fallback(cname, fname)
            continue
        cls = loader.load(cname).find_static_home(fname)
        cls.statics[fname] = decode_value(enc, (LOC_STATIC, cname, fname))
    thread = ThreadState(state.thread_name, namespace=ns)
    last = len(state.frames) - 1
    for i, rec in enumerate(state.frames):
        cls = loader.load(rec.class_name)
        code = cls.find_method(rec.method_name)
        if code is None:
            raise MigrationError(
                f"restored method {rec.class_name}.{rec.method_name} missing")
        frame = Frame(code)
        for slot, enc in enumerate(rec.locals):
            if slot < len(frame.locals):
                frame.locals[slot] = decode_value(enc, (LOC_LOCAL, frame, slot))
        # Direct restore keeps callee frames on the stack, so suspended
        # callers resume *after* their call (raw_pc), not at the call
        # line (which the breakpoint-driven restore re-executes).
        frame.pc = rec.pc if i == last else rec.raw_pc
        thread.frames.append(frame)
    return thread
