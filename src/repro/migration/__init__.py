"""SOD migration: capture, restore, object faulting, the SODEE engine,
flows, policies, prefetching, tracing and checkpoint persistence."""

from repro.migration.capture import capture_segment, run_to_msp
from repro.migration.object_manager import (HomeObjectServer,
                                            WorkerObjectManager)
from repro.migration.persistence import (load_checkpoint, save_checkpoint,
                                         state_from_json, state_to_json)
from repro.migration.restore import RestoreDriver, java_level_restore
from repro.migration.sodee import Host, MigrationRecord, SODEngine
from repro.migration.state import (CapturedFrame, CapturedState,
                                   GraphDecoder, GraphEncoder, decode_value,
                                   encode_object_shallow, encode_value)
from repro.migration.tracing import Tracer, format_timeline

__all__ = [
    "capture_segment", "run_to_msp",
    "HomeObjectServer", "WorkerObjectManager",
    "load_checkpoint", "save_checkpoint", "state_from_json", "state_to_json",
    "RestoreDriver", "java_level_restore",
    "Host", "MigrationRecord", "SODEngine",
    "CapturedFrame", "CapturedState", "GraphDecoder", "GraphEncoder",
    "decode_value", "encode_object_shallow", "encode_value",
    "Tracer", "format_timeline",
]
