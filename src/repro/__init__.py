"""repro — a reproduction of "A Stack-on-Demand Execution Model for
Elastic Computing" (Ma, Lam, Wang, Zhang; ICPP 2010).

Public API surface (see README.md for a tour):

* :func:`repro.lang.compile_source` — MiniLang -> class files
* :func:`repro.preprocess.preprocess_program` — the class preprocessor
* :class:`repro.vm.Machine` — the stack-machine VM
* :class:`repro.migration.SODEngine` — the SOD distributed runtime
* :mod:`repro.migration.workflow` — Fig. 1 flows and task roaming
* :mod:`repro.baselines` — G-JavaMPI / JESSICA2 / Xen comparators
* :mod:`repro.experiments` — one harness per paper table/figure
"""

from repro.lang import compile_source
from repro.preprocess import preprocess_program
from repro.vm import Machine
from repro.migration import SODEngine

__version__ = "1.0.0"

__all__ = ["compile_source", "preprocess_program", "Machine", "SODEngine",
           "__version__"]
