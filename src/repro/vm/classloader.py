"""Class loading and linking.

The loader owns the set of :class:`ClassFile` definitions visible to one
VM (its "classpath") and the cache of linked :class:`VMClass` objects.

Two hooks make on-demand *code migration* work (paper section III.A):

* ``missing_class_hook(name) -> ClassFile`` — called when a class is not
  on the local classpath; a worker VM installs a hook that fetches the
  class file from the home node over the network (charging transfer
  time), mirroring ``JVMTI_EVENT_CLASS_FILE_LOAD_HOOK``.
* ``load_listener(vmclass)`` — notified after a class links; migration
  engines use it to charge class-load costs and to implement
  JESSICA2-style allocate-statics-at-load behaviour.

Class-loader **namespaces** (:class:`Namespace`) give a guest context
its own linked-class table — and therefore its own static cells — the
way real JVMs isolate per-webapp state with per-context class loaders.
A namespace shares its parent's classpath *object* (class files are
immutable and node-wide: a class fetched by any context is on the
classpath for all) and its hooks, but links classes independently, so
two requests running the same statics-bearing program never touch each
other's cells.  The root loader is itself the default namespace
(``tag=None``); everything single-tenant keeps working unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.bytecode.code import ClassFile
from repro.errors import LinkError
from repro.lang.codegen import builtin_exception_classes
from repro.vm.objects import VMClass, default_value


class ClassLoader:
    """Per-VM class loader (the root namespace)."""

    #: namespace tag: ``None`` for the root loader, the namespace's
    #: name for :class:`Namespace` instances.  Linked :class:`VMClass`
    #: objects inherit it, so any holder of a class knows which
    #: namespace owns its static cells.
    tag: Optional[str] = None

    def __init__(self, classpath: Optional[Dict[str, ClassFile]] = None,
                 include_builtins: bool = True):
        self._classpath: Dict[str, ClassFile] = dict(classpath or {})
        if include_builtins:
            for name, cf in builtin_exception_classes().items():
                self._classpath.setdefault(name, cf)
        self._loaded: Dict[str, VMClass] = {}
        self.missing_class_hook: Optional[Callable[[str], ClassFile]] = None
        self.load_listener: Optional[Callable[[VMClass], None]] = None

    def define(self, cf: ClassFile) -> None:
        """Add (or replace) a class file on the classpath.  Replacing an
        already-linked class is a host error."""
        if cf.name in self._loaded:
            raise LinkError(f"class {cf.name} already linked")
        self._classpath[cf.name] = cf

    def define_all(self, cfs: Iterable[ClassFile]) -> None:
        for cf in cfs:
            self.define(cf)

    def is_loaded(self, name: str) -> bool:
        return name in self._loaded

    def has_classfile(self, name: str) -> bool:
        """Whether ``name`` is already on this VM's classpath (defined
        locally or fetched earlier) — the migration fast path's class
        cache: class files are immutable once defined, so presence
        means a sender can ship a digest token instead of the bytes."""
        return name in self._classpath

    def loaded_classes(self) -> Dict[str, VMClass]:
        """Snapshot of linked classes (name -> VMClass)."""
        return dict(self._loaded)

    def classfile(self, name: str) -> ClassFile:
        """The raw class file for ``name`` (fetching if necessary)."""
        cf = self._classpath.get(name)
        if cf is None:
            if self.missing_class_hook is None:
                raise LinkError(f"class not found: {name}")
            cf = self.missing_class_hook(name)
            if cf is None:
                raise LinkError(f"class not found: {name}")
            self._classpath[name] = cf
        return cf

    def load(self, name: str) -> VMClass:
        """Link ``name`` (and its superclass chain), running hooks."""
        cls = self._loaded.get(name)
        if cls is not None:
            return cls
        cf = self.classfile(name)
        superclass = None
        if cf.superclass is not None:
            if cf.superclass == name:
                raise LinkError(f"class {name} extends itself")
            superclass = self.load(cf.superclass)
        cls = VMClass(cf, superclass, namespace=self.tag)
        self._loaded[name] = cls
        if self.load_listener is not None:
            self.load_listener(cls)
        return cls

    def revirginize(self) -> int:
        """Reset every linked class's static cells to their class-file
        defaults, *in place*, and return how many cells actually
        changed.

        This is the copy-on-write half of namespace pooling: a pooled
        namespace keeps its linked classes, decoded streams, inline
        caches, and tier-2 closures across leases (the expensive part),
        and only the cells a previous request dirtied are rewritten.
        The ``statics`` dict *object* is preserved — the fast loop's
        GETS/PUTS inline caches and the JIT's guard bindings hold that
        dict by reference, so replacing it would silently decouple
        cached reads from the live cells."""
        reset = 0
        for cls in self._loaded.values():
            statics = cls.statics
            for f in cls.cf.static_fields():
                v = default_value(f.type_name)
                cur = statics[f.name]
                if cur is not v and cur != v:
                    statics[f.name] = v
                    reset += 1
        return reset


class Namespace(ClassLoader):
    """A class-loader namespace: its own linked-class table (and thus
    its own static cells) over a parent loader's shared classpath.

    * the classpath dict is *shared by reference* with the parent —
      defining or on-demand-fetching a class through any namespace
      makes the (immutable) file available to all of them;
    * ``missing_class_hook`` / ``load_listener`` delegate to the
      parent, so a worker VM's fetch-from-home wiring covers every
      namespace without per-namespace installs;
    * linking is fully independent: ``load`` builds fresh
      :class:`VMClass` objects whose ``statics`` dicts belong to this
      namespace only.
    """

    def __init__(self, parent: ClassLoader, tag: str):
        self.parent = parent
        self.tag = tag
        self._classpath = parent._classpath  # shared, by reference
        self._loaded = {}

    def define(self, cf: ClassFile) -> None:
        """Add a class file to the *shared* classpath.  Only additive
        defines are allowed through a namespace: the classpath is one
        object for every context on the machine, and this namespace
        cannot see which siblings (or the root) already linked a file
        — replacing it would silently run divergent code for the same
        class name across namespaces.  Replacement stays a root-loader
        operation with the root's already-linked guard."""
        if cf.name in self._classpath:
            raise LinkError(
                f"class {cf.name} already on the shared classpath; "
                f"redefining through namespace {self.tag!r} is not "
                f"allowed")
        self._classpath[cf.name] = cf

    @property
    def missing_class_hook(self):
        return self.parent.missing_class_hook

    @missing_class_hook.setter
    def missing_class_hook(self, fn):
        self.parent.missing_class_hook = fn

    @property
    def load_listener(self):
        return self.parent.load_listener

    @load_listener.setter
    def load_listener(self, fn):
        self.parent.load_listener = fn
