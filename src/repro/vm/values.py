"""Guest value model.

Guest values are host values where possible (``int``, ``float``, ``bool``,
``str``, ``None`` for null) plus heap references
(:class:`repro.vm.objects.VMInstance` / :class:`~repro.vm.objects.VMArray`)
and the migration sentinel :class:`RemoteRef`.

:class:`RemoteRef` is the key piece of the paper's *object faulting*
design (section III.C): after a stack segment is restored at the
destination, every object reference in it "is null".  We realize that
null as a provenance-carrying sentinel — any use raises a guest
``NullPointerException`` exactly like a real null, but the exception can
tell the injected object-fault handler *which home object* to fetch and
*where* to patch the reference.  A genuine application null (``None``)
raises a plain ``NullPointerException`` that propagates to application
handlers, as in the paper.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

#: location descriptor kinds for RemoteRef provenance
LOC_LOCAL = "local"      # (LOC_LOCAL, frame, slot)
LOC_FIELD = "field"      # (LOC_FIELD, instance, field_name)
LOC_STATIC = "static"    # (LOC_STATIC, class_name, field_name)
LOC_ELEM = "elem"        # (LOC_ELEM, array, index)


class RemoteRef:
    """An unresolved reference to an object living in the *home* heap.

    Attributes:
        home_oid: object id in the home VM's heap.
        home_node: name of the home node.
        loc: where this sentinel is stored, so the fault handler can
            patch in the fetched object (see ``LOC_*``).
    """

    __slots__ = ("home_oid", "home_node", "loc")

    def __init__(self, home_oid: int, home_node: str,
                 loc: Optional[Tuple] = None):
        self.home_oid = home_oid
        self.home_node = home_node
        self.loc = loc

    def with_loc(self, loc: Tuple) -> "RemoteRef":
        """A copy bound to a storage location."""
        return RemoteRef(self.home_oid, self.home_node, loc)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RemoteRef #{self.home_oid}@{self.home_node}>"


def is_nullish(v: Any) -> bool:
    """True if using ``v`` as an object must raise NullPointerException
    (real null, or an unresolved remote reference)."""
    return v is None or isinstance(v, RemoteRef)


def truthy(v: Any) -> bool:
    """Guest truthiness for JZ/JNZ: null/0/0.0/False/"" are false;
    a RemoteRef is *truthy* (it stands for a real object)."""
    if isinstance(v, RemoteRef):
        return True
    return bool(v)
