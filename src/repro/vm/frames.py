"""Activation records.

A :class:`Frame` is exactly the paper's stack frame: local variable
slots, an operand stack, the method (with its runtime constant pool via
the code object), and the program counter.  Frames are plain data —
migration captures and rebuilds them.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.bytecode.code import CodeObject


class Frame:
    """One method activation."""

    __slots__ = ("code", "locals", "stack", "pc", "pinned")

    def __init__(self, code: CodeObject, args: Optional[List[Any]] = None):
        self.code = code
        # Frame construction sits on the interpreter's call hot path:
        # build the locals in one concatenation instead of allocating a
        # None-filled list and slice-assigning into it.
        if args is not None:
            if len(args) != code.nparams:
                raise ValueError(
                    f"{code.qualname}: expected {code.nparams} args, "
                    f"got {len(args)}")
            self.locals: List[Any] = args + [None] * (
                code.max_locals - len(args))
        else:
            self.locals = [None] * code.max_locals
        self.stack: List[Any] = []
        self.pc = 0
        #: pinned frames must not migrate (e.g. they hold sockets, paper
        #: section IV.D); the segmenter refuses to include them.
        self.pinned = False

    @property
    def method_id(self) -> tuple[str, str]:
        """(class name, method name) identity used by VMTI."""
        return (self.code.class_name, self.code.name)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Frame {self.code.qualname} pc={self.pc} "
                f"stack={len(self.stack)}>")


class ThreadState:
    """A guest thread: a stack of frames plus pending-exception state.

    ``pending_exception`` supports JVMTI-style asynchronous exception
    injection (the restore driver throws ``InvalidStateException`` into
    the thread from a breakpoint callback).

    ``namespace`` names the class-loader namespace the thread executes
    in (``None`` = the machine's root loader): the machine resolves the
    thread's classes — and therefore its static cells — through that
    namespace for as long as the thread runs, and a migrated segment
    carries the tag so the destination rebuilds it in the same
    namespace.
    """

    __slots__ = ("frames", "pending_exception", "name", "finished",
                 "result", "uncaught", "namespace")

    def __init__(self, name: str = "main",
                 namespace: Optional[str] = None):
        self.frames: List[Frame] = []
        self.pending_exception: Any = None
        self.name = name
        self.finished = False
        self.result: Any = None
        self.uncaught: Any = None
        self.namespace = namespace

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    def depth(self) -> int:
        return len(self.frames)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Thread {self.name} depth={len(self.frames)}>"
