"""VMTI — the VM Tool Interface.

The faithful analog of JVMTI (paper section III): migration managers are
written *against this interface only*, never against VM internals, which
is exactly the paper's portability argument.  Every call charges its
measured cost (section IV.A: most JVMTI calls ≈ 1 µs, ``GetLocal<Type>``
≈ 30 µs), so capture/restore latency emerges from the number of calls
the algorithms make.

Like JVMTI, the interface exposes frame inspection (`get_frame_count`,
`get_frame_location`, `get_local_variable_table`, `get_local`),
breakpoints, asynchronous exception injection, `pop_frame` /
`force_early_return`, and static-field access.  Also like JVMTI, it does
**not** expose operand stacks — which is why migration-safe points exist
(section III.B.1).

Interaction with the dispatch loops: while no breakpoints, breakpoint
callbacks or write hooks are installed, the machine runs its
zero-overhead fast loop (see :mod:`repro.vm.machine`).  Installing any
of them through this interface flips the machine's loop-selection guard:
if the thread is suspended (the normal case — VMTI calls happen between
``run()`` calls or from breakpoint callbacks, which already execute
under the hook-aware loop), the next ``run()`` picks the hook-aware
loop at entry; if the install happens *mid-run* from a native, the fast
loop observes it at the native-call safepoint, syncs ``frame.pc``,
flushes its batched accounting and retreats to the hook-aware loop.
Either way ``get_frame_location`` always sees a precise original
bytecode index — superinstruction fusion is invisible here.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.errors import VMError
from repro.vm.frames import Frame, ThreadState
from repro.vm.machine import Machine
from repro.vm.objects import VMClass


class VMTI:
    """A costed debugging session attached to one machine."""

    def __init__(self, machine: Machine):
        if machine.node is not None and not machine.node.spec.has_vmti:
            raise VMError(
                f"node {machine.node.name} has no VMTI support (JamVM-style)")
        self.machine = machine
        self._c = machine.cost.vmti
        #: number of interface calls made (for overhead accounting/tests)
        self.calls = 0

    def _charge(self, seconds: float) -> None:
        self.calls += 1
        self.machine.charge(seconds)

    # -- frame inspection ---------------------------------------------------

    def get_frame_count(self, thread: ThreadState) -> int:
        """Number of frames on the thread's stack."""
        self._charge(self._c.get_frame_location)
        return len(thread.frames)

    def _frame(self, thread: ThreadState, depth: int) -> Frame:
        """depth 0 = top frame (JVMTI convention)."""
        if not (0 <= depth < len(thread.frames)):
            raise VMError(f"bad frame depth {depth}")
        return thread.frames[len(thread.frames) - 1 - depth]

    def get_frame_location(self, thread: ThreadState,
                           depth: int) -> Tuple[Tuple[str, str], int]:
        """((class, method), bci) of the frame at ``depth``."""
        self._charge(self._c.get_frame_location)
        f = self._frame(thread, depth)
        return f.method_id, f.pc

    def get_method_name(self, method_id: Tuple[str, str]) -> str:
        """Qualified name for a method id."""
        self._charge(self._c.get_method_name)
        return f"{method_id[0]}.{method_id[1]}"

    def get_local_variable_table(self, thread: ThreadState,
                                 depth: int) -> List[Tuple[int, str]]:
        """(slot, name) pairs for the frame's locals."""
        self._charge(self._c.get_local_variable_table)
        f = self._frame(thread, depth)
        return list(enumerate(f.code.local_names))

    def get_local(self, thread: ThreadState, depth: int, slot: int) -> Any:
        """Read one local slot (the expensive call: ~30 µs)."""
        self._charge(self._c.get_local)
        f = self._frame(thread, depth)
        if not (0 <= slot < len(f.locals)):
            raise VMError(f"bad slot {slot}")
        return f.locals[slot]

    def set_local(self, thread: ThreadState, depth: int, slot: int,
                  value: Any) -> None:
        """Write one local slot."""
        self._charge(self._c.set_local)
        f = self._frame(thread, depth)
        if not (0 <= slot < len(f.locals)):
            raise VMError(f"bad slot {slot}")
        f.locals[slot] = value

    def is_operand_stack_empty(self, thread: ThreadState, depth: int) -> bool:
        """JVMTI cannot *read* operand stacks, but our restore driver may
        assert emptiness (the real system guarantees it structurally via
        MSPs; we keep the check for test strength)."""
        self._charge(self._c.get_frame_location)
        return not self._frame(thread, depth).stack

    # -- statics --------------------------------------------------------------

    def get_static(self, class_name: str, field: str,
                   namespace: Optional[str] = None) -> Any:
        """Read a static field of a *loaded* class (in ``namespace``;
        ``None`` = the root loader)."""
        self._charge(self._c.get_static)
        cls = self.machine.namespace(namespace).load(class_name)
        return cls.find_static_home(field).statics[field]

    def set_static(self, class_name: str, field: str, value: Any,
                   namespace: Optional[str] = None) -> None:
        """Write a static field (used during restoration, like JNI
        ``SetStatic<Type>Field``) — namespaced like :meth:`get_static`."""
        self._charge(self._c.set_static)
        cls = self.machine.namespace(namespace).load(class_name)
        cls.find_static_home(field).statics[field] = value

    def loaded_classes(self) -> List[VMClass]:
        """All classes linked in the VM."""
        self._charge(self._c.get_method_name)
        return list(self.machine.loader.loaded_classes().values())

    # -- breakpoints / control ---------------------------------------------------

    def set_breakpoint(self, class_name: str, method: str, bci: int) -> None:
        """Arm a breakpoint at (class, method, bci)."""
        self._charge(self._c.set_breakpoint)
        self.machine.breakpoints.add((class_name, method, bci))

    def clear_breakpoint(self, class_name: str, method: str, bci: int) -> None:
        """Disarm a breakpoint."""
        self._charge(self._c.clear_breakpoint)
        self.machine.breakpoints.discard((class_name, method, bci))

    def set_breakpoint_callback(
            self, fn: Optional[Callable[[Machine, ThreadState], None]]) -> None:
        """Install the JVMTI_EVENT_BREAKPOINT callback."""
        self.machine.on_breakpoint = fn

    def raise_exception(self, thread: ThreadState, class_name: str,
                        msg: str = "", payload: Any = None) -> None:
        """Inject an asynchronous guest exception into ``thread`` (like
        JVMTI ``StopThread``); delivered before its next instruction."""
        self._charge(self._c.raise_exception)
        thread.pending_exception = self.machine.make_exception(
            class_name, msg, payload)

    def pop_frame(self, thread: ThreadState) -> None:
        """Discard the top frame without delivering a return value."""
        self._charge(self._c.pop_frame)
        if not thread.frames:
            raise VMError("pop_frame on empty stack")
        thread.frames.pop()

    def force_early_return(self, thread: ThreadState, value: Any) -> None:
        """Pop the top frame and deliver ``value`` as its return value to
        the invoker (paper section III.A uses ``ForceEarlyReturn<type>``
        to pop outdated frames after a migrated segment completes)."""
        self._charge(self._c.force_early_return)
        if not thread.frames:
            raise VMError("force_early_return on empty stack")
        thread.frames.pop()
        if thread.frames:
            thread.frames[-1].stack.append(value)
        else:
            thread.finished = True
            thread.result = value
