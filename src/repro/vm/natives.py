"""Native (host-implemented) methods.

Guest code calls natives via ``Namespace.name(args)`` syntax, compiled to
``NATIVE "Namespace.name" nargs``.  Natives receive the hosting
:class:`repro.vm.machine.Machine` and the evaluated argument list, charge
simulated time via ``machine.charge``, and return the value to push.

Built-in namespaces:

* ``Sys.*``  — console, math, string helpers, nominal-size tagging.
* ``FS.*``   — the simulated cluster file system (local + NFS paths).

The migration runtime registers two more namespaces per worker VM:
``ObjMan.*`` (object faulting, section III.C) and ``CapturedState.*``
(restoration handlers, section III.B.2).  Their default bindings here
raise, so using preprocessed code outside a migration context fails
loudly instead of silently.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, TYPE_CHECKING

from repro.errors import NativeError
from repro.vm.objects import VMArray, VMInstance
from repro.vm.values import RemoteRef, is_nullish

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import Machine

NativeFn = Callable[["Machine", List[Any]], Any]


class NativeRegistry:
    """Name -> implementation mapping for one VM."""

    def __init__(self) -> None:
        self._fns: Dict[str, NativeFn] = {}
        install_default_natives(self)

    def register(self, name: str, fn: NativeFn) -> None:
        """Bind ``Namespace.name`` to ``fn`` (replacing any previous)."""
        self._fns[name] = fn

    def lookup(self, name: str) -> NativeFn:
        fn = self._fns.get(name)
        if fn is None:
            raise NativeError(f"unknown native {name!r}")
        return fn


# -- Sys namespace -----------------------------------------------------------

def _sys_print(machine: "Machine", args: List[Any]) -> Any:
    machine.stdout.append(" ".join(_to_str(a) for a in args))
    return None


def _to_str(v: Any) -> str:
    if v is None:
        return "null"
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, float):
        return repr(v)
    if isinstance(v, VMInstance):
        return f"{v.class_name}#{v.oid}"
    if isinstance(v, VMArray):
        return f"{v.kind}[{len(v)}]#{v.oid}"
    if isinstance(v, RemoteRef):
        return f"remote#{v.home_oid}"
    return str(v)


def _num(machine: "Machine", args: List[Any], i: int = 0) -> Any:
    v = args[i]
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        raise NativeError(f"expected number, got {type(v).__name__}")
    return v


def _sys_len(machine: "Machine", args: List[Any]) -> int:
    v = args[0]
    if isinstance(v, str):
        return len(v)
    v = _deref(machine, v)
    if isinstance(v, VMArray):
        return len(v)
    raise NativeError(f"Sys.len expects a string or array, got "
                      f"{type(v).__name__}")


def _deref(machine: "Machine", v: Any) -> Any:
    """Dereference a native argument: an unresolved remote reference (or
    a real null) raises the guest NPE that the injected fault handler
    for the native's group catches and resolves (paper section III.C)."""
    if is_nullish(v):
        raise machine.throw("NullPointerException", "native deref",
                            payload=v)
    return v


def install_default_natives(reg: NativeRegistry) -> None:
    """Install the ``Sys`` / ``FS`` namespaces plus failing stubs for the
    migration-owned namespaces."""

    # --- Sys ---
    reg.register("Sys.print", _sys_print)
    reg.register("Sys.str", lambda m, a: _to_str(a[0]))
    reg.register("Sys.len", _sys_len)
    reg.register("Sys.substr", lambda m, a: a[0][a[1]:a[2]])
    reg.register("Sys.charAt", lambda m, a: a[0][a[1]])
    reg.register("Sys.indexOf", lambda m, a: _indexof(m, a))
    reg.register("Sys.parseInt", lambda m, a: int(a[0]))
    reg.register("Sys.floor", lambda m, a: int(math.floor(_num(m, a))))
    reg.register("Sys.ceil", lambda m, a: int(math.ceil(_num(m, a))))
    reg.register("Sys.sqrt", lambda m, a: math.sqrt(_num(m, a)))
    reg.register("Sys.sin", lambda m, a: math.sin(_num(m, a)))
    reg.register("Sys.cos", lambda m, a: math.cos(_num(m, a)))
    reg.register("Sys.pi", lambda m, a: math.pi)
    reg.register("Sys.abs", lambda m, a: abs(_num(m, a)))
    reg.register("Sys.min", lambda m, a: min(_num(m, a, 0), _num(m, a, 1)))
    reg.register("Sys.max", lambda m, a: max(_num(m, a, 0), _num(m, a, 1)))
    reg.register("Sys.intOf", lambda m, a: int(_num(m, a)))
    reg.register("Sys.floatOf", lambda m, a: float(_num(m, a)))
    reg.register("Sys.setNominal", _sys_set_nominal)
    reg.register("Sys.nominalSize", _sys_nominal_size)
    reg.register("Sys.sleep", _sys_sleep)
    reg.register("Sys.nodeName", lambda m, a: m.node.name if m.node else "local")
    reg.register("Sys.time", lambda m, a: m.clock)

    # --- FS ---
    reg.register("FS.list", _fs_list)
    reg.register("FS.size", _fs_size)
    reg.register("FS.read", _fs_read)
    reg.register("FS.scan", _fs_scan)
    reg.register("FS.exists", _fs_exists)

    # --- migration namespaces (bound by the migration runtime) ---
    def _unbound(name: str) -> NativeFn:
        def fn(machine: "Machine", args: List[Any]) -> Any:
            raise NativeError(
                f"native {name} called with no migration runtime attached")
        return fn

    for name in ("ObjMan.resolve", "ObjMan.bring", "ObjMan.check",
                 "CapturedState.read", "CapturedState.pc",
                 "Mig.requestMigration", "Mig.here"):
        reg.register(name, _unbound(name))


def _indexof(machine: "Machine", args: List[Any]) -> int:
    hay, needle = args[0], args[1]
    machine.charge(len(hay) * machine.cost.search_spb)
    return hay.find(needle)


def _sys_set_nominal(machine: "Machine", args: List[Any]) -> Any:
    arr = _deref(machine, args[0])
    if not isinstance(arr, VMArray):
        raise NativeError("Sys.setNominal expects an array")
    machine.heap.allocated_bytes -= arr.nominal_bytes()
    arr.nominal_elem_bytes = int(args[1])
    machine.heap.allocated_bytes += arr.nominal_bytes()
    return None


def _sys_nominal_size(machine: "Machine", args: List[Any]) -> int:
    obj = args[0]
    if obj is None:
        return 0
    if isinstance(obj, RemoteRef):
        obj = _deref(machine, obj)
    if not isinstance(obj, (VMInstance, VMArray)):
        raise NativeError("Sys.nominalSize expects a heap object")
    return obj.nominal_bytes()


def _sys_sleep(machine: "Machine", args: List[Any]) -> Any:
    seconds = args[0]
    if seconds < 0:
        raise NativeError("negative sleep")
    machine.charge_raw(float(seconds))
    return None


# -- FS namespace --------------------------------------------------------------

def _need_fs(machine: "Machine"):
    if machine.fs is None or machine.node is None:
        raise NativeError("no file system attached to this VM")
    return machine.fs


def _fs_list(machine: "Machine", args: List[Any]) -> VMArray:
    fs = _need_fs(machine)
    paths = fs.listdir(args[0])
    arr = machine.heap.new_array("str", len(paths), nominal_elem_bytes=64)
    arr.data[:] = paths
    return arr


def _fs_size(machine: "Machine", args: List[Any]) -> int:
    fs = _need_fs(machine)
    return fs.stat(args[0]).size


def _fs_exists(machine: "Machine", args: List[Any]) -> bool:
    fs = _need_fs(machine)
    return fs.exists(args[0])


def _fs_read(machine: "Machine", args: List[Any]) -> str:
    """Read a window of real (procedurally generated) content."""
    fs = _need_fs(machine)
    path, offset, length = args[0], args[1], args[2]
    content, seconds = fs.read(machine.node.name, path, offset, length)
    machine.charge_raw(machine.cost.io_time(seconds, len(content)))
    return content


def _fs_scan(machine: "Machine", args: List[Any]) -> int:
    """Search ``needle`` in a window of a (possibly huge) file without
    materializing the content: charges read + scan cost in full and
    answers from plant metadata.  Returns absolute offset or -1.

    Consistency with ``FS.read`` + ``Sys.indexOf`` on real content is
    covered by property tests.
    """
    fs = _need_fs(machine)
    path, offset, length, needle = args[0], args[1], args[2], args[3]
    f = fs.stat(path)
    length = min(length, f.size - offset)
    machine.charge_raw(machine.cost.io_time(
        fs.read_cost(machine.node.name, path, offset, length), length))
    machine.charge(length * machine.cost.search_spb)
    for p_off, p_text in f.plant:
        idx = p_text.find(needle)
        if idx >= 0:
            pos = p_off + idx
            if offset <= pos and pos + len(needle) <= offset + length:
                return pos
    return -1
