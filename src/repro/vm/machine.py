"""The stack-machine VM.

:class:`Machine` executes guest bytecode with real frames, a real heap,
guest exception tables, breakpoints, and a virtual clock.  It is the
substrate that migration engines manipulate through the debug interface
(:mod:`repro.vm.vmti`).

Execution model per instruction:

1. deliver any pending (asynchronously injected) exception;
2. fire a breakpoint event if one is set at the current location;
3. execute the instruction, charging ``cost.op_cost`` to the clock
   (scaled by the hosting node's CPU speed factor).

Guest exceptions unwind through per-method exception tables; the
interpreter never uses host recursion for guest calls, so frames are
plain data that can be captured, shipped and rebuilt.

Dispatch
--------

The machine has two interpreter loops with identical observable
semantics:

* the **fast loop** (:meth:`Machine._run_fast`) runs whenever no
  breakpoints, breakpoint callbacks, write hooks, ``stop`` predicates or
  instruction limits are installed.  It executes a per-machine cached
  *decoded stream* (:mod:`repro.preprocess.fuse`): dense integer
  opcodes, pre-resolved cost weights, fused superinstructions, and
  monomorphic inline caches for ``INVOKESTATIC``/``GETS``/``PUTS``
  resolution plus a per-receiver-class virtual-call cache.  Clock and
  instruction accounting is batched into local accumulators and flushed
  at safepoints (native calls, exception dispatch, loop exit), so the
  common path does no per-instruction attribute writes.

* the **legacy loop** (:meth:`Machine._run_loop` + :meth:`_execute`)
  preserves the original per-instruction semantics — breakpoint checks,
  ``on_write`` barriers, ``stop``/``max_instrs`` polling — and is used
  whenever any of those are active (``dispatch="legacy"`` forces it
  unconditionally, which the differential test-suite uses as the
  oracle).

Loop selection happens in :meth:`run`; if a native call installs hooks
*mid-run* (the only way hooks can appear while the fast loop owns the
thread), the fast loop syncs ``frame.pc``, flushes its accounting and
retreats, and :meth:`run` re-enters execution through the legacy loop.
The cluster scheduler's preemption ``quantum`` is the one control that
does *not* force the legacy loop: the fast loop polls it at call,
return, native, and loop back-edge safepoints (where ``frame.pc`` can
be synced cheaply) and returns ``"preempted"``, so time-sliced serving
keeps fast dispatch.
``frame.pc`` always holds an *original* bytecode index (fused
superinstructions live in a parallel stream — see
:mod:`repro.preprocess.fuse`), so VMTI, capture/restore, exception
tables and line tables are oblivious to fusion.

Inline caches are valid because classes cannot be redefined once linked
(:meth:`repro.vm.classloader.ClassLoader.define` refuses) and method
tables/static homes are immutable after linking; caches live in the
per-machine decoded stream, never on shared ``CodeObject``s.  Swapping
``machine.cost`` (or mutating its weight table) or mutating a method's
``instrs`` after execution started requires
:meth:`Machine.invalidate_caches`.

Namespaces
----------

A thread whose :attr:`~repro.vm.frames.ThreadState.namespace` tag is
set executes inside that class-loader namespace
(:class:`repro.vm.classloader.Namespace`): for the duration of
:meth:`run`, ``machine.loader`` *is* the namespace loader and the
decoded-stream cache is the namespace's own map, so the
``GETS``/``PUTS``/``INVOKESTATIC`` inline caches bind per
``(code, namespace)`` and never leak one context's static cells into
another.  Root-namespace threads (``namespace=None``, the default)
take none of that indirection — the swap is a single ``is None`` test,
which is how the fast loop's throughput is preserved.
"""

from __future__ import annotations

import math
import operator
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bytecode import opcodes as op
from repro.bytecode.code import ClassFile, CodeObject
from repro.errors import LinkError, NativeError, VMError
from repro.preprocess.fuse import (F_CCMP_JNZ, F_CCMP_JZ, F_CMP_JNZ,
                                   F_CMP_JZ, F_CONST_STORE,
                                   F_GETS_LOAD_ALOAD, F_INC, F_L_ALOAD,
                                   F_LC_ARITH, F_LC_CMP_JNZ, F_LC_CMP_JZ,
                                   F_LC_OP2, F_LGS_CMP_JNZ, F_LGS_CMP_JZ,
                                   F_LL_ALOAD, F_LL_ARITH, F_LL_CMP_JNZ,
                                   F_LL_CMP_JZ, F_LL_OP2, F_LOAD_CONST,
                                   F_LOAD_GETF, F_LOAD_JNZ, F_LOAD_JZ,
                                   F_LOAD_LOAD, decode_and_fuse)
from repro.vm.classloader import ClassLoader, Namespace
from repro.vm.costmodel import CostModel
from repro.vm.frames import Frame, ThreadState
from repro.vm.heap import Heap
from repro.vm.natives import NativeRegistry
from repro.vm.objects import VMArray, VMClass, VMInstance
from repro.vm.values import RemoteRef, is_nullish, truthy


class GuestThrow(Exception):
    """Internal unwinding carrier for guest exceptions (host-side)."""

    def __init__(self, exc: VMInstance):
        super().__init__(exc.class_name)
        self.exc = exc


class UncaughtGuestException(VMError):
    """Raised by :meth:`Machine.call` when the guest program lets an
    exception escape ``main`` and no uncaught-handler consumed it."""

    def __init__(self, exc: VMInstance):
        msg = exc.fields.get("msg", "")
        super().__init__(f"uncaught {exc.class_name}: {msg}")
        self.exc = exc


#: dispatch modes accepted by :class:`Machine`
DISPATCH_MODES = ("fast", "legacy")


class Machine:
    """One virtual machine instance placed on a (simulated) node."""

    def __init__(self, classpath: Optional[Dict[str, ClassFile]] = None,
                 cost: Optional[CostModel] = None,
                 node: Any = None, fs: Any = None,
                 name: str = "vm",
                 dispatch: str = "fast",
                 fuse: bool = True,
                 jit: Optional[bool] = None):
        if dispatch not in DISPATCH_MODES:
            raise VMError(f"unknown dispatch mode {dispatch!r}")
        self.loader = ClassLoader(classpath)
        self.heap = Heap()
        self.natives = NativeRegistry()
        self.cost = cost or CostModel()
        #: the hosting cluster node (or None for standalone use)
        self.node = node
        #: the cluster file system (or None)
        self.fs = fs
        self.name = name
        #: simulated seconds consumed by this VM
        self.clock = 0.0
        #: executed instruction count
        self.instr_count = 0
        #: worst scheduler-quantum overshoot seen (instructions executed
        #: beyond the budget before a safepoint poll fired) — the
        #: fairness-coverage meter for leaf-method straight-line tails
        self.max_quantum_overshoot = 0
        #: guest console output lines
        self.stdout: List[str] = []
        #: breakpoints: (class_name, method_name, bci)
        self.breakpoints: set[Tuple[str, str, int]] = set()
        #: callback fired on breakpoint hit: fn(machine, thread)
        self.on_breakpoint: Optional[Callable[["Machine", ThreadState], None]] = None
        #: callback fired on a field/element write: fn(obj) — object
        #: managers use it to track the dirty set for write-back
        self.on_write: Optional[Callable[[Any], None]] = None
        #: uncaught-exception hook: fn(machine, thread, exc) -> handled?
        self.on_uncaught: Optional[
            Callable[["Machine", ThreadState, VMInstance], bool]] = None
        #: scratch space for attached runtimes (object manager, etc.)
        self.extras: Dict[str, Any] = {}
        #: interpreter selection: "fast" (pre-decoded, inline-cached)
        #: or "legacy" (string-dispatched reference loop)
        self.dispatch = dispatch
        #: fuse superinstructions in the decoded stream
        self.fuse = fuse
        #: per-machine decoded-stream cache (holds the inline caches).
        #: This is the *root namespace's* map; while a namespaced
        #: thread runs, :meth:`run` swaps in the namespace's own map
        #: from ``_decoded_ns`` so cache cells stay per-namespace.
        self._decoded: Dict[CodeObject, List[tuple]] = {}
        #: class-loader namespaces by tag, and their decoded streams
        self._namespaces: Dict[str, Namespace] = {}
        self._decoded_ns: Dict[str, Dict[CodeObject, List[tuple]]] = {}
        #: tier-2 JIT: compile hot code objects into specialized Python
        #: closures above the inline caches (see :mod:`repro.vm.jit`).
        #: ``REPRO_JIT=0`` disables it fleet-wide for triage.
        if jit is None:
            jit = os.environ.get("REPRO_JIT", "1") not in (
                "0", "false", "False", "")
        self.jit = jit and dispatch == "fast"
        #: per-machine compiled-closure cache: CodeObject ->
        #: (closure, entries) | False (refused).  Mirrors ``_decoded``:
        #: the root namespace's map, swapped per namespaced thread so
        #: baked-in static cells stay namespace-private.
        self._compiled: Dict[CodeObject, Any] = {}
        self._compiled_ns: Dict[str, Dict[CodeObject, Any]] = {}
        #: tier-2 telemetry (surfaced by serve stats and benchmarks)
        self.jit_compiles = 0
        self.jit_deopts = 0
        self.jit_guard_bails = 0
        self._speed = node.spec.speed_factor if node is not None else 1.0
        self._bp_guard: Optional[Tuple[int, int]] = None

    # -- time ------------------------------------------------------------

    def charge(self, reference_seconds: float) -> None:
        """Add CPU time (scaled by the node's speed factor)."""
        self.clock += reference_seconds * self._speed

    def charge_raw(self, seconds: float) -> None:
        """Add wall time not subject to CPU scaling (I/O, network)."""
        self.clock += seconds

    # -- namespaces ------------------------------------------------------

    def namespace(self, tag: Optional[str],
                  create: bool = True) -> Optional[ClassLoader]:
        """The class loader for namespace ``tag`` (created on first
        use); ``None`` is the root loader.  Namespaces share the root
        classpath and hooks but link classes — and hold static cells —
        independently (see :mod:`repro.vm.classloader`).

        ``create=False`` is the read-only peek: it returns None when
        the tag does not exist here.  Callers that only want to *look
        at* another machine's cells must use it — materializing an
        empty namespace as a side effect of a query would make
        ``has_namespace`` claim this machine holds cells it never
        wrote (which e.g. ``resync_statics`` trusts to decide whose
        values are authoritative)."""
        root = self._root_loader()
        if tag is None:
            return root
        ns = self._namespaces.get(tag)
        if ns is None:
            if not create:
                return None
            ns = self._namespaces[tag] = Namespace(root, tag)
            self._decoded_ns[tag] = {}
            self._compiled_ns[tag] = {}
        return ns

    def _root_loader(self) -> ClassLoader:
        """The machine's root loader.  While a namespaced thread runs,
        ``self.loader`` IS that thread's namespace; resolve through
        its parent so tags always name the same loader regardless of
        when they are asked for."""
        root = self.loader
        if isinstance(root, Namespace):
            root = root.parent
        return root

    def has_namespace(self, tag: str) -> bool:
        return tag in self._namespaces

    def loaders(self) -> List[ClassLoader]:
        """Every class loader on this machine: the root first, then
        each namespace (insertion order)."""
        return [self._root_loader()] + list(self._namespaces.values())

    def drop_namespace(self, tag: str) -> None:
        """Discard a namespace's linked classes, decoded streams, and
        tier-2 compiled closures (end of a request's life; no-op if
        never created).  The shared classpath keeps any class files it
        fetched.  Long serving runs rely on this to not pin dead
        ``req{rid}`` static cells through cache maps."""
        self._namespaces.pop(tag, None)
        self._decoded_ns.pop(tag, None)
        self._compiled_ns.pop(tag, None)

    # -- guest exception construction ----------------------------------------

    def make_exception(self, class_name: str, msg: str = "",
                       payload: Any = None) -> VMInstance:
        """Allocate a guest exception object."""
        cls = self.loader.load(class_name)
        exc = self.heap.new_instance(cls)
        if "msg" in exc.fields:
            exc.fields["msg"] = msg
        exc.host_payload = payload
        return exc

    def throw(self, class_name: str, msg: str = "",
              payload: Any = None) -> GuestThrow:
        """Build a guest exception and return the host carrier to raise."""
        return GuestThrow(self.make_exception(class_name, msg, payload))

    # -- threads --------------------------------------------------------------

    def spawn(self, class_name: str, method_name: str,
              args: Optional[List[Any]] = None,
              thread_name: str = "main",
              namespace: Optional[str] = None) -> ThreadState:
        """Create a thread whose first frame invokes a static method.
        With ``namespace``, the entry class (and everything the thread
        touches while running) resolves in that namespace — its own
        static cells, created on first use."""
        cls = self.namespace(namespace).load(class_name)
        code = cls.find_method(method_name)
        if code is None:
            raise LinkError(f"no method {class_name}.{method_name}")
        if not code.is_static:
            raise VMError(f"{class_name}.{method_name} is not static")
        thread = ThreadState(thread_name, namespace=namespace)
        thread.frames.append(Frame(code, list(args or [])))
        return thread

    def spawn_on_instance(self, receiver: VMInstance, method_name: str,
                          args: Optional[List[Any]] = None,
                          thread_name: str = "main") -> ThreadState:
        """Create a thread invoking an instance method on ``receiver``
        (in the namespace that linked the receiver's class)."""
        code = receiver.vmclass.find_method(method_name)
        if code is None or code.is_static:
            raise LinkError(
                f"no instance method {receiver.class_name}.{method_name}")
        thread = ThreadState(thread_name,
                             namespace=receiver.vmclass.namespace)
        thread.frames.append(Frame(code, [receiver] + list(args or [])))
        return thread

    def call(self, class_name: str, method_name: str,
             args: Optional[List[Any]] = None) -> Any:
        """Run a static method to completion and return its value."""
        thread = self.spawn(class_name, method_name, args)
        self.run(thread)
        if thread.uncaught is not None:
            raise UncaughtGuestException(thread.uncaught)
        return thread.result

    # -- decoded-stream cache --------------------------------------------------

    def decoded(self, code: CodeObject) -> List[tuple]:
        """The (cached) decoded+fused stream for ``code`` on this machine."""
        stream = self._decoded.get(code)
        if stream is None:
            stream = decode_and_fuse(code, self.cost.op_weights, _ARITH,
                                     _FAST2, fuse=self.fuse)
            self._decoded[code] = stream
        return stream

    def invalidate_caches(self) -> None:
        """Drop all decoded streams and the inline caches they carry
        (every namespace's — cost weights are machine-global).

        Needed only after host-level surgery the VM cannot see: swapping
        ``machine.cost`` (or mutating its weight table) after execution
        started, or mutating a ``CodeObject.instrs`` list in place.
        Also drops the per-CodeObject predecoded streams this machine
        used, so re-decoding observes current weights and instrs.
        """
        for code in self._decoded:
            code.invalidate_decoded()
        self._decoded.clear()
        for ns_map in self._decoded_ns.values():
            for code in ns_map:
                code.invalidate_decoded()
            ns_map.clear()
        # tier-2 closures bake in cost weights and static cells too
        self._compiled.clear()
        for ns_map in self._compiled_ns.values():
            ns_map.clear()

    def precompile(self, class_name: str, method: str,
                   namespace: Optional[str] = None) -> bool:
        """Tier-2 compile a method ahead of its hotness threshold.

        The serve scheduler calls this when ``WorkProfile`` already
        knows a program is heavy: there is no point interpreting the
        first ``JIT_THRESHOLD`` activations of a request that will run
        millions of instructions.  Compiles against ``namespace``'s
        loader/caches (the root's when ``None``).  Returns True when a
        compiled closure is available afterwards."""
        if not self.jit:
            return False
        from repro.vm.jit import compile_into
        prev_loader = self.loader
        prev_decoded = self._decoded
        try:
            if namespace is not None:
                self.loader = self.namespace(namespace)
                self._decoded = self._decoded_ns[namespace]
                jm = self._compiled_ns[namespace]
            else:
                self.loader = self._root_loader()
                jm = self._compiled
            cls = self.loader.load(class_name)
            code = cls.find_method(method)
            if code is None:
                return False
            cf = jm.get(code)
            if cf is None:
                cf = compile_into(self, code, jm)
            return bool(cf)
        finally:
            self.loader = prev_loader
            self._decoded = prev_decoded

    # -- main loop --------------------------------------------------------------

    def run(self, thread: ThreadState,
            stop: Optional[Callable[[ThreadState], bool]] = None,
            max_instrs: Optional[int] = None,
            quantum: Optional[int] = None) -> str:
        """Execute ``thread`` until it finishes, ``stop`` returns True,
        ``max_instrs`` run, or a scheduler ``quantum`` expires.  Returns
        ``"finished"`` / ``"stopped"`` / ``"limit"`` / ``"preempted"``.

        ``quantum`` is the cluster scheduler's preemption budget, in
        executed instructions.  Unlike ``stop``/``max_instrs`` it does
        NOT force the legacy loop: the fast loop polls it at its
        safepoints (call, return, native, and loop back-edge sites), so
        preemption can overshoot by at most one loop body / a leaf
        method's straight-line tail, never lands mid-instruction, and
        is exactly reproducible.  A preempted thread resumes with
        another ``run`` call; ``frame.pc`` is synced and accounting
        flushed."""
        if quantum is not None and quantum < 1:
            raise VMError(f"bad scheduler quantum {quantum}")
        op_cost = self.cost.unit_op_cost() * self._speed
        start_count = self.instr_count
        prev_thread = getattr(self, "current_thread", None)
        self.current_thread = thread
        # Namespace entry: for a namespaced thread, the namespace
        # loader and its decoded-stream map *become* the machine's for
        # the duration of the run — every resolution path (fast-loop
        # cache fills, the legacy loop, natives, exception allocation)
        # sees the thread's own static cells with no per-instruction
        # cost.  Root threads pay one None test.
        prev_loader = None
        if thread.namespace is not None:
            prev_loader = self.loader
            prev_decoded = self._decoded
            prev_compiled = self._compiled
            self.loader = self.namespace(thread.namespace)
            self._decoded = self._decoded_ns[thread.namespace]
            self._compiled = self._compiled_ns[thread.namespace]
        try:
            if (stop is None and max_instrs is None
                    and self.dispatch == "fast"
                    and not self.breakpoints
                    and self.on_breakpoint is None
                    and self.on_write is None):
                self._bp_guard = None
                status = self._run_fast(thread, op_cost, quantum)
                if status is not None:
                    return status
                # A native installed hooks mid-run: the fast loop synced
                # frame.pc and flushed accounting — continue under the
                # hook-aware loop.
            return self._run_loop(thread, stop, max_instrs, op_cost,
                                  self.instr_count - start_count, quantum)
        finally:
            self.current_thread = prev_thread
            if prev_loader is not None:
                self.loader = prev_loader
                self._decoded = prev_decoded
                self._compiled = prev_compiled
            if quantum is not None:
                over = (self.instr_count - start_count) - quantum
                if over > self.max_quantum_overshoot:
                    self.max_quantum_overshoot = over

    # -- the fast loop -----------------------------------------------------------

    def _run_fast(self, thread: ThreadState, op_cost: float,
                  quantum: Optional[int] = None) -> Optional[str]:
        """Zero-overhead interpretation of ``thread``.

        Preconditions (enforced by :meth:`run`): no breakpoints, no
        breakpoint callback, no write hook, no ``stop`` predicate, no
        instruction limit.  Returns ``"finished"``, ``"preempted"``
        (scheduler ``quantum`` expired at a safepoint), or ``None`` if a
        native call armed hooks and the loop retreated (``frame.pc``
        synced, accounting flushed) for :meth:`run` to continue on the
        legacy loop.
        """
        # Localize everything the hot path touches.
        frames = thread.frames
        decoded = self._decoded
        nullish = is_nullish
        tr = truthy
        RR = RemoteRef
        Inst = VMInstance
        Arr = VMArray
        Frm = Frame
        miss = _MISSING
        w_acc = 0.0
        n_acc = 0
        # Scheduler-preemption safepoint polling: the budget is turned
        # into an absolute executed-instruction watermark so the check
        # stays valid across accounting flushes (instr_count absorbs
        # n_acc at safepoints).
        q = quantum
        q_limit = self.instr_count + q if q is not None else 0
        # Tier-2: per-(machine, namespace) compiled-closure map and the
        # tier-up machinery (lazy import: jit.py leans on this module).
        jm = None
        if self.jit:
            from repro.vm.jit import JIT_THRESHOLD as TH
            from repro.vm.jit import compile_into as _ci
            jm = self._compiled
        # dense opcode ids as locals (LOAD_FAST beats LOAD_GLOBAL)
        I_LOAD = _I_LOAD; I_CONST = _I_CONST; I_STORE = _I_STORE
        I_JMP = _I_JMP; I_JZ = _I_JZ; I_JNZ = _I_JNZ
        I_GETF = _I_GETF; I_PUTF = _I_PUTF; I_GETS = _I_GETS
        I_ALOAD = _I_ALOAD; I_ASTORE = _I_ASTORE
        I_DUP = _I_DUP; I_POP = _I_POP
        I_INVOKESTATIC = _I_INVOKESTATIC; I_INVOKEVIRT = _I_INVOKEVIRT
        I_NATIVE = _I_NATIVE; I_RET = _I_RET; I_RETV = _I_RETV
        BIN_LO = _I_BINOP_LO; BIN_HI = _I_BINOP_HI
        FI_LL_CMP_JZ = F_LL_CMP_JZ; FI_LL_CMP_JNZ = F_LL_CMP_JNZ
        FI_LC_CMP_JZ = F_LC_CMP_JZ; FI_LC_CMP_JNZ = F_LC_CMP_JNZ
        FI_CMP_JZ = F_CMP_JZ; FI_CMP_JNZ = F_CMP_JNZ
        FI_LL_OP2 = F_LL_OP2; FI_LL_ARITH = F_LL_ARITH
        FI_LC_OP2 = F_LC_OP2; FI_LC_ARITH = F_LC_ARITH
        FI_INC = F_INC; FI_LL_ALOAD = F_LL_ALOAD
        FI_LOAD_LOAD = F_LOAD_LOAD; FI_LOAD_CONST = F_LOAD_CONST
        FI_CONST_STORE = F_CONST_STORE; FI_LOAD_GETF = F_LOAD_GETF
        FI_GLA = F_GETS_LOAD_ALOAD
        FI_LOAD_JZ = F_LOAD_JZ; FI_LOAD_JNZ = F_LOAD_JNZ
        FI_LGS_CMP_JZ = F_LGS_CMP_JZ; FI_LGS_CMP_JNZ = F_LGS_CMP_JNZ
        FI_CCMP_JZ = F_CCMP_JZ; FI_CCMP_JNZ = F_CCMP_JNZ
        FI_L_ALOAD = F_L_ALOAD
        try:
            while frames:
                if thread.pending_exception is not None:
                    exc = thread.pending_exception
                    thread.pending_exception = None
                    self.clock += op_cost * w_acc
                    self.instr_count += n_acc
                    w_acc = 0.0
                    n_acc = 0
                    if not self._dispatch(thread, exc):
                        return "finished"
                    continue
                frame = frames[-1]
                if jm is not None:
                    # Tier-up driver: every frame (re)entry at a
                    # compiled entry point runs the closure; everything
                    # else falls through to tier-1 interpretation.
                    code = frame.code
                    cf = jm.get(code)
                    if cf is None:
                        h = code.hotness = code.hotness + 1
                        if h >= TH:
                            cf = _ci(self, code, jm)
                    if cf and frame.pc in cf[1]:
                        res = cf[0](self, thread, frame, frames, q_limit,
                                    w_acc, n_acc, op_cost)
                        st = res[0]
                        w_acc = res[1]
                        n_acc = res[2]
                        if st <= 1:       # call / return
                            continue
                        if st == 2:       # quantum safepoint
                            return "preempted"
                        if st == 3:       # guest throw (pre-flushed)
                            if not self._dispatch(thread, res[3]):
                                return "finished"
                            # the faulting instruction is charged only
                            # once a handler is found (tier-1 rule)
                            w_acc = res[4]
                            n_acc = 1
                            continue
                        if st == 4:       # pending exception armed
                            continue
                        # st == 5: a native installed hooks mid-region —
                        # deoptimize (state is materialized) and retreat
                        self.jit_deopts += 1
                        return None
                stream = decoded.get(frame.code)
                if stream is None:
                    stream = self.decoded(frame.code)
                pc = frame.pc
                stack = frame.stack
                locs = frame.locals
                push = stack.append
                pop = stack.pop
                try:
                    while True:
                        ins = stream[pc]
                        oid = ins[0]
                        if oid == I_LOAD:
                            push(locs[ins[1]])
                            pc += 1
                        elif oid == FI_LL_CMP_JZ:
                            s = ins[1]
                            pc = pc + 4 if ins[5](locs[s[0]], locs[s[1]]) \
                                else ins[2]
                        elif oid == FI_LC_CMP_JZ:
                            s = ins[1]
                            pc = pc + 4 if ins[5](locs[s[0]], s[1]) \
                                else ins[2]
                        elif oid == FI_LGS_CMP_JZ:
                            s = ins[1]
                            aux = ins[5]
                            cell = aux[1]
                            c = cell[0]
                            if c is None:
                                cls_name, fname = s[1]
                                home = self.loader.load(
                                    cls_name).find_static_home(fname)
                                c = (home.statics, fname)
                                cell[0] = c
                            pc = pc + 4 if aux[0](locs[s[0]], c[0][c[1]]) \
                                else ins[2]
                        elif oid == FI_CCMP_JZ:
                            pc = pc + 3 if ins[5](pop(), ins[1]) else ins[2]
                        elif oid == FI_CCMP_JNZ:
                            pc = ins[2] if ins[5](pop(), ins[1]) else pc + 3
                        elif oid == FI_L_ALOAD:
                            arr = pop()
                            idx = locs[ins[1]]
                            if arr is None or arr.__class__ is RR:
                                raise self._npe(arr, "arrayload")
                            if not isinstance(arr, Arr):
                                raise VMError(f"arrayload on {_tname(arr)}")
                            data = arr.data
                            if 0 <= idx < len(data):
                                push(data[idx])
                            else:
                                raise self.throw(
                                    "IndexOutOfBoundsException",
                                    f"index {idx} length {len(data)}")
                            pc += 2
                        elif oid == FI_INC:
                            x = locs[ins[1]]
                            b = ins[2]
                            if type(x) is int:
                                locs[b[1]] = x + b[0]
                            else:
                                locs[b[1]] = ins[5](self, x, b[0])
                            pc += 4
                        elif oid == FI_GLA:
                            cell = ins[5]
                            c = cell[0]
                            if c is None:
                                cls_name, fname = ins[2]
                                home = self.loader.load(
                                    cls_name).find_static_home(fname)
                                c = (home.statics, fname)
                                cell[0] = c
                            arr = c[0][c[1]]
                            idx = locs[ins[1]]
                            if arr is None or arr.__class__ is RR:
                                raise self._npe(arr, "arrayload")
                            if not isinstance(arr, Arr):
                                raise VMError(f"arrayload on {_tname(arr)}")
                            data = arr.data
                            if 0 <= idx < len(data):
                                push(data[idx])
                            else:
                                raise self.throw(
                                    "IndexOutOfBoundsException",
                                    f"index {idx} length {len(data)}")
                            pc += 3
                        elif oid == FI_LOAD_JZ:
                            pc = pc + 2 if tr(locs[ins[1]]) else ins[2]
                        elif oid == FI_LOAD_JNZ:
                            pc = ins[2] if tr(locs[ins[1]]) else pc + 2
                        elif oid == FI_LL_OP2:
                            push(ins[5](locs[ins[1]], locs[ins[2]]))
                            pc += 3
                        elif oid == FI_LC_OP2:
                            push(ins[5](locs[ins[1]], ins[2]))
                            pc += 3
                        elif oid == FI_LL_ARITH:
                            push(ins[5](self, locs[ins[1]], locs[ins[2]]))
                            pc += 3
                        elif oid == FI_LC_ARITH:
                            push(ins[5](self, locs[ins[1]], ins[2]))
                            pc += 3
                        elif oid == FI_LL_ALOAD:
                            arr = locs[ins[1]]
                            idx = locs[ins[2]]
                            if arr is None or arr.__class__ is RR:
                                raise self._npe(arr, "arrayload")
                            if not isinstance(arr, Arr):
                                raise VMError(f"arrayload on {_tname(arr)}")
                            data = arr.data
                            if 0 <= idx < len(data):
                                push(data[idx])
                            else:
                                raise self.throw(
                                    "IndexOutOfBoundsException",
                                    f"index {idx} length {len(data)}")
                            pc += 3
                        elif oid == FI_LOAD_LOAD:
                            push(locs[ins[1]])
                            push(locs[ins[2]])
                            pc += 2
                        elif oid == FI_LOAD_CONST:
                            push(locs[ins[1]])
                            push(ins[2])
                            pc += 2
                        elif oid == FI_CONST_STORE:
                            locs[ins[2]] = ins[1]
                            pc += 2
                        elif oid == FI_CMP_JZ:
                            b = pop()
                            a = pop()
                            pc = pc + 2 if ins[5](a, b) else ins[1]
                        elif oid == FI_CMP_JNZ:
                            b = pop()
                            a = pop()
                            pc = ins[1] if ins[5](a, b) else pc + 2
                        elif oid == FI_LL_CMP_JNZ:
                            s = ins[1]
                            pc = ins[2] if ins[5](locs[s[0]], locs[s[1]]) \
                                else pc + 4
                        elif oid == FI_LC_CMP_JNZ:
                            s = ins[1]
                            pc = ins[2] if ins[5](locs[s[0]], s[1]) \
                                else pc + 4
                        elif oid == FI_LGS_CMP_JNZ:
                            s = ins[1]
                            aux = ins[5]
                            cell = aux[1]
                            c = cell[0]
                            if c is None:
                                cls_name, fname = s[1]
                                home = self.loader.load(
                                    cls_name).find_static_home(fname)
                                c = (home.statics, fname)
                                cell[0] = c
                            pc = ins[2] if aux[0](locs[s[0]], c[0][c[1]]) \
                                else pc + 4
                        elif oid == FI_LOAD_GETF:
                            obj = locs[ins[1]]
                            fname = ins[2]
                            if isinstance(obj, Inst):
                                v = obj.fields.get(fname, miss)
                                if v is miss:
                                    raise LinkError(
                                        f"no field {fname!r} on {_tname(obj)}")
                                push(v)
                            elif obj is None or obj.__class__ is RR:
                                raise self._npe(obj, f"getfield {fname}")
                            else:
                                raise LinkError(
                                    f"no field {fname!r} on {_tname(obj)}")
                            pc += 2
                        elif oid == I_CONST:
                            push(ins[1])
                            pc += 1
                        elif oid == I_STORE:
                            locs[ins[1]] = pop()
                            pc += 1
                        elif oid == I_GETS:
                            cell = ins[5]
                            c = cell[0]
                            if c is None:
                                cls_name, fname = ins[1]
                                home = self.loader.load(
                                    cls_name).find_static_home(fname)
                                c = (home.statics, fname)
                                cell[0] = c
                            push(c[0][c[1]])
                            pc += 1
                        elif oid == I_ALOAD:
                            idx = pop()
                            arr = pop()
                            if arr is None or arr.__class__ is RR:
                                raise self._npe(arr, "arrayload")
                            if not isinstance(arr, Arr):
                                raise VMError(f"arrayload on {_tname(arr)}")
                            data = arr.data
                            if 0 <= idx < len(data):
                                push(data[idx])
                            else:
                                raise self.throw(
                                    "IndexOutOfBoundsException",
                                    f"index {idx} length {len(data)}")
                            pc += 1
                        elif BIN_LO <= oid <= BIN_HI:
                            b = pop()
                            a = pop()
                            push(ins[5](self, a, b))
                            pc += 1
                        elif oid == I_JZ:
                            pc = pc + 1 if tr(pop()) else ins[1]
                        elif oid == I_JMP:
                            # Backward jumps are loop back-edges (the
                            # codegen compiles every loop top-tested
                            # with a JMP to the condition, and JMP is
                            # never fused), so polling here bounds
                            # quantum overshoot to one loop body even
                            # in call-free loops.
                            if q is not None and ins[1] <= pc \
                                    and self.instr_count + n_acc >= q_limit:
                                frame.pc = pc
                                return "preempted"
                            if jm is not None and ins[1] <= pc:
                                # OSR: loops tier up at the back edge
                                code2 = frame.code
                                cf2 = jm.get(code2)
                                if cf2 is None:
                                    h = code2.hotness = code2.hotness + 1
                                    if h >= TH:
                                        cf2 = _ci(self, code2, jm)
                                if cf2 and ins[1] in cf2[1]:
                                    w_acc += ins[3]
                                    n_acc += ins[4]
                                    frame.pc = ins[1]
                                    break
                            pc = ins[1]
                        elif oid == I_JNZ:
                            pc = ins[1] if tr(pop()) else pc + 1
                        elif oid == I_GETF:
                            obj = pop()
                            fname = ins[1]
                            if isinstance(obj, Inst):
                                v = obj.fields.get(fname, miss)
                                if v is miss:
                                    raise LinkError(
                                        f"no field {fname!r} on {_tname(obj)}")
                                push(v)
                            elif obj is None or obj.__class__ is RR:
                                raise self._npe(obj, f"getfield {fname}")
                            else:
                                raise LinkError(
                                    f"no field {fname!r} on {_tname(obj)}")
                            pc += 1
                        elif oid == I_PUTF:
                            value = pop()
                            obj = pop()
                            fname = ins[1]
                            if isinstance(obj, Inst) and fname in obj.fields:
                                obj.fields[fname] = value
                            elif obj is None or obj.__class__ is RR:
                                raise self._npe(obj, f"putfield {fname}")
                            else:
                                raise LinkError(
                                    f"no field {fname!r} on {_tname(obj)}")
                            pc += 1
                        elif oid == I_ASTORE:
                            value = pop()
                            idx = pop()
                            arr = pop()
                            if arr is None or arr.__class__ is RR:
                                raise self._npe(arr, "arraystore")
                            if not isinstance(arr, Arr):
                                raise VMError(f"arraystore on {_tname(arr)}")
                            data = arr.data
                            if 0 <= idx < len(data):
                                data[idx] = value
                            else:
                                raise self.throw(
                                    "IndexOutOfBoundsException",
                                    f"index {idx} length {len(data)}")
                            pc += 1
                        elif oid == I_INVOKESTATIC:
                            if q is not None and \
                                    self.instr_count + n_acc >= q_limit:
                                # Safepoint poll: yield to the scheduler
                                # before the call executes (resume
                                # re-dispatches this instruction).
                                frame.pc = pc
                                return "preempted"
                            cell = ins[5]
                            c = cell[0]
                            if c is None:
                                cls_name, mname = ins[1]
                                cls = self.loader.load(cls_name)
                                code2 = cls.find_method(mname)
                                if code2 is None:
                                    raise LinkError(
                                        f"no method {cls_name}.{mname}")
                                if not code2.is_static:
                                    raise VMError(
                                        f"{cls_name}.{mname} is not static")
                                c = (code2, _arity_pad(code2, ins[2]))
                                cell[0] = c
                            code2 = c[0]
                            nargs = ins[2]
                            if nargs:
                                args = stack[-nargs:]
                                del stack[-nargs:]
                            else:
                                args = []
                            frame.pc = pc + 1
                            # pre-validated arity: build the frame without
                            # re-running Frame.__init__'s checks
                            frame = Frm.__new__(Frm)
                            frame.code = code2
                            frame.locals = locs = args + c[1]
                            frame.stack = stack = []
                            frame.pc = pc = 0
                            frame.pinned = False
                            frames.append(frame)
                            push = stack.append
                            pop = stack.pop
                            stream = decoded.get(code2)
                            if stream is None:
                                stream = self.decoded(code2)
                            if jm is not None:
                                # Tier-up at the call site: charge the
                                # invoke, then enter via the driver.
                                cf2 = jm.get(code2)
                                if cf2 is None:
                                    h = code2.hotness = code2.hotness + 1
                                    if h >= TH:
                                        cf2 = _ci(self, code2, jm)
                                if cf2:
                                    w_acc += ins[3]
                                    n_acc += ins[4]
                                    break
                        elif oid == I_RETV:
                            if q is not None and \
                                    self.instr_count + n_acc >= q_limit:
                                frame.pc = pc
                                return "preempted"
                            value = pop()
                            frames.pop()
                            if frames:
                                frame = frames[-1]
                                stack = frame.stack
                                stack.append(value)
                                locs = frame.locals
                                pc = frame.pc
                                push = stack.append
                                pop = stack.pop
                                code2 = frame.code
                                stream = decoded.get(code2)
                                if stream is None:
                                    stream = self.decoded(code2)
                                if jm is not None:
                                    # Re-enter a compiled caller at its
                                    # return-continuation entry point.
                                    cf2 = jm.get(code2)
                                    if cf2 and pc in cf2[1]:
                                        w_acc += ins[3]
                                        n_acc += ins[4]
                                        break
                            else:
                                thread.finished = True
                                thread.result = value
                                w_acc += ins[3]
                                n_acc += 1
                                break
                        elif oid == I_RET:
                            if q is not None and \
                                    self.instr_count + n_acc >= q_limit:
                                frame.pc = pc
                                return "preempted"
                            frames.pop()
                            if frames:
                                frame = frames[-1]
                                stack = frame.stack
                                stack.append(None)
                                locs = frame.locals
                                pc = frame.pc
                                push = stack.append
                                pop = stack.pop
                                code2 = frame.code
                                stream = decoded.get(code2)
                                if stream is None:
                                    stream = self.decoded(code2)
                                if jm is not None:
                                    cf2 = jm.get(code2)
                                    if cf2 and pc in cf2[1]:
                                        w_acc += ins[3]
                                        n_acc += ins[4]
                                        break
                            else:
                                thread.finished = True
                                thread.result = None
                                w_acc += ins[3]
                                n_acc += 1
                                break
                        elif oid == I_INVOKEVIRT:
                            if q is not None and \
                                    self.instr_count + n_acc >= q_limit:
                                frame.pc = pc
                                return "preempted"
                            nargs = ins[2]
                            if nargs:
                                args = stack[-nargs:]
                                del stack[-nargs:]
                            else:
                                args = []
                            receiver = pop()
                            cell = ins[5]
                            if isinstance(receiver, Inst) \
                                    and receiver.vmclass is cell[0]:
                                c = cell[1]
                            else:
                                if nullish(receiver):
                                    raise self._npe(receiver,
                                                    f"invoke {ins[1]}")
                                code2 = self._resolve_method(receiver, ins[1])
                                # bind the cell only once fully resolved:
                                # _arity_pad may raise, and a half-written
                                # cell would mis-dispatch later receivers
                                c = (code2, _arity_pad(code2, nargs + 1))
                                cell[0] = receiver.vmclass
                                cell[1] = c
                            code2 = c[0]
                            frame.pc = pc + 1
                            frame = Frm.__new__(Frm)
                            frame.code = code2
                            frame.locals = locs = [receiver] + args + c[1]
                            frame.stack = stack = []
                            frame.pc = pc = 0
                            frame.pinned = False
                            frames.append(frame)
                            push = stack.append
                            pop = stack.pop
                            stream = decoded.get(code2)
                            if stream is None:
                                stream = self.decoded(code2)
                            if jm is not None:
                                cf2 = jm.get(code2)
                                if cf2 is None:
                                    h = code2.hotness = code2.hotness + 1
                                    if h >= TH:
                                        cf2 = _ci(self, code2, jm)
                                if cf2:
                                    w_acc += ins[3]
                                    n_acc += ins[4]
                                    break
                        elif oid == I_NATIVE:
                            if q is not None and \
                                    self.instr_count + n_acc >= q_limit:
                                frame.pc = pc
                                return "preempted"
                            nargs = ins[2]
                            if nargs:
                                args = stack[-nargs:]
                                del stack[-nargs:]
                            else:
                                args = []
                            # Safepoint: natives may read the clock, print,
                            # charge time, or install hooks — flush batched
                            # accounting and expose a precise frame.pc.
                            self.clock += op_cost * w_acc
                            self.instr_count += n_acc
                            w_acc = 0.0
                            n_acc = 0
                            frame.pc = pc
                            fn = self.natives.lookup(ins[1])
                            self.charge(self.cost.native_base)
                            push(fn(self, args))
                            pc += 1
                            if (self.breakpoints
                                    or self.on_breakpoint is not None
                                    or self.on_write is not None):
                                # Loop-selection guard: hooks appeared.
                                w_acc += ins[3]
                                n_acc += 1
                                frame.pc = pc
                                return None
                            if thread.pending_exception is not None:
                                w_acc += ins[3]
                                n_acc += 1
                                frame.pc = pc
                                break
                        elif oid == I_DUP:
                            push(stack[-1])
                            pc += 1
                        elif oid == I_POP:
                            pop()
                            pc += 1
                        else:
                            h = _COLD.get(oid)
                            if h is None:  # pragma: no cover
                                raise VMError(
                                    f"unimplemented opcode "
                                    f"{frame.code.instrs[pc].op}")
                            pc = h(self, frame, stack, ins, pc)
                        w_acc += ins[3]
                        n_acc += ins[4]
                except GuestThrow as gt:
                    # Guest exceptions always originate from the last
                    # component of a (super)instruction: report the
                    # precise faulting bci and charge the group's leading
                    # components, then dispatch.  The faulting component
                    # itself is charged only when a handler is found —
                    # the legacy loop returns before charging a fatally-
                    # throwing instruction.
                    frame.pc = pc + ins[4] - 1
                    self.clock += op_cost * (w_acc + ins[6])
                    self.instr_count += n_acc + ins[4] - 1
                    w_acc = 0.0
                    n_acc = 0
                    if not self._dispatch(thread, gt.exc):
                        return "finished"
                    w_acc = ins[3] - ins[6]
                    n_acc = 1
                except BaseException:
                    # Host-level error (LinkError, VMError, TypeError...):
                    # report the faulting bci like the legacy loop before
                    # propagating.
                    frame.pc = pc
                    raise
            thread.finished = True
            return "finished"
        finally:
            self.clock += op_cost * w_acc
            self.instr_count += n_acc

    # -- the legacy (hook-aware) loop ---------------------------------------------

    def _run_loop(self, thread: ThreadState,
                  stop: Optional[Callable[[ThreadState], bool]],
                  max_instrs: Optional[int],
                  op_cost: float, executed: int,
                  quantum: Optional[int] = None) -> str:
        weight = self.cost.op_weights.get
        while thread.frames:
            if thread.pending_exception is not None:
                exc = thread.pending_exception
                thread.pending_exception = None
                if not self._dispatch(thread, exc):
                    return "finished"
                continue
            if stop is not None and stop(thread):
                return "stopped"
            if max_instrs is not None and executed >= max_instrs:
                return "limit"
            if quantum is not None and executed >= quantum:
                return "preempted"
            frame = thread.frames[-1]
            pc = frame.pc
            if self.breakpoints:
                key = (frame.code.class_name, frame.code.name, pc)
                if key in self.breakpoints:
                    guard = (id(frame), pc)
                    if self._bp_guard != guard:
                        self._bp_guard = guard
                        if self.on_breakpoint is not None:
                            self.on_breakpoint(self, thread)
                        continue  # re-check pending exception etc.
                else:
                    self._bp_guard = None
            ins = frame.code.instrs[pc]
            try:
                self._execute(thread, frame, ins)
            except GuestThrow as gt:
                if not self._dispatch(thread, gt.exc):
                    return "finished"
            self.clock += op_cost * weight(ins.op, 1.0)
            self.instr_count += 1
            executed += 1
        thread.finished = True
        return "finished"

    # -- exception dispatch ------------------------------------------------------

    def _dispatch(self, thread: ThreadState, exc: VMInstance) -> bool:
        """Unwind ``thread`` looking for a handler for ``exc``.  Returns
        False if the thread died (uncaught)."""
        first = True
        while thread.frames:
            frame = thread.frames[-1]
            # For frames suspended at a call, the raising bci is pc-1.
            pc = frame.pc if first else max(0, frame.pc - 1)
            first = False
            for entry in frame.code.exc_table:
                if entry.start <= pc < entry.end and self._matches(
                        exc, entry.exc_class):
                    frame.stack.clear()
                    frame.stack.append(exc)
                    frame.pc = entry.handler
                    self._bp_guard = None
                    return True
            thread.frames.pop()
        thread.finished = True
        thread.uncaught = exc
        if self.on_uncaught is not None and self.on_uncaught(self, thread, exc):
            thread.uncaught = None
        return False

    def _matches(self, exc: VMInstance, handler_class: str) -> bool:
        if handler_class == "__ObjectFault":
            # Injected object-fault rows match only a NullPointerException
            # that carries remote-ref provenance; a genuine application
            # null falls through to application handlers (paper III.C).
            return (isinstance(exc.host_payload, RemoteRef)
                    and exc.vmclass.is_subclass_of("NullPointerException"))
        if handler_class == "Throwable":
            return True
        return exc.vmclass.is_subclass_of(handler_class)

    # -- helpers -----------------------------------------------------------------

    def _npe(self, ref: Any, what: str) -> GuestThrow:
        """NullPointerException carrying remote-ref provenance (if any)."""
        return self.throw("NullPointerException", what, payload=ref)

    def _resolve_method(self, receiver: Any, name: str) -> CodeObject:
        if not isinstance(receiver, VMInstance):
            raise VMError(
                f"virtual call {name!r} on non-object {type(receiver).__name__}")
        code = receiver.vmclass.find_method(name)
        if code is None:
            raise LinkError(f"no method {receiver.class_name}.{name}")
        if code.is_static:
            raise VMError(f"{receiver.class_name}.{name} is static")
        return code

    # -- the legacy interpreter ---------------------------------------------------

    def _execute(self, thread: ThreadState, frame: Frame, ins: Any) -> None:
        o = ins.op
        stack = frame.stack

        if o == op.LOAD:
            stack.append(frame.locals[ins.a])
        elif o == op.STORE:
            frame.locals[ins.a] = stack.pop()
        elif o == op.CONST:
            stack.append(ins.a)
        elif o == op.JMP:
            frame.pc = ins.a
            return
        elif o == op.JZ:
            if not truthy(stack.pop()):
                frame.pc = ins.a
                return
        elif o == op.JNZ:
            if truthy(stack.pop()):
                frame.pc = ins.a
                return
        elif o in _ARITH:
            b = stack.pop()
            a = stack.pop()
            stack.append(_ARITH[o](self, a, b))
        elif o == op.NEG:
            stack.append(-stack.pop())
        elif o == op.NOT:
            stack.append(not truthy(stack.pop()))
        elif o == op.POP:
            stack.pop()
        elif o == op.DUP:
            stack.append(stack[-1])
        elif o == op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif o == op.NOP:
            pass
        elif o == op.GETF:
            obj = stack.pop()
            if is_nullish(obj):
                raise self._npe(obj, f"getfield {ins.a}")
            if not isinstance(obj, VMInstance) or ins.a not in obj.fields:
                raise LinkError(f"no field {ins.a!r} on {_tname(obj)}")
            stack.append(obj.fields[ins.a])
        elif o == op.PUTF:
            value = stack.pop()
            obj = stack.pop()
            if is_nullish(obj):
                raise self._npe(obj, f"putfield {ins.a}")
            if not isinstance(obj, VMInstance) or ins.a not in obj.fields:
                raise LinkError(f"no field {ins.a!r} on {_tname(obj)}")
            obj.fields[ins.a] = value
            if self.on_write is not None:
                self.on_write(obj)
        elif o == op.GETS:
            cls_name, fname = ins.a
            home = self.loader.load(cls_name).find_static_home(fname)
            stack.append(home.statics[fname])
        elif o == op.PUTS:
            cls_name, fname = ins.a
            home = self.loader.load(cls_name).find_static_home(fname)
            home.statics[fname] = stack.pop()
            if self.on_write is not None:
                self.on_write(home)
        elif o == op.ISREMOTE:
            stack.append(isinstance(stack.pop(), RemoteRef))
        elif o == op.NEW:
            stack.append(self.heap.new_instance(self.loader.load(ins.a)))
        elif o == op.NEWARR:
            n = stack.pop()
            if not isinstance(n, int) or n < 0:
                raise self.throw("IndexOutOfBoundsException",
                                 f"array length {n}")
            need = n * (ins.b or 8) + 16
            if self.node is not None and (
                    self.heap.allocated_bytes + need
                    > self.node.spec.ram_bytes):
                raise self.throw(
                    "OutOfMemoryError",
                    f"array of {need} bytes exceeds node RAM")
            stack.append(self.heap.new_array(ins.a, n, ins.b or 8))
        elif o == op.ALOAD:
            idx = stack.pop()
            arr = stack.pop()
            if is_nullish(arr):
                raise self._npe(arr, "arrayload")
            if not isinstance(arr, VMArray):
                raise VMError(f"arrayload on {_tname(arr)}")
            if not (0 <= idx < len(arr.data)):
                raise self.throw("IndexOutOfBoundsException",
                                 f"index {idx} length {len(arr.data)}")
            stack.append(arr.data[idx])
        elif o == op.ASTORE:
            value = stack.pop()
            idx = stack.pop()
            arr = stack.pop()
            if is_nullish(arr):
                raise self._npe(arr, "arraystore")
            if not isinstance(arr, VMArray):
                raise VMError(f"arraystore on {_tname(arr)}")
            if not (0 <= idx < len(arr.data)):
                raise self.throw("IndexOutOfBoundsException",
                                 f"index {idx} length {len(arr.data)}")
            arr.data[idx] = value
            if self.on_write is not None:
                self.on_write(arr)
        elif o == op.LEN:
            arr = stack.pop()
            if is_nullish(arr):
                raise self._npe(arr, "arraylength")
            if not isinstance(arr, VMArray):
                raise VMError(f"arraylength on {_tname(arr)}")
            stack.append(len(arr.data))
        elif o == op.INVOKESTATIC:
            cls_name, mname = ins.a
            nargs = ins.b
            args = stack[len(stack) - nargs:] if nargs else []
            del stack[len(stack) - nargs:]
            cls = self.loader.load(cls_name)
            code = cls.find_method(mname)
            if code is None:
                raise LinkError(f"no method {cls_name}.{mname}")
            if not code.is_static:
                raise VMError(f"{cls_name}.{mname} is not static")
            frame.pc += 1
            thread.frames.append(Frame(code, args))
            return
        elif o == op.INVOKEVIRT:
            nargs = ins.b
            args = stack[len(stack) - nargs:] if nargs else []
            del stack[len(stack) - nargs:]
            receiver = stack.pop()
            if is_nullish(receiver):
                raise self._npe(receiver, f"invoke {ins.a}")
            code = self._resolve_method(receiver, ins.a)
            frame.pc += 1
            thread.frames.append(Frame(code, [receiver] + args))
            return
        elif o == op.NATIVE:
            nargs = ins.b
            args = stack[len(stack) - nargs:] if nargs else []
            del stack[len(stack) - nargs:]
            fn = self.natives.lookup(ins.a)
            self.charge(self.cost.native_base)
            stack.append(fn(self, args))
        elif o == op.RET:
            self._return(thread, None)
            return
        elif o == op.RETV:
            self._return(thread, stack.pop())
            return
        elif o == op.THROW:
            exc = stack.pop()
            if is_nullish(exc):
                raise self._npe(exc, "throw")
            if not isinstance(exc, VMInstance) or not exc.vmclass.is_subclass_of("Throwable"):
                raise VMError(f"throw of non-Throwable {_tname(exc)}")
            raise GuestThrow(exc)
        elif o == op.LSWITCH:
            key = stack.pop()
            frame.pc = ins.a.get(key, ins.b)
            return
        else:  # pragma: no cover
            raise VMError(f"unimplemented opcode {o}")
        frame.pc += 1

    def _return(self, thread: ThreadState, value: Any) -> None:
        """Pop the top frame, delivering ``value`` to the caller (or
        finishing the thread)."""
        thread.frames.pop()
        self._bp_guard = None
        if thread.frames:
            thread.frames[-1].stack.append(value)
        else:
            thread.finished = True
            thread.result = value


def _tname(v: Any) -> str:
    if isinstance(v, VMInstance):
        return v.class_name
    if isinstance(v, VMArray):
        return f"{v.kind}[]"
    return type(v).__name__


#: missing-field sentinel for the fast GETF path
_MISSING = object()


def _arity_pad(code: CodeObject, nargs: int) -> List[Any]:
    """Validate a call site's arity against ``code`` once (at inline-
    cache bind time) and return the shared locals padding the fast loop
    concatenates after the arguments (callers copy, never mutate it)."""
    if nargs != code.nparams:
        raise ValueError(
            f"{code.qualname}: expected {code.nparams} args, got {nargs}")
    return [None] * (code.max_locals - nargs)


# -- arithmetic helpers (Java semantics for int division) ------------------------

def _add(m: Machine, a: Any, b: Any) -> Any:
    if isinstance(a, str) or isinstance(b, str):
        from repro.vm.natives import _to_str
        return _to_str(a) + _to_str(b) if not (
            isinstance(a, str) and isinstance(b, str)) else a + b
    return a + b


def _div(m: Machine, a: Any, b: Any) -> Any:
    if b == 0 and isinstance(a, int) and isinstance(b, int):
        raise m.throw("ArithmeticException", "/ by zero")
    if isinstance(a, int) and isinstance(b, int) and not isinstance(a, bool):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def _mod(m: Machine, a: Any, b: Any) -> Any:
    if b == 0 and isinstance(a, int) and isinstance(b, int):
        raise m.throw("ArithmeticException", "% by zero")
    if isinstance(a, int) and isinstance(b, int):
        return a - _div(m, a, b) * b
    return math.fmod(a, b)


def _eq(m: Machine, a: Any, b: Any) -> bool:
    if isinstance(a, (VMInstance, VMArray)) or isinstance(b, (VMInstance, VMArray)):
        return a is b
    if isinstance(a, RemoteRef) or isinstance(b, RemoteRef):
        # Identity comparison against an unfetched object cannot be
        # answered locally; a remote ref equals nothing but itself.
        return a is b
    return a == b


_ARITH: Dict[str, Callable[[Machine, Any, Any], Any]] = {
    op.ADD: _add,
    op.SUB: lambda m, a, b: a - b,
    op.MUL: lambda m, a, b: a * b,
    op.DIV: _div,
    op.MOD: _mod,
    op.EQ: _eq,
    op.NE: lambda m, a, b: not _eq(m, a, b),
    op.LT: lambda m, a, b: a < b,
    op.LE: lambda m, a, b: a <= b,
    op.GT: lambda m, a, b: a > b,
    op.GE: lambda m, a, b: a >= b,
}

#: 2-arg fast equivalents used by fused superinstructions.  ``EQ``/``NE``
#: reduce to ``operator.eq``/``ne`` because no guest value type defines
#: ``__eq__``: VMInstance/VMArray/RemoteRef fall back to identity, which
#: is exactly what :func:`_eq` computes, and primitives compare by value.
#: ``ADD`` (string coercion) and ``DIV``/``MOD`` (guest exceptions) are
#: deliberately absent — they keep the 3-arg machine helpers.
_FAST2: Dict[str, Callable[[Any, Any], Any]] = {
    op.SUB: operator.sub,
    op.MUL: operator.mul,
    op.EQ: operator.eq,
    op.NE: operator.ne,
    op.LT: operator.lt,
    op.LE: operator.le,
    op.GT: operator.gt,
    op.GE: operator.ge,
}


# -- dense opcode ids used by the fast loop --------------------------------------

_I_CONST = op.OP_IDS[op.CONST]
_I_LOAD = op.OP_IDS[op.LOAD]
_I_STORE = op.OP_IDS[op.STORE]
_I_POP = op.OP_IDS[op.POP]
_I_DUP = op.OP_IDS[op.DUP]
_I_GETF = op.OP_IDS[op.GETF]
_I_PUTF = op.OP_IDS[op.PUTF]
_I_GETS = op.OP_IDS[op.GETS]
_I_ALOAD = op.OP_IDS[op.ALOAD]
_I_ASTORE = op.OP_IDS[op.ASTORE]
_I_JMP = op.OP_IDS[op.JMP]
_I_JZ = op.OP_IDS[op.JZ]
_I_JNZ = op.OP_IDS[op.JNZ]
_I_RET = op.OP_IDS[op.RET]
_I_RETV = op.OP_IDS[op.RETV]
_I_INVOKESTATIC = op.OP_IDS[op.INVOKESTATIC]
_I_INVOKEVIRT = op.OP_IDS[op.INVOKEVIRT]
_I_NATIVE = op.OP_IDS[op.NATIVE]
_I_BINOP_LO = op.OP_IDS[op.ADD]
_I_BINOP_HI = op.OP_IDS[op.GE]


# -- cold-path handlers for the fast loop ----------------------------------------
#
# Rarely executed opcodes are dispatched through this table instead of
# bloating the hot if/elif chain.  Signature: fn(machine, frame, stack,
# ins, pc) -> new pc; guest exceptions propagate as GuestThrow.

def _cold_new(m: "Machine", frame: Frame, stack: list, ins: tuple,
              pc: int) -> int:
    stack.append(m.heap.new_instance(m.loader.load(ins[1])))
    return pc + 1


def _cold_newarr(m: "Machine", frame: Frame, stack: list, ins: tuple,
                 pc: int) -> int:
    n = stack.pop()
    if not isinstance(n, int) or n < 0:
        raise m.throw("IndexOutOfBoundsException", f"array length {n}")
    need = n * (ins[2] or 8) + 16
    if m.node is not None and (
            m.heap.allocated_bytes + need > m.node.spec.ram_bytes):
        raise m.throw("OutOfMemoryError",
                      f"array of {need} bytes exceeds node RAM")
    stack.append(m.heap.new_array(ins[1], n, ins[2] or 8))
    return pc + 1


def _cold_len(m: "Machine", frame: Frame, stack: list, ins: tuple,
              pc: int) -> int:
    arr = stack.pop()
    if is_nullish(arr):
        raise m._npe(arr, "arraylength")
    if not isinstance(arr, VMArray):
        raise VMError(f"arraylength on {_tname(arr)}")
    stack.append(len(arr.data))
    return pc + 1


def _cold_puts(m: "Machine", frame: Frame, stack: list, ins: tuple,
               pc: int) -> int:
    cell = ins[5]
    c = cell[0]
    if c is None:
        cls_name, fname = ins[1]
        home = m.loader.load(cls_name).find_static_home(fname)
        c = (home.statics, fname)
        cell[0] = c
    c[0][c[1]] = stack.pop()
    # the fast loop only runs with on_write uninstalled, so no barrier
    return pc + 1


def _cold_isremote(m: "Machine", frame: Frame, stack: list, ins: tuple,
                   pc: int) -> int:
    stack.append(isinstance(stack.pop(), RemoteRef))
    return pc + 1


def _cold_neg(m: "Machine", frame: Frame, stack: list, ins: tuple,
              pc: int) -> int:
    stack.append(-stack.pop())
    return pc + 1


def _cold_not(m: "Machine", frame: Frame, stack: list, ins: tuple,
              pc: int) -> int:
    stack.append(not truthy(stack.pop()))
    return pc + 1


def _cold_swap(m: "Machine", frame: Frame, stack: list, ins: tuple,
               pc: int) -> int:
    stack[-1], stack[-2] = stack[-2], stack[-1]
    return pc + 1


def _cold_nop(m: "Machine", frame: Frame, stack: list, ins: tuple,
              pc: int) -> int:
    return pc + 1


def _cold_throw(m: "Machine", frame: Frame, stack: list, ins: tuple,
                pc: int) -> int:
    exc = stack.pop()
    if is_nullish(exc):
        raise m._npe(exc, "throw")
    if not isinstance(exc, VMInstance) \
            or not exc.vmclass.is_subclass_of("Throwable"):
        raise VMError(f"throw of non-Throwable {_tname(exc)}")
    raise GuestThrow(exc)


def _cold_lswitch(m: "Machine", frame: Frame, stack: list, ins: tuple,
                  pc: int) -> int:
    return ins[1].get(stack.pop(), ins[2])


_COLD: Dict[int, Callable[..., int]] = {
    op.OP_IDS[op.NEW]: _cold_new,
    op.OP_IDS[op.NEWARR]: _cold_newarr,
    op.OP_IDS[op.LEN]: _cold_len,
    op.OP_IDS[op.PUTS]: _cold_puts,
    op.OP_IDS[op.ISREMOTE]: _cold_isremote,
    op.OP_IDS[op.NEG]: _cold_neg,
    op.OP_IDS[op.NOT]: _cold_not,
    op.OP_IDS[op.SWAP]: _cold_swap,
    op.OP_IDS[op.NOP]: _cold_nop,
    op.OP_IDS[op.THROW]: _cold_throw,
    op.OP_IDS[op.LSWITCH]: _cold_lswitch,
}
