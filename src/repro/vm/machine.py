"""The stack-machine VM.

:class:`Machine` executes guest bytecode with real frames, a real heap,
guest exception tables, breakpoints, and a virtual clock.  It is the
substrate that migration engines manipulate through the debug interface
(:mod:`repro.vm.vmti`).

Execution model per instruction:

1. deliver any pending (asynchronously injected) exception;
2. fire a breakpoint event if one is set at the current location;
3. execute the instruction, charging ``cost.op_cost`` to the clock
   (scaled by the hosting node's CPU speed factor).

Guest exceptions unwind through per-method exception tables; the
interpreter never uses host recursion for guest calls, so frames are
plain data that can be captured, shipped and rebuilt.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bytecode import opcodes as op
from repro.bytecode.code import ClassFile, CodeObject
from repro.errors import LinkError, NativeError, VMError
from repro.vm.classloader import ClassLoader
from repro.vm.costmodel import CostModel
from repro.vm.frames import Frame, ThreadState
from repro.vm.heap import Heap
from repro.vm.natives import NativeRegistry
from repro.vm.objects import VMArray, VMClass, VMInstance
from repro.vm.values import RemoteRef, is_nullish, truthy


class GuestThrow(Exception):
    """Internal unwinding carrier for guest exceptions (host-side)."""

    def __init__(self, exc: VMInstance):
        super().__init__(exc.class_name)
        self.exc = exc


class UncaughtGuestException(VMError):
    """Raised by :meth:`Machine.call` when the guest program lets an
    exception escape ``main`` and no uncaught-handler consumed it."""

    def __init__(self, exc: VMInstance):
        msg = exc.fields.get("msg", "")
        super().__init__(f"uncaught {exc.class_name}: {msg}")
        self.exc = exc


class Machine:
    """One virtual machine instance placed on a (simulated) node."""

    def __init__(self, classpath: Optional[Dict[str, ClassFile]] = None,
                 cost: Optional[CostModel] = None,
                 node: Any = None, fs: Any = None,
                 name: str = "vm"):
        self.loader = ClassLoader(classpath)
        self.heap = Heap()
        self.natives = NativeRegistry()
        self.cost = cost or CostModel()
        #: the hosting cluster node (or None for standalone use)
        self.node = node
        #: the cluster file system (or None)
        self.fs = fs
        self.name = name
        #: simulated seconds consumed by this VM
        self.clock = 0.0
        #: executed instruction count
        self.instr_count = 0
        #: guest console output lines
        self.stdout: List[str] = []
        #: breakpoints: (class_name, method_name, bci)
        self.breakpoints: set[Tuple[str, str, int]] = set()
        #: callback fired on breakpoint hit: fn(machine, thread)
        self.on_breakpoint: Optional[Callable[["Machine", ThreadState], None]] = None
        #: callback fired on a field/element write: fn(obj) — object
        #: managers use it to track the dirty set for write-back
        self.on_write: Optional[Callable[[Any], None]] = None
        #: uncaught-exception hook: fn(machine, thread, exc) -> handled?
        self.on_uncaught: Optional[
            Callable[["Machine", ThreadState, VMInstance], bool]] = None
        #: scratch space for attached runtimes (object manager, etc.)
        self.extras: Dict[str, Any] = {}
        self._speed = node.spec.speed_factor if node is not None else 1.0
        self._bp_guard: Optional[Tuple[int, int]] = None

    # -- time ------------------------------------------------------------

    def charge(self, reference_seconds: float) -> None:
        """Add CPU time (scaled by the node's speed factor)."""
        self.clock += reference_seconds * self._speed

    def charge_raw(self, seconds: float) -> None:
        """Add wall time not subject to CPU scaling (I/O, network)."""
        self.clock += seconds

    # -- guest exception construction ----------------------------------------

    def make_exception(self, class_name: str, msg: str = "",
                       payload: Any = None) -> VMInstance:
        """Allocate a guest exception object."""
        cls = self.loader.load(class_name)
        exc = self.heap.new_instance(cls)
        if "msg" in exc.fields:
            exc.fields["msg"] = msg
        exc.host_payload = payload
        return exc

    def throw(self, class_name: str, msg: str = "",
              payload: Any = None) -> GuestThrow:
        """Build a guest exception and return the host carrier to raise."""
        return GuestThrow(self.make_exception(class_name, msg, payload))

    # -- threads --------------------------------------------------------------

    def spawn(self, class_name: str, method_name: str,
              args: Optional[List[Any]] = None,
              thread_name: str = "main") -> ThreadState:
        """Create a thread whose first frame invokes a static method."""
        cls = self.loader.load(class_name)
        code = cls.find_method(method_name)
        if code is None:
            raise LinkError(f"no method {class_name}.{method_name}")
        if not code.is_static:
            raise VMError(f"{class_name}.{method_name} is not static")
        thread = ThreadState(thread_name)
        thread.frames.append(Frame(code, list(args or [])))
        return thread

    def spawn_on_instance(self, receiver: VMInstance, method_name: str,
                          args: Optional[List[Any]] = None,
                          thread_name: str = "main") -> ThreadState:
        """Create a thread invoking an instance method on ``receiver``."""
        code = receiver.vmclass.find_method(method_name)
        if code is None or code.is_static:
            raise LinkError(
                f"no instance method {receiver.class_name}.{method_name}")
        thread = ThreadState(thread_name)
        thread.frames.append(Frame(code, [receiver] + list(args or [])))
        return thread

    def call(self, class_name: str, method_name: str,
             args: Optional[List[Any]] = None) -> Any:
        """Run a static method to completion and return its value."""
        thread = self.spawn(class_name, method_name, args)
        self.run(thread)
        if thread.uncaught is not None:
            raise UncaughtGuestException(thread.uncaught)
        return thread.result

    # -- main loop --------------------------------------------------------------

    def run(self, thread: ThreadState,
            stop: Optional[Callable[[ThreadState], bool]] = None,
            max_instrs: Optional[int] = None) -> str:
        """Execute ``thread`` until it finishes, ``stop`` returns True, or
        ``max_instrs`` run.  Returns ``"finished"`` / ``"stopped"`` /
        ``"limit"``."""
        executed = 0
        op_cost = (self.cost.instr_seconds * self.cost.exec_factor
                   * self.cost.agent_factor * self._speed)
        prev_thread = getattr(self, "current_thread", None)
        self.current_thread = thread
        try:
            return self._run_loop(thread, stop, max_instrs, op_cost, executed)
        finally:
            self.current_thread = prev_thread

    def _run_loop(self, thread: ThreadState,
                  stop: Optional[Callable[[ThreadState], bool]],
                  max_instrs: Optional[int],
                  op_cost: float, executed: int) -> str:
        weight = self.cost.op_weights.get
        while thread.frames:
            if thread.pending_exception is not None:
                exc = thread.pending_exception
                thread.pending_exception = None
                if not self._dispatch(thread, exc):
                    return "finished"
                continue
            if stop is not None and stop(thread):
                return "stopped"
            if max_instrs is not None and executed >= max_instrs:
                return "limit"
            frame = thread.frames[-1]
            pc = frame.pc
            if self.breakpoints:
                key = (frame.code.class_name, frame.code.name, pc)
                if key in self.breakpoints:
                    guard = (id(frame), pc)
                    if self._bp_guard != guard:
                        self._bp_guard = guard
                        if self.on_breakpoint is not None:
                            self.on_breakpoint(self, thread)
                        continue  # re-check pending exception etc.
                else:
                    self._bp_guard = None
            ins = frame.code.instrs[pc]
            try:
                self._execute(thread, frame, ins)
            except GuestThrow as gt:
                if not self._dispatch(thread, gt.exc):
                    return "finished"
            self.clock += op_cost * weight(ins.op, 1.0)
            self.instr_count += 1
            executed += 1
        thread.finished = True
        return "finished"

    # -- exception dispatch ------------------------------------------------------

    def _dispatch(self, thread: ThreadState, exc: VMInstance) -> bool:
        """Unwind ``thread`` looking for a handler for ``exc``.  Returns
        False if the thread died (uncaught)."""
        first = True
        while thread.frames:
            frame = thread.frames[-1]
            # For frames suspended at a call, the raising bci is pc-1.
            pc = frame.pc if first else max(0, frame.pc - 1)
            first = False
            for entry in frame.code.exc_table:
                if entry.start <= pc < entry.end and self._matches(
                        exc, entry.exc_class):
                    frame.stack.clear()
                    frame.stack.append(exc)
                    frame.pc = entry.handler
                    self._bp_guard = None
                    return True
            thread.frames.pop()
        thread.finished = True
        thread.uncaught = exc
        if self.on_uncaught is not None and self.on_uncaught(self, thread, exc):
            thread.uncaught = None
        return False

    def _matches(self, exc: VMInstance, handler_class: str) -> bool:
        if handler_class == "__ObjectFault":
            # Injected object-fault rows match only a NullPointerException
            # that carries remote-ref provenance; a genuine application
            # null falls through to application handlers (paper III.C).
            return (isinstance(exc.host_payload, RemoteRef)
                    and exc.vmclass.is_subclass_of("NullPointerException"))
        if handler_class == "Throwable":
            return True
        return exc.vmclass.is_subclass_of(handler_class)

    # -- helpers -----------------------------------------------------------------

    def _npe(self, ref: Any, what: str) -> GuestThrow:
        """NullPointerException carrying remote-ref provenance (if any)."""
        return self.throw("NullPointerException", what, payload=ref)

    def _resolve_method(self, receiver: Any, name: str) -> CodeObject:
        if not isinstance(receiver, VMInstance):
            raise VMError(
                f"virtual call {name!r} on non-object {type(receiver).__name__}")
        code = receiver.vmclass.find_method(name)
        if code is None:
            raise LinkError(f"no method {receiver.class_name}.{name}")
        if code.is_static:
            raise VMError(f"{receiver.class_name}.{name} is static")
        return code

    # -- the interpreter ------------------------------------------------------------

    def _execute(self, thread: ThreadState, frame: Frame, ins: Any) -> None:
        o = ins.op
        stack = frame.stack

        if o == op.LOAD:
            stack.append(frame.locals[ins.a])
        elif o == op.STORE:
            frame.locals[ins.a] = stack.pop()
        elif o == op.CONST:
            stack.append(ins.a)
        elif o == op.JMP:
            frame.pc = ins.a
            return
        elif o == op.JZ:
            if not truthy(stack.pop()):
                frame.pc = ins.a
                return
        elif o == op.JNZ:
            if truthy(stack.pop()):
                frame.pc = ins.a
                return
        elif o in _ARITH:
            b = stack.pop()
            a = stack.pop()
            stack.append(_ARITH[o](self, a, b))
        elif o == op.NEG:
            stack.append(-stack.pop())
        elif o == op.NOT:
            stack.append(not truthy(stack.pop()))
        elif o == op.POP:
            stack.pop()
        elif o == op.DUP:
            stack.append(stack[-1])
        elif o == op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif o == op.NOP:
            pass
        elif o == op.GETF:
            obj = stack.pop()
            if is_nullish(obj):
                raise self._npe(obj, f"getfield {ins.a}")
            if not isinstance(obj, VMInstance) or ins.a not in obj.fields:
                raise LinkError(f"no field {ins.a!r} on {_tname(obj)}")
            stack.append(obj.fields[ins.a])
        elif o == op.PUTF:
            value = stack.pop()
            obj = stack.pop()
            if is_nullish(obj):
                raise self._npe(obj, f"putfield {ins.a}")
            if not isinstance(obj, VMInstance) or ins.a not in obj.fields:
                raise LinkError(f"no field {ins.a!r} on {_tname(obj)}")
            obj.fields[ins.a] = value
            if self.on_write is not None:
                self.on_write(obj)
        elif o == op.GETS:
            cls_name, fname = ins.a
            home = self.loader.load(cls_name).find_static_home(fname)
            stack.append(home.statics[fname])
        elif o == op.PUTS:
            cls_name, fname = ins.a
            home = self.loader.load(cls_name).find_static_home(fname)
            home.statics[fname] = stack.pop()
            if self.on_write is not None:
                self.on_write(home)
        elif o == op.ISREMOTE:
            stack.append(isinstance(stack.pop(), RemoteRef))
        elif o == op.NEW:
            stack.append(self.heap.new_instance(self.loader.load(ins.a)))
        elif o == op.NEWARR:
            n = stack.pop()
            if not isinstance(n, int) or n < 0:
                raise self.throw("IndexOutOfBoundsException",
                                 f"array length {n}")
            need = n * (ins.b or 8) + 16
            if self.node is not None and (
                    self.heap.allocated_bytes + need
                    > self.node.spec.ram_bytes):
                raise self.throw(
                    "OutOfMemoryError",
                    f"array of {need} bytes exceeds node RAM")
            stack.append(self.heap.new_array(ins.a, n, ins.b or 8))
        elif o == op.ALOAD:
            idx = stack.pop()
            arr = stack.pop()
            if is_nullish(arr):
                raise self._npe(arr, "arrayload")
            if not isinstance(arr, VMArray):
                raise VMError(f"arrayload on {_tname(arr)}")
            if not (0 <= idx < len(arr.data)):
                raise self.throw("IndexOutOfBoundsException",
                                 f"index {idx} length {len(arr.data)}")
            stack.append(arr.data[idx])
        elif o == op.ASTORE:
            value = stack.pop()
            idx = stack.pop()
            arr = stack.pop()
            if is_nullish(arr):
                raise self._npe(arr, "arraystore")
            if not isinstance(arr, VMArray):
                raise VMError(f"arraystore on {_tname(arr)}")
            if not (0 <= idx < len(arr.data)):
                raise self.throw("IndexOutOfBoundsException",
                                 f"index {idx} length {len(arr.data)}")
            arr.data[idx] = value
            if self.on_write is not None:
                self.on_write(arr)
        elif o == op.LEN:
            arr = stack.pop()
            if is_nullish(arr):
                raise self._npe(arr, "arraylength")
            if not isinstance(arr, VMArray):
                raise VMError(f"arraylength on {_tname(arr)}")
            stack.append(len(arr.data))
        elif o == op.INVOKESTATIC:
            cls_name, mname = ins.a
            nargs = ins.b
            args = stack[len(stack) - nargs:] if nargs else []
            del stack[len(stack) - nargs:]
            cls = self.loader.load(cls_name)
            code = cls.find_method(mname)
            if code is None:
                raise LinkError(f"no method {cls_name}.{mname}")
            if not code.is_static:
                raise VMError(f"{cls_name}.{mname} is not static")
            frame.pc += 1
            thread.frames.append(Frame(code, args))
            return
        elif o == op.INVOKEVIRT:
            nargs = ins.b
            args = stack[len(stack) - nargs:] if nargs else []
            del stack[len(stack) - nargs:]
            receiver = stack.pop()
            if is_nullish(receiver):
                raise self._npe(receiver, f"invoke {ins.a}")
            code = self._resolve_method(receiver, ins.a)
            frame.pc += 1
            thread.frames.append(Frame(code, [receiver] + args))
            return
        elif o == op.NATIVE:
            nargs = ins.b
            args = stack[len(stack) - nargs:] if nargs else []
            del stack[len(stack) - nargs:]
            fn = self.natives.lookup(ins.a)
            self.charge(self.cost.native_base)
            stack.append(fn(self, args))
        elif o == op.RET:
            self._return(thread, None)
            return
        elif o == op.RETV:
            self._return(thread, stack.pop())
            return
        elif o == op.THROW:
            exc = stack.pop()
            if is_nullish(exc):
                raise self._npe(exc, "throw")
            if not isinstance(exc, VMInstance) or not exc.vmclass.is_subclass_of("Throwable"):
                raise VMError(f"throw of non-Throwable {_tname(exc)}")
            raise GuestThrow(exc)
        elif o == op.LSWITCH:
            key = stack.pop()
            frame.pc = ins.a.get(key, ins.b)
            return
        else:  # pragma: no cover
            raise VMError(f"unimplemented opcode {o}")
        frame.pc += 1

    def _return(self, thread: ThreadState, value: Any) -> None:
        """Pop the top frame, delivering ``value`` to the caller (or
        finishing the thread)."""
        thread.frames.pop()
        self._bp_guard = None
        if thread.frames:
            thread.frames[-1].stack.append(value)
        else:
            thread.finished = True
            thread.result = value


def _tname(v: Any) -> str:
    if isinstance(v, VMInstance):
        return v.class_name
    if isinstance(v, VMArray):
        return f"{v.kind}[]"
    return type(v).__name__


# -- arithmetic helpers (Java semantics for int division) ------------------------

def _add(m: Machine, a: Any, b: Any) -> Any:
    if isinstance(a, str) or isinstance(b, str):
        from repro.vm.natives import _to_str
        return _to_str(a) + _to_str(b) if not (
            isinstance(a, str) and isinstance(b, str)) else a + b
    return a + b


def _div(m: Machine, a: Any, b: Any) -> Any:
    if b == 0 and isinstance(a, int) and isinstance(b, int):
        raise m.throw("ArithmeticException", "/ by zero")
    if isinstance(a, int) and isinstance(b, int) and not isinstance(a, bool):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def _mod(m: Machine, a: Any, b: Any) -> Any:
    if b == 0 and isinstance(a, int) and isinstance(b, int):
        raise m.throw("ArithmeticException", "% by zero")
    if isinstance(a, int) and isinstance(b, int):
        return a - _div(m, a, b) * b
    import math
    return math.fmod(a, b)


def _eq(m: Machine, a: Any, b: Any) -> bool:
    if isinstance(a, (VMInstance, VMArray)) or isinstance(b, (VMInstance, VMArray)):
        return a is b
    if isinstance(a, RemoteRef) or isinstance(b, RemoteRef):
        # Identity comparison against an unfetched object cannot be
        # answered locally; a remote ref equals nothing but itself.
        return a is b
    return a == b


_ARITH: Dict[str, Callable[[Machine, Any, Any], Any]] = {
    op.ADD: _add,
    op.SUB: lambda m, a, b: a - b,
    op.MUL: lambda m, a, b: a * b,
    op.DIV: _div,
    op.MOD: _mod,
    op.EQ: _eq,
    op.NE: lambda m, a, b: not _eq(m, a, b),
    op.LT: lambda m, a, b: a < b,
    op.LE: lambda m, a, b: a <= b,
    op.GT: lambda m, a, b: a > b,
    op.GE: lambda m, a, b: a >= b,
}
