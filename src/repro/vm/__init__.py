"""The repro stack-machine VM."""

from repro.vm.classloader import ClassLoader, Namespace
from repro.vm.costmodel import (CostModel, SystemCosts, gjavampi_model,
                                jdk_model, jessica2_model, sodee_model,
                                xen_model)
from repro.vm.frames import Frame, ThreadState
from repro.vm.heap import Heap
from repro.vm.machine import GuestThrow, Machine, UncaughtGuestException
from repro.vm.objects import VMArray, VMClass, VMInstance
from repro.vm.values import RemoteRef, is_nullish, truthy
from repro.vm.vmti import VMTI

__all__ = [
    "ClassLoader", "Namespace", "CostModel", "SystemCosts",
    "jdk_model", "sodee_model", "gjavampi_model", "jessica2_model",
    "xen_model",
    "Frame", "ThreadState", "Heap",
    "GuestThrow", "Machine", "UncaughtGuestException",
    "VMArray", "VMClass", "VMInstance",
    "RemoteRef", "is_nullish", "truthy", "VMTI",
]
