"""Calibrated cost model.

The VM executes guest bytecode for real; simulated time is charged per
instruction, per native operation, per VMTI call, per byte serialized,
and per byte transferred.  The constants below are calibrated so the
reproduction's tables land in the same regime as the paper's (see
EXPERIMENTS.md for the calibration notes); the *shapes* — who wins,
what scales with heap size, what is bandwidth-bound — emerge from the
mechanisms, not from these constants.

Reference node: 2.53 GHz Xeon E5540 running Sun JDK 1.6 in JIT mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.units import ms, us


@dataclass
class VmtiCosts:
    """Per-call costs of the debug interface (paper section IV.A:
    'Most of the JVMTI functions ... finish within 1us.  However, some
    functions take much longer time (e.g. GetLocalInt take about 30us)'."""

    get_local: float = us(30)
    set_local: float = us(30)
    get_frame_location: float = us(1)
    get_method_name: float = us(1)
    get_local_variable_table: float = us(2)
    set_breakpoint: float = us(10)
    clear_breakpoint: float = us(5)
    raise_exception: float = us(20)
    pop_frame: float = us(20)
    force_early_return: float = us(20)
    get_static: float = us(2)
    set_static: float = us(2)
    get_object: float = us(5)


@dataclass
class CostModel:
    """All tunable costs for one VM/system configuration.

    Attributes:
        instr_seconds: time per executed bytecode instruction on the
            reference node.  Workload harnesses scale this to map reduced
            problem sizes onto paper-scale execution times (documented
            per experiment).
        exec_factor: multiplier on guest execution time for the hosting
            system (JDK 1.0; JESSICA2's old Kaffe JIT ≈ 4.1; execution
            in a Xen guest ≈ 2.2).
        agent_factor: multiplier when a debugger agent is attached but
            idle (the paper's C1: 0.1%-3.2%).
        serialize_spb / deserialize_spb: seconds per byte for Java-style
            object serialization (used by eager-copy and by SOD object
            fetches).
        serialized_expansion: Java serialization writes ~2x the nominal
            object bytes (class descriptors, handles).
        alloc_spb: seconds per byte for large allocations (JESSICA2
            allocates static arrays at class-load time; 64 MB ≈ 70 ms).
        native_base: base cost of any native call.
        search_spb: text scan cost per byte (string search kernels).
        vmti: per-call VMTI costs.
    """

    instr_seconds: float = 2e-9
    exec_factor: float = 1.0
    agent_factor: float = 1.0
    serialize_spb: float = 7e-9
    deserialize_spb: float = 13e-9
    serialized_expansion: float = 2.0
    alloc_spb: float = 1.1e-9
    native_base: float = us(0.5)
    search_spb: float = 3.3e-9
    #: optional cap on file-I/O throughput, bytes/s (the paper suspects
    #: "some bottlenecks exist in the I/O library of the [Kaffe] JVM
    #: implementation" — JESSICA2's Table VI gain is tiny because even
    #: local reads are bottlenecked); None = uncapped.
    io_bandwidth_cap: float | None = None
    #: multiplier on file-I/O time (Xen's virtualized I/O path).
    io_factor: float = 1.0
    vmti: VmtiCosts = field(default_factory=VmtiCosts)

    def io_time(self, fs_seconds: float, nbytes: int) -> float:
        """File read time under the JVM I/O cap / virtualization factor.
        A capped JVM pays the cap *plus* a fraction of the underlying
        path cost, so a faster path still helps a little (JESSICA2's
        2.88% Table VI gain)."""
        if self.io_bandwidth_cap is not None:
            return nbytes / self.io_bandwidth_cap + 0.1 * fs_seconds
        return fs_seconds * self.io_factor

    #: relative cost of specific opcodes (1.0 default).  Field accesses
    #: are pricier than register moves; static accesses are cheap
    #: absolute-address loads/stores — mirrors the paper's Table V
    #: baseline times (field read 2.60 ns ... static write 0.13 ns).
    op_weights = {
        "GETF": 2.0, "PUTF": 2.6, "ALOAD": 1.6, "ASTORE": 1.8,
        "GETS": 0.8, "PUTS": 1.2, "ISREMOTE": 0.8,
        "LOAD": 0.5, "STORE": 0.6, "CONST": 0.4,
    }

    def op_cost(self, opcode: str) -> float:
        """Simulated seconds for one bytecode instruction."""
        return (self.instr_seconds * self.exec_factor * self.agent_factor
                * self.op_weights.get(opcode, 1.0))

    def unit_op_cost(self) -> float:
        """Simulated seconds per weight-1.0 instruction (node speed not
        included).  The interpreter multiplies this once per accounting
        flush against a batch's accumulated weight; per-opcode weights
        are baked into the pre-decoded streams
        (:meth:`repro.bytecode.code.CodeObject.predecoded`), so changing
        ``op_weights`` after execution started requires
        ``Machine.invalidate_caches()``."""
        return self.instr_seconds * self.exec_factor * self.agent_factor

    def serialize_cost(self, nominal_bytes: int) -> float:
        """Seconds to Java-serialize ``nominal_bytes`` of object data."""
        return nominal_bytes * self.serialize_spb

    def deserialize_cost(self, nominal_bytes: int) -> float:
        """Seconds to deserialize ``nominal_bytes``."""
        return nominal_bytes * self.deserialize_spb

    def wire_bytes(self, nominal_bytes: int) -> int:
        """On-the-wire size of serialized object data."""
        return int(nominal_bytes * self.serialized_expansion)

    def copy(self, **overrides) -> "CostModel":
        """A copy with selected fields overridden."""
        import dataclasses
        return dataclasses.replace(self, **overrides)


#: Costs of system-level operations used by the migration engines.
@dataclass
class SystemCosts:
    """Fixed costs of middleware operations (calibrated to Table IV).

    SODEE:
        * ``sod_transfer_fixed``: socket setup + control messages for a
          migration request/transfer (ms range).
        * ``sod_restore_fixed``: worker coordination, JNI invocation and
          classloading machinery at the destination.
        * ``worker_spawn``: spawning a worker JVM when none is pre-started.
        * ``portable_capture_fixed``: extra Java-serialization step when
          the *destination* lacks VMTI (iPhone/JamVM case, Table VII).
        * ``java_restore_per_frame``: reflection-based frame rebuild on a
          VMTI-less device (charged on device CPU, so the phone's speed
          factor applies).
    G-JavaMPI (eager-copy process migration over a JVMDI-era interface):
        fixed + per-frame + per-byte costs for capture/restore.
    JESSICA2 (in-JVM thread migration):
        raw access to JVM internals -> tiny per-frame costs, fixed
        transfer overhead; static arrays allocated at class load
        (``alloc_spb`` above).
    """

    fault_service_fixed: float = ms(1.0)
    sod_transfer_fixed: float = ms(4.0)
    sod_restore_fixed: float = ms(5.0)
    sod_restore_per_frame: float = ms(0.15)
    sod_capture_fixed: float = ms(0.05)
    worker_spawn: float = ms(350.0)
    portable_capture_fixed: float = ms(13.0)
    #: extra on-the-wire bytes of the portable (Java-serialized) state
    #: format: class descriptors, string tables, handles (section IV.D)
    portable_state_overhead_bytes: int = 4200
    java_restore_fixed: float = ms(1.2)       # x25 on the phone ≈ 30 ms
    java_restore_per_frame: float = ms(0.04)  # x25 on the phone ≈ 1 ms/frame

    gj_capture_fixed: float = ms(30.0)
    gj_capture_per_frame: float = ms(0.6)
    gj_restore_fixed: float = ms(35.0)
    gj_restore_per_frame: float = ms(0.6)
    gj_transfer_fixed: float = ms(8.0)

    j2_capture_fixed: float = ms(0.05)
    j2_capture_per_frame: float = us(8)
    j2_transfer_fixed: float = ms(2.1)
    j2_restore_fixed: float = ms(6.5)
    j2_restore_per_frame: float = us(40)
    #: execution slowdown of the migrated thread under JESSICA2's
    #: home-based global object space (in-JVM access checks on the
    #: remote node — this is what makes its Table III overheads exceed
    #: its Table IV latencies).
    j2_dsm_exec_overhead: float = 0.003

    xen_working_set_bytes: int = 340 * 1024 * 1024
    xen_dirty_rounds: float = 1.25
    xen_stop_copy: float = ms(300.0)
    xen_interference: float = 1.0


def jdk_model(instr_seconds: float = 2e-9) -> CostModel:
    """Plain Sun JDK 1.6, no agent."""
    return CostModel(instr_seconds=instr_seconds)


def sodee_model(instr_seconds: float = 2e-9,
                agent_factor: float = 1.01) -> CostModel:
    """SODEE: JDK + idle JVMTI agent + preprocessed classes."""
    return CostModel(instr_seconds=instr_seconds, agent_factor=agent_factor)


def gjavampi_model(instr_seconds: float = 2e-9,
                   agent_factor: float = 1.01) -> CostModel:
    """G-JavaMPI rides a similar debugger interface to SODEE."""
    return CostModel(instr_seconds=instr_seconds, agent_factor=agent_factor)


def jessica2_model(instr_seconds: float = 2e-9,
                   exec_factor: float = 4.1,
                   io_cap: float | None = 5.3e6) -> CostModel:
    """JESSICA2's Kaffe JIT is ~4x slower than Sun JDK 1.6 (Table II),
    and its JVM I/O library bottlenecks file reads (Table VI)."""
    return CostModel(instr_seconds=instr_seconds, exec_factor=exec_factor,
                     io_bandwidth_cap=io_cap)


def xen_model(instr_seconds: float = 2e-9,
              exec_factor: float = 2.2,
              io_factor: float = 2.7) -> CostModel:
    """Execution inside a Xen guest on the modified CentOS host
    (the paper cautions this is not a pure-hypervisor slowdown).
    Virtualized I/O pays an additional factor (Table VI)."""
    return CostModel(instr_seconds=instr_seconds, exec_factor=exec_factor,
                     io_factor=io_factor)
