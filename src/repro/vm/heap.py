"""The guest heap: object-id registry and allocation.

Every allocated instance/array gets a heap-unique ``oid``.  The object
manager addresses home objects by oid when fetching them across nodes,
and write-back applies updates by oid.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Union

from repro.errors import VMError
from repro.vm.objects import VMArray, VMClass, VMInstance

HeapObject = Union[VMInstance, VMArray]


class Heap:
    """A per-VM heap."""

    def __init__(self) -> None:
        self._objects: Dict[int, HeapObject] = {}
        self._next_oid = 1
        #: total nominal bytes allocated (drives OutOfMemory experiments)
        self.allocated_bytes = 0

    def new_instance(self, vmclass: VMClass) -> VMInstance:
        """Allocate an instance with default field values."""
        obj = VMInstance(vmclass, self._next_oid)
        self._objects[self._next_oid] = obj
        self._next_oid += 1
        self.allocated_bytes += obj.nominal_bytes()
        return obj

    def new_array(self, kind: str, length: int,
                  nominal_elem_bytes: int = 8) -> VMArray:
        """Allocate an array of ``length`` default-valued elements."""
        if length < 0:
            raise VMError(f"negative array length {length}")
        arr = VMArray(kind, length, self._next_oid, nominal_elem_bytes)
        self._objects[self._next_oid] = arr
        self._next_oid += 1
        self.allocated_bytes += arr.nominal_bytes()
        return arr

    def adopt(self, obj: HeapObject) -> HeapObject:
        """Register an object deserialized from another node under a fresh
        local oid (its home identity is tracked by the object manager)."""
        obj_oid = self._next_oid
        self._next_oid += 1
        if isinstance(obj, VMInstance):
            obj.oid = obj_oid
        else:
            obj.oid = obj_oid
        self._objects[obj_oid] = obj
        self.allocated_bytes += obj.nominal_bytes()
        return obj

    def get(self, oid: int) -> HeapObject:
        """Look up an object by oid; raises :class:`VMError` if absent."""
        try:
            return self._objects[oid]
        except KeyError:
            raise VMError(f"dangling oid {oid}") from None

    def maybe_get(self, oid: int) -> Optional[HeapObject]:
        return self._objects.get(oid)

    def __len__(self) -> int:
        return len(self._objects)

    def objects(self) -> Iterator[HeapObject]:
        """Iterate all live objects (insertion order)."""
        return iter(self._objects.values())
