"""Tier-2 specializing JIT: hot code objects become Python closures.

The interpreter already pre-decodes, fuses and inline-caches (tier 1,
:meth:`repro.vm.machine.Machine._run_fast`); this module adds the next
tier above it.  :func:`compile_code` turns one :class:`CodeObject` into
a *specialized Python closure*: the method's control-flow graph is
compiled to a ``while``-loop over basic blocks, the operand stack is
compiled away into Python local temporaries (``s0``, ``s1``, ...),
guest locals stay in ``frame.locals`` (so deoptimization never needs a
write-back pass), and every monomorphic fact the tier-1 inline caches
have proven — static-call targets, static-field home dicts, virtual
receiver classes — is baked in as a bound constant or a one-compare
guard.

Execution protocol
------------------

A compiled closure executes exactly ONE frame and returns control to
the fast loop's outer driver at every boundary that other subsystems
can observe; frames stay plain data, so SOD capture/restore, VMTI and
migration are oblivious to the tier:

``fn(m, thread, frame, frames, ql, w_acc, n_acc, opc)`` returns a
status tuple ``(st, w_acc, n_acc, aux, aux2)``:

=====  ==========================================================
``st``
=====  ==========================================================
0      guest call: callee frame pushed, caller suspended at the
       return bci with its live operand stack spilled
1      return: frame popped, value delivered to the caller's
       operand stack (or ``thread.result``)
2      scheduler preemption: ``frame.pc`` at a safepoint bci, the
       full operand stack spilled (``"preempted"``)
3      guest throw: accounting flushed, ``frame.pc`` at the
       faulting bci; ``aux`` is the exception, ``aux2`` the
       faulting instruction's weight (charged only if a handler
       is found — same rule as both interpreter tiers)
4      a native set ``thread.pending_exception``; resume state
       materialized at the bci after the native
5      deopt: a native installed hooks mid-run; state
       materialized, the driver retreats to the legacy loop
=====  ==========================================================

Safepoints and accounting
-------------------------

``frame.pc`` and ``frame.stack`` are materialized *only* at safepoints:
calls, returns, natives, loop back-edges, straight-line poll sites
(every ``_POLL_EVERY`` instructions, closing the preemption-coverage
gap for long call-free tails), and guest-throw sites.  Between
safepoints the closure runs pure Python with block-summed
``w_acc``/``n_acc`` accounting constants, so ``instr_count`` is
integer-exact against tier 1 while the clock agrees to float
re-association (every clock comparison in the tree uses
``math.isclose``; the cost weights are non-dyadic, so any summation
order differs in ulps).

Guest exceptions report a precise faulting bci through a per-closure
fault table (``f`` holds the index of the last armed fault record).
Host-level errors (LinkError, type confusion) reuse the last armed
record best-effort — they abort the run, so the guest can never observe
the approximation.

Compilation is per ``(code, namespace)``: the machine compiles while a
namespace's loader is swapped in, and stores the closure in that
namespace's own compiled map, so bound static cells never leak across
class-loader namespaces (mirroring the decoded-stream maps).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.bytecode import opcodes as op
from repro.bytecode.code import CodeObject
from repro.bytecode.verifier import stack_depths
from repro.errors import LinkError, VMError
from repro.preprocess.fuse import cache_seeds

#: hotness (entries + loop back-edges) at which a code object tiers up
JIT_THRESHOLD = 16

#: refuse absurdly large methods (compile time is O(instrs))
_MAX_INSTRS = 3000

#: straight-line instructions between injected safepoint polls
_POLL_EVERY = 192

#: compiled->compiled direct calls nest at most this many host frames;
#: past the cap every call round-trips through the (stackless) driver,
#: so guest recursion depth is never limited by the host's
_MAX_INLINE_DEPTH = 100

#: binop opcode -> inline Python operator (certified equivalent to the
#: interpreter's semantic helpers for every guest value type: no guest
#: type overloads comparison/equality — see machine._FAST2)
_INLINE_BINOP = {
    op.SUB: "-", op.MUL: "*",
    op.EQ: "==", op.NE: "!=",
    op.LT: "<", op.LE: "<=", op.GT: ">", op.GE: ">=",
}

#: value-producing ops whose result assignment is the last action that
#: can raise — safe to fuse with a following STORE (write straight to
#: the local slot, skipping the temp)
_STORE_FUSABLE = frozenset({
    op.ADD, op.SUB, op.MUL, op.DIV, op.MOD, op.EQ, op.NE, op.LT, op.LE,
    op.GT, op.GE, op.NEG, op.NOT, op.ISREMOTE, op.LEN, op.ALOAD,
    op.GETF, op.GETS, op.NEW, op.NEWARR,
})

_CMP_OPS = frozenset({op.EQ, op.NE, op.LT, op.LE, op.GT, op.GE})


class _Refuse(Exception):
    """Internal: this method is not tier-2 compilable."""


# -- runtime helpers bound into every closure ------------------------------------
#
# Cold paths only: each mirrors the corresponding interpreter branch
# exactly (same exception classes, same message formats), so the
# differential suite cannot tell the tiers apart.

def _tname(v: Any) -> str:
    from repro.vm.machine import _tname as t
    return t(v)


def _arr_fail(m: Any, arr: Any, what: str) -> Any:
    """Array-op guard miss: NPE for nullish, VMError otherwise."""
    from repro.vm.values import RemoteRef
    if arr is None or isinstance(arr, RemoteRef):
        raise m._npe(arr, what)
    raise VMError(f"{what} on {_tname(arr)}")


def _iobe(m: Any, idx: Any, n: int) -> Any:
    return m.throw("IndexOutOfBoundsException", f"index {idx} length {n}")


def _getf_fail(m: Any, obj: Any, fname: str) -> Any:
    from repro.vm.objects import VMInstance
    from repro.vm.values import RemoteRef
    if not isinstance(obj, VMInstance) and (
            obj is None or isinstance(obj, RemoteRef)):
        raise m._npe(obj, f"getfield {fname}")
    raise LinkError(f"no field {fname!r} on {_tname(obj)}")


def _putf_fail(m: Any, obj: Any, fname: str) -> Any:
    from repro.vm.objects import VMInstance
    from repro.vm.values import RemoteRef
    if not isinstance(obj, VMInstance) and (
            obj is None or isinstance(obj, RemoteRef)):
        raise m._npe(obj, f"putfield {fname}")
    raise LinkError(f"no field {fname!r} on {_tname(obj)}")


def _throw_exc(m: Any, exc: Any) -> Any:
    """Build the carrier for a guest THROW (validating the operand)."""
    from repro.vm.machine import GuestThrow
    from repro.vm.objects import VMInstance
    from repro.vm.values import RemoteRef
    if exc is None or isinstance(exc, RemoteRef):
        return m._npe(exc, "throw")
    if not isinstance(exc, VMInstance) \
            or not exc.vmclass.is_subclass_of("Throwable"):
        return VMError(f"throw of non-Throwable {_tname(exc)}")
    return GuestThrow(exc)


def _newarr(m: Any, n: Any, kind: str, eb: int) -> Any:
    if not isinstance(n, int) or n < 0:
        raise m.throw("IndexOutOfBoundsException", f"array length {n}")
    need = n * eb + 16
    if m.node is not None and (
            m.heap.allocated_bytes + need > m.node.spec.ram_bytes):
        raise m.throw("OutOfMemoryError",
                      f"array of {need} bytes exceeds node RAM")
    return m.heap.new_array(kind, n, eb)


def _resolve_static(m: Any, cls_name: str, mname: str,
                    nargs: int) -> Tuple[CodeObject, List[Any]]:
    from repro.vm.machine import _arity_pad
    cls = m.loader.load(cls_name)
    code2 = cls.find_method(mname)
    if code2 is None:
        raise LinkError(f"no method {cls_name}.{mname}")
    if not code2.is_static:
        raise VMError(f"{cls_name}.{mname} is not static")
    return (code2, _arity_pad(code2, nargs))


def _resolve_virtual(m: Any, receiver: Any, name: str, nargs: int,
                     cell: List[Any]) -> Tuple[CodeObject, List[Any]]:
    """Virtual-call guard miss: re-resolve, rebind the guard cell."""
    from repro.vm.machine import _arity_pad
    from repro.vm.values import RemoteRef
    m.jit_guard_bails += 1
    if receiver is None or isinstance(receiver, RemoteRef):
        raise m._npe(receiver, f"invoke {name}")
    code2 = m._resolve_method(receiver, name)
    c = (code2, _arity_pad(code2, nargs + 1))
    cell[0] = receiver.vmclass
    cell[1] = c
    return c


def _resolve_static_field(m: Any, cls_name: str,
                          fname: str) -> Tuple[Dict[str, Any], str]:
    home = m.loader.load(cls_name).find_static_home(fname)
    return (home.statics, fname)


# -- the compiler ----------------------------------------------------------------

def _literal(v: Any) -> Optional[str]:
    """Source literal for a CONST argument, or None to bind it."""
    if v is None or v is True or v is False:
        return repr(v)
    t = type(v)
    if t is int or t is str:
        return repr(v)
    if t is float:
        if v != v or v in (float("inf"), float("-inf")):
            return None  # non-finite floats have no literal form
        return repr(v)
    return None


class _Compiler:
    """One ``compile_code`` invocation's state."""

    def __init__(self, machine: Any, code: CodeObject):
        self.m = machine
        self.code = code
        self.instrs = code.instrs
        self.wt = machine.cost.op_weights.get
        self.lines: List[str] = []
        self.consts: Dict[str, Any] = {}
        self._const_by_id: Dict[int, str] = {}
        self._kn = 0
        self._un = 0
        #: fault table: (bci, w_pre, n_pre, w_self); index 0 is the
        #: "nothing armed yet" sentinel
        self.faults: List[Tuple[int, float, int, float]] = [(0, 0.0, 0, 0.0)]
        self.seg_w = 0.0
        self.seg_n = 0
        self.sym: List[Tuple[str, Optional[int]]] = []
        self.indent = 16
        # tier-1 cache seeds: bci -> warmed inline-cache cell contents
        stream = machine._decoded.get(code)
        self.seeds = cache_seeds(stream, code) if stream else {}

    # -- plumbing ---------------------------------------------------------

    def bind(self, value: Any, prefix: str = "k") -> str:
        name = self._const_by_id.get(id(value))
        if name is not None and self.consts[name] is value:
            return name
        self._kn += 1
        name = f"{prefix}{self._kn}"
        self.consts[name] = value
        self._const_by_id[id(value)] = name
        return name

    def emit(self, line: str, extra: int = 0) -> None:
        self.lines.append(" " * (self.indent + extra) + line)

    def fresh(self) -> str:
        self._un += 1
        return f"u{self._un}"

    def target_name(self, pos: int) -> str:
        """Assignment target for a push at stack position ``pos`` —
        positional naming reuses temps, but SWAP/DUP can keep an alias
        of ``s<pos>`` live elsewhere on the symbolic stack."""
        name = f"s{pos}"
        if any(e[0] == name for e in self.sym):
            return self.fresh()
        return name

    def account(self, opname: str) -> None:
        self.seg_w += self.wt(opname, 1.0)
        self.seg_n += 1

    def flush_acc(self, extra: int = 0) -> None:
        """Emit the pending block-summed accounting adds."""
        if self.seg_n:
            self.emit(f"w_acc += {self.seg_w!r}", extra)
            self.emit(f"n_acc += {self.seg_n}", extra)
            self.seg_w = 0.0
            self.seg_n = 0

    def marker(self, bci: int, opname: str, charged: bool = True) -> None:
        """Arm the fault record for a potentially-throwing op at
        ``bci``.  The record's pre-fault sums must EXCLUDE the faulting
        op itself (it is charged only if a handler is found, the tier-1
        rule): ``charged`` says whether :meth:`gen_op`'s up-front
        ``account`` of this op is still in the segment and must be
        backed out of the record."""
        w = self.wt(opname, 1.0)
        idx = len(self.faults)
        if charged:
            self.faults.append((bci, self.seg_w - w, self.seg_n - 1, w))
        else:
            self.faults.append((bci, self.seg_w, self.seg_n, w))
        self.emit(f"f = {idx}")

    def spill(self, atoms: List[Tuple[str, Optional[int]]],
              extra: int = 0) -> None:
        if not atoms:
            return
        if len(atoms) == 1:
            self.emit(f"fstack.append({atoms[0][0]})", extra)
        else:
            self.emit(
                "fstack.extend((" + ", ".join(e[0] for e in atoms) + "))",
                extra)

    def poll(self, bci: int, extra: int = 0,
             spill_sym: bool = False) -> None:
        """Quantum safepoint: yield with ``frame.pc`` at ``bci``."""
        self.emit(f"if ql and m.instr_count + n_acc >= ql:", extra)
        if spill_sym:
            self.spill(self.sym, extra + 4)
        self.emit(f"    frame.pc = {bci}", extra)
        self.emit(f"    return (2, w_acc, n_acc)", extra)

    def materialize_slot(self, slot: int) -> None:
        """Before ``locs[slot]`` is written, copy any symbolic-stack
        aliases of it into temps."""
        for p, (expr, s) in enumerate(self.sym):
            if s == slot:
                name = self.target_name(p)
                self.emit(f"{name} = {expr}")
                self.sym[p] = (name, None)

    def push_temp(self, expr: str) -> None:
        name = self.target_name(len(self.sym))
        self.emit(f"{name} = {expr}")
        self.sym.append((name, None))

    def store_fused_slot(self, bci: int) -> Optional[int]:
        """If the next instruction is a STORE in the same block, return
        its slot (the caller writes its result straight to the local)."""
        nxt = bci + 1
        if nxt < len(self.instrs) and nxt not in self.leaders \
                and self.instrs[nxt].op == op.STORE:
            return self.instrs[nxt].a
        return None

    def push_value(self, bci: int, expr: str) -> int:
        """Deliver a fusable op's result: either straight into a local
        (STORE fusion) or onto the symbolic stack.  Returns the number
        of extra instructions consumed (0 or 1)."""
        slot = self.store_fused_slot(bci)
        if slot is not None:
            self.materialize_slot(slot)
            self.emit(f"locs[{slot}] = {expr}")
            self.account(op.STORE)
            return 1
        self.push_temp(expr)
        return 0

    # -- analysis ---------------------------------------------------------

    def analyze(self) -> None:
        code = self.code
        n = len(code.instrs)
        if n == 0 or n > _MAX_INSTRS:
            raise _Refuse("size")
        self.depths = stack_depths(code)
        leaders: Set[int] = {0}
        self.backward: Set[int] = set()
        for i, ins in enumerate(code.instrs):
            o = ins.op
            if o in (op.JMP, op.JZ, op.JNZ):
                leaders.add(ins.a)
                if o != op.JMP:
                    leaders.add(i + 1)
                if ins.a <= i:
                    self.backward.add(i)
                    if o == op.JMP:
                        # its own block: the poll reports frame.pc at
                        # the JMP itself, exactly like tier 1
                        leaders.add(i)
            elif o == op.LSWITCH:
                for t in ins.a.values():
                    leaders.add(t)
                leaders.add(ins.b)
                if i + 1 < n:
                    leaders.add(i + 1)
            elif o in (op.INVOKESTATIC, op.INVOKEVIRT, op.NATIVE):
                leaders.add(i)      # preemption re-entry
                leaders.add(i + 1)  # return / after-native re-entry
            elif o in (op.RET, op.RETV):
                leaders.add(i)      # preemption re-entry
        for e in code.exc_table:
            leaders.add(e.handler)
        # straight-line safepoint injection: long call-free stretches
        # get a poll site (and therefore a resume entry) every
        # _POLL_EVERY instructions
        self.poll_sites: Set[int] = set()
        run = 0
        for i, ins in enumerate(code.instrs):
            if ins.op in (op.INVOKESTATIC, op.INVOKEVIRT, op.NATIVE,
                          op.RET, op.RETV) or i in self.backward:
                run = 0
                continue
            run += 1
            if run >= _POLL_EVERY and i in self.depths:
                leaders.add(i)
                self.poll_sites.add(i)
                run = 0
        self.leaders = {b for b in leaders
                        if b < n and b in self.depths}
        # Block order: loop bodies first (shorter dispatch scans on the
        # hot path), then everything else in bci order.
        hot: Set[int] = set()
        for i in self.backward:
            t = code.instrs[i].a if code.instrs[i].op == op.JMP \
                else code.instrs[i].a
            for b in self.leaders:
                if t <= b <= i:
                    hot.add(b)
        ordered = sorted(b for b in self.leaders if b in hot) + \
            sorted(b for b in self.leaders if b not in hot)
        self.block_id = {b: k for k, b in enumerate(ordered)}
        self.block_order = ordered

    # -- code generation --------------------------------------------------

    def compile(self) -> Tuple[Any, Dict[int, int]]:
        self.analyze()
        for k, start in enumerate(self.block_order):
            kw = "if" if k == 0 else "elif"
            self.lines.append(" " * 12 + f"{kw} b == {self.block_id[start]}:")
            self.gen_block(start)
        return self.assemble()

    def gen_block(self, start: int) -> None:
        code = self.code
        n = len(self.instrs)
        self.seg_w = 0.0
        self.seg_n = 0
        if start in self.poll_sites:
            # before the preamble: on resume the operand stack is
            # still in frame.stack and re-entry repeats the pops
            self.poll(start)
        d = self.depths[start]
        self.sym = [(f"s{i}", None) for i in range(d)]
        for i in range(d - 1, -1, -1):
            self.emit(f"s{i} = fstack.pop()")
        bci = start
        while True:
            if bci >= n:
                raise _Refuse("fell off code end")
            if bci != start and bci in self.leaders:
                self.flush_acc()
                self.spill(self.sym)
                self.emit(f"b = {self.block_id[bci]}")
                self.emit("continue")
                return
            closed, extra = self.gen_op(bci, self.instrs[bci])
            if closed:
                return
            bci += 1 + extra

    # one op -> source lines; returns (block_closed, extra_consumed)
    def gen_op(self, bci: int, ins: Any) -> Tuple[bool, int]:
        o = ins.op
        sym = self.sym
        self.account(o)

        if o == op.LOAD:
            sym.append((f"locs[{ins.a}]", ins.a))
        elif o == op.CONST:
            lit = _literal(ins.a)
            sym.append((lit if lit is not None
                        else self.bind(ins.a, "c"), None))
        elif o == op.STORE:
            v = sym.pop()
            self.materialize_slot(ins.a)
            self.emit(f"locs[{ins.a}] = {v[0]}")
        elif o == op.POP:
            sym.pop()
        elif o == op.DUP:
            sym.append(sym[-1])
        elif o == op.SWAP:
            sym[-1], sym[-2] = sym[-2], sym[-1]
        elif o == op.NOP:
            pass

        elif o == op.ADD:
            b = sym.pop()[0]
            a = sym.pop()[0]
            return (False, self.push_value(
                bci, f"({a} + {b}) if type({a}) is int "
                     f"and type({b}) is int else A(m, {a}, {b})"))
        elif o in _INLINE_BINOP:
            b = sym.pop()[0]
            a = sym.pop()[0]
            expr = f"{a} {_INLINE_BINOP[o]} {b}"
            if o in _CMP_OPS:
                nxt = bci + 1
                if nxt < len(self.instrs) and nxt not in self.leaders \
                        and self.instrs[nxt].op in (op.JZ, op.JNZ):
                    # compare+branch fusion: the raw bool drives the
                    # branch (same certification as tier-1's fused
                    # compare-jump superinstructions — no truthy call)
                    return (True, self.gen_branch(
                        nxt, self.instrs[nxt], expr, raw=True))
            return (False, self.push_value(bci, expr))
        elif o == op.DIV or o == op.MOD:
            b = sym.pop()[0]
            a = sym.pop()[0]
            self.marker(bci, o)
            fn = "D" if o == op.DIV else "MO"
            return (False, self.push_value(bci, f"{fn}(m, {a}, {b})"))
        elif o == op.NEG:
            a = sym.pop()[0]
            return (False, self.push_value(bci, f"-({a})"))
        elif o == op.NOT:
            a = sym.pop()[0]
            return (False, self.push_value(bci, f"not T({a})"))
        elif o == op.ISREMOTE:
            a = sym.pop()[0]
            return (False, self.push_value(bci, f"isinstance({a}, RR)"))

        elif o == op.GETF:
            obj = sym.pop()[0]
            self.marker(bci, o)
            slot = self.store_fused_slot(bci)
            fn = _literal(ins.a) or self.bind(ins.a)
            # Guard in a temp, never in the destination: the faulting
            # build's injected NPE handlers re-read the receiver from
            # its *local slot* (ObjMan.resolve + retry), so a fused
            # store must not clobber the slot before GFF raises.
            u = self.fresh()
            self.emit(f"{u} = {obj}.fields.get({fn}, MS) "
                      f"if isinstance({obj}, Inst) else MS")
            self.emit(f"if {u} is MS:")
            self.emit(f"    raise GFF(m, {obj}, {fn})")
            if slot is not None:
                self.materialize_slot(slot)
                self.emit(f"locs[{slot}] = {u}")
                self.account(op.STORE)
                return (False, 1)
            sym.append((u, None))
        elif o == op.PUTF:
            v = sym.pop()[0]
            obj = sym.pop()[0]
            self.marker(bci, o)
            fn = _literal(ins.a) or self.bind(ins.a)
            self.emit(f"if isinstance({obj}, Inst) "
                      f"and {fn} in {obj}.fields:")
            self.emit(f"    {obj}.fields[{fn}] = {v}")
            self.emit("else:")
            self.emit(f"    raise PFF(m, {obj}, {fn})")
        elif o == op.GETS:
            expr = self.gen_static_cell(bci, o, ins.a)
            return (False, self.push_value(bci, expr))
        elif o == op.PUTS:
            v = sym.pop()[0]
            expr = self.gen_static_cell(bci, o, ins.a)
            # the fast tiers only run with on_write uninstalled
            self.emit(f"{expr} = {v}")
        elif o == op.NEW:
            self.marker(bci, o)
            cls_name = ins.a
            seeded = self.m.loader.is_loaded(cls_name)
            if seeded:
                k = self.bind(self.m.loader.load(cls_name), "cls")
                return (False, self.push_value(
                    bci, f"m.heap.new_instance({k})"))
            nm = _literal(cls_name) or self.bind(cls_name)
            return (False, self.push_value(
                bci, f"m.heap.new_instance(m.loader.load({nm}))"))
        elif o == op.NEWARR:
            cnt = sym.pop()[0]
            self.marker(bci, o)
            kn = _literal(ins.a) or self.bind(ins.a)
            return (False, self.push_value(
                bci, f"NA(m, {cnt}, {kn}, {ins.b or 8})"))
        elif o == op.ALOAD:
            idx = sym.pop()[0]
            arr = sym.pop()[0]
            self.marker(bci, o)
            u = self.fresh()
            self.emit(f"{u} = {arr}.data if isinstance({arr}, Arr) "
                      f"else AF(m, {arr}, 'arrayload')")
            slot = self.store_fused_slot(bci)
            tgt = f"locs[{slot}]" if slot is not None \
                else self.target_name(len(sym))
            if slot is not None:
                self.materialize_slot(slot)
            self.emit(f"if 0 <= {idx} < len({u}):")
            self.emit(f"    {tgt} = {u}[{idx}]")
            self.emit("else:")
            self.emit(f"    raise IO(m, {idx}, len({u}))")
            if slot is not None:
                self.account(op.STORE)
                return (False, 1)
            sym.append((tgt, None))
        elif o == op.ASTORE:
            v = sym.pop()[0]
            idx = sym.pop()[0]
            arr = sym.pop()[0]
            self.marker(bci, o)
            u = self.fresh()
            self.emit(f"{u} = {arr}.data if isinstance({arr}, Arr) "
                      f"else AF(m, {arr}, 'arraystore')")
            self.emit(f"if not (0 <= {idx} < len({u})):")
            self.emit(f"    raise IO(m, {idx}, len({u}))")
            self.emit(f"{u}[{idx}] = {v}")
        elif o == op.LEN:
            arr = sym.pop()[0]
            self.marker(bci, o)
            return (False, self.push_value(
                bci, f"len({arr}.data) if isinstance({arr}, Arr) "
                     f"else AF(m, {arr}, 'arraylength')"))

        elif o == op.JMP:
            if bci in self.backward:
                # back-edge safepoint: frame.pc reports the JMP itself
                # (not yet charged), exactly like the tier-1 fast loop
                self.seg_w -= self.wt(op.JMP, 1.0)
                self.seg_n -= 1
                self.flush_acc()
                self.poll(bci)
                self.emit(f"w_acc += {self.wt(op.JMP, 1.0)!r}")
                self.emit("n_acc += 1")
            else:
                self.flush_acc()
            self.spill(self.sym)
            self.emit(f"b = {self.block_id[ins.a]}")
            self.emit("continue")
            return (True, 0)
        elif o == op.JZ or o == op.JNZ:
            cond = sym.pop()[0]
            self.gen_branch(bci, ins, cond, raw=False)
            return (True, 0)
        elif o == op.LSWITCH:
            key = sym.pop()[0]
            self.flush_acc()
            self.spill(self.sym)
            table = {k: self.block_id[t] for k, t in ins.a.items()}
            tb = self.bind(table, "tb")
            self.emit(f"b = {tb}.get({key}, {self.block_id[ins.b]})")
            self.emit("continue")
            return (True, 0)

        elif o == op.RET or o == op.RETV:
            self.seg_w -= self.wt(o, 1.0)
            self.seg_n -= 1
            self.flush_acc()
            self.poll(bci, spill_sym=True)
            val = sym.pop()[0] if o == op.RETV else "None"
            self.emit("frames.pop()")
            self.emit("if frames:")
            self.emit(f"    frames[-1].stack.append({val})")
            self.emit("else:")
            self.emit("    thread.finished = True")
            self.emit(f"    thread.result = {val}")
            self.emit(f"return (1, w_acc + {self.wt(o, 1.0)!r}, "
                      f"n_acc + 1)")
            return (True, 0)
        elif o == op.THROW:
            v = sym.pop()[0]
            self.seg_w -= self.wt(o, 1.0)
            self.seg_n -= 1
            self.marker(bci, o, charged=False)
            self.emit(f"raise TH(m, {v})")
            return (True, 0)

        elif o == op.INVOKESTATIC:
            return (True, self.gen_invokestatic(bci, ins))
        elif o == op.INVOKEVIRT:
            return (True, self.gen_invokevirt(bci, ins))
        elif o == op.NATIVE:
            return (False, self.gen_native(bci, ins))
        else:  # pragma: no cover - ISA is closed
            raise _Refuse(f"op {o}")
        return (False, 0)

    def gen_branch(self, bci: int, ins: Any, cond: str,
                   raw: bool) -> int:
        """JZ/JNZ (optionally fused with a preceding compare: ``raw``
        conditions skip the truthy coercion, like tier-1 fusion)."""
        if raw:
            self.account(ins.op)
        self.flush_acc()
        self.spill(self.sym)
        taken = self.block_id[ins.a]
        fall = self.block_id[bci + 1]
        test = cond if raw else f"T({cond})"
        if ins.op == op.JZ:
            self.emit(f"if {test}:")
            self.emit(f"    b = {fall}")
            self.emit("else:")
            if ins.a <= bci:
                self.poll(ins.a, extra=4)
            self.emit(f"    b = {taken}")
        else:
            self.emit(f"if {test}:")
            if ins.a <= bci:
                self.poll(ins.a, extra=4)
            self.emit(f"    b = {taken}")
            self.emit("else:")
            self.emit(f"    b = {fall}")
        self.emit("continue")
        return 1 if raw else 0

    def gen_static_cell(self, bci: int, opname: str,
                        key: Tuple[str, str]) -> str:
        """lvalue/rvalue expression for a static field: a bound
        ``statics`` dict when monomorphy is proven (linked class or a
        warmed tier-1 cache), else a lazy cell identical to tier 1."""
        cls_name, fname = key
        seed = self.seeds.get(bci)
        if seed is not None:
            statics, fn = seed[0]
            return f"{self.bind(statics, 'sd')}[{_literal(fn) or self.bind(fn)}]"
        if self.m.loader.is_loaded(cls_name):
            try:
                home = self.m.loader.load(cls_name).find_static_home(fname)
            except Exception:
                home = None  # unresolvable: raise at runtime like tier 1
            if home is not None:
                return (f"{self.bind(home.statics, 'sd')}"
                        f"[{_literal(fname) or self.bind(fname)}]")
        cell = self.bind([None], "gc")
        u = self.fresh()
        self.emit(f"{u} = {cell}[0]")
        self.emit(f"if {u} is None:")
        self.marker(bci, opname)
        # marker emits at base indent; re-emit inside the if
        self.lines[-1] = self.lines[-1].replace("f =", "    f =", 1)
        self.emit(f"    {u} = {cell}[0] = RSF(m, "
                  f"{_literal(cls_name) or self.bind(cls_name)}, "
                  f"{_literal(fname) or self.bind(fname)})")
        return f"{u}[0][{u}[1]]"

    def gen_invokestatic(self, bci: int, ins: Any) -> int:
        nargs = ins.b or 0
        sym = self.sym
        # the call itself is charged on the return tuple, not the segment
        self.seg_w -= self.wt(op.INVOKESTATIC, 1.0)
        self.seg_n -= 1
        self.flush_acc()
        self.poll(bci, spill_sym=True)
        args = [sym.pop()[0] for _ in range(nargs)][::-1]
        live = list(sym)
        cls_name, mname = ins.a
        seed = self.seeds.get(bci)
        bound = None
        if seed is not None:
            bound = seed[0]
        elif self.m.loader.is_loaded(cls_name):
            try:
                bound = _resolve_static(self.m, cls_name, mname, nargs)
            except Exception:
                bound = None  # let the runtime raise exactly like tier 1
        self.spill(live)
        self.emit(f"frame.pc = {bci + 1}")
        if bound is not None:
            kc = self.bind(bound[0], "mc")
            kp = self.bind(bound[1], "mp")
            code_expr, pad_expr = kc, kp
        else:
            cell = self.bind([None], "ic")
            u = self.fresh()
            self.emit(f"{u} = {cell}[0]")
            self.emit(f"if {u} is None:")
            idx = len(self.faults)
            self.faults.append((bci, 0.0, 0,
                                self.wt(op.INVOKESTATIC, 1.0)))
            self.emit(f"    f = {idx}")
            self.emit(f"    {u} = {cell}[0] = RS(m, "
                      f"{_literal(cls_name) or self.bind(cls_name)}, "
                      f"{_literal(mname) or self.bind(mname)}, {nargs})")
            code_expr, pad_expr = f"{u}[0]", f"{u}[1]"
        self.gen_push_frame(code_expr, pad_expr, args)
        self.gen_call_exit(bci, self.wt(op.INVOKESTATIC, 1.0))
        return 0

    def gen_invokevirt(self, bci: int, ins: Any) -> int:
        nargs = ins.b or 0
        sym = self.sym
        self.seg_w -= self.wt(op.INVOKEVIRT, 1.0)
        self.seg_n -= 1
        self.flush_acc()
        self.poll(bci, spill_sym=True)
        args = [sym.pop()[0] for _ in range(nargs)][::-1]
        recv = sym.pop()[0]
        live = list(sym)
        seed = self.seeds.get(bci)
        # share the tier-1 cell when warmed (both tiers keep it hot);
        # otherwise a fresh per-site guard cell
        cell = self.bind(seed if seed is not None else [None, None], "vc")
        mn = _literal(ins.a) or self.bind(ins.a)
        u = self.fresh()
        self.emit(f"if {recv}.__class__ is Inst "
                  f"and {recv}.vmclass is {cell}[0]:")
        self.emit(f"    {u} = {cell}[1]")
        self.emit("else:")
        idx = len(self.faults)
        self.faults.append((bci, 0.0, 0, self.wt(op.INVOKEVIRT, 1.0)))
        self.emit(f"    f = {idx}")
        self.emit(f"    {u} = RV(m, {recv}, {mn}, {nargs}, {cell})")
        self.spill(live)
        self.emit(f"frame.pc = {bci + 1}")
        self.gen_push_frame(f"{u}[0]", f"{u}[1]", [recv] + args)
        self.gen_call_exit(bci, self.wt(op.INVOKEVIRT, 1.0))
        return 0

    def gen_call_exit(self, bci: int, w_call: float) -> None:
        """Close a call site: try a compiled->compiled direct call
        (host-level recursion, depth-capped so deep guest recursion
        still round-trips through the driver instead of blowing the
        host stack), else hand the pushed frame to the driver.

        Our state is fully materialized before the nested closure runs,
        so every non-return status simply forwards: the driver sees
        exactly what it would have seen had it made the call itself.
        A status-1 result from the direct callee means our own frame is
        the top again — re-enter this region at the return-continuation
        block without leaving the closure."""
        ret_blk = self.block_id.get(bci + 1)
        if ret_blk is not None:
            u = self.fresh()
            self.emit(f"if rd < {_MAX_INLINE_DEPTH}:")
            self.emit(f"    {u} = JM.get(nf.code)")
            self.emit(f"    if {u}.__class__ is tuple:")
            self.emit(f"        res = {u}[0](m, thread, nf, frames, ql, "
                      f"w_acc + {w_call!r}, n_acc + 1, opc, rd + 1)")
            self.emit("        if res[0] == 1 and frames[-1] is frame:")
            self.emit("            w_acc = res[1]")
            self.emit("            n_acc = res[2]")
            self.emit(f"            b = {ret_blk}")
            self.emit("            continue")
            self.emit("        return res")
        self.emit(f"return (0, w_acc + {w_call!r}, n_acc + 1)")

    def gen_push_frame(self, code_expr: str, pad_expr: str,
                       args: List[str]) -> None:
        self.emit("nf = F.__new__(F)")
        self.emit(f"nf.code = {code_expr}")
        self.emit(f"nf.locals = [{', '.join(args)}] + {pad_expr}")
        self.emit("nf.stack = []")
        self.emit("nf.pc = 0")
        self.emit("nf.pinned = False")
        self.emit("frames.append(nf)")

    def gen_native(self, bci: int, ins: Any) -> int:
        nargs = ins.b or 0
        sym = self.sym
        wn = self.wt(op.NATIVE, 1.0)
        self.seg_w -= wn
        self.seg_n -= 1
        self.flush_acc()
        self.poll(bci, spill_sym=True)
        args = [sym.pop()[0] for _ in range(nargs)][::-1]
        live = list(sym)
        # Safepoint: natives may read the clock, print, charge time or
        # install hooks — flush hard and expose a precise frame state.
        self.spill(live)
        self.emit("m.clock += opc * w_acc")
        self.emit("m.instr_count += n_acc")
        self.emit("w_acc = 0.0")
        self.emit("n_acc = 0")
        self.emit(f"frame.pc = {bci}")
        self.marker(bci, op.NATIVE, charged=False)
        nm = _literal(ins.a) or self.bind(ins.a)
        rv = self.fresh()
        self.emit(f"m.charge(NB)")
        self.emit(f"{rv} = m.natives.lookup({nm})(m, [{', '.join(args)}])")
        self.emit("if (m.breakpoints or m.on_breakpoint is not None "
                  "or m.on_write is not None):")
        self.emit(f"    fstack.append({rv})")
        self.emit(f"    frame.pc = {bci + 1}")
        self.emit(f"    return (5, {wn!r}, 1)")
        self.emit("if thread.pending_exception is not None:")
        self.emit(f"    fstack.append({rv})")
        self.emit(f"    frame.pc = {bci + 1}")
        self.emit(f"    return (4, {wn!r}, 1)")
        if live:
            self.emit(f"del fstack[-{len(live)}:]")
        self.seg_w += wn
        self.seg_n += 1
        # no STORE fusion across the native's spill/refill bookkeeping;
        # rv was assigned under a fresh name, so it is its own temp.
        sym.append((rv, None))
        return 0

    # -- assembly ---------------------------------------------------------

    def assemble(self) -> Tuple[Any, Dict[int, int]]:
        from repro.vm import machine as _machine
        entries = {b: self.block_id[b] for b in self.block_order}
        g: Dict[str, Any] = {
            "T": __import__("repro.vm.values", fromlist=["truthy"]).truthy,
            "A": _machine._add,
            "D": _machine._div,
            "MO": _machine._mod,
            "MS": _machine._MISSING,
            "Inst": __import__("repro.vm.objects",
                               fromlist=["VMInstance"]).VMInstance,
            "Arr": __import__("repro.vm.objects",
                              fromlist=["VMArray"]).VMArray,
            "RR": __import__("repro.vm.values",
                             fromlist=["RemoteRef"]).RemoteRef,
            "F": __import__("repro.vm.frames",
                            fromlist=["Frame"]).Frame,
            "GT": _machine.GuestThrow,
            "AF": _arr_fail,
            "IO": _iobe,
            "GFF": _getf_fail,
            "PFF": _putf_fail,
            "TH": _throw_exc,
            "NA": _newarr,
            "RS": _resolve_static,
            "RV": _resolve_virtual,
            "RSF": _resolve_static_field,
            "EN": entries,
            "FT": tuple(self.faults),
            "NB": self.m.cost.native_base,
            # the active compiled-code map (this namespace's): direct
            # compiled->compiled calls resolve the callee through it
            "JM": self.m._compiled,
        }
        g.update(self.consts)
        # Constants enter through a factory's closure cells, not
        # keyword defaults: kwdefault filling costs one dict lookup per
        # missing argument on EVERY call, which dominates small
        # call-heavy methods; LOAD_DEREF is paid only where used.
        params = ", ".join(g)
        src_lines = [
            f"def _mk({params}):",
            "  def _cf(m, thread, frame, frames, ql, w_acc, n_acc, opc,",
            "          rd=0):",
            "    locs = frame.locals",
            "    fstack = frame.stack",
            "    f = 0",
            "    b = EN[frame.pc]",
            "    try:",
            "        while True:",
        ]
        src_lines.extend(self.lines)
        src_lines.extend([
            "    except GT as gt:",
            "        ft = FT[f]",
            "        m.clock += opc * (w_acc + ft[1])",
            "        m.instr_count += n_acc + ft[2]",
            "        frame.pc = ft[0]",
            "        return (3, 0.0, 0, gt.exc, ft[3])",
            "    except BaseException:",
            "        m.clock += opc * w_acc",
            "        m.instr_count += n_acc",
            "        frame.pc = FT[f][0]",
            "        raise",
            "  return _cf",
        ])
        src = "\n".join(src_lines) + "\n"
        ns: Dict[str, Any] = {}
        exec(compile(src, f"<jit {self.code.qualname}>", "exec"), ns)
        fn = ns["_mk"](**g)
        fn.__jit_source__ = src  # debugging aid
        return fn, entries


def compile_code(machine: Any, code: CodeObject
                 ) -> Optional[Tuple[Any, Dict[int, int]]]:
    """Compile ``code`` against ``machine``'s current loader (which IS
    the running thread's namespace loader during ``run``).  Returns
    ``(closure, entries)`` — ``entries`` maps every resumable bci to
    its dispatch block id — or ``None`` when the method is refused."""
    try:
        return _Compiler(machine, code).compile()
    except _Refuse:
        return None


def compile_into(machine: Any, code: CodeObject,
                 jm: Dict[CodeObject, Any]) -> Any:
    """Tier-up entry used by the fast loop's driver: compile ``code``
    into the active compiled-code map.  Failures are cached as
    ``False`` so the driver never retries a refused method."""
    try:
        cf = compile_code(machine, code)
    except Exception:
        cf = None
    if cf is None:
        jm[code] = False
        return False
    jm[code] = cf
    machine.jit_compiles += 1
    return cf
