"""Runtime classes, instances and arrays.

A :class:`VMClass` is a loaded, linked class: its :class:`ClassFile` plus
resolved superclass, the full instance-field list, and static storage.
Instances and arrays carry a heap object id (``oid``) — the identity used
by the object manager to fetch/write-back objects across nodes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.bytecode.code import ClassFile, CodeObject, FieldDecl
from repro.errors import LinkError

_DEFAULTS = {"int": 0, "float": 0.0, "bool": False, "str": ""}

#: serialized bytes charged per object header / per reference
OBJECT_HEADER_BYTES = 16
REF_BYTES = 8


def default_value(type_name: str) -> Any:
    """The default (zero) value for a declared type."""
    return _DEFAULTS.get(type_name)  # refs/arrays default to None


class VMClass:
    """A linked runtime class.

    ``namespace`` is the tag of the class-loader namespace that linked
    it (``None`` for the root loader): static cells live per linked
    class, so the tag identifies which context's cells these are —
    write barriers and write-back messages carry it so a multi-tenant
    worker attributes static writes to the right namespace.
    """

    def __init__(self, cf: ClassFile, superclass: Optional["VMClass"],
                 namespace: Optional[str] = None):
        self.cf = cf
        self.superclass = superclass
        self.namespace = namespace
        #: all instance fields, superclass-first
        self.all_fields: List[FieldDecl] = []
        if superclass is not None:
            self.all_fields.extend(superclass.all_fields)
        self.all_fields.extend(cf.instance_fields())
        #: static storage (this class's own statics only)
        self.statics: Dict[str, Any] = {
            f.name: default_value(f.type_name) for f in cf.static_fields()
        }

    @property
    def name(self) -> str:
        return self.cf.name

    def find_method(self, name: str) -> Optional[CodeObject]:
        """Virtual lookup along the superclass chain."""
        cls: Optional[VMClass] = self
        while cls is not None:
            m = cls.cf.methods.get(name)
            if m is not None:
                return m
            cls = cls.superclass
        return None

    def find_static_home(self, field: str) -> "VMClass":
        """The class in the chain that declares static ``field``."""
        cls: Optional[VMClass] = self
        while cls is not None:
            if field in cls.statics:
                return cls
            cls = cls.superclass
        raise LinkError(f"no static field {self.name}.{field}")

    def is_subclass_of(self, name: str) -> bool:
        """True if this class or any ancestor is called ``name``."""
        cls: Optional[VMClass] = self
        while cls is not None:
            if cls.name == name:
                return True
            cls = cls.superclass
        return False

    def field_decl(self, name: str) -> Optional[FieldDecl]:
        """Instance-field declaration (walks the chain)."""
        for f in self.all_fields:
            if f.name == name:
                return f
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<VMClass {self.name}>"


class VMInstance:
    """A heap-allocated object."""

    __slots__ = ("vmclass", "fields", "oid", "host_payload")

    def __init__(self, vmclass: VMClass, oid: int):
        self.vmclass = vmclass
        self.oid = oid
        self.fields: Dict[str, Any] = {
            f.name: default_value(f.type_name) for f in vmclass.all_fields
        }
        #: host-side payload attached to guest exceptions (provenance etc.)
        self.host_payload: Any = None

    @property
    def class_name(self) -> str:
        return self.vmclass.name

    def nominal_bytes(self) -> int:
        """Serialized size of this object (shallow: refs count 8 bytes)."""
        total = OBJECT_HEADER_BYTES
        for f in self.vmclass.all_fields:
            v = self.fields.get(f.name)
            total += _value_bytes(v, f.nominal_bytes)
        return total

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{self.class_name}#{self.oid}>"


class VMArray:
    """A heap-allocated array.

    ``nominal_elem_bytes`` drives cost accounting: workloads can model a
    "64 MB static array" without storing 64 MB (see DESIGN.md), via the
    ``Sys.setNominal`` native.
    """

    __slots__ = ("kind", "data", "oid", "nominal_elem_bytes")

    def __init__(self, kind: str, length: int, oid: int,
                 nominal_elem_bytes: int = 8):
        self.kind = kind
        self.oid = oid
        self.nominal_elem_bytes = nominal_elem_bytes
        fill: Any = default_value(kind)
        self.data: List[Any] = [fill] * length

    def __len__(self) -> int:
        return len(self.data)

    def nominal_bytes(self) -> int:
        """Serialized size of the array."""
        return OBJECT_HEADER_BYTES + len(self.data) * self.nominal_elem_bytes

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{self.kind}[{len(self.data)}]#{self.oid}>"


def _value_bytes(v: Any, declared: int) -> int:
    """Serialized size of one field value."""
    if isinstance(v, str):
        return 4 + len(v)
    if isinstance(v, (VMInstance, VMArray)):
        return REF_BYTES
    return declared
