"""Workload registry: compiled builds, paper-vs-simulated parameters,
migration trigger points, and execution-time calibration.

Calibration model (see EXPERIMENTS.md): each workload runs at a reduced
problem size (``sim_args``) that is feasible inside a Python-hosted VM;
the per-instruction time is scaled so the plain-JDK execution time lands
at the paper's Table II "JDK" column.  Everything *else* — capture
sizes, stack depths at the migration point, bytes moved, fault counts,
VMTI call counts — is real, measured from the actual run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bytecode.code import ClassFile
from repro.lang import compile_source
from repro.preprocess import preprocess_program
from repro.vm.costmodel import CostModel  # noqa: F401 (re-export for runners)
from repro.vm.frames import ThreadState
from repro.vm.machine import Machine
from repro.workloads import programs

Trigger = Callable[[ThreadState], bool]


@dataclass(frozen=True)
class Workload:
    """One benchmark program.

    Attributes:
        name: Table I name.
        source: MiniLang source text.
        main: (class, method) of the entry point.
        paper_n / sim_args: the paper's problem size and our reduced one.
        paper_jdk_seconds: Table II "JDK" column (calibration target).
        paper_h: Table I max stack height (for reporting alongside ours).
        trigger: where the experiments place the migration.
        mig_frames: SOD segment size at that trigger (paper: top frame).
        reentrant: False when mutable statics carry run state — such a
            workload can only be served concurrently inside per-request
            class-loader namespaces (see ``repro.workloads.mixes``).
    """

    name: str
    source: str
    main: Tuple[str, str]
    paper_n: int
    sim_args: Tuple[Any, ...]
    paper_jdk_seconds: float
    paper_h: int
    trigger_method: Tuple[str, str]
    trigger_depth: int = 0
    mig_frames: int = 1
    reentrant: bool = True

    def trigger(self) -> Trigger:
        """The migration trigger: fires at entry of ``trigger_method``
        (optionally also requiring a minimum stack depth)."""
        cls, meth = self.trigger_method

        def trig(t: ThreadState) -> bool:
            f = t.frames[-1]
            if self.trigger_depth and t.depth() < self.trigger_depth:
                return False
            return (f.code.class_name == cls and f.code.name == meth
                    and f.pc == 0)

        return trig


WORKLOADS: Dict[str, Workload] = {
    "Fib": Workload(
        name="Fib", source=programs.FIB, main=("Fib", "main"),
        paper_n=46, sim_args=(21,), paper_jdk_seconds=12.10, paper_h=46,
        trigger_method=("Fib", "fib"), trigger_depth=18),
    "NQ": Workload(
        name="NQ", source=programs.NQUEENS, main=("NQ", "main"),
        paper_n=14, sim_args=(7,), paper_jdk_seconds=6.26, paper_h=16,
        trigger_method=("NQ", "place"), trigger_depth=6),
    "FFT": Workload(
        name="FFT", source=programs.FFT, main=("FFT", "main"),
        # dim=32 (1024 points), 32768 nominal bytes/elem -> 64 MB total
        paper_n=256, sim_args=(32, 32768), paper_jdk_seconds=12.39,
        paper_h=4, trigger_method=("FFT", "checksum"), reentrant=False),
    "TSP": Workload(
        name="TSP", source=programs.TSP, main=("TSP", "main"),
        paper_n=12, sim_args=(8,), paper_jdk_seconds=2.92, paper_h=4,
        trigger_method=("TSP", "search"), trigger_depth=4,
        reentrant=False),
}


@lru_cache(maxsize=None)
def compiled(name: str, build: str) -> Dict[str, ClassFile]:
    """Compile + preprocess a workload (cached)."""
    w = WORKLOADS[name]
    return preprocess_program(compile_source(w.source), build)


@lru_cache(maxsize=None)
def baseline_run(name: str) -> Tuple[Any, int]:
    """Run the workload standalone on the original build: returns
    (result, executed instructions).  Used for correctness oracles."""
    w = WORKLOADS[name]
    machine = Machine(compiled(name, "original"))
    result = machine.call(w.main[0], w.main[1], list(w.sim_args))
    return result, machine.instr_count


@lru_cache(maxsize=None)
def clock_units(name: str, build: str) -> float:
    """Weighted instruction units of one standalone run of a build
    (clock with instr_seconds=1 and all absolute costs zeroed)."""
    w = WORKLOADS[name]
    cost = CostModel(instr_seconds=1.0, native_base=0.0)
    machine = Machine(compiled(name, build), cost=cost)
    machine.call(w.main[0], w.main[1], list(w.sim_args))
    return machine.clock


def instr_seconds_for(name: str, build: str, target_seconds: float) -> float:
    """Per-instruction time that maps a reduced-size run of ``build``
    onto ``target_seconds`` (the calibration anchor: a system's
    *no-migration* execution time from the paper's Table II — the part
    set by JIT quality, which our VM cannot predict; migration deltas
    are then measured, not calibrated)."""
    return target_seconds / clock_units(name, build)


def calibrated_instr_seconds(name: str) -> float:
    """JDK anchor: original build onto the paper's JDK column."""
    w = WORKLOADS[name]
    return instr_seconds_for(name, "original", w.paper_jdk_seconds)


def expected_result(name: str) -> Any:
    """The correctness oracle for a workload at its sim size."""
    return baseline_run(name)[0]
