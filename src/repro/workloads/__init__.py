"""Guest benchmark programs, the workload registry, and the serving
request mixes."""

from repro.workloads import programs
from repro.workloads.mixes import (MIXES, SERVE_PROGRAMS, RequestMix,
                                   RequestSpec, ServeProgram,
                                   expected_request_result, serve_classpath,
                                   serve_compiled)
from repro.workloads.registry import (WORKLOADS, Workload, baseline_run,
                                      calibrated_instr_seconds, clock_units,
                                      compiled, expected_result,
                                      instr_seconds_for)

__all__ = [
    "programs", "WORKLOADS", "Workload", "baseline_run",
    "calibrated_instr_seconds", "clock_units", "compiled",
    "expected_result", "instr_seconds_for",
    "MIXES", "SERVE_PROGRAMS", "RequestMix", "RequestSpec", "ServeProgram",
    "expected_request_result", "serve_classpath", "serve_compiled",
]
