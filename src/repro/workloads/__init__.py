"""Guest benchmark programs and the workload registry."""

from repro.workloads import programs
from repro.workloads.registry import (WORKLOADS, Workload, baseline_run,
                                      calibrated_instr_seconds, clock_units,
                                      compiled, expected_result,
                                      instr_seconds_for)

__all__ = [
    "programs", "WORKLOADS", "Workload", "baseline_run",
    "calibrated_instr_seconds", "clock_units", "compiled",
    "expected_result", "instr_seconds_for",
]
