"""MiniLang sources of the paper's benchmark programs (Table I) and the
application scenarios (sections IV.C / IV.D), plus the Geometry class of
Fig. 4/5 and the Table V micro-benchmark.

These are the *guest* programs: they compile to repro bytecode, run in
the VM, and are what migrations actually move.
"""

FIB = """
class Fib {
  static int fib(int n) {
    if (n < 2) { return n; }
    int a = Fib.fib(n - 1);
    int b = Fib.fib(n - 2);
    return a + b;
  }
  static int main(int n) {
    return Fib.fib(n);
  }
}
"""

NQUEENS = """
class NQ {
  static bool ok(int[] pos, int row, int c) {
    for (int r = 0; r < row; r = r + 1) {
      if (pos[r] == c) { return false; }
      int d = row - r;
      if (pos[r] == c - d || pos[r] == c + d) { return false; }
    }
    return true;
  }
  static int place(int[] pos, int row, int n) {
    if (row == n) { return 1; }
    int count = 0;
    for (int c = 0; c < n; c = c + 1) {
      if (NQ.ok(pos, row, c)) {
        pos[row] = c;
        count = count + NQ.place(pos, row + 1, n);
      }
    }
    return count;
  }
  static int main(int n) {
    int[] pos = new int[n];
    return NQ.place(pos, 0, n);
  }
}
"""

# 2D FFT over static arrays.  ``elemBytes`` inflates the arrays'
# *nominal* size (the paper's F > 64 MB static data) without storing
# 64 MB for real; compute is exact Cooley-Tukey, checked against numpy
# in the test suite.  ``checksum`` deliberately avoids touching the big
# arrays (the paper placed the migration "at the method which did not
# need to operate on the array").
FFT = """
class FFT {
  static float[] re;
  static float[] im;
  static int dim;
  static float result;

  static void init(int dim, int elemBytes) {
    FFT.dim = dim;
    int total = dim * dim;
    FFT.re = new float[total];
    FFT.im = new float[total];
    Sys.setNominal(FFT.re, elemBytes);
    Sys.setNominal(FFT.im, elemBytes);
    int seed = 1234567;
    for (int i = 0; i < total; i = i + 1) {
      seed = (seed * 1103515245 + 12345) % 2147483647;
      if (seed < 0) { seed = -seed; }
      FFT.re[i] = Sys.floatOf(seed % 1000) / 1000.0;
      FFT.im[i] = 0.0;
    }
  }

  static void fft1d(float[] xr, float[] xi, int m, int inverse) {
    int j = 0;
    for (int i = 0; i < m; i = i + 1) {
      if (i < j) {
        float tr = xr[i]; xr[i] = xr[j]; xr[j] = tr;
        float ti = xi[i]; xi[i] = xi[j]; xi[j] = ti;
      }
      int k = m / 2;
      while (k >= 1 && j >= k) { j = j - k; k = k / 2; }
      j = j + k;
    }
    int len = 2;
    while (len <= m) {
      float ang = 2.0 * Sys.pi() / Sys.floatOf(len);
      if (inverse == 0) { ang = -ang; }
      float wr = Sys.cos(ang);
      float wi = Sys.sin(ang);
      for (int i = 0; i < m; i = i + len) {
        float cwr = 1.0; float cwi = 0.0;
        for (int q = 0; q < len / 2; q = q + 1) {
          int a = i + q;
          int b = i + q + len / 2;
          float ur = xr[a]; float ui = xi[a];
          float vr = xr[b] * cwr - xi[b] * cwi;
          float vi = xr[b] * cwi + xi[b] * cwr;
          xr[a] = ur + vr; xi[a] = ui + vi;
          xr[b] = ur - vr; xi[b] = ui - vi;
          float nwr = cwr * wr - cwi * wi;
          cwi = cwr * wi + cwi * wr;
          cwr = nwr;
        }
      }
      len = len * 2;
    }
  }

  static void fftRow(int row) {
    int m = FFT.dim;
    float[] tr = new float[m];
    float[] ti = new float[m];
    for (int i = 0; i < m; i = i + 1) { tr[i] = FFT.re[row * m + i]; ti[i] = FFT.im[row * m + i]; }
    FFT.fft1d(tr, ti, m, 0);
    for (int i = 0; i < m; i = i + 1) { FFT.re[row * m + i] = tr[i]; FFT.im[row * m + i] = ti[i]; }
  }

  static void fftCol(int col) {
    int m = FFT.dim;
    float[] tr = new float[m];
    float[] ti = new float[m];
    for (int i = 0; i < m; i = i + 1) { tr[i] = FFT.re[i * m + col]; ti[i] = FFT.im[i * m + col]; }
    FFT.fft1d(tr, ti, m, 0);
    for (int i = 0; i < m; i = i + 1) { FFT.re[i * m + col] = tr[i]; FFT.im[i * m + col] = ti[i]; }
  }

  static void compute() {
    for (int r = 0; r < FFT.dim; r = r + 1) { FFT.fftRow(r); }
    for (int c = 0; c < FFT.dim; c = c + 1) { FFT.fftCol(c); }
  }

  static float checksum(float seedRe, float seedIm) {
    // Small post-processing step that does NOT read the big arrays:
    // this is where the migration is placed (paper section IV.A).
    float acc = 0.0;
    for (int i = 0; i < 2000; i = i + 1) {
      acc = acc + Sys.sqrt(seedRe * seedRe + seedIm * seedIm + Sys.floatOf(i));
    }
    return acc;
  }

  static float post(float a, float b) {
    return FFT.checksum(a, b);
  }

  static float finishUp() {
    return FFT.post(FFT.re[0], FFT.im[0]);
  }

  static float main(int dim, int elemBytes) {
    FFT.init(dim, elemBytes);
    FFT.compute();
    FFT.result = FFT.finishUp();
    return FFT.result;
  }
}
"""

# TSP with boxed distance entries: the distance matrix is an array of
# row objects holding boxed cell objects, as a 2010 Java Vector-of-
# Vectors would be.  After migration "almost all object fields need be
# used frequently" (paper IV.A) -> one fault per row/cell object.
TSP = """
class City { int x; int y; }
class Cell { int d; }
class Row { Cell[] cells; }
class TSP {
  static City[] cities;
  static Row[] dist;
  static int n;
  static int best;

  static void init(int n) {
    TSP.n = n;
    TSP.cities = new City[n];
    int seed = 424243;
    for (int i = 0; i < n; i = i + 1) {
      City c = new City();
      seed = (seed * 1103515245 + 12345) % 2147483647;
      if (seed < 0) { seed = -seed; }
      c.x = seed % 1000;
      seed = (seed * 1103515245 + 12345) % 2147483647;
      if (seed < 0) { seed = -seed; }
      c.y = seed % 1000;
      TSP.cities[i] = c;
    }
    TSP.dist = new Row[n];
    for (int i = 0; i < n; i = i + 1) {
      Row row = new Row();
      row.cells = new Cell[n];
      for (int j = 0; j < n; j = j + 1) {
        Cell cell = new Cell();
        int dx = TSP.cities[i].x - TSP.cities[j].x;
        int dy = TSP.cities[i].y - TSP.cities[j].y;
        cell.d = Sys.intOf(Sys.sqrt(Sys.floatOf(dx * dx + dy * dy)));
        row.cells[j] = cell;
      }
      TSP.dist[i] = row;
    }
  }

  static int d(int i, int j) {
    return TSP.dist[i].cells[j].d;
  }

  static void search(int city, int depth, int cost, int[] visited) {
    if (cost >= TSP.best) { return; }
    if (depth == TSP.n) {
      int total = cost + TSP.d(city, 0);
      if (total < TSP.best) { TSP.best = total; }
      return;
    }
    for (int next = 1; next < TSP.n; next = next + 1) {
      if (visited[next] == 0) {
        visited[next] = 1;
        TSP.search(next, depth + 1, cost + TSP.d(city, next), visited);
        visited[next] = 0;
      }
    }
  }

  static int solve() {
    int[] visited = new int[TSP.n];
    visited[0] = 1;
    TSP.search(0, 1, 0, visited);
    return TSP.best;
  }

  static int run(int n) {
    TSP.init(n);
    TSP.best = 999999999;
    return TSP.solve();
  }

  static int main(int n) {
    return TSP.run(n);
  }
}
"""

# Full-text search over (possibly NFS-remote) files, section IV.C.
TEXTSEARCH = """
class Search {
  static int chunk;
  static int searchFile(str path, str needle) {
    int size = FS.size(path);
    int found = 0;
    for (int off = 0; off < size; off = off + Search.chunk) {
      int r = FS.scan(path, off, Search.chunk, needle);
      if (r >= 0) { found = found + 1; }
    }
    return found;
  }
  static int run3(str a, str b, str c, str needle) {
    Search.chunk = 4194304;
    int total = Search.searchFile(a, needle);
    total = total + Search.searchFile(b, needle);
    total = total + Search.searchFile(c, needle);
    return total;
  }
  static int runMany(str prefix, str needle) {
    Search.chunk = 4194304;
    str[] files = FS.list(prefix);
    int total = 0;
    for (int i = 0; i < Sys.len(files); i = i + 1) {
      total = total + Search.searchFile(files[i], needle);
    }
    return total;
  }
}
"""

# Photo-sharing web server, section IV.D: the search task is migrated
# to the phone (which hosts the photos); serve() holds the client
# socket and is pinned at home.
PHOTOSHARE = """
class PhotoServer {
  static str searchPhotos(str dir, str query) {
    str[] files = FS.list(dir);
    str out = "";
    for (int i = 0; i < Sys.len(files); i = i + 1) {
      if (Sys.indexOf(files[i], query) >= 0) {
        out = out + files[i] + ";";
      }
    }
    return out;
  }
  static str fetchPhoto(str path) {
    int size = FS.size(path);
    str data = FS.read(path, 0, size);
    return data;
  }
  static str serve(str dir, str query) {
    str listing = PhotoServer.searchPhotos(dir, query);
    return listing;
  }
  static str fetchOne(str path) {
    str data = PhotoServer.fetchPhoto(path);
    return data;
  }
}
"""

# The Geometry class of the paper's Fig. 4 / Fig. 5 (preprocessing and
# class-size comparison).
GEOMETRY = """
class Random2 {
  int seed;
  int nextInt() {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    if (seed < 0) { seed = -seed; }
    return seed;
  }
}
class Point2 {
  int x; int y;
  int getX() { return x; }
}
class Geometry {
  Random2 r;
  Point2 p;
  void setup() {
    r = new Random2();
    r.seed = 99991;
    p = new Point2();
  }
  void displaceX() {
    p.x = r.nextInt() + p.getX();
  }
}
class GeoMain {
  static int main(int reps) {
    Geometry g = new Geometry();
    g.setup();
    for (int i = 0; i < reps; i = i + 1) { g.displaceX(); }
    return g.p.x;
  }
}
"""

# Table V micro-benchmark: instance/static field reads and writes in a
# tight loop, per build (original / faulting / checking).
MICROBENCH = """
class Holder { int field; }
class Micro {
  static int sfield;
  static int baseline(int reps) {
    int acc = 0;
    for (int i = 0; i < reps; i = i + 1) {
      acc = acc + 1;
    }
    return acc;
  }
  static int baselineW(int reps) {
    int acc = 0;
    for (int i = 0; i < reps; i = i + 1) {
      acc = i;
    }
    return acc;
  }
  static int fieldRead(int reps) {
    Holder h = new Holder();
    h.field = 3;
    int acc = 0;
    for (int i = 0; i < reps; i = i + 1) {
      acc = acc + h.field;
    }
    return acc;
  }
  static int fieldWrite(int reps) {
    Holder h = new Holder();
    for (int i = 0; i < reps; i = i + 1) {
      h.field = i;
    }
    return h.field;
  }
  static int staticRead(int reps) {
    Micro.sfield = 5;
    int acc = 0;
    for (int i = 0; i < reps; i = i + 1) {
      acc = acc + Micro.sfield;
    }
    return acc;
  }
  static int staticWrite(int reps) {
    for (int i = 0; i < reps; i = i + 1) {
      Micro.sfield = i;
    }
    return Micro.sfield;
  }
}
"""

# -- reentrant serving programs -------------------------------------------------
#
# The elastic serving layer time-slices MANY guest threads on one node's
# machine, so concurrently served programs must be *reentrant*: all
# state in locals and freshly allocated heap objects, no mutable
# statics.  Fib and NQ above already qualify; FFT and TSP do not (their
# static arrays/bounds would be shared across requests).  The three
# programs below round out the request mixes: nested-loop compute with
# helper calls (MM), a predicate-per-iteration loop (Primes), and deep
# recursion over a local array (QS) whose stacks give stack-on-demand
# offload real segments to ship.

MATMUL = """
class MM {
  static int dot(int[] x, int[] y, int n, int row, int col) {
    int s = 0;
    for (int k = 0; k < n; k = k + 1) {
      s = s + x[row * n + k] * y[k * n + col];
    }
    return s;
  }
  static int mul(int n) {
    int[] x = new int[n * n];
    int[] y = new int[n * n];
    for (int i = 0; i < n * n; i = i + 1) {
      x[i] = i % 7 + 1;
      y[i] = i % 5 + 2;
    }
    int sum = 0;
    for (int r = 0; r < n; r = r + 1) {
      for (int c = 0; c < n; c = c + 1) {
        sum = (sum + MM.dot(x, y, n, r, c)) % 1000003;
      }
    }
    return sum;
  }
  static int main(int n) {
    return MM.mul(n);
  }
}
"""

PRIMES = """
class Primes {
  static bool isPrime(int n) {
    if (n < 2) { return false; }
    for (int d = 2; d * d <= n; d = d + 1) {
      if (n % d == 0) { return false; }
    }
    return true;
  }
  static int count(int lo, int hi) {
    int c = 0;
    for (int i = lo; i < hi; i = i + 1) {
      if (Primes.isPrime(i)) { c = c + 1; }
    }
    return c;
  }
  static int main(int hi) {
    return Primes.count(2, hi);
  }
}
"""

QSORT = """
class QS {
  static void sort(int[] xs, int lo, int hi) {
    if (lo >= hi) { return; }
    int p = xs[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
      while (xs[i] < p) { i = i + 1; }
      while (xs[j] > p) { j = j - 1; }
      if (i <= j) {
        int t = xs[i]; xs[i] = xs[j]; xs[j] = t;
        i = i + 1; j = j - 1;
      }
    }
    QS.sort(xs, lo, j);
    QS.sort(xs, i, hi);
  }
  static int fill(int[] xs, int n) {
    int seed = 12345;
    for (int i = 0; i < n; i = i + 1) {
      seed = (seed * 1103515245 + 12345) % 2147483647;
      if (seed < 0) { seed = -seed; }
      xs[i] = seed % 1000;
    }
    return seed;
  }
  static int main(int n) {
    int[] xs = new int[n];
    int ignored = QS.fill(xs, n);
    QS.sort(xs, 0, n - 1);
    int check = 0;
    for (int i = 0; i < n; i = i + 1) {
      check = (check * 31 + xs[i]) % 1000003;
    }
    return check;
  }
}
"""
