"""Request-mix scenarios for the elastic serving layer.

A *serve program* is a guest program small enough that one request is a
few thousand to a few hundred thousand instructions — web-request scale
rather than batch scale.  A *request mix* is a weighted catalogue of
(program, args) pairs from which a seeded load generator draws a
deterministic request stream.

Programs are marked **reentrant** (no mutable statics: safe to
time-slice many requests on one machine's shared cells) or
**isolated** (statics carry working state — FFT and TSP from the paper
registry).  Isolated programs used to be excluded from every mix;
since class-loader namespaces landed, the scheduler gives each such
request its own namespace (its own static cells, on every node it
migrates through), so the ``"paper"`` mix serves the full registry
concurrently — including offload, migration, and multi-hop chains.
Reentrant programs skip the namespace entirely and keep the original
zero-overhead path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Iterable, List, Tuple

from repro.bytecode.code import ClassFile
from repro.lang import compile_source
from repro.preprocess import preprocess_program
from repro.vm.machine import Machine
from repro.workloads import programs


@dataclass(frozen=True)
class ServeProgram:
    """One servable guest program: source + entry point.

    ``reentrant=False`` marks a program whose mutable statics carry
    request state: the scheduler must serve each request of it inside
    a fresh class-loader namespace (per-request static cells)."""

    name: str
    source: str
    main: Tuple[str, str]
    reentrant: bool = True


SERVE_PROGRAMS: Dict[str, ServeProgram] = {
    "Fib": ServeProgram("Fib", programs.FIB, ("Fib", "main")),
    "NQ": ServeProgram("NQ", programs.NQUEENS, ("NQ", "main")),
    "MM": ServeProgram("MM", programs.MATMUL, ("MM", "main")),
    "Primes": ServeProgram("Primes", programs.PRIMES, ("Primes", "main")),
    "QS": ServeProgram("QS", programs.QSORT, ("QS", "main")),
    # The paper registry's statics-heavy pair: working state lives in
    # static fields (FFT's arrays/result, TSP's distance matrix and
    # best bound), so concurrent requests need namespace isolation.
    "FFT": ServeProgram("FFT", programs.FFT, ("FFT", "main"),
                        reentrant=False),
    "TSP": ServeProgram("TSP", programs.TSP, ("TSP", "main"),
                        reentrant=False),
}


def needs_isolation(program: str) -> bool:
    """Does a request of ``program`` require its own class-loader
    namespace (non-reentrant statics)?"""
    return not SERVE_PROGRAMS[program].reentrant


@lru_cache(maxsize=None)
def serve_compiled(name: str) -> Dict[str, ClassFile]:
    """Compile + preprocess a serve program on the faulting build (the
    build migration needs: MSPs, fault handlers, restoration prologues)."""
    return preprocess_program(compile_source(SERVE_PROGRAMS[name].source),
                              "faulting")


def serve_classpath(names: Iterable[str]) -> Dict[str, ClassFile]:
    """The merged classpath serving every program in ``names``.

    Program class names are disjoint by construction; the compiler's
    builtin classes (Throwable etc.) collide by name with identical
    definitions, so last-merge-wins is safe.
    """
    merged: Dict[str, ClassFile] = {}
    for name in names:
        merged.update(serve_compiled(name))
    return merged


@dataclass(frozen=True)
class RequestSpec:
    """One admissible request: which program, with which arguments."""

    program: str
    args: Tuple[Any, ...]

    @property
    def main(self) -> Tuple[str, str]:
        return SERVE_PROGRAMS[self.program].main

    def label(self) -> str:
        return f"{self.program}{self.args}"


@lru_cache(maxsize=None)
def expected_request_result(spec: RequestSpec) -> Any:
    """Correctness oracle: the request's result on a standalone
    legacy-dispatch machine (independent of the serving layer *and* of
    the fast interpreter loop)."""
    m = Machine(serve_compiled(spec.program), dispatch="legacy")
    return m.call(spec.main[0], spec.main[1], list(spec.args))


@dataclass(frozen=True)
class RequestMix:
    """A weighted request catalogue with a deterministic draw."""

    name: str
    choices: Tuple[Tuple[RequestSpec, float], ...]
    description: str = ""

    def programs(self) -> List[str]:
        return sorted({spec.program for spec, _w in self.choices})

    def draw(self, n: int, seed: int = 0) -> List[RequestSpec]:
        """``n`` requests drawn by weight.  String-seeded ``Random`` is
        hashed with SHA-512, so the stream is stable across processes
        and interpreter versions (pytest-randomly cannot perturb it)."""
        rng = random.Random(f"mix:{self.name}:{seed}")
        specs = [spec for spec, _w in self.choices]
        weights = [w for _spec, w in self.choices]
        return rng.choices(specs, weights=weights, k=n)


def _mix(name: str, description: str,
         *choices: Tuple[str, Tuple[Any, ...], float]) -> RequestMix:
    return RequestMix(name, tuple(
        (RequestSpec(prog, args), w) for prog, args, w in choices),
        description)


#: the serving scenarios the benchmarks and tests draw from
MIXES: Dict[str, RequestMix] = {
    # Embarrassingly parallel: similar-sized, CPU-bound, independent
    # requests — the near-linear-scaling acceptance scenario.
    "parallel": _mix(
        "parallel",
        "uniform CPU-bound requests; throughput should scale ~linearly",
        ("Fib", (14,), 1.0),
        ("NQ", (5,), 1.0),
        ("Primes", (300,), 1.0),
        ("MM", (9,), 1.0),
    ),
    # Mixed sizes: light lookups interleaved with heavier compute.
    "mixed": _mix(
        "mixed",
        "varied request sizes; scheduler fairness and handoff matter",
        ("NQ", (5,), 3.0),
        ("Primes", (400,), 3.0),
        ("Fib", (14,), 2.0),
        ("QS", (220,), 2.0),
        ("MM", (10,), 1.0),
    ),
    # Scale: light, uniform, CPU-bound requests (~8-11k instructions
    # each) sized so thousands of them sweep across dozens of nodes in
    # tractable host time — the O(log n) scheduling benchmark scenario.
    "scale": _mix(
        "scale",
        "thousands of light requests; scheduler decision cost dominates",
        ("Fib", (11,), 1.0),
        ("NQ", (4,), 1.0),
        ("Primes", (60,), 1.0),
        ("Primes", (80,), 1.0),
    ),
    # Hotspot: mostly light traffic plus a tail of heavy requests that
    # pile onto whichever node admitted them — the SOD-offload scenario.
    "hotspot": _mix(
        "hotspot",
        "light traffic with a heavy tail; offload rescues stragglers",
        ("NQ", (5,), 5.0),
        ("Primes", (300,), 4.0),
        ("Fib", (17,), 1.0),
        ("QS", (400,), 1.0),
    ),
    # The full paper registry, statics-heavy programs included: FFT
    # keeps its arrays and result in statics, TSP its distance matrix
    # and best-tour bound — each such request runs in its own
    # class-loader namespace (fresh static cells on every node it
    # touches), so heavy traffic, offload and multi-hop chains all
    # work on programs that were previously excluded from serving.
    # Sizes span light lookups (TSP n=5, ~18k instrs) to heavy compute
    # (FFT 4x4 2D transform + checksum, ~145k instrs).
    "paper": _mix(
        "paper",
        "the whole registry incl. non-reentrant FFT/TSP via namespaces",
        ("FFT", (4, 8), 2.0),
        ("TSP", (5,), 3.0),
        ("TSP", (6,), 1.0),
        ("Fib", (14,), 2.0),
        ("NQ", (5,), 2.0),
    ),
    # Offload-heavy: uniformly heavy, deep-stacked requests (~100-250k
    # instructions, dozens of quanta each) — nearly every thread lives
    # long enough to be worth shipping, so migration transfer cost is
    # the dominant overhead.  The migration fast-path benchmark runs
    # this through a single front door: elasticity comes entirely from
    # SOD offloads (and, with max_seg_hops > 0, Fig. 1c chains).
    "offload": _mix(
        "offload",
        "uniformly heavy deep requests; migration cost dominates",
        ("Fib", (16,), 3.0),
        ("QS", (400,), 2.0),
        ("Primes", (600,), 2.0),
        ("NQ", (6,), 1.0),
    ),
}
