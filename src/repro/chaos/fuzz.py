"""The fault-schedule fuzzer: random disasters vs solo oracles.

Each fuzz run derives a random :class:`FaultPlan` from a seed, serves a
request mix under it, and checks the recovery invariants that must hold
under *any* crash/partition/straggle schedule:

* **zero incorrect responses** — every served result equals the
  request's solo oracle (``expected_request_result``): recovery may
  re-execute or fail a request, but never corrupt one;
* **nothing vanishes** — every submitted request reaches a terminal
  state (done/failed/shed); unserved == 0;
* **failures are honest** — a failed request carries a known fault
  reason and exhausted its bounded retry budget (a fault-free run, by
  the same token, must fail nothing);
* **sheds are honest** — with admission control installed (the
  ``shed_at``/``admission`` knobs), a refused request is classified
  ``shed``, never lost or incorrect: it is terminal, it never started,
  it carries no result — *including* requests shed because dead racks
  shrank the cluster's capacity under them;
* **tenant accounting balances** — every per-tenant runnable counter
  returns to zero once the run drains, even when crash-retirement
  recovered work across nodes mid-flight;
* **no zombies** — when the run ends, no segment is still registered
  as live.

A violation dict names the seed, so any disaster the fuzzer finds is
one ``run_config`` (or ``serve --chaos <seed>``) away from a
deterministic re-run under a debugger.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.chaos.faults import random_plan
from repro.chaos.trace import DEFAULT_HORIZON

#: failure reasons the recovery paths are allowed to surface
FAULT_REASONS = {"node-crash", "dependency-crash", "delivery-failed"}


def fuzz_one(seed: int, mix: str = "parallel", n_nodes: int = 4,
             n_requests: int = 24, horizon: float = DEFAULT_HORIZON,
             max_retries: int = 3, shed_at: Optional[float] = None,
             admission: Optional[str] = None,
             tenants: Optional[Any] = None,
             arrival_rate: Optional[float] = None,
             slo: Optional[float] = None, **plan_kw: Any) -> Dict[str, Any]:
    """One fuzz run: serve ``mix`` under ``random_plan(seed)`` and
    return ``{"seed", "plan", "report", "violations"}``.

    The overload knobs compose with the fault schedule: ``shed_at``
    installs the static :class:`~repro.serve.policies.ShedWhenSaturated`
    (``admission="adaptive"`` upgrades it to the learning controller,
    seeded from ``shed_at``/``slo``), and ``tenants`` +
    ``arrival_rate`` drive per-tenant open-loop Poisson arrivals — the
    combined chaos+overload case where capacity collapses under an
    offered load that never lets up."""
    from repro.serve.policies import AdaptiveShed, ShedWhenSaturated
    from repro.serve.scheduler import build_serving

    adm: Any = None
    if admission == "adaptive":
        kw: Dict[str, Any] = {}
        if slo is not None:
            kw["slo"] = slo
        if shed_at is not None:
            kw["init_load"] = shed_at
        adm = AdaptiveShed(**kw)
    elif shed_at is not None:
        adm = ShedWhenSaturated(max_node_load=shed_at)
    names = [f"node{i}" for i in range(n_nodes)]
    plan = random_plan(names, seed, horizon=horizon, **plan_kw)
    sched, load = build_serving(mix=mix, n_nodes=n_nodes,
                                n_requests=n_requests,
                                fault_plan=plan, max_retries=max_retries,
                                admission=adm, tenants=tenants,
                                arrival_rate=arrival_rate)
    rep = sched.serve(load)
    violations: List[str] = []
    if rep.correct != rep.served:
        violations.append(
            f"incorrect responses: {rep.served - rep.correct} of "
            f"{rep.served} served results diverge from the solo oracle")
    if rep.unserved != 0:
        violations.append(f"{rep.unserved} requests vanished "
                          f"(no terminal state)")
    for r in sched.finished:
        if r.state == "failed":
            if r.error not in FAULT_REASONS:
                violations.append(
                    f"req {r.rid} failed with non-fault reason "
                    f"{r.error!r}")
            elif r.retries <= max_retries:
                violations.append(
                    f"req {r.rid} failed after only {r.retries} "
                    f"retries (budget {max_retries} not exhausted)")
    shed = [r for r in sched.requests if r.state == "shed"]
    for r in shed:
        # Shed attribution: a refused request is an admission
        # *decision* — terminal on arrival, never executed, never a
        # result.  Anything else means a shed was mislabelled (or a
        # lost request was laundered as one).
        if r.started_at is not None or r.result is not None \
                or r.thread is not None:
            violations.append(
                f"req {r.rid} classified shed but carries execution "
                f"state (started={r.started_at}, result={r.result!r})")
        elif r.finished_at is None or r not in sched.finished:
            violations.append(
                f"req {r.rid} shed but not terminal")
    if len(shed) != rep.stats["shed"]:
        violations.append(
            f"shed count drift: {len(shed)} shed requests vs "
            f"stats[shed]={rep.stats['shed']}")
    leftover = {t: c for t, c in sched.load_index.tenant_count.items() if c}
    if leftover:
        violations.append(
            f"per-tenant runnable counters nonzero after drain: "
            f"{leftover}")
    if sched.active_segments:
        violations.append(
            f"zombie segments at end of run: "
            f"{sorted(sched.active_segments)}")
    return {"seed": seed, "plan": plan.to_dict(),
            "report": rep.to_dict(), "violations": violations}


def fuzz(n_runs: int, start_seed: int = 0,
         **kw: Any) -> Dict[str, Any]:
    """Run ``n_runs`` fuzz seeds; returns an aggregate with every
    violation found (an empty ``violations`` list is a pass)."""
    runs = []
    violations: List[Dict[str, Any]] = []
    recovered = 0
    crashes = 0
    for seed in range(start_seed, start_seed + n_runs):
        out = fuzz_one(seed, **kw)
        sched_stats = out["report"]["sched"]
        recovered += sched_stats.get("seg_recoveries", 0) \
            + sched_stats.get("retries", 0)
        crashes += sched_stats.get("crashes", 0)
        runs.append({"seed": seed,
                     "served": out["report"]["served"],
                     "correct": out["report"]["correct"],
                     "failed": out["report"]["failed"],
                     "crashes": sched_stats.get("crashes", 0),
                     "violations": out["violations"]})
        if out["violations"]:
            violations.append({"seed": seed,
                               "violations": out["violations"],
                               "plan": out["plan"]})
    return {"n_runs": n_runs, "start_seed": start_seed,
            "crashes": crashes, "recoveries": recovered,
            "violations": violations, "runs": runs}
