"""The fault-schedule fuzzer: random disasters vs solo oracles.

Each fuzz run derives a random :class:`FaultPlan` from a seed, serves a
request mix under it, and checks the recovery invariants that must hold
under *any* crash/partition/straggle schedule:

* **zero incorrect responses** — every served result equals the
  request's solo oracle (``expected_request_result``): recovery may
  re-execute or fail a request, but never corrupt one;
* **nothing vanishes** — every submitted request reaches a terminal
  state (done/failed/shed); unserved == 0;
* **failures are honest** — a failed request carries a known fault
  reason and exhausted its bounded retry budget (a fault-free run, by
  the same token, must fail nothing);
* **no zombies** — when the run ends, no segment is still registered
  as live.

A violation dict names the seed, so any disaster the fuzzer finds is
one ``run_config`` (or ``serve --chaos <seed>``) away from a
deterministic re-run under a debugger.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.chaos.faults import random_plan
from repro.chaos.trace import DEFAULT_HORIZON

#: failure reasons the recovery paths are allowed to surface
FAULT_REASONS = {"node-crash", "dependency-crash", "delivery-failed"}


def fuzz_one(seed: int, mix: str = "parallel", n_nodes: int = 4,
             n_requests: int = 24, horizon: float = DEFAULT_HORIZON,
             max_retries: int = 3, **plan_kw: Any) -> Dict[str, Any]:
    """One fuzz run: serve ``mix`` under ``random_plan(seed)`` and
    return ``{"seed", "plan", "report", "violations"}``."""
    from repro.serve.scheduler import build_serving

    names = [f"node{i}" for i in range(n_nodes)]
    plan = random_plan(names, seed, horizon=horizon, **plan_kw)
    sched, load = build_serving(mix=mix, n_nodes=n_nodes,
                                n_requests=n_requests,
                                fault_plan=plan, max_retries=max_retries)
    rep = sched.serve(load)
    violations: List[str] = []
    if rep.correct != rep.served:
        violations.append(
            f"incorrect responses: {rep.served - rep.correct} of "
            f"{rep.served} served results diverge from the solo oracle")
    if rep.unserved != 0:
        violations.append(f"{rep.unserved} requests vanished "
                          f"(no terminal state)")
    for r in sched.finished:
        if r.state == "failed":
            if r.error not in FAULT_REASONS:
                violations.append(
                    f"req {r.rid} failed with non-fault reason "
                    f"{r.error!r}")
            elif r.retries <= max_retries:
                violations.append(
                    f"req {r.rid} failed after only {r.retries} "
                    f"retries (budget {max_retries} not exhausted)")
    if sched.active_segments:
        violations.append(
            f"zombie segments at end of run: "
            f"{sorted(sched.active_segments)}")
    return {"seed": seed, "plan": plan.to_dict(),
            "report": rep.to_dict(), "violations": violations}


def fuzz(n_runs: int, start_seed: int = 0,
         **kw: Any) -> Dict[str, Any]:
    """Run ``n_runs`` fuzz seeds; returns an aggregate with every
    violation found (an empty ``violations`` list is a pass)."""
    runs = []
    violations: List[Dict[str, Any]] = []
    recovered = 0
    crashes = 0
    for seed in range(start_seed, start_seed + n_runs):
        out = fuzz_one(seed, **kw)
        sched_stats = out["report"]["sched"]
        recovered += sched_stats.get("seg_recoveries", 0) \
            + sched_stats.get("retries", 0)
        crashes += sched_stats.get("crashes", 0)
        runs.append({"seed": seed,
                     "served": out["report"]["served"],
                     "correct": out["report"]["correct"],
                     "failed": out["report"]["failed"],
                     "crashes": sched_stats.get("crashes", 0),
                     "violations": out["violations"]})
        if out["violations"]:
            violations.append({"seed": seed,
                               "violations": out["violations"],
                               "plan": out["plan"]})
    return {"n_runs": n_runs, "start_seed": start_seed,
            "crashes": crashes, "recoveries": recovered,
            "violations": violations, "runs": runs}
