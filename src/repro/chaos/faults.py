"""Fault plans: seeded, serializable schedules of injected failures.

A :class:`FaultPlan` is a list of :class:`FaultEvent`s on the virtual
clock — node crashes, link failures (optionally healing), partitions,
and straggler slowdowns.  Plans are plain data: they serialize to JSON
(so a recorded trace embeds the exact faults it ran under and a replay
re-injects them), and :func:`random_plan` derives one deterministically
from a seed, so ``serve --chaos <seed>`` names a reproducible disaster.

Semantics (enforced by the injector/scheduler, documented here):

* **crash** — permanent.  The node's JVM process dies: guest threads,
  worker caches, and ledger epochs are gone; in-flight transfers
  touching the node are lost.  The *front* node (ingress + classpath
  home) never crashes — a plan naming it is rejected.
* **link** — the directed pair goes down both ways; ``heal`` seconds
  later it comes back (0 = stays down).  Messages on the wire when the
  link fails are lost even if it heals before their timeout expires.
* **partition** — every link between ``nodes`` and the rest of the
  cluster fails, healing together after ``heal`` seconds.
* **straggle** — the node's CPU runs ``factor`` times slower for
  ``heal`` seconds (0 = forever).  Nothing is lost; work just drags,
  which is what exercises the offload policies under asymmetry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.errors import ClusterError

KINDS = ("crash", "link", "partition", "straggle")


@dataclass
class FaultEvent:
    """One scheduled fault on the virtual clock."""

    at: float
    kind: str
    node: str = ""                 # crash / straggle
    src: str = ""                  # link
    dst: str = ""                  # link
    nodes: tuple = ()              # partition group
    heal: float = 0.0              # link/partition/straggle duration
    factor: float = 4.0            # straggle slowdown multiplier

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ClusterError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ClusterError(f"fault scheduled at negative time {self.at}")
        self.nodes = tuple(self.nodes)

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"at": self.at, "kind": self.kind}
        if self.node:
            d["node"] = self.node
        if self.src:
            d["src"] = self.src
            d["dst"] = self.dst
        if self.nodes:
            d["nodes"] = list(self.nodes)
        if self.heal:
            d["heal"] = self.heal
        if self.kind == "straggle":
            d["factor"] = self.factor
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultEvent":
        return cls(at=d["at"], kind=d["kind"], node=d.get("node", ""),
                   src=d.get("src", ""), dst=d.get("dst", ""),
                   nodes=tuple(d.get("nodes", ())),
                   heal=d.get("heal", 0.0), factor=d.get("factor", 4.0))

    def label(self) -> str:
        if self.kind == "crash":
            return f"crash({self.node})"
        if self.kind == "link":
            return f"link({self.src}-{self.dst}, heal={self.heal:g})"
        if self.kind == "partition":
            return f"partition({','.join(self.nodes)}, heal={self.heal:g})"
        return f"straggle({self.node} x{self.factor:g}, heal={self.heal:g})"


@dataclass
class FaultPlan:
    """An ordered fault schedule (sorted by time, stable by insertion)."""

    events: List[FaultEvent] = field(default_factory=list)
    #: the seed this plan was derived from (0 = hand-built) — carried
    #: into traces so a replayed run can name its disaster
    seed: int = 0

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.at)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def crashes(self) -> List[str]:
        return [e.node for e in self.events if e.kind == "crash"]

    def validate(self, node_names: Sequence[str], front: str) -> None:
        """Reject plans naming unknown nodes or crashing the front."""
        known = set(node_names)
        for e in self.events:
            for n in (e.node, e.src, e.dst, *e.nodes):
                if n and n not in known:
                    raise ClusterError(f"fault plan names unknown node "
                                       f"{n!r} in {e.label()}")
            if e.kind == "crash" and e.node == front:
                raise ClusterError(
                    f"fault plan crashes the front node {front!r} "
                    f"(ingress + classpath home cannot die)")

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultPlan":
        return cls(events=[FaultEvent.from_dict(e) for e in d["events"]],
                   seed=d.get("seed", 0))


def random_plan(node_names: Sequence[str], seed: int,
                horizon: float = 0.05,
                n_crashes: int = 1,
                n_link_failures: int = 1,
                n_stragglers: int = 1,
                partition_prob: float = 0.25) -> FaultPlan:
    """Derive a reproducible fault schedule from ``seed``.

    Faults land in ``(0, horizon)`` virtual seconds — pick a horizon
    inside the serving run's expected makespan or the faults hit an
    empty cluster.  The front node (``node_names[0]``) is exempt from
    crashes; everything else is fair game, but at least one node stays
    alive (crashes are capped at n-2 victims)."""
    if len(node_names) < 2:
        raise ClusterError("chaos needs at least two nodes")
    rng = random.Random(f"fault-plan-{seed}")
    front = node_names[0]
    crashable = [n for n in node_names[1:]]
    events: List[FaultEvent] = []
    n_crashes = min(n_crashes, len(crashable) - 1) if len(crashable) > 1 \
        else min(n_crashes, 1)
    victims = rng.sample(crashable, max(0, n_crashes))
    for v in victims:
        events.append(FaultEvent(at=rng.uniform(0.1, 0.9) * horizon,
                                 kind="crash", node=v))
    for _ in range(n_link_failures):
        src = rng.choice(node_names)
        dst = rng.choice([n for n in node_names if n != src])
        events.append(FaultEvent(
            at=rng.uniform(0.05, 0.8) * horizon, kind="link",
            src=src, dst=dst,
            heal=rng.uniform(0.05, 0.3) * horizon))
    for _ in range(n_stragglers):
        node = rng.choice(node_names)
        events.append(FaultEvent(
            at=rng.uniform(0.0, 0.5) * horizon, kind="straggle",
            node=node, factor=rng.choice([2.0, 4.0, 8.0]),
            heal=rng.uniform(0.1, 0.5) * horizon))
    if len(node_names) >= 4 and rng.random() < partition_prob:
        k = rng.randint(1, len(node_names) // 2)
        group = tuple(rng.sample([n for n in node_names if n != front], k))
        events.append(FaultEvent(
            at=rng.uniform(0.1, 0.7) * horizon, kind="partition",
            nodes=group, heal=rng.uniform(0.05, 0.25) * horizon))
    plan = FaultPlan(events=events, seed=seed)
    plan.validate(node_names, front)
    return plan
