"""Chaos engineering for the serving stack: fault injection, crash
recovery, and deterministic record/replay.

Three pieces, all riding the discrete-event kernel so disasters are as
reproducible as the happy path:

* :mod:`repro.chaos.faults` — :class:`FaultPlan`: seeded, serializable
  schedules of node crashes, link failures/partitions (with heal
  times), and straggler slowdowns;
* :mod:`repro.chaos.injector` — :class:`ChaosInjector`: the kernel
  process that applies a plan to a live scheduler through the network /
  load-index / engine seams;
* :mod:`repro.chaos.trace` — record a serving run's event stream and
  replay it byte-identically from the embedded config;
* :mod:`repro.chaos.fuzz` — random fault schedules checked against
  per-request solo oracles (zero incorrect responses, ever).
"""

from repro.chaos.faults import KINDS, FaultEvent, FaultPlan, random_plan
from repro.chaos.injector import ChaosInjector
from repro.chaos.trace import (TraceRecorder, canonical, read_trace,
                               replay_trace, resolve_config, run_recorded,
                               trace_divergence, traces_equal, write_trace)

__all__ = [
    "KINDS", "FaultEvent", "FaultPlan", "random_plan", "ChaosInjector",
    "TraceRecorder", "canonical", "read_trace", "replay_trace",
    "resolve_config", "run_recorded", "trace_divergence", "traces_equal",
    "write_trace",
]
