"""Deterministic record/replay of serving runs.

A *trace* is a JSON document capturing one serving run: the fully
resolved configuration (fault plan embedded), the event stream the
scheduler emitted (arrivals, scheduling decisions, faults, recoveries,
completions — each stamped with its virtual time), and a per-request
summary.  Because a serving run is a pure function of its
configuration — virtual clock, string-seeded RNGs, deterministic
tie-breaking, and faults injected as ordinary kernel events — *replay
is just re-execution*: run the embedded config again and the new trace
is byte-identical to the recorded one, faults, recoveries, timestamps
and all.  A divergence therefore pinpoints a nondeterminism bug (or a
code change), which is what makes crash-recovery debugging tractable:
any disaster the fuzzer finds can be re-run under a debugger as many
times as it takes.

The comparison is strict: ``traces_equal`` canonicalizes both
documents with sorted keys and compares the serialized bytes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.faults import FaultPlan, random_plan

#: trace document schema version (bump on incompatible change)
TRACE_VERSION = 1

#: default fault-plan horizon (virtual seconds) when ``--chaos SEED``
#: derives a plan: chosen inside the makespan of the default serving
#: config so faults land while the cluster is busy
DEFAULT_HORIZON = 0.01

#: the knobs a trace records; anything omitted replays at its default
#: (None = the serve stack's own default)
CONFIG_DEFAULTS: Dict[str, Any] = {
    "mix": "parallel", "n_nodes": 4, "n_requests": 32, "seed": 7,
    "quantum": 2500, "interarrival": 0.0, "placement": "round-robin",
    "offload": "queue-depth", "max_seg_hops": 0, "rack_size": 4,
    "staleness": None, "isolation": "auto", "shed_at": None,
    "max_retries": 3, "chaos_seed": None, "chaos_horizon": DEFAULT_HORIZON,
    "fault_plan": None,
    # Multi-tenant QoS / overload control: the tenant set (as
    # Tenant.to_dict rows), the open-loop Poisson base arrival rate,
    # the admission controller ("static" reads shed_at; "adaptive"
    # learns the threshold, seeded from shed_at, steering to slo), and
    # the adaptive controller's P95 latency target.
    "tenants": None, "arrival_rate": None, "admission": None, "slo": None,
}


class TraceRecorder:
    """Collects scheduler events (duck-typed tracer: ``emit``)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, now: float, kind: str, fields: Dict[str, Any]) -> None:
        self.events.append({"t": now, "kind": kind, **fields})


def resolve_config(config: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Canonicalize a partial config: fill defaults, reject unknown
    keys, and materialize ``chaos_seed`` into an explicit fault plan so
    the trace is self-contained (replay never re-derives anything)."""
    cfg = dict(CONFIG_DEFAULTS)
    for k, v in (config or {}).items():
        if k not in CONFIG_DEFAULTS:
            raise ValueError(f"unknown trace config key {k!r}")
        cfg[k] = v
    if cfg["fault_plan"] is None and cfg["chaos_seed"] is not None:
        names = [f"node{i}" for i in range(cfg["n_nodes"])]
        plan = random_plan(names, cfg["chaos_seed"],
                           horizon=cfg["chaos_horizon"])
        cfg["fault_plan"] = plan.to_dict()
    return cfg


def run_recorded(config: Optional[Dict[str, Any]] = None
                 ) -> Tuple[Dict[str, Any], Any]:
    """Execute one serving run under ``config``, recording its trace.

    Returns ``(trace, report)``: the JSON-ready trace document and the
    live :class:`~repro.serve.scheduler.ServeReport`."""
    from repro.serve.loadindex import DEFAULT_STALENESS
    from repro.serve.policies import (AdaptiveShed, ClockPressurePolicy,
                                      QueueDepthPolicy, ShedWhenSaturated)
    from repro.serve.scheduler import build_serving
    from repro.serve.tenants import TenantSet

    cfg = resolve_config(config)
    plan = (FaultPlan.from_dict(cfg["fault_plan"])
            if cfg["fault_plan"] is not None else None)
    offload: Any = cfg["offload"]
    if cfg["max_seg_hops"] and offload != "none":
        policy_cls = (ClockPressurePolicy if offload == "clock-pressure"
                      else QueueDepthPolicy)
        offload = policy_cls(max_seg_hops=cfg["max_seg_hops"])
    if cfg["admission"] == "adaptive":
        kw: Dict[str, Any] = {}
        if cfg["slo"] is not None:
            kw["slo"] = cfg["slo"]
        if cfg["shed_at"] is not None:
            kw["init_load"] = cfg["shed_at"]
        admission: Any = AdaptiveShed(**kw)
    elif cfg["shed_at"] is not None:
        admission = ShedWhenSaturated(max_node_load=cfg["shed_at"])
    else:
        admission = None
    tenants = TenantSet.from_dict(cfg["tenants"])
    tracer = TraceRecorder()
    sched, load = build_serving(
        mix=cfg["mix"], n_nodes=cfg["n_nodes"],
        n_requests=cfg["n_requests"], seed=cfg["seed"],
        quantum=cfg["quantum"], interarrival=cfg["interarrival"],
        placement=cfg["placement"], offload=offload,
        rack_size=cfg["rack_size"],
        staleness=(DEFAULT_STALENESS if cfg["staleness"] is None
                   else cfg["staleness"]),
        isolation=cfg["isolation"], admission=admission,
        max_retries=cfg["max_retries"], fault_plan=plan, tracer=tracer,
        tenants=tenants, arrival_rate=cfg["arrival_rate"])
    rep = sched.serve(load)
    rep.mix = cfg["mix"]
    rep.seed = cfg["seed"]
    summary = [{
        "rid": r.rid,
        "program": r.spec.program if r.spec is not None else None,
        "state": r.state,
        "tenant": r.tenant,
        "result": repr(r.result),
        "error": r.error,
        "arrival": r.arrival,
        "finished_at": r.finished_at,
        "retries": r.retries,
        "sod_offloads": r.sod_offloads,
    } for r in sorted(sched.requests, key=lambda r: r.rid)]
    trace = {
        "version": TRACE_VERSION,
        "config": cfg,
        "events": tracer.events,
        "summary": {"requests": summary, "report": rep.to_dict()},
    }
    return trace, rep


def replay_trace(trace: Dict[str, Any]) -> Tuple[Dict[str, Any], Any]:
    """Re-execute a recorded run from its embedded config.  The
    returned trace must be byte-identical to the recorded one."""
    if trace.get("version") != TRACE_VERSION:
        raise ValueError(
            f"trace version {trace.get('version')!r} != {TRACE_VERSION}")
    return run_recorded(trace["config"])


def canonical(trace: Dict[str, Any]) -> str:
    """The byte-comparison form: serialized with sorted keys."""
    return json.dumps(trace, sort_keys=True)


def traces_equal(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    return canonical(a) == canonical(b)


def trace_divergence(a: Dict[str, Any], b: Dict[str, Any]) -> Optional[str]:
    """A human-oriented pointer at the first difference (None if
    equal) — enough to start debugging a replay failure."""
    if traces_equal(a, b):
        return None
    ea, eb = a.get("events", []), b.get("events", [])
    for i, (x, y) in enumerate(zip(ea, eb)):
        if x != y:
            return (f"event {i} differs: recorded {json.dumps(x, sort_keys=True)}"
                    f" vs replayed {json.dumps(y, sort_keys=True)}")
    if len(ea) != len(eb):
        return f"event count differs: {len(ea)} recorded vs {len(eb)} replayed"
    return "traces differ outside the event stream (config or summary)"


def write_trace(path: str, trace: Dict[str, Any]) -> None:
    with open(path, "w") as f:
        json.dump(trace, f, sort_keys=True, indent=1)
        f.write("\n")


def read_trace(path: str) -> Dict[str, Any]:
    with open(path) as f:
        return json.load(f)
