"""The chaos injector: a kernel process that applies a fault plan.

The injector rides the same discrete-event kernel as everything else,
so fault arrival is deterministic: a crash at virtual second 0.01 lands
between the same two scheduler events on every run of the same
(cluster, mix, seed, plan) — which is what makes chaos runs *and their
recoveries* replayable byte-for-byte.

Each fault kind maps onto one seam:

* crash      -> ``scheduler.crash_node`` (which cascades into the
                network, the load index, and the engine);
* link       -> ``network.fail_link`` / ``heal_link``;
* partition  -> ``network.partition`` / ``heal_partition``;
* straggle   -> the host machine's CPU speed scale (restored after
                ``heal`` seconds).
"""

from __future__ import annotations

from typing import Optional

from repro.chaos.faults import FaultEvent, FaultPlan


class ChaosInjector:
    """Applies a :class:`FaultPlan` to a running ``ClusterScheduler``."""

    def __init__(self, sched, plan: FaultPlan):
        plan.validate(sched.node_names, sched.front)
        self.sched = sched
        self.plan = plan
        self.applied = 0

    def start(self) -> "ChaosInjector":
        """Spawn the injector process (call before ``sched.serve``)."""
        self.sched.env.process(self._proc(), name="chaos")
        return self

    # -- the process -------------------------------------------------------

    def _proc(self):
        env = self.sched.env
        for ev in self.plan:
            if ev.at > env.now:
                yield env.timeout(ev.at - env.now)
            self._apply(ev)

    def _apply(self, ev: FaultEvent) -> None:
        sched = self.sched
        self.applied += 1
        if ev.kind == "crash":
            sched.crash_node(ev.node)
        elif ev.kind == "link":
            sched.network.fail_link(ev.src, ev.dst)
            sched.stats["link_failures"] += 1
            sched._trace("fault", fault="link", src=ev.src, dst=ev.dst,
                         heal=ev.heal)
            if ev.heal > 0:
                sched.env.process(self._heal_link(ev), name="heal-link")
        elif ev.kind == "partition":
            others = [n for n in sched.node_names if n not in ev.nodes]
            sched.network.partition(ev.nodes, others)
            sched.stats["link_failures"] += 1
            sched._trace("fault", fault="partition", nodes=list(ev.nodes),
                         heal=ev.heal)
            if ev.heal > 0:
                sched.env.process(self._heal_partition(ev, others),
                                  name="heal-partition")
        elif ev.kind == "straggle":
            self._straggle(ev)

    def _heal_link(self, ev: FaultEvent):
        yield self.sched.env.timeout(ev.heal)
        self.sched.network.heal_link(ev.src, ev.dst)
        self.sched._trace("heal", fault="link", src=ev.src, dst=ev.dst)

    def _heal_partition(self, ev: FaultEvent, others):
        yield self.sched.env.timeout(ev.heal)
        self.sched.network.heal_partition(ev.nodes, others)
        self.sched._trace("heal", fault="partition", nodes=list(ev.nodes))

    # -- stragglers --------------------------------------------------------

    def _machine(self, node: str) -> Optional[object]:
        """The node's VM, created on demand (a straggle may land before
        any request has run there) — never for a dead node."""
        if node in self.sched.dead:
            return None
        return self.sched._host(node).machine

    def _straggle(self, ev: FaultEvent) -> None:
        machine = self._machine(ev.node)
        if machine is None:
            return
        machine._speed *= ev.factor
        self.sched.stats["straggles"] += 1
        self.sched._trace("fault", fault="straggle", node=ev.node,
                          factor=ev.factor, heal=ev.heal)
        if ev.heal > 0:
            self.sched.env.process(self._recover_straggle(ev),
                                   name="heal-straggle")

    def _recover_straggle(self, ev: FaultEvent):
        yield self.sched.env.timeout(ev.heal)
        machine = self._machine(ev.node)
        if machine is not None:
            machine._speed /= ev.factor
            self.sched._trace("heal", fault="straggle", node=ev.node)
