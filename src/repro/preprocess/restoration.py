"""Restoration-handler injection (paper section III.B.2, Fig. 4).

Each method gets a trailing handler for ``InvalidStateException``::

    R:  POP                                  ; discard the exception
        CONST 0; NATIVE CapturedState.read 1; STORE 0
        ...                                  ; one triple per local slot
        NATIVE CapturedState.pc 0
        LSWITCH {msp: msp, ...} default=<first msp>

The restore driver (:mod:`repro.migration.restore`) arms a breakpoint at
bci 0, invokes the method, and throws ``InvalidStateException`` from the
breakpoint callback; the handler then rebuilds the locals from the
``CapturedState`` and dispatches on the saved pc through the
``lookupswitch`` — the same control flow as the paper's Fig. 4a bytecode
(``CapturedState.readInt`` calls + ``lookupswitch``).

The exception-table row is appended *after* the object-fault rows: the
two mechanisms never compete (different exception classes).
"""

from __future__ import annotations

from typing import List

from repro.bytecode import opcodes as op
from repro.bytecode.code import CodeObject, ExcEntry, Instr
from repro.errors import VerifyError

#: the guest exception class driving restoration
RESTORE_EXCEPTION = "InvalidStateException"


def inject_restoration_handler(code: CodeObject) -> CodeObject:
    """Append the restoration handler to a flattened method."""
    if not code.msps:
        raise VerifyError(f"{code.qualname}: flatten must run first (no MSPs)")
    out = code.copy()
    instrs: List[Instr] = out.instrs
    body_end = len(instrs)

    handler = len(instrs)
    instrs.append(Instr(op.POP))
    for slot in range(out.max_locals):
        instrs.append(Instr(op.CONST, slot))
        instrs.append(Instr(op.NATIVE, "CapturedState.read", 1))
        instrs.append(Instr(op.STORE, slot))
    instrs.append(Instr(op.NATIVE, "CapturedState.pc", 0))
    # The verifier requires every NATIVE result to be consumed/produced
    # consistently: CapturedState.pc pushes the saved pc, LSWITCH pops it.
    table = {msp: msp for msp in sorted(out.msps)}
    default = min(out.msps)
    instrs.append(Instr(op.LSWITCH, table, default))

    out.exc_table = list(out.exc_table) + [
        ExcEntry(0, body_end, handler, RESTORE_EXCEPTION)
    ]
    return out
