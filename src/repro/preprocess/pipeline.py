"""The class preprocessor (paper section III.A, module 1).

Drives the transformation passes over compiled classes, producing one of
three *builds*:

* ``original`` — untouched code (the "JDK" rows of the tables);
* ``faulting`` — SODEE's build: flatten (MSP creation) + object-fault
  handlers + restoration handlers;
* ``checking`` — the DSM baseline build: flatten + per-access status
  checks + restoration handlers.

Preprocessing is automatic, one-off and offline (no source changes), and
every produced method is re-verified.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.bytecode.code import ClassFile
from repro.bytecode.verifier import verify_class
from repro.errors import VerifyError
from repro.lang.codegen import BUILTIN_EXCEPTIONS
from repro.preprocess.flatten import flatten
from repro.preprocess.objectfault import inject_object_fault_handlers
from repro.preprocess.restoration import inject_restoration_handler
from repro.preprocess.statuscheck import inject_status_checks

BUILDS = ("original", "faulting", "checking", "flattened")


def preprocess_class(cf: ClassFile, build: str = "faulting",
                     verify: bool = True) -> ClassFile:
    """Transform one class for the given build."""
    if build not in BUILDS:
        raise VerifyError(f"unknown build {build!r}")
    if build == "original":
        out = cf.copy()
        out.version = "original"
        return out
    out = ClassFile(cf.name, cf.superclass, list(cf.fields), {},
                    version=build)
    for name, code in cf.methods.items():
        info = flatten(code)
        if build == "faulting":
            transformed = inject_object_fault_handlers(info)
        elif build == "checking":
            # statuscheck rebuilds the code; restoration needs its MSPs.
            transformed = inject_status_checks(info)
        else:  # "flattened": rearrangement only (the C0 baseline)
            transformed = info.code
        transformed = inject_restoration_handler(transformed)
        transformed.version = build
        out.methods[name] = transformed
    if verify:
        verify_class(out)
    return out


def preprocess_program(classes: Dict[str, ClassFile],
                       build: str = "faulting",
                       verify: bool = True) -> Dict[str, ClassFile]:
    """Transform a whole program (builtin exception classes pass through
    untouched — they have no methods)."""
    out: Dict[str, ClassFile] = {}
    for name, cf in classes.items():
        if name in BUILTIN_EXCEPTIONS:
            out[name] = cf
        else:
            out[name] = preprocess_class(cf, build, verify=verify)
    return out
