"""Bytecode rearrangement ("flattening") — migration-safe-point creation.

The paper rearranges bytecode so that the operand stack is empty at the
start of every source line (adding "extra local variables tmp1, tmp2 to
store the intermediate values", Fig. 4a).  We implement the general form
of that rewrite: *stack-to-temporary conversion*.  Every value that would
cross an instruction boundary on the operand stack is spilled into a
numbered temporary local; each original instruction becomes a *group*::

    LOAD t_a  LOAD t_b   <operands from temps>
    <the instruction>
    STORE t_r            <result into a temp>

Consequences (all paper-aligned):

* the operand stack is empty at every group boundary, so every line
  start is a migration-safe point (MSP);
* the caller of a suspended call can be restored by *re-executing its
  call line* — the argument temps are part of the captured locals — which
  is exactly how the paper's per-frame restoration re-invokes the next
  method (Fig. 4b step 3-4);
* every call gets its **own line-table region** (the paper splits
  ``p.x = r.nextInt() + (int) p.getX()`` into three statements for the
  same reason): re-executing a call line never re-executes an earlier
  call of the same source line;
* the only normal-path overhead is extra LOAD/STOREs — the paper's
  measured C0 of 0.1%-1.45%.

Temps are *depth-indexed*: the value at operand-stack depth ``d`` always
lives in slot ``base + d``.  This makes flattening a single linear pass
driven by the verifier's per-bci stack depths (no general dataflow), and
it keeps the temp count equal to the method's max stack depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bytecode import opcodes as op
from repro.bytecode.code import CodeObject, ExcEntry, Instr
from repro.bytecode.verifier import stack_depths
from repro.errors import VerifyError


@dataclass
class FlattenInfo:
    """Result of flattening one method.

    Attributes:
        code: the rewritten method.
        base: first temp slot (== original ``max_locals``).
        group_start: new bci of each original instruction's group start,
            keyed by the *new* bci of the original instruction itself.
        depth_before: original symbolic stack depth before each original
            instruction, keyed by its new bci.
        old_to_new: mapping old bci -> group start (for the whole map).
    """

    code: CodeObject
    base: int
    group_start: Dict[int, int] = field(default_factory=dict)
    depth_before: Dict[int, int] = field(default_factory=dict)
    old_to_new: Dict[int, int] = field(default_factory=dict)


def flatten(code: CodeObject) -> FlattenInfo:
    """Flatten ``code`` into stack-to-temp form (returns new objects; the
    input is not modified)."""
    n = len(code.instrs)
    depths = stack_depths(code)
    base = code.max_locals
    handler_targets = {e.handler for e in code.exc_table}

    new_instrs: List[Instr] = []
    old_to_new: Dict[int, int] = {}
    group_start: Dict[int, int] = {}
    depth_before: Dict[int, int] = {}
    max_depth = 0

    for old in range(n):
        start = len(new_instrs)
        old_to_new[old] = start
        if old not in depths:
            # Unreachable (e.g. code after a return): keep a placeholder
            # so every old bci maps to a valid new bci.
            new_instrs.append(Instr(op.NOP))
            continue
        d = depths[old]
        ins = code.instrs[old]
        pops, pushes = op.stack_effect(ins.op, ins.a, ins.b)
        max_depth = max(max_depth, d, d - pops + pushes)

        if old in handler_targets:
            # At handler entry the exception object sits on the *real*
            # operand stack; spill it into its depth-indexed temp first.
            new_instrs.append(Instr(op.STORE, base + d - 1))

        # Load operands from temps (bottom-most popped value first).
        for i in range(pops):
            new_instrs.append(Instr(op.LOAD, base + d - pops + i))
        op_bci = len(new_instrs)
        new_instrs.append(Instr(ins.op, ins.a, ins.b))
        group_start[op_bci] = start
        depth_before[op_bci] = d
        # Store results back into temps (top of stack first).
        for i in reversed(range(pushes)):
            new_instrs.append(Instr(op.STORE, base + d - pops + i))

    # -- remap jump targets --------------------------------------------------
    def m(old_bci: int) -> int:
        return old_to_new[old_bci] if old_bci < n else len(new_instrs)

    remapped: List[Instr] = []
    for ins in new_instrs:
        if ins.op in op.BRANCHES:
            remapped.append(Instr(ins.op, m(ins.a), ins.b))
        elif ins.op == op.LSWITCH:
            remapped.append(Instr(ins.op, {k: m(v) for k, v in ins.a.items()},
                                  m(ins.b)))
        else:
            remapped.append(ins)

    # -- rebuild tables ----------------------------------------------------------
    exc_table = [ExcEntry(m(e.start), m(e.end), m(e.handler), e.exc_class)
                 for e in code.exc_table]

    # Line table: original line starts, plus a fresh region for every
    # call group (so re-executing a call line re-runs only that call).
    new_to_old = {v: k for k, v in old_to_new.items()}
    lines: Dict[int, int] = {}
    for bci, line in code.line_table:
        lines[m(bci)] = line
    for new_bci, start in group_start.items():
        if op.is_call(remapped[new_bci].op):
            lines.setdefault(start, code.line_of(new_to_old[start]))
    line_table = sorted(lines.items())

    out = CodeObject(code.class_name, code.name, code.nparams,
                     base + max_depth,
                     remapped, line_table, exc_table,
                     list(code.local_names) + [f"$t{i}" for i in range(max_depth)],
                     code.is_static, version=code.version)

    # -- migration-safe points: line starts with empty operand stack ---------
    new_depths = stack_depths(out)
    out.msps = {bci for bci, _line in out.line_table
                if new_depths.get(bci, 1) == 0}
    if not out.msps:
        raise VerifyError(f"{code.qualname}: no migration-safe points")

    return FlattenInfo(code=out, base=base, group_start=group_start,
                       depth_before=depth_before, old_to_new=old_to_new)
