"""Status-check instrumentation — the traditional DSM baseline.

This is the JavaSplit-style alternative the paper compares against
(section III.C, Fig. 5 B1, Table V): before *every* object access, load
the reference, test its status, and branch; if the status says "remote",
call the object manager.  The test executes on every access whether or
not the object is local — that is precisely the overhead the paper's
object-faulting design eliminates.

Injected sequences (normal path in brackets):

* receiver ops (GETF/PUTF/ALOAD/ASTORE/LEN/INVOKEVIRT), inserted at the
  instruction's group start::

      [LOAD r] [ISREMOTE] [JZ skip]
      LOAD r / NATIVE ObjMan.check 1 / STORE r
      skip:  <original group>

* static read (after the GETS)::

      GETS [DUP] [ISREMOTE] [JZ skip]
      POP / CONST cls / CONST f / NATIVE ObjMan.checkStatic 2
      skip:  STORE t

* static write (before the group)::

      [GETS] [ISREMOTE] [JZ skip]
      CONST cls / CONST f / NATIVE ObjMan.checkStatic 2 / POP
      skip:  <original group>

The three bracketed instructions per access mirror the paper's four
added JVM instructions (dup / getfield status / iconst / if_icmpne).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bytecode import opcodes as op
from repro.bytecode.code import CodeObject, ExcEntry, Instr
from repro.errors import VerifyError
from repro.preprocess.flatten import FlattenInfo

#: placeholder jump target meaning "the original instruction after this
#: inserted block"
_SKIP = -999


def _receiver_temp(ins: Instr, base: int, depth: int) -> int:
    """Temp slot holding the receiver of a faultable instruction."""
    pops, _ = op.stack_effect(ins.op, ins.a, ins.b)
    if ins.op in (op.GETF, op.LEN):
        pos = 0
    elif ins.op in (op.PUTF, op.ALOAD):
        pos = 0
    elif ins.op == op.ASTORE:
        pos = 0
    elif ins.op == op.INVOKEVIRT:
        pos = 0
    else:  # pragma: no cover
        raise VerifyError(f"not a receiver op: {ins.op}")
    # The receiver is the bottom-most popped operand for all these ops.
    return base + depth - pops + pos


def inject_status_checks(info: FlattenInfo) -> CodeObject:
    """Instrument a flattened method with per-access status checks."""
    code = info.code
    n = len(code.instrs)

    # inserts[old_bci] -> instructions placed immediately before it
    inserts: Dict[int, List[Instr]] = {}

    def add(pos: int, block: List[Instr]) -> None:
        inserts.setdefault(pos, []).extend(block)

    for bci, ins in enumerate(code.instrs):
        if bci not in info.group_start:
            continue  # not an original-op site (loads/stores/handlers)
        depth = info.depth_before[bci]
        if ins.op in (op.GETF, op.PUTF, op.ALOAD, op.ASTORE, op.LEN,
                      op.INVOKEVIRT):
            r = _receiver_temp(ins, info.base, depth)
            add(info.group_start[bci], [
                Instr(op.LOAD, r),
                Instr(op.ISREMOTE),
                Instr(op.JZ, _SKIP),
                Instr(op.LOAD, r),
                Instr(op.NATIVE, "ObjMan.check", 1),
                Instr(op.STORE, r),
            ])
        elif ins.op == op.GETS:
            cls, fname = ins.a
            add(bci + 1, [
                Instr(op.DUP),
                Instr(op.ISREMOTE),
                Instr(op.JZ, _SKIP),
                Instr(op.POP),
                Instr(op.CONST, cls),
                Instr(op.CONST, fname),
                Instr(op.NATIVE, "ObjMan.checkStatic", 2),
            ])
        elif ins.op == op.PUTS:
            cls, fname = ins.a
            add(info.group_start[bci], [
                Instr(op.GETS, (cls, fname)),
                Instr(op.ISREMOTE),
                Instr(op.JZ, _SKIP),
                Instr(op.CONST, cls),
                Instr(op.CONST, fname),
                Instr(op.NATIVE, "ObjMan.checkStatic", 2),
                Instr(op.POP),
            ])

    return _rebuild(code, inserts)


def _rebuild(code: CodeObject, inserts: Dict[int, List[Instr]]) -> CodeObject:
    """Splice insert-blocks into the method, remapping targets/tables.

    External branch targets map to the *block start* (checks re-execute,
    which is safe and matches DSM semantics); the ``_SKIP`` placeholders
    inside blocks map to the original instruction after the block.
    """
    n = len(code.instrs)
    block_start: List[int] = [0] * (n + 1)
    instr_pos: List[int] = [0] * n
    new_instrs: List[Instr] = []
    for old in range(n):
        block_start[old] = len(new_instrs)
        block = inserts.get(old, ())
        skip_target_pending: List[int] = []
        for b in block:
            if b.op == op.JZ and b.a == _SKIP:
                skip_target_pending.append(len(new_instrs))
                new_instrs.append(Instr(op.JZ, _SKIP))
            else:
                new_instrs.append(Instr(b.op, b.a, b.b))
        instr_pos[old] = len(new_instrs)
        for p in skip_target_pending:
            new_instrs[p] = Instr(op.JZ, instr_pos[old])
        ins = code.instrs[old]
        new_instrs.append(Instr(ins.op, ins.a, ins.b))
    block_start[n] = len(new_instrs)

    def m(old_bci: int) -> int:
        return block_start[old_bci]

    # Remap original branch targets (inserted JZs are already absolute).
    pos_of_original = set(instr_pos)
    final: List[Instr] = []
    for idx, ins in enumerate(new_instrs):
        if idx in pos_of_original and ins.op in op.BRANCHES:
            final.append(Instr(ins.op, m(ins.a), ins.b))
        elif idx in pos_of_original and ins.op == op.LSWITCH:
            final.append(Instr(ins.op, {k: m(v) for k, v in ins.a.items()},
                               m(ins.b)))
        else:
            final.append(ins)

    exc_table = [ExcEntry(m(e.start), m(e.end), m(e.handler), e.exc_class)
                 for e in code.exc_table]
    line_table = [(m(bci), line) for bci, line in code.line_table]

    out = CodeObject(code.class_name, code.name, code.nparams,
                     code.max_locals, final, line_table, exc_table,
                     list(code.local_names), code.is_static,
                     version=code.version)
    out.msps = {m(b) for b in code.msps}
    return out
