"""The class preprocessor: bytecode rearrangement and handler injection."""

from repro.preprocess.flatten import FlattenInfo, flatten
from repro.preprocess.fuse import decode_and_fuse, fused_coverage
from repro.preprocess.objectfault import (OBJECT_FAULT_CLASS,
                                          inject_object_fault_handlers)
from repro.preprocess.pipeline import preprocess_class, preprocess_program
from repro.preprocess.restoration import (RESTORE_EXCEPTION,
                                          inject_restoration_handler)
from repro.preprocess.sizes import class_size, method_size
from repro.preprocess.statuscheck import inject_status_checks

__all__ = [
    "FlattenInfo", "flatten",
    "decode_and_fuse", "fused_coverage",
    "OBJECT_FAULT_CLASS", "inject_object_fault_handlers",
    "preprocess_class", "preprocess_program",
    "RESTORE_EXCEPTION", "inject_restoration_handler",
    "class_size", "method_size", "inject_status_checks",
]
