"""Object-fault handler injection (paper section III.C).

For every instruction that dereferences an object (field get/put, array
load/store/length, virtual invoke) we append a tiny handler block::

    H:  CONST <receiver slot>     ; hardcoded, like the paper's slot id
        NATIVE ObjMan.resolve 2   ; fetch home object, patch slot + origin
        POP
        JMP <group start>         ; the paper's "goto label"

The receiver's temp slot is *hardcoded into the handler at preprocessing
time* — the paper does exactly this ("creates an object fault handler for
each instance variable with its slot id (or field name) being hardcoded
inside the code of the handler").  Patching the slot the re-executed
group actually reads is what guarantees forward progress; the resolver
additionally patches the sentinel's origin (field/static/element) so the
local heap converges.

and an exception-table row covering *just that instruction* with the
internal class ``__ObjectFault``.  Dispatch semantics (implemented in
:meth:`repro.vm.machine.Machine._dispatch` via
:data:`OBJECT_FAULT_CLASS`):

* a ``NullPointerException`` whose payload is a :class:`RemoteRef`
  matches ``__ObjectFault`` rows — the access faulted on an unresolved
  remote object;
* a genuine application null does **not** match, so it reaches the
  application's own handlers at the original bci, exactly like the
  paper's "throw another null pointer exception to indicate that this
  exception truly comes from the application level".

In normal execution no extra instruction runs — that is the entire point
of the design ("we take this free ride to realize an object faulting
mechanism, analogous to page faults in OS"); the cost is code size only
(Fig. 5 / Table V).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.bytecode import opcodes as op
from repro.bytecode.code import CodeObject, ExcEntry, Instr
from repro.errors import VerifyError
from repro.preprocess.flatten import FlattenInfo


def receiver_temp(ins: Instr, base: int, depth_before: int) -> int:
    """The depth-indexed temp slot holding the receiver (the bottom-most
    popped operand) of a dereferencing instruction."""
    if ins.op not in FAULTABLE_OPS:
        raise VerifyError(f"not a faultable op: {ins.op}")
    pops, _ = op.stack_effect(ins.op, ins.a, ins.b)
    return base + depth_before - pops

#: the internal exception-table class name for fault handlers
OBJECT_FAULT_CLASS = "__ObjectFault"

#: opcodes that dereference an object reference
FAULTABLE_OPS = frozenset({
    op.GETF, op.PUTF, op.ALOAD, op.ASTORE, op.LEN, op.INVOKEVIRT,
})

#: natives may also dereference a heap argument (e.g. ``Sys.len`` on an
#: array); they raise the same provenance-carrying NPE and get the same
#: handler, keyed on their first argument's temp slot.
FAULTABLE_NATIVE = op.NATIVE


def inject_object_fault_handlers(info: FlattenInfo) -> CodeObject:
    """Append object-fault handlers to a flattened method (in place on a
    copy; returns the new code object)."""
    code = info.code.copy()
    instrs: List[Instr] = code.instrs
    new_entries: List[ExcEntry] = []

    fault_sites = [bci for bci, ins in enumerate(instrs)
                   if bci in info.group_start
                   and (ins.op in FAULTABLE_OPS
                        or (ins.op == FAULTABLE_NATIVE and ins.b))]
    for bci in fault_sites:
        ins = instrs[bci]
        if ins.op == FAULTABLE_NATIVE:
            slot = info.base + info.depth_before[bci] - ins.b
        else:
            slot = receiver_temp(ins, info.base, info.depth_before[bci])
        handler = len(instrs)
        instrs.append(Instr(op.CONST, slot))
        instrs.append(Instr(op.NATIVE, "ObjMan.resolve", 2))
        instrs.append(Instr(op.POP))
        instrs.append(Instr(op.JMP, info.group_start[bci]))
        new_entries.append(ExcEntry(bci, bci + 1, handler, OBJECT_FAULT_CLASS))

    # Fault rows go FIRST: a remote miss must be handled by the fault
    # handler even inside an application try/catch(NullPointerException).
    code.exc_table = new_entries + code.exc_table
    return code
