"""Superinstruction fusion for the pre-decoded interpreter.

The fast dispatch loop (:meth:`repro.vm.machine.Machine._run_fast`)
executes a *decoded stream*: a list parallel to ``CodeObject.instrs``
where slot ``i`` describes the instruction at bci ``i`` as a tuple

    ``(opid, a, b, weight, count, aux, lead_weight)``

``opid`` is the dense integer opcode, ``weight``/``count`` feed the
batched clock/instr accounting, ``aux`` carries per-site state
(semantic helper functions, monomorphic inline-cache cells), and
``lead_weight`` is the summed weight of a fused group's components
*before* the last one (0.0 for plain instructions) — the amount charged
when the group's final component raises a guest exception that goes
uncaught, matching the legacy loop's charge-only-if-dispatched rule.

This module additionally *fuses* hot multi-instruction sequences into
single superinstructions (``LOAD+LOAD+arith``, ``CONST+STORE``,
``LOAD+GETF``, ``compare+JZ`` and friends), so a whole source-level
idiom — e.g. the loop header ``LOAD i; LOAD n; LT; JZ exit`` — costs one
dispatch instead of four.

Coordinate invariant (what keeps migration working unchanged): the
decoded stream is indexed by **original** bci, and a fused tuple sits at
the bci of its *first* component while the interior slots keep their
plain decoded form.  ``frame.pc`` therefore always holds an original
bci — capture, restore, breakpoints, exception tables and line tables
never see fused coordinates, and control transfer *into* the middle of a
fused group (a jump target, or resumption after a hook-driven suspension
mid-sequence) simply executes the interior instructions unfused.  The
fused→original pc map is the identity on group-start slots; executing a
fused tuple advances the pc by its ``count``.

Safety rules for patterns:

* every component's observable effect is reproduced exactly — binops
  whose semantics need the machine (``ADD`` string concatenation,
  ``DIV``/``MOD`` guest exceptions) keep the legacy 3-arg helpers, the
  rest use 2-arg fast functions the machine certifies as equivalent;
* only the **last** component of a pattern may raise a guest exception —
  the fast loop charges the whole group and reports the fault at bci
  ``start + count - 1``, which is exactly what unfused execution would
  have charged and reported for a last-component fault;
* fused groups never include opcodes with frame effects (calls,
  returns, throws) or host-visible hooks (``PUTF``/``PUTS``/``ASTORE``
  write barriers, ``NATIVE``), so the zero-overhead loop's safepoint
  discipline is untouched.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.bytecode import opcodes as op
from repro.bytecode.code import CodeObject

#: decoded-slot layout: (opid, a, b, weight, count, aux, lead_weight)
DecodedSlot = Tuple[int, Any, Any, float, int, Any, float]

# -- fused opcode ids --------------------------------------------------------

F_LOAD_LOAD = op.FUSED_BASE + 0    # a=slot1, b=slot2
F_LOAD_CONST = op.FUSED_BASE + 1   # a=slot, b=value
F_CONST_STORE = op.FUSED_BASE + 2  # a=value, b=slot
F_LOAD_GETF = op.FUSED_BASE + 3    # a=slot, b=field name
F_LL_OP2 = op.FUSED_BASE + 4       # a=slot1, b=slot2, aux=2-arg fn
F_LL_ARITH = op.FUSED_BASE + 5     # a=slot1, b=slot2, aux=3-arg fn
F_LC_OP2 = op.FUSED_BASE + 6       # a=slot, b=value, aux=2-arg fn
F_LC_ARITH = op.FUSED_BASE + 7     # a=slot, b=value, aux=3-arg fn
F_LL_ALOAD = op.FUSED_BASE + 8     # a=arr slot, b=index slot
F_INC = op.FUSED_BASE + 9          # a=src slot, b=(int value, dst slot),
                                   # aux=3-arg ADD fallback
F_CMP_JZ = op.FUSED_BASE + 10      # a=target, aux=2-arg compare fn
F_CMP_JNZ = op.FUSED_BASE + 11     # a=target, aux=2-arg compare fn
F_LL_CMP_JZ = op.FUSED_BASE + 12   # a=(slot1, slot2), b=target, aux=2-arg fn
F_LL_CMP_JNZ = op.FUSED_BASE + 13  # a=(slot1, slot2), b=target, aux=2-arg fn
F_LC_CMP_JZ = op.FUSED_BASE + 14   # a=(slot, value), b=target, aux=2-arg fn
F_LC_CMP_JNZ = op.FUSED_BASE + 15  # a=(slot, value), b=target, aux=2-arg fn
F_GETS_LOAD_ALOAD = op.FUSED_BASE + 16  # a=index slot, b=(class, field),
                                        # aux=static-home cache cell
F_LOAD_JZ = op.FUSED_BASE + 17     # a=slot, b=target
F_LOAD_JNZ = op.FUSED_BASE + 18    # a=slot, b=target
F_LGS_CMP_JZ = op.FUSED_BASE + 19   # a=(slot, (class, field)), b=target,
                                    # aux=(2-arg cmp fn, static cache cell)
F_LGS_CMP_JNZ = op.FUSED_BASE + 20  # same layout as F_LGS_CMP_JZ
F_CCMP_JZ = op.FUSED_BASE + 21      # a=value, b=target, aux=2-arg cmp fn
F_CCMP_JNZ = op.FUSED_BASE + 22     # a=value, b=target, aux=2-arg cmp fn
F_L_ALOAD = op.FUSED_BASE + 23      # a=index slot (array ref on stack)

#: display names for tooling / tests
FUSED_NAMES = {
    F_LOAD_LOAD: "LOAD+LOAD", F_LOAD_CONST: "LOAD+CONST",
    F_CONST_STORE: "CONST+STORE", F_LOAD_GETF: "LOAD+GETF",
    F_LL_OP2: "LOAD+LOAD+arith", F_LL_ARITH: "LOAD+LOAD+arith(m)",
    F_LC_OP2: "LOAD+CONST+arith", F_LC_ARITH: "LOAD+CONST+arith(m)",
    F_LL_ALOAD: "LOAD+LOAD+ALOAD", F_INC: "LOAD+CONST+ADD+STORE",
    F_CMP_JZ: "cmp+JZ", F_CMP_JNZ: "cmp+JNZ",
    F_LL_CMP_JZ: "LOAD+LOAD+cmp+JZ", F_LL_CMP_JNZ: "LOAD+LOAD+cmp+JNZ",
    F_LC_CMP_JZ: "LOAD+CONST+cmp+JZ", F_LC_CMP_JNZ: "LOAD+CONST+cmp+JNZ",
    F_GETS_LOAD_ALOAD: "GETS+LOAD+ALOAD",
    F_LOAD_JZ: "LOAD+JZ", F_LOAD_JNZ: "LOAD+JNZ",
    F_LGS_CMP_JZ: "LOAD+GETS+cmp+JZ", F_LGS_CMP_JNZ: "LOAD+GETS+cmp+JNZ",
    F_CCMP_JZ: "CONST+cmp+JZ", F_CCMP_JNZ: "CONST+cmp+JNZ",
    F_L_ALOAD: "LOAD+ALOAD",
}

_CMP_OPS = frozenset({op.EQ, op.NE, op.LT, op.LE, op.GT, op.GE})
_BIN_OPS = frozenset({op.ADD, op.SUB, op.MUL, op.DIV, op.MOD}) | _CMP_OPS

#: dense id -> opcode name for the binop subsets
_BIN_IDS: Dict[int, str] = {op.OP_IDS[name]: name for name in _BIN_OPS}
_CMP_IDS: Dict[int, str] = {op.OP_IDS[name]: name for name in _CMP_OPS}

#: opcodes that get a per-site monomorphic inline-cache cell (cell size)
_CACHED_OPS = {op.GETS: 1, op.PUTS: 1, op.INVOKESTATIC: 1, op.INVOKEVIRT: 2}


def decode_and_fuse(code: CodeObject, weights: Dict[str, float],
                    arith: Dict[str, Callable],
                    fast2: Dict[str, Callable],
                    fuse: bool = True) -> List[DecodedSlot]:
    """Build the decoded (and, by default, fused) stream for ``code``.

    ``arith`` maps binop opcode names to the interpreter's 3-arg
    semantic helpers (``fn(machine, a, b)``); ``fast2`` maps the subset
    whose semantics are machine-independent to plain 2-arg functions
    (the machine certifies this equivalence).  ``weights`` is the cost
    model's per-opcode weight table.  The result is machine-specific
    (inline-cache cells resolve against one loader) and is cached by the
    owning :class:`~repro.vm.machine.Machine`.
    """
    base = code.predecoded(weights)
    n = len(base)
    out: List[DecodedSlot] = []
    for i in range(n):
        slot = _fuse_at(base, i, n, arith, fast2) if fuse else None
        if slot is None:
            opid, a, b, w = base[i]
            name = code.instrs[i].op
            ncells = _CACHED_OPS.get(name)
            if ncells is not None:
                aux: Any = [None] * ncells
            elif name in _BIN_OPS:
                aux = arith[name]
            else:
                aux = None
            slot = (opid, a, b, w, 1, aux, 0.0)
        out.append(slot)
    return out


def cache_seeds(stream: List[DecodedSlot],
                code: CodeObject) -> Dict[int, list]:
    """Warmed inline-cache cells of ``stream``, keyed by original bci.

    The tier-2 compiler reuses the monomorphic facts tier-1 execution
    has already proven instead of re-discovering them: every
    GETS/PUTS/INVOKESTATIC/INVOKEVIRT site that kept its plain decoded
    slot (fusion only replaces the group-leader position; component
    bcis keep their own decodable slot) and whose cell is bound
    contributes a seed.  The returned cells are the *live* tier-1
    cells, so a rebind by either tier is seen by both.
    """
    ids = op.OP_IDS
    seeds: Dict[int, list] = {}
    for i, ins in enumerate(code.instrs):
        ncells = _CACHED_OPS.get(ins.op)
        if ncells is None or i >= len(stream):
            continue
        slot = stream[i]
        if slot[0] != ids[ins.op]:
            continue  # fused over: per-site state lives in the leader
        aux = slot[5]
        if isinstance(aux, list) and len(aux) == ncells \
                and aux[0] is not None:
            seeds[i] = aux
    return seeds


def _fuse_at(base: Sequence[Tuple[int, Any, Any, float]], i: int, n: int,
             arith: Dict[str, Callable], fast2: Dict[str, Callable],
             ) -> Any:
    """Longest fused pattern starting at slot ``i`` (or None)."""
    ids = op.OP_IDS
    LOAD, CONST = ids[op.LOAD], ids[op.CONST]
    o0, a0, _b0, w0 = base[i]
    if o0 == ids[op.GETS]:
        # the static-array indexing idiom: GETS arr; LOAD i; ALOAD
        if i + 2 < n:
            o1, a1, _b1, w1 = base[i + 1]
            o2, _a2, _b2, w2 = base[i + 2]
            if o1 == LOAD and o2 == ids[op.ALOAD]:
                return (F_GETS_LOAD_ALOAD, a1, a0, w0 + w1 + w2, 3,
                        [None], w0 + w1)
        return None
    if o0 != LOAD and o0 != CONST and o0 not in _CMP_IDS:
        return None

    # ---- 4-instruction patterns ----
    if i + 3 < n:
        o1, a1, _b1, w1 = base[i + 1]
        o2, _a2, _b2, w2 = base[i + 2]
        o3, a3, _b3, w3 = base[i + 3]
        w4 = w0 + w1 + w2 + w3
        if (o0 == LOAD and o1 == CONST and o2 == ids[op.ADD]
                and o3 == ids[op.STORE] and type(a1) is int):
            # the classic induction-variable step: i = i + c
            return (F_INC, a0, (a1, a3), w4, 4, arith[op.ADD], w0 + w1 + w2)
        if o0 == LOAD and o2 in _CMP_IDS:
            fn = fast2[_CMP_IDS[o2]]
            if o1 == LOAD and o3 == ids[op.JZ]:
                return (F_LL_CMP_JZ, (a0, a1), a3, w4, 4, fn, w0 + w1 + w2)
            if o1 == LOAD and o3 == ids[op.JNZ]:
                return (F_LL_CMP_JNZ, (a0, a1), a3, w4, 4, fn, w0 + w1 + w2)
            if o1 == CONST and o3 == ids[op.JZ]:
                return (F_LC_CMP_JZ, (a0, a1), a3, w4, 4, fn, w0 + w1 + w2)
            if o1 == CONST and o3 == ids[op.JNZ]:
                return (F_LC_CMP_JNZ, (a0, a1), a3, w4, 4, fn, w0 + w1 + w2)
            if o1 == ids[op.GETS]:
                # loop bound kept in a static: i < Cls.n
                if o3 == ids[op.JZ]:
                    return (F_LGS_CMP_JZ, (a0, a1), a3, w4, 4,
                            (fn, [None]), w0 + w1 + w2)
                if o3 == ids[op.JNZ]:
                    return (F_LGS_CMP_JNZ, (a0, a1), a3, w4, 4,
                            (fn, [None]), w0 + w1 + w2)

    # ---- 3-instruction patterns ----
    if i + 2 < n and o0 == LOAD:
        o1, a1, _b1, w1 = base[i + 1]
        o2, _a2, _b2, w2 = base[i + 2]
        w3 = w0 + w1 + w2
        name = _BIN_IDS.get(o2)
        if name is not None:
            if o1 == LOAD:
                if name in fast2:
                    return (F_LL_OP2, a0, a1, w3, 3, fast2[name], w0 + w1)
                return (F_LL_ARITH, a0, a1, w3, 3, arith[name], w0 + w1)
            if o1 == CONST:
                if name in fast2:
                    return (F_LC_OP2, a0, a1, w3, 3, fast2[name], w0 + w1)
                return (F_LC_ARITH, a0, a1, w3, 3, arith[name], w0 + w1)
        if o1 == LOAD and o2 == ids[op.ALOAD]:
            return (F_LL_ALOAD, a0, a1, w3, 3, None, w0 + w1)

    if i + 2 < n and o0 == CONST:
        # compare the stack top against a literal and branch: v == 0 etc.
        o1, _a1, _b1, w1 = base[i + 1]
        o2, a2, _b2, w2 = base[i + 2]
        if o1 in _CMP_IDS:
            fn = fast2[_CMP_IDS[o1]]
            if o2 == ids[op.JZ]:
                return (F_CCMP_JZ, a0, a2, w0 + w1 + w2, 3, fn, w0 + w1)
            if o2 == ids[op.JNZ]:
                return (F_CCMP_JNZ, a0, a2, w0 + w1 + w2, 3, fn, w0 + w1)

    # ---- 2-instruction patterns ----
    if i + 1 < n:
        o1, a1, _b1, w1 = base[i + 1]
        w2 = w0 + w1
        if o0 in _CMP_IDS:
            fn = fast2[_CMP_IDS[o0]]
            if o1 == ids[op.JZ]:
                return (F_CMP_JZ, a1, None, w2, 2, fn, w0)
            if o1 == ids[op.JNZ]:
                return (F_CMP_JNZ, a1, None, w2, 2, fn, w0)
            return None
        if o0 == LOAD:
            if o1 == ids[op.GETF]:
                return (F_LOAD_GETF, a0, a1, w2, 2, None, w0)
            if o1 == LOAD:
                return (F_LOAD_LOAD, a0, a1, w2, 2, None, w0)
            if o1 == CONST:
                return (F_LOAD_CONST, a0, a1, w2, 2, None, w0)
            if o1 == ids[op.JZ]:
                return (F_LOAD_JZ, a0, a1, w2, 2, None, w0)
            if o1 == ids[op.JNZ]:
                return (F_LOAD_JNZ, a0, a1, w2, 2, None, w0)
            if o1 == ids[op.ALOAD]:
                # index from a local, array reference on the stack
                return (F_L_ALOAD, a0, None, w2, 2, None, w0)
            return None
        if o0 == CONST and o1 == ids[op.STORE]:
            return (F_CONST_STORE, a0, a1, w2, 2, None, w0)
    return None


def fused_coverage(stream: Sequence[DecodedSlot]) -> Dict[str, int]:
    """How many *group-start* slots hold each superinstruction (for
    tests and benchmark reporting)."""
    counts: Dict[str, int] = {}
    for slot in stream:
        name = FUSED_NAMES.get(slot[0])
        if name is not None:
            counts[name] = counts.get(name, 0) + 1
    return counts
