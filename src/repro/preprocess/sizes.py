"""Class-file size model (Fig. 5's 501 / 667 / 902 bytes comparison).

Our class files are Python objects, so "file size" is modeled with a
simple serialization size function: a fixed header per class/method/
field plus per-instruction encoding costs.  The absolute constants are
chosen so a Geometry-sized class lands near the paper's 501 bytes; what
the experiment checks is the *ratio* — status checks add moderate size,
object-fault handlers trade more code space for zero normal-path cost
(the paper's ~35% space premium over the checking build).
"""

from __future__ import annotations

from typing import Any

from repro.bytecode.code import ClassFile, CodeObject

_CLASS_HEADER = 260  # constant pool, class metadata (dominates small classes)
_FIELD_BYTES = 16
_METHOD_HEADER = 40
_INSTR_BYTES = 1
_EXC_ENTRY_BYTES = 16  # exception-table row + StackMapTable frame
_LINE_ENTRY_BYTES = 3
_LOCAL_NAME_BYTES = 1


def _arg_bytes(a: Any) -> int:
    """Encoded size of one instruction argument (constant-pool style:
    strings and composites are pool references)."""
    if a is None:
        return 0
    if isinstance(a, bool):
        return 1
    if isinstance(a, int):
        return 1
    if isinstance(a, float):
        return 4
    if isinstance(a, str):
        return 1  # pooled reference
    if isinstance(a, tuple):
        return sum(_arg_bytes(x) for x in a)
    if isinstance(a, dict):
        return 2 + 4 * len(a)  # lookupswitch: npairs + (key, target) pairs
    return 2


def method_size(code: CodeObject) -> int:
    """Modeled byte size of one method.

    Constants are fitted so the paper's Geometry class lands near its
    published sizes with the right ordering (original < status-checked <
    fault-handled); see EXPERIMENTS.md (Fig. 5)."""
    total = _METHOD_HEADER
    for ins in code.instrs:
        total += _INSTR_BYTES + _arg_bytes(ins.a) + _arg_bytes(ins.b)
    total += _EXC_ENTRY_BYTES * len(code.exc_table)
    total += _LINE_ENTRY_BYTES * len(code.line_table)
    total += _LOCAL_NAME_BYTES * len(code.local_names)
    return total


def class_size(cf: ClassFile) -> int:
    """Modeled byte size of a class file (the unit shipped during
    on-demand code migration)."""
    total = _CLASS_HEADER + len(cf.name)
    if cf.superclass:
        total += 2
    total += _FIELD_BYTES * len(cf.fields)
    for m in cf.methods.values():
        total += method_size(m)
    return total
