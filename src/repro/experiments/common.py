"""Shared experiment plumbing: per-system runners and table formatting.

Every experiment module exposes ``run()`` returning a :class:`Table`
whose rows pair the paper's published numbers with ours, so
EXPERIMENTS.md and the benchmark suite print directly comparable output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import GJavaMPIEngine, Jessica2Engine, XenEngine
from repro.cluster import gige_cluster
from repro.migration import SODEngine
from repro.vm.costmodel import (gjavampi_model, jdk_model, jessica2_model,
                                sodee_model, xen_model)
from repro.vm.machine import Machine
from repro.workloads import (WORKLOADS, Workload, calibrated_instr_seconds,
                             compiled, expected_result, instr_seconds_for)

SYSTEMS = ("SODEE", "G-JavaMPI", "JESSICA2", "Xen")

#: Calibration anchors: each system's *no-migration* execution time from
#: the paper's Table II.  These reflect JIT/VM quality (Kaffe vs Sun JDK
#: vs Xen guest), which a Python-hosted VM cannot predict; what the
#: reproduction *measures* is everything migration adds on top.
PAPER_NOMIG = {
    "SODEE": {"Fib": 12.13, "NQ": 6.38, "FFT": 12.60, "TSP": 3.04},
    "G-JavaMPI": {"Fib": 12.03, "NQ": 6.27, "FFT": 12.48, "TSP": 3.09},
    "JESSICA2": {"Fib": 49.57, "NQ": 38.20, "FFT": 255.3, "TSP": 20.93},
    "Xen": {"Fib": 26.65, "NQ": 13.85, "FFT": 16.52, "TSP": 7.01},
}

#: which build each system executes
SYSTEM_BUILD = {
    "SODEE": "faulting",
    "G-JavaMPI": "original",
    "JESSICA2": "faulting",
    "Xen": "original",
}


def anchor(system: str, workload: str) -> float:
    """Per-instruction time anchoring a system's no-mig run to Table II."""
    return instr_seconds_for(workload, SYSTEM_BUILD[system],
                             PAPER_NOMIG[system][workload])


@dataclass
class Table:
    """A reproduced table: header, rows, and free-form notes."""

    title: str
    header: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *cells: Any) -> None:
        self.rows.append(cells)

    def cell(self, row_label: str, col: str) -> Any:
        """Look up a cell by row label (first column) and column name."""
        idx = list(self.header).index(col)
        for row in self.rows:
            if row[0] == row_label:
                return row[idx]
        raise KeyError(row_label)

    def format(self) -> str:
        widths = [max(len(str(h)), *(len(_fmt(r[i])) for r in self.rows))
                  if self.rows else len(str(h))
                  for i, h in enumerate(self.header)]
        out = [self.title, ""]
        out.append("  ".join(str(h).ljust(w)
                             for h, w in zip(self.header, widths)))
        out.append("  ".join("-" * w for w in widths))
        for r in self.rows:
            out.append("  ".join(_fmt(c).ljust(w)
                                 for c, w in zip(r, widths)))
        for n in self.notes:
            out.append(f"note: {n}")
        return "\n".join(out)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if abs(v) >= 100:
            return f"{v:.1f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.3f}"
    return str(v)


@dataclass
class RunOutcome:
    """One system x workload x {mig, no-mig} measurement."""

    system: str
    workload: str
    migrated: bool
    exec_seconds: float
    result: Any
    record: Any = None  # MigrationRecord / BaselineRecord when migrated
    faults: int = 0


# -- per-system runners --------------------------------------------------------


def run_jdk(w: Workload) -> RunOutcome:
    """Plain JDK: original build, no agent, no migration."""
    isec = calibrated_instr_seconds(w.name)
    # jit=False: keep golden-report clocks byte-stable under REPRO_JIT=0/1
    # (tier-2 sums the clock in a different association order).
    machine = Machine(compiled(w.name, "original"), cost=jdk_model(isec),
                      jit=False)
    result = machine.call(w.main[0], w.main[1], list(w.sim_args))
    return RunOutcome("JDK", w.name, False, machine.clock, result)


def run_sodee(w: Workload, migrate: bool,
              n_nodes: int = 2) -> RunOutcome:
    """SODEE on the faulting build; optional top-segment migration at the
    workload's trigger point."""
    isec = anchor("SODEE", w.name)
    eng = SODEngine(gige_cluster(n_nodes), compiled(w.name, "faulting"),
                    cost=sodee_model(isec, agent_factor=1.0))
    home = eng.host("node0")
    thread = eng.spawn(home, w.main[0], w.main[1], list(w.sim_args))
    if not migrate:
        eng.run(home, thread)
        return RunOutcome("SODEE", w.name, False, eng.timeline,
                          thread.result)
    status = eng.run(home, thread, stop=w.trigger())
    if status == "finished":
        raise RuntimeError(f"{w.name}: trigger never fired")
    result, rec = eng.run_segment_remote(home, thread, "node1",
                                         nframes=w.mig_frames)
    worker = eng.hosts["node1"]
    faults = worker.objman.stats.faults if worker.objman else 0
    return RunOutcome("SODEE", w.name, True, eng.timeline, result,
                      record=rec, faults=faults)


def run_gjavampi(w: Workload, migrate: bool) -> RunOutcome:
    """G-JavaMPI: original build (no instrumentation), eager-copy
    process migration."""
    isec = anchor("G-JavaMPI", w.name)
    eng = GJavaMPIEngine(gige_cluster(2), compiled(w.name, "original"),
                         gjavampi_model(isec, agent_factor=1.0))
    machine, thread = eng.start(w.main[0], w.main[1], list(w.sim_args))
    if not migrate:
        result = eng.finish(machine, thread)
        return RunOutcome("G-JavaMPI", w.name, False, eng.timeline, result)
    status = eng.run(machine, thread, stop=w.trigger())
    if status == "finished":
        raise RuntimeError(f"{w.name}: trigger never fired")
    dst_machine, dst_thread, rec = eng.migrate(machine, thread, "node1")
    result = eng.finish(dst_machine, dst_thread)
    return RunOutcome("G-JavaMPI", w.name, True, eng.timeline, result,
                      record=rec)


def run_jessica2(w: Workload, migrate: bool) -> RunOutcome:
    """JESSICA2: faulting build stands in for its DSM layer; in-JVM
    thread migration; Kaffe-era execution factor."""
    isec = anchor("JESSICA2", w.name)
    eng = Jessica2Engine(gige_cluster(2), compiled(w.name, "faulting"),
                         jessica2_model(isec, exec_factor=1.0))
    machine, thread = eng.start(w.main[0], w.main[1], list(w.sim_args))
    if not migrate:
        eng.run(machine, thread)
        return RunOutcome("JESSICA2", w.name, False, eng.timeline,
                          thread.result)
    status = eng.run(machine, thread, stop=w.trigger())
    if status == "finished":
        raise RuntimeError(f"{w.name}: trigger never fired")
    dst_machine, dst_thread, rec = eng.migrate(machine, thread, "node1")
    result = eng.finish(dst_machine, dst_thread, home_machine=machine,
                        home_thread=thread)
    return RunOutcome("JESSICA2", w.name, True, eng.timeline, result,
                      record=rec)


def run_xen(w: Workload, migrate: bool) -> RunOutcome:
    """Xen: original build inside a guest VM; live migration."""
    isec = anchor("Xen", w.name)
    eng = XenEngine(gige_cluster(2), compiled(w.name, "original"),
                    xen_model(isec, exec_factor=1.0))
    machine, thread = eng.start(w.main[0], w.main[1], list(w.sim_args))
    if not migrate:
        result = eng.finish(machine, thread)
        return RunOutcome("Xen", w.name, False, eng.timeline, result)
    status = eng.run(machine, thread, stop=w.trigger())
    if status == "finished":
        raise RuntimeError(f"{w.name}: trigger never fired")
    machine, thread, rec = eng.migrate(machine, thread, "node1")
    result = eng.finish(machine, thread)
    return RunOutcome("Xen", w.name, True, eng.timeline, result, record=rec)


RUNNERS: Dict[str, Callable[[Workload, bool], RunOutcome]] = {
    "SODEE": run_sodee,
    "G-JavaMPI": run_gjavampi,
    "JESSICA2": run_jessica2,
    "Xen": run_xen,
}

_outcome_cache: Dict[Tuple[str, str, bool], RunOutcome] = {}


def outcome(system: str, workload: str, migrate: bool) -> RunOutcome:
    """Cached system x workload x mig measurement (experiments share
    runs: Table III derives from Table II's, Table IV from the mig runs).
    Every outcome is checked against the no-migration oracle."""
    key = (system, workload, migrate)
    hit = _outcome_cache.get(key)
    if hit is not None:
        return hit
    w = WORKLOADS[workload]
    out = run_jdk(w) if system == "JDK" else RUNNERS[system](w, migrate)
    oracle = expected_result(workload)
    if _mismatch(out.result, oracle):
        raise AssertionError(
            f"{system}/{workload} mig={migrate}: wrong result "
            f"{out.result!r} != {oracle!r}")
    _outcome_cache[key] = out
    return out


def _mismatch(a: Any, b: Any) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        return abs(a - b) > 1e-6 * max(1.0, abs(b))
    return a != b


def clear_cache() -> None:
    """Reset cached outcomes (tests that tweak cost models need this)."""
    _outcome_cache.clear()
