"""Table I — program characteristics (n, max stack height h, field bytes F).

The paper's h and F are properties of the full-size runs; ours are
measured at the reduced simulation sizes from the *real* stack at the
migration trigger and the real captured field/static footprint.  Both
are printed side by side.
"""

from __future__ import annotations

from repro.experiments.common import Table
from repro.migration import SODEngine
from repro.cluster import gige_cluster
from repro.units import fmt_bytes
from repro.vm.costmodel import sodee_model
from repro.vm.objects import VMArray, VMInstance
from repro.workloads import WORKLOADS, calibrated_instr_seconds, compiled

PAPER = {
    "Fib": (46, 46, "< 10"),
    "NQ": (14, 16, "< 10"),
    "FFT": (256, 4, "> 64M"),
    "TSP": (12, 4, "~ 2500"),
}


def measure(workload: str):
    """Stack height and field footprint at the migration trigger."""
    w = WORKLOADS[workload]
    eng = SODEngine(gige_cluster(2), compiled(workload, "faulting"),
                    cost=sodee_model(calibrated_instr_seconds(workload)))
    home = eng.host("node0")
    thread = eng.spawn(home, w.main[0], w.main[1], list(w.sim_args))
    eng.run(home, thread, stop=w.trigger())
    h = thread.depth()
    # F: accumulated size of local + static fields, following references
    # from statics through the heap (the paper's FFT F counts its 64 MB
    # static array; TSP's counts the distance structure).
    f_bytes = 0
    for frame in thread.frames:
        f_bytes += 8 * frame.code.max_locals
    seen: set[int] = set()
    work = []
    for cls in home.machine.loader.loaded_classes().values():
        for v in cls.statics.values():
            if isinstance(v, (VMArray, VMInstance)):
                work.append(v)
            elif isinstance(v, str):
                f_bytes += 4 + len(v)
            else:
                f_bytes += 8
    while work:
        obj = work.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        f_bytes += obj.nominal_bytes()
        children = (obj.fields.values() if isinstance(obj, VMInstance)
                    else (obj.data if obj.kind == "ref" else ()))
        for v in children:
            if isinstance(v, (VMArray, VMInstance)):
                work.append(v)
    return h, f_bytes


def run() -> Table:
    t = Table(
        title="Table I — program characteristics (paper vs repro)",
        header=("App", "n(paper)", "h(paper)", "F(paper)",
                "n(sim)", "h(sim)", "F(sim)"),
    )
    for name, w in WORKLOADS.items():
        h, f = measure(name)
        pn, ph, pf = PAPER[name]
        t.add(name, pn, ph, pf, w.sim_args[0], h, fmt_bytes(f))
    t.notes.append(
        "h(sim) is the real stack depth at the migration trigger; "
        "F(sim) includes nominal bytes of static-referenced arrays.")
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
