"""Task roaming study (section IV.C): ten 300 MB files on ten WAN NFS
servers; a search task roams to each server instead of pulling the data
over the WAN.  Paper: 124.3 s -> 36.71 s, speedup 3.39.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import wan_grid
from repro.experiments.common import Table
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.policies import LocalityPolicy
from repro.migration.workflow import roam
from repro.preprocess import preprocess_program
from repro.units import mb
from repro.vm.costmodel import sodee_model
from repro.workloads import programs

PAPER_NO_MIG = 124.3
PAPER_ROAMING = 36.71
PAPER_SPEEDUP = 3.39

N_SERVERS = 10
FILE_MB = 300
NEEDLE = "xylophone"


def _setup():
    classes = preprocess_program(compile_source(programs.TEXTSEARCH),
                                 "faulting")
    cluster = wan_grid(N_SERVERS)
    for i in range(N_SERVERS):
        cluster.fs.host_file(cluster.node(f"server{i}"),
                             f"/grid/doc{i}.txt", mb(FILE_MB),
                             plant=[(mb(FILE_MB) - 2048, NEEDLE)])
    return classes, cluster


@dataclass
class RoamingResult:
    no_mig_seconds: float
    roaming_seconds: float

    @property
    def speedup(self) -> float:
        return self.no_mig_seconds / self.roaming_seconds


def measure() -> RoamingResult:
    # No migration: everything pulled over WAN NFS.
    classes, cluster = _setup()
    eng = SODEngine(cluster, classes, cost=sodee_model())
    client = eng.host("client")
    t = eng.spawn(client, "Search", "runMany", ["/grid/", NEEDLE])
    eng.run(client, t)
    assert t.result == N_SERVERS
    no_mig = eng.timeline

    # Roaming: each searchFile call ships to the node hosting its file.
    # Workers are spawned on demand (ten distinct grid servers; nothing
    # is pre-started for the task, unlike the two-node cluster runs).
    classes, cluster = _setup()
    eng = SODEngine(cluster, classes, cost=sodee_model(),
                    prestart_workers=False)
    client = eng.host("client")
    t = eng.spawn(client, "Search", "runMany", ["/grid/", NEEDLE])
    policy = LocalityPolicy(
        engine=eng,
        path_of=lambda th: th.frames[-1].locals[0]
        if isinstance(th.frames[-1].locals[0], str) else None)
    trigger = lambda th: (th.frames[-1].code.name == "searchFile"
                          and th.frames[-1].pc == 0)
    rep = roam(eng, client, t, itinerary=policy.destination,
               trigger=trigger, nframes=1)
    assert rep.result == N_SERVERS
    return RoamingResult(no_mig_seconds=no_mig,
                         roaming_seconds=rep.total_time)


def run() -> Table:
    r = measure()
    t = Table(
        title="Roaming study (section IV.C, paper vs repro)",
        header=("metric", "paper", "repro"),
    )
    t.add("no-migration (s)", PAPER_NO_MIG, r.no_mig_seconds)
    t.add("roaming (s)", PAPER_ROAMING, r.roaming_seconds)
    t.add("speedup", PAPER_SPEEDUP, r.speedup)
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
