"""Table VII — migration latency to an iPhone vs available bandwidth.

The photo-share scenario (section IV.D): the web server migrates its
photo-search frame to the iPhone over a rate-limited Wi-Fi link.  The
iPhone's JamVM has no VMTI, so capture pays an extra Java-serialization
step (to a portable format) and restore happens at Java level on the
slow device CPU — which is why capture/restore are flat across
bandwidths while both transfer components scale with the link.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cluster import phone_setup
from repro.experiments.common import Table
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.segments import pin_methods
from repro.preprocess import preprocess_program
from repro.units import kb, to_ms
from repro.vm.costmodel import sodee_model
from repro.workloads import programs

#: paper: kbps -> (capture, state xfer, class xfer, restore, latency) ms
PAPER = {
    50: (14.05, 766.00, 908.33, 40.33, 1728.72),
    128: (13.16, 796.67, 398.67, 50.00, 1040.33),
    384: (14.37, 321.67, 407.33, 28.67, 772.04),
    764: (13.50, 280.00, 392.50, 30.50, 716.50),
}

BANDWIDTHS = (50, 128, 384, 764)
N_PHOTOS = 24


def migrate_once(bandwidth_kbps: float):
    """One photo-search migration to the phone; returns the record and
    the search result."""
    classes = preprocess_program(compile_source(programs.PHOTOSHARE),
                                 "faulting")
    cluster = phone_setup(bandwidth_kbps)
    phone = cluster.node("iphone")
    for i in range(N_PHOTOS):
        tag = "beach" if i % 6 == 0 else "home"
        cluster.fs.host_file(phone, f"/User/Media/DCIM/100APPLE/IMG_{i:04d}_{tag}.jpg",
                             kb(600))
    eng = SODEngine(cluster, classes, cost=sodee_model())
    server = eng.host("server")
    t = eng.spawn(server, "PhotoServer", "serve",
                  ["/User/Media/DCIM/100APPLE", "beach"])
    # The serve frame holds the client socket: pinned at home (IV.D).
    pin_methods(t, ["PhotoServer.serve"])
    eng.run(server, t,
            stop=lambda th: th.frames[-1].code.name == "searchPhotos")
    result, rec = eng.run_segment_remote(server, t, "iphone", nframes=1)
    assert "beach" in result
    return rec, result


def run() -> Table:
    t = Table(
        title="Table VII — migration latency vs bandwidth (ms, paper vs repro)",
        header=("kbps", "capt(p)", "capt", "state(p)", "state",
                "class(p)", "class", "rest(p)", "rest",
                "latency(p)", "latency"),
    )
    for bw in BANDWIDTHS:
        p = PAPER[bw]
        rec, _res = migrate_once(bw)
        t.add(bw, p[0], to_ms(rec.capture_time),
              p[1], to_ms(rec.state_transfer_time),
              p[2], to_ms(rec.class_transfer_time),
              p[3], to_ms(rec.restore_time),
              p[4], to_ms(rec.latency))
    t.notes.append(
        "capture/restore are bandwidth-independent; transfers scale "
        "inversely with the link, as in the paper.")
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
