"""Table IV — migration latency breakdown (capture / transfer / restore).

Xen is excluded, as in the paper ("its migration latency is long, so it
is not considered as lightweight migration and excluded from the
comparison here").  Shape claims checked by the test suite:

* SOD latency is heap-size independent (FFT's 64 MB static array does
  not appear in its numbers);
* G-JavaMPI scales with the serialized heap (FFT blows up);
* JESSICA2's FFT restore is dominated by load-time static allocation.
"""

from __future__ import annotations

from repro.experiments.common import Table, outcome
from repro.units import to_ms
from repro.workloads import WORKLOADS

#: paper: workload -> system -> (total, capture, transfer, restore) ms
PAPER = {
    "Fib": {"SOD": (14.66, 0.35, 7.49, 6.82),
            "G-JavaMPI": (132.15, 60.17, 8.74, 63.24),
            "JESSICA2": (11.37, 0.39, 2.62, 8.36)},
    "NQ": {"SOD": (12.42, 0.50, 4.73, 7.19),
           "G-JavaMPI": (91.44, 38.44, 8.11, 44.89),
           "JESSICA2": (9.06, 0.18, 2.14, 6.74)},
    "FFT": {"SOD": (12.33, 0.54, 4.75, 7.04),
            "G-JavaMPI": (2470.15, 457.45, 1053.57, 959.13),
            "JESSICA2": (74.08, 0.11, 2.26, 71.71)},
    "TSP": {"SOD": (15.23, 0.42, 4.50, 10.31),
            "G-JavaMPI": (95.98, 36.23, 8.32, 51.43),
            "JESSICA2": (9.90, 0.06, 2.30, 7.54)},
}

_SYS_TO_RUNNER = {"SOD": "SODEE", "G-JavaMPI": "G-JavaMPI",
                  "JESSICA2": "JESSICA2"}


def breakdown(system: str, workload: str) -> tuple[float, float, float, float]:
    """(total, capture, transfer, restore) in ms from the real record."""
    rec = outcome(_SYS_TO_RUNNER[system], workload, True).record
    return (to_ms(rec.latency), to_ms(rec.capture_time),
            to_ms(rec.transfer_time), to_ms(rec.restore_time))


def run() -> Table:
    header = ["App", "System", "total(p)", "total", "capt(p)", "capt",
              "xfer(p)", "xfer", "rest(p)", "rest"]
    t = Table(title="Table IV — migration latency breakdown (ms, paper vs repro)",
              header=header)
    for name in WORKLOADS:
        for sys_name in ("SOD", "G-JavaMPI", "JESSICA2"):
            p = PAPER[name][sys_name]
            ours = breakdown(sys_name, name)
            t.add(name, sys_name, p[0], ours[0], p[1], ours[1],
                  p[2], ours[2], p[3], ours[3])
    t.notes.append("Xen excluded (pre-copy latency is seconds-scale), as in the paper.")
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
