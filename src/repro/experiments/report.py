"""Run every experiment and emit the full paper-vs-repro report.

``python -m repro.experiments.report`` regenerates the measured half of
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments import (figure1, figure5, roaming, table1, table2,
                               table3, table4, table5, table6, table7)
from repro.experiments.common import Table

ALL: Dict[str, Callable[[], Table]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "figure5": figure5.run,
    "table6": table6.run,
    "table7": table7.run,
    "roaming": roaming.run,
    "figure1": figure1.run,
}


def generate(names: List[str] | None = None) -> str:
    """Run the named experiments (all by default) and format the report."""
    chunks = []
    for name, fn in ALL.items():
        if names is not None and name not in names:
            continue
        chunks.append(fn().format())
    return "\n\n".join(chunks)


if __name__ == "__main__":  # pragma: no cover
    import sys

    names = sys.argv[1:] or None
    print(generate(names))
