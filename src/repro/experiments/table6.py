"""Table VI — locality gain from migrating a full-text search to the
NFS server hosting its data (3 x 600 MB files).

Three configurations per system, as in the paper:
run on the NFS client with no migration; migrate to the server right
before any file is read; run natively on the server.  Performance gain
is (no-mig - mig) / mig.

Shape claims: SODEE converts most of the possible gain (its migration is
cheap); JESSICA2 gains almost nothing (its JVM's I/O path is the
bottleneck on both nodes); Xen gains almost nothing (migration overhead
eats the locality win).
"""

from __future__ import annotations

from typing import Tuple

from repro.baselines import Jessica2Engine, XenEngine
from repro.cluster import gige_cluster
from repro.experiments.common import Table
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.preprocess import preprocess_program
from repro.units import mb
from repro.vm.costmodel import jessica2_model, sodee_model, xen_model
from repro.workloads import programs

PAPER = {
    "JESSICA2": (358.10, 348.08, 343.31, 2.88),
    "Xen": (57.72, 57.29, 50.71, 0.75),
    "SODEE": (23.25, 18.81, 16.01, 23.60),
}

FILE_MB = 600
NEEDLE = "xylophone"


def _setup(build: str):
    classes = preprocess_program(compile_source(programs.TEXTSEARCH), build)
    cluster = gige_cluster(2)
    server = cluster.node("node1")
    paths = []
    for i in range(3):
        path = f"/data/big{i}.txt"
        cluster.fs.host_file(server, path, mb(FILE_MB),
                             plant=[(mb(FILE_MB) - 4096, NEEDLE)])
        paths.append(path)
    return classes, cluster, paths


def _args(paths):
    return [paths[0], paths[1], paths[2], NEEDLE]


def run_sodee() -> Tuple[float, float, float]:
    """(no-mig, mig, on-server) seconds for SODEE."""
    classes, cluster, paths = _setup("faulting")
    eng = SODEngine(cluster, classes, cost=sodee_model())
    home = eng.host("node0")
    t = eng.spawn(home, "Search", "run3", _args(paths))
    eng.run(home, t)
    no_mig = eng.timeline

    classes, cluster, paths = _setup("faulting")
    eng = SODEngine(cluster, classes, cost=sodee_model())
    home = eng.host("node0")
    t = eng.spawn(home, "Search", "run3", _args(paths))
    # Trigger before any file is read: at entry of the first searchFile.
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "searchFile")
    # Migrate the whole remaining job (run3 + searchFile frames).
    result, _rec = eng.run_segment_remote(home, t, "node1",
                                          nframes=t.depth())
    assert result == 3, result
    mig = eng.timeline

    classes, cluster, paths = _setup("faulting")
    eng = SODEngine(cluster, classes, cost=sodee_model())
    server = eng.host("node1")
    t = eng.spawn(server, "Search", "run3", _args(paths))
    eng.run(server, t)
    local = eng.timeline
    return no_mig, mig, local


def run_jessica2() -> Tuple[float, float, float]:
    classes, cluster, paths = _setup("faulting")
    eng = Jessica2Engine(cluster, classes, jessica2_model())
    m, t = eng.start("Search", "run3", _args(paths), at="node0")
    eng.run(m, t)
    no_mig = eng.timeline

    classes, cluster, paths = _setup("faulting")
    eng = Jessica2Engine(cluster, classes, jessica2_model())
    m, t = eng.start("Search", "run3", _args(paths), at="node0")
    eng.run(m, t, stop=lambda th: th.frames[-1].code.name == "searchFile")
    dm, wt, _rec = eng.migrate(m, t, "node1")
    result = eng.finish(dm, wt, home_machine=m, home_thread=t)
    assert result == 3, result
    mig = eng.timeline

    classes, cluster, paths = _setup("faulting")
    eng = Jessica2Engine(cluster, classes, jessica2_model())
    m, t = eng.start("Search", "run3", _args(paths), at="node1")
    eng.run(m, t)
    local = eng.timeline
    return no_mig, mig, local


def run_xen() -> Tuple[float, float, float]:
    classes, cluster, paths = _setup("original")
    eng = XenEngine(cluster, classes, xen_model())
    m, t = eng.start("Search", "run3", _args(paths), at="node0")
    eng.run(m, t)
    no_mig = eng.timeline

    classes, cluster, paths = _setup("original")
    eng = XenEngine(cluster, classes, xen_model())
    m, t = eng.start("Search", "run3", _args(paths), at="node0")
    eng.run(m, t, stop=lambda th: th.frames[-1].code.name == "searchFile")
    m, t, _rec = eng.migrate(m, t, "node1")
    result = eng.finish(m, t)
    assert result == 3, result
    mig = eng.timeline

    classes, cluster, paths = _setup("original")
    eng = XenEngine(cluster, classes, xen_model())
    m, t = eng.start("Search", "run3", _args(paths), at="node1")
    eng.run(m, t)
    local = eng.timeline
    return no_mig, mig, local


def run() -> Table:
    t = Table(
        title="Table VI — NFS text-search locality (seconds, paper vs repro)",
        header=("System", "nomig(p)", "nomig", "mig(p)", "mig",
                "server(p)", "server", "gain%(p)", "gain%"),
    )
    for system, runner in (("JESSICA2", run_jessica2), ("Xen", run_xen),
                           ("SODEE", run_sodee)):
        p = PAPER[system]
        no_mig, mig, local = runner()
        gain = 100.0 * (no_mig - mig) / mig
        t.add(system, p[0], no_mig, p[1], mig, p[2], local, p[3], gain)
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
