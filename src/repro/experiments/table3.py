"""Table III — migration overhead (mig minus no-mig) per system.

Derived from Table II's runs.  The paper's headline claims checked here:

* SODEE has the lowest overhead on Fib / NQ / FFT;
* TSP is the exception — eager copy (G-JavaMPI) wins because the
  migrated frame touches almost every object, so on-demand faulting
  pays per-object round trips;
* Xen's overhead dwarfs everyone's (whole-OS pre-copy).
"""

from __future__ import annotations

from repro.experiments.common import SYSTEMS, Table, outcome
from repro.units import to_ms
from repro.workloads import WORKLOADS

#: paper values: (ms, percent) per system per workload
PAPER = {
    "Fib": {"SODEE": (52, 0.43), "G-JavaMPI": (156, 1.30),
            "JESSICA2": (123, 0.25), "Xen": (3695, 13.86)},
    "NQ": {"SODEE": (32, 0.51), "G-JavaMPI": (307, 4.89),
           "JESSICA2": (195, 0.51), "Xen": (4906, 35.42)},
    "FFT": {"SODEE": (105, 0.83), "G-JavaMPI": (2544, 20.39),
            "JESSICA2": (2494, 0.98), "Xen": (7160, 43.34)},
    "TSP": {"SODEE": (178, 5.86), "G-JavaMPI": (142, 4.59),
            "JESSICA2": (922, 4.41), "Xen": (6450, 91.99)},
}


def overhead(system: str, workload: str) -> tuple[float, float]:
    """(overhead ms, overhead % of no-mig execution)."""
    no_mig = outcome(system, workload, False).exec_seconds
    mig = outcome(system, workload, True).exec_seconds
    oh = mig - no_mig
    return to_ms(oh), 100.0 * oh / no_mig


def run() -> Table:
    header = ["App"]
    for s in SYSTEMS:
        header += [f"{s}(p) ms", f"{s} ms", f"{s}(p) %", f"{s} %"]
    t = Table(title="Table III — migration overhead (paper 'p' vs repro)",
              header=header)
    for name in WORKLOADS:
        row = [name]
        for s in SYSTEMS:
            p_ms, p_pct = PAPER[name][s]
            ms, pct = overhead(s, name)
            row += [p_ms, ms, p_pct, pct]
        t.add(*row)
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
