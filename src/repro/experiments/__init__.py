"""Experiment harnesses: one module per paper table/figure."""

from repro.experiments.common import Table, outcome

__all__ = ["Table", "outcome"]
