"""Figure 5 — class-size cost of the two instrumentation schemes.

Paper: Geometry compiles to 501 bytes originally, 667 with status
checks, 902 with object-fault handlers ("Our approach pays 35% more
space overhead than the traditional approach to trade for best normal
execution speed").  We reproduce the ordering and ratio on the modeled
class-file sizes.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import Table
from repro.lang import compile_source
from repro.preprocess import class_size, preprocess_program
from repro.workloads import programs

PAPER = {"original": 501, "checking": 667, "faulting": 902}


def sizes(class_name: str = "Geometry") -> Dict[str, int]:
    """Modeled class-file bytes for each build of the Geometry class."""
    classes = compile_source(programs.GEOMETRY)
    out = {}
    for build in ("original", "checking", "faulting"):
        pp = preprocess_program(classes, build)
        out[build] = class_size(pp[class_name])
    return out


def run() -> Table:
    ours = sizes()
    t = Table(
        title="Figure 5 — Geometry class size by build (bytes)",
        header=("build", "paper", "repro", "repro/orig"),
    )
    for build in ("original", "checking", "faulting"):
        t.add(build, PAPER[build], ours[build],
              round(ours[build] / ours["original"], 2))
    t.notes.append("claim: faulting build trades extra code space for "
                   "zero normal-path cost (cf. Table V).")
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
