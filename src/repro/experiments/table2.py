"""Table II — execution time on each system with and without migration.

The JDK column is the calibration anchor (per-instruction time is chosen
so the reduced-size run lands on the paper's JDK seconds); every other
column is *measured* from the mechanisms: agent overhead, execution
factors, migration latency, object faults, write-back.
"""

from __future__ import annotations

from repro.experiments.common import SYSTEMS, Table, outcome
from repro.workloads import WORKLOADS

#: paper values: workload -> (JDK, then (no-mig, mig) per system)
PAPER = {
    "Fib": (12.10, (12.13, 12.19), (12.03, 12.19), (49.57, 49.69), (26.65, 30.35)),
    "NQ": (6.26, (6.38, 6.41), (6.27, 6.58), (38.20, 38.40), (13.85, 18.76)),
    "FFT": (12.39, (12.60, 12.71), (12.48, 15.02), (255.3, 257.8), (16.52, 23.68)),
    "TSP": (2.92, (3.04, 3.22), (3.09, 3.23), (20.93, 21.85), (7.01, 13.46)),
}


def run() -> Table:
    header = ["App", "JDK(p)", "JDK"]
    for s in SYSTEMS:
        header += [f"{s} nomig(p)", f"{s} nomig", f"{s} mig(p)", f"{s} mig"]
    t = Table(title="Table II — execution time (seconds, paper 'p' vs repro)",
              header=header)
    for name in WORKLOADS:
        paper = PAPER[name]
        row = [name, paper[0], outcome("JDK", name, False).exec_seconds]
        for i, s in enumerate(SYSTEMS):
            p_nomig, p_mig = paper[1 + i]
            row += [p_nomig, outcome(s, name, False).exec_seconds,
                    p_mig, outcome(s, name, True).exec_seconds]
        t.add(*row)
    t.notes.append("JDK column calibrates instruction time; see EXPERIMENTS.md.")
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
