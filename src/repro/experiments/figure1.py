"""Figure 1 — the three SOD execution flows, demonstrated and timed.

The paper's figure is qualitative; the reproduction runs a three-frame
program through each flow and reports per-flow timelines plus the
latency hidden by overlap in flows (b) and (c).  All three flows must
produce the identical result of a local run — that is the headline
correctness property of the whole system.
"""

from __future__ import annotations

from typing import Tuple

from repro.cluster import gige_cluster
from repro.experiments.common import Table
from repro.lang import compile_source
from repro.migration import SODEngine
from repro.migration.workflow import multi_hop, partial_return, total_migration
from repro.preprocess import preprocess_program
from repro.units import to_ms
from repro.vm.costmodel import sodee_model
from repro.vm.machine import Machine

# Three nested calls, each doing enough work that overlap is visible.
SOURCE = """
class Flow {
  static int trace;
  static int main(int n) {
    Flow.trace = 1;
    int r = Flow.outer(n);
    return r + Flow.trace;
  }
  static int outer(int n) { return Flow.middle(n) * 3 + 1; }
  static int middle(int n) { return Flow.inner(n) + 7; }
  static int inner(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
      s = s + i * i % 97;
    }
    Flow.trace = Flow.trace + 1;
    return s;
  }
}
"""

N = 60000  # enough inner work to hide a residual push behind it


def _fresh():
    classes = preprocess_program(compile_source(SOURCE), "faulting")
    eng = SODEngine(gige_cluster(3), classes,
                    cost=sodee_model(instr_seconds=2e-7))
    home = eng.host("node0")
    t = eng.spawn(home, "Flow", "main", [N])
    eng.run(home, t, stop=lambda th: th.frames[-1].code.name == "inner")
    return classes, eng, home, t


def reference() -> int:
    classes = preprocess_program(compile_source(SOURCE), "faulting")
    return Machine(classes).call("Flow", "main", [N])


def run() -> Table:
    ref = reference()
    t = Table(
        title="Figure 1 — SOD execution flows (repro timings)",
        header=("flow", "result", "ok", "total ms", "hidden ms",
                "migrations"),
    )

    classes, eng, home, th = _fresh()
    rep = partial_return(eng, home, th, "node1", nframes=1)
    t.add("(a) partial, return home", rep.result, rep.result == ref,
          to_ms(rep.total_time), to_ms(rep.hidden_latency),
          len(rep.records))

    classes, eng, home, th = _fresh()
    rep = total_migration(eng, home, th, "node1", top_frames=1)
    t.add("(b) total migration", rep.result, rep.result == ref,
          to_ms(rep.total_time), to_ms(rep.hidden_latency),
          len(rep.records))

    classes, eng, home, th = _fresh()
    rep = multi_hop(eng, home, th, "node1", "node2",
                    top_frames=1, second_frames=2)
    t.add("(c) multi-hop workflow", rep.result, rep.result == ref,
          to_ms(rep.total_time), to_ms(rep.hidden_latency),
          len(rep.records))
    t.notes.append("hidden ms = second-hop latency overlapped with "
                   "segment-1 execution (freeze-time hiding, section II.A)")
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
