"""Table V — object faulting vs status checking: field-access slowdown.

Methodology: for each build, run the access loop at R and 2R iterations;
per-iteration time = (t(2R) - t(R)) / R, which cancels call/setup costs.
The comparison baseline is the *flattened* build (bytecode rearrangement
only, which both schemes share — the paper's C0); the slowdown columns
isolate exactly what each *detection scheme* adds to the normal path:

* object faulting adds **nothing** (its handlers live off the normal
  path; the paper measured 2-8%, i.e. noise + code-size effects);
* status checking adds a load + status test + branch to **every**
  access — tens to hundreds of percent, worst for static writes, exactly
  the paper's pattern.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.common import Table
from repro.lang import compile_source
from repro.preprocess import preprocess_program
from repro.vm.costmodel import jdk_model
from repro.vm.machine import Machine
from repro.workloads import programs

#: paper: access type -> (original ns, faulting ns, checking ns,
#: faulting slowdown %, checking slowdown %)
PAPER = {
    "Field Read": (2.60, 2.68, 3.87, 3.08, 48.85),
    "Field Write": (5.67, 5.79, 7.13, 2.12, 25.75),
    "Static Read": (0.37, 0.38, 0.45, 2.70, 21.62),
    "Static Write": (0.13, 0.14, 0.46, 7.69, 253.85),
}

#: access label -> (loop method, shape-matched baseline loop)
_METHODS = {
    "Field Read": ("fieldRead", "baseline"),
    "Field Write": ("fieldWrite", "baselineW"),
    "Static Read": ("staticRead", "baseline"),
    "Static Write": ("staticWrite", "baselineW"),
}

REPS = 8000

_build_cache: Dict[str, dict] = {}


def _classes(build: str) -> dict:
    if build not in _build_cache:
        _build_cache[build] = preprocess_program(
            compile_source(programs.MICROBENCH), build)
    return _build_cache[build]


def per_iteration_ns(build: str, method: str, reps: int = REPS) -> float:
    """Marginal per-iteration simulated nanoseconds for one loop."""
    classes = _classes(build)
    # jit=False: golden reports must be byte-stable under either REPRO_JIT
    # setting, and tier-2 block-sums the clock in a different association
    # order (equal only to ~1e-9 relative), which can flip a rounded digit.
    m1 = Machine(classes, cost=jdk_model(), jit=False)
    m1.call("Micro", method, [reps])
    m2 = Machine(classes, cost=jdk_model(), jit=False)
    m2.call("Micro", method, [2 * reps])
    return (m2.clock - m1.clock) / reps * 1e9


def access_ns(build: str, method: str, baseline: str) -> float:
    """Per-access time: loop iteration minus a shape-matched baseline
    iteration (same loop, access replaced by a register move)."""
    return max(0.01,
               per_iteration_ns(build, method)
               - per_iteration_ns("flattened", baseline))


def measure() -> Dict[str, Tuple[float, float, float, float, float]]:
    """access type -> (base ns, faulting ns, checking ns, slow_f%, slow_c%)."""
    out = {}
    for label, (method, baseline) in _METHODS.items():
        base = access_ns("flattened", method, baseline)
        faulting = access_ns("faulting", method, baseline)
        checking = access_ns("checking", method, baseline)
        out[label] = (
            base, faulting, checking,
            100.0 * (faulting - base) / base,
            100.0 * (checking - base) / base,
        )
    return out


def run() -> Table:
    t = Table(
        title="Table V — remote-access detection overhead (paper vs repro)",
        header=("Access", "base(p)ns", "base ns", "fault(p)ns", "fault ns",
                "check(p)ns", "check ns", "fault%(p)", "fault%",
                "check%(p)", "check%"),
    )
    ours = measure()
    for label, p in PAPER.items():
        o = ours[label]
        t.add(label, p[0], o[0], p[1], o[1], p[2], o[2],
              p[3], o[3], p[4], o[4])
    t.notes.append(
        "base = flattened build (rearrangement both schemes share); "
        "absolute ns are per loop iteration under the model clock. "
        "The claim under test: faulting adds ~0%, checking adds the "
        "per-access status test on every access.")
    return t


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
