"""Structural bytecode verifier.

Run before any code object is loaded into a VM (and after every
preprocessing pass in tests) to catch malformed code early:

* all jump / switch / exception-table targets are valid bcis;
* local slots are within ``max_locals``;
* the operand-stack depth is consistent at every bci across all paths
  (the classic dataflow check), never negative, and bounded;
* execution cannot fall off the end of the method;
* exception handlers start with a well-formed region (the exception
  object is on the stack at handler entry);
* CONST arguments are of supported literal types.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bytecode import opcodes as op
from repro.bytecode.code import CodeObject
from repro.errors import VerifyError

_LITERALS = (int, float, bool, str, type(None))

MAX_STACK = 4096


def _targets(code: CodeObject, bci: int) -> List[int]:
    """Successor bcis of the instruction at ``bci`` (fallthrough included)."""
    ins = code.instrs[bci]
    succ: List[int] = []
    if ins.op in (op.RET, op.RETV, op.THROW):
        return succ
    if ins.op == op.JMP:
        return [ins.a]
    if ins.op == op.LSWITCH:
        return sorted(set(ins.a.values()) | {ins.b})
    if ins.op in (op.JZ, op.JNZ):
        succ.append(ins.a)
    succ.append(bci + 1)
    return succ


def verify(code: CodeObject) -> None:
    """Verify one code object; raises :class:`VerifyError` on failure."""
    n = len(code.instrs)
    if n == 0:
        raise VerifyError(f"{code.qualname}: empty method body")
    if code.nparams > code.max_locals:
        raise VerifyError(f"{code.qualname}: nparams > max_locals")

    # -- static checks per instruction ------------------------------------
    for bci, ins in enumerate(code.instrs):
        if ins.op not in op.ALL_OPS:
            raise VerifyError(f"{code.qualname}@{bci}: unknown opcode {ins.op!r}")
        if ins.op in (op.LOAD, op.STORE):
            if not isinstance(ins.a, int) or not (0 <= ins.a < code.max_locals):
                raise VerifyError(
                    f"{code.qualname}@{bci}: bad slot {ins.a!r} "
                    f"(max_locals={code.max_locals})")
        if ins.op in op.BRANCHES:
            if not isinstance(ins.a, int) or not (0 <= ins.a < n):
                raise VerifyError(f"{code.qualname}@{bci}: bad target {ins.a!r}")
        if ins.op == op.LSWITCH:
            if not isinstance(ins.a, dict):
                raise VerifyError(f"{code.qualname}@{bci}: LSWITCH table not a dict")
            for t in list(ins.a.values()) + [ins.b]:
                if not isinstance(t, int) or not (0 <= t < n):
                    raise VerifyError(f"{code.qualname}@{bci}: bad switch target {t!r}")
        if ins.op == op.CONST and not isinstance(ins.a, _LITERALS):
            raise VerifyError(
                f"{code.qualname}@{bci}: CONST of unsupported type {type(ins.a)}")
        if ins.op in (op.INVOKESTATIC, op.INVOKEVIRT, op.NATIVE):
            if not isinstance(ins.b, int) or ins.b < 0:
                raise VerifyError(f"{code.qualname}@{bci}: bad arg count {ins.b!r}")

    # -- exception table ----------------------------------------------------
    for e in code.exc_table:
        if not (0 <= e.start < e.end <= n):
            raise VerifyError(f"{code.qualname}: bad catch range {e}")
        if not (0 <= e.handler < n):
            raise VerifyError(f"{code.qualname}: bad handler bci {e}")

    # -- dataflow: consistent stack depths -----------------------------------
    depth_at: List[Optional[int]] = [None] * n
    work: List[int] = [0]
    depth_at[0] = 0
    # Exception handlers are entered with exactly the exception object.
    for e in code.exc_table:
        if depth_at[e.handler] is None:
            depth_at[e.handler] = 1
            work.append(e.handler)
        elif depth_at[e.handler] != 1:
            raise VerifyError(
                f"{code.qualname}: handler @{e.handler} reachable with depth "
                f"{depth_at[e.handler]} != 1")
    while work:
        bci = work.pop()
        d = depth_at[bci]
        assert d is not None
        ins = code.instrs[bci]
        pops, pushes = op.stack_effect(ins.op, ins.a, ins.b)
        if d < pops:
            raise VerifyError(
                f"{code.qualname}@{bci}: stack underflow ({ins.op} pops "
                f"{pops}, depth {d})")
        nd = d - pops + pushes
        if nd > MAX_STACK:
            raise VerifyError(f"{code.qualname}@{bci}: stack overflow")
        for t in _targets(code, bci):
            if t >= n:
                raise VerifyError(
                    f"{code.qualname}@{bci}: falls off the end of the method")
            if depth_at[t] is None:
                depth_at[t] = nd
                work.append(t)
            elif depth_at[t] != nd:
                raise VerifyError(
                    f"{code.qualname}@{bci}->{t}: inconsistent stack depth "
                    f"{depth_at[t]} vs {nd}")

    # -- line table -----------------------------------------------------------
    last = -1
    for start, _line in code.line_table:
        if not (0 <= start < n):
            raise VerifyError(f"{code.qualname}: line-table bci {start} out of range")
        if start <= last:
            raise VerifyError(f"{code.qualname}: line table not strictly increasing")
        last = start


def stack_depths(code: CodeObject) -> Dict[int, int]:
    """Operand-stack depth *before* each reachable bci.

    Shared with the preprocessor (MSP computation needs "depth == 0").
    Unreachable bcis are absent from the result.
    """
    n = len(code.instrs)
    depth_at: List[Optional[int]] = [None] * n
    depth_at[0] = 0
    work = [0]
    for e in code.exc_table:
        if depth_at[e.handler] is None:
            depth_at[e.handler] = 1
            work.append(e.handler)
    while work:
        bci = work.pop()
        d = depth_at[bci]
        assert d is not None
        ins = code.instrs[bci]
        pops, pushes = op.stack_effect(ins.op, ins.a, ins.b)
        nd = d - pops + pushes
        for t in _targets(code, bci):
            if t < n and depth_at[t] is None:
                depth_at[t] = nd
                work.append(t)
    return {bci: d for bci, d in enumerate(depth_at) if d is not None}


def verify_class(cf) -> None:
    """Verify every method of a :class:`repro.bytecode.code.ClassFile`."""
    for code in cf.methods.values():
        verify(code)
